#!/usr/bin/env python3
"""Socket-mode smoke client for kcenter_serve under an armed fault plan.

Run by CI against a kcenter_serve --socket instance whose --fault-plan
injects EINTR, short writes and dropped accepts. The assertions are the
resilience contract from the client's point of view:

  * every response line is valid JSON with a status — an injected
    short write or EINTR mid-report must never truncate or interleave
    the JSONL framing;
  * each connection gets exactly one response per request it sent, with
    the ids it sent — no report is lost to, or duplicated onto, another
    connection (no reaped-fd reuse);
  * a connection dropped by an injected accept fault is recoverable by
    plain reconnect — the listener itself must keep serving.

Usage: socket_smoke.py /path/to/kc.sock
"""

import json
import socket
import sys
import time


def request(rid):
    return json.dumps({
        "id": rid,
        "tenant": "smoke",
        "algorithm": "gon",
        "k": 2,
        "seed": rid,
        "points": [[float(i), float(i % 7)] for i in range(12)],
    })


def run_connection(path, ids, attempts=10):
    """Sends one request per id and returns the response lines.

    An injected serve.accept fault closes a freshly accepted connection
    before it is served; the client's recourse is exactly a reconnect,
    so a cleanly dropped connection retries instead of failing.
    """
    for _ in range(attempts):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(30)
            sock.connect(path)
            sock.sendall("".join(request(i) + "\n" for i in ids).encode())
            buffer = b""
            lines = []
            while len(lines) < len(ids):
                chunk = sock.recv(4096)
                if not chunk:
                    break  # dropped before service: reconnect and retry
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    lines.append(line)
            if len(lines) == len(ids):
                return lines
        except (BrokenPipeError, ConnectionResetError, ConnectionRefusedError):
            pass
        finally:
            sock.close()
        time.sleep(0.2)
    raise SystemExit(f"connection never served after {attempts} attempts")


def main():
    path = sys.argv[1]
    for conn in range(3):
        ids = list(range(conn * 100 + 1, conn * 100 + 21))
        lines = run_connection(path, ids)
        got = set()
        for line in lines:
            report = json.loads(line)  # framing survived the faults
            assert "status" in report, report
            got.add(report["id"])
        assert got == set(ids), (sorted(got), ids)
    print("socket smoke: 3 connections x 20 requests, framing intact")


if __name__ == "__main__":
    main()
