#!/usr/bin/env python3
"""kc_lint: the repo's determinism-contract lint.

The reproduction's central promise is that every execution mode emits
bit-identical reports from the same seed (ROADMAP "determinism
contract"). Most ways to break that promise are invisible to the
compiler: a stray wall-clock read, an unordered-container iteration
that leaks hash order into report bytes, an FMA contraction in a SIMD
kernel. This lint encodes those rules as grep-grade checks over src/
plus a flag audit over compile_commands.json, so a violation fails the
test suite (ctest: kc_lint_src) and CI, not a code review.

Rules (each can be waived per-line, with a written reason):

  entropy        std::random_device / rand() / srand() / drand48() are
                 banned outside the sanctioned modules (src/rng/).
                 All randomness must flow from the request seed.
  wallclock      system_clock, gettimeofday, time(...), CLOCK_REALTIME
                 and high_resolution_clock (unspecified alias) are
                 banned in src/. steady_clock and the thread CPU clock
                 (exec/cpu_clock.hpp) are the sanctioned time sources.
  fp-contract    every compile command carrying an ISA flag (-mavx2 /
                 -mavx512f) must also carry -ffp-contract=off, so SIMD
                 kernels cannot FMA-contract away from the scalar
                 reference.
  guarded-by     in a class that owns a kc::compat::Mutex, mutable
                 members (trailing-underscore data members that are
                 not atomic/const/mutex/condvar) must be annotated
                 KC_GUARDED_BY or explicitly waived.
  tsa-optout     KC_NO_THREAD_SAFETY_ANALYSIS needs a written reason
                 (comment within the three lines above).
  waiver-expired an expiring waiver whose PR deadline has passed; the
                 debt comes due, fix the code or re-justify.

Two former rules — `memory-order` (rationale comments on weakened
atomic orders) and `unordered-iter` (hash containers in report TUs) —
are retired here and enforced AST-accurately by the clang-tidy plugin
(tools/analysis: kc-atomic-rationale, kc-unordered-emit). The regex
versions missed aliased orders and helpers one call from a sink, and
double-reporting the same contract from two tools teaches people to
ignore one of them.

Waiver grammar (the reason is mandatory; a bare waiver is itself an
error). A waiver may carry an expiry PR; once CHANGES.md says the repo
has reached that PR, the waiver turns into a `waiver-expired` finding:

    code();  // kc-lint: allow(wallclock) operator-facing log line only
    tmp();   // kc-lint: allow(guarded-by, until=PR14) migration shim

The current PR number is one past the CHANGES.md entry count (one
line per merged PR), overridable with --current-pr.

Usage:
    tools/kc_lint.py --src src --compile-commands build/compile_commands.json
    tools/kc_lint.py --self-test tests/lint_fixtures
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# --------------------------------------------------------------- findings


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------- waivers

WAIVER_RE = re.compile(
    r"//\s*kc-lint:\s*allow\((?P<rules>[\w\-, =]+)\)(?P<reason>.*)$")
UNTIL_RE = re.compile(r"^until=PR(\d+)$")


def current_pr_number(repo_root: Path) -> int | None:
    """One past the number of CHANGES.md entries — the PR being built
    right now. None (expiry unenforced) when the ledger is absent."""
    changes = repo_root / "CHANGES.md"
    try:
        entries = [ln for ln in changes.read_text().splitlines()
                   if ln.strip()]
    except OSError:
        return None
    return len(entries) + 1


def parse_waivers(lines: list[str], path: Path, findings: list[Finding],
                  current_pr: int | None = None):
    """Maps 1-based line number -> set of waived rules for that line.

    A waiver on a pure comment line applies to the next code line.
    A waiver without a trailing reason is reported and ignored. An
    `until=PRn` term bounds the waiver's life: once the repo reaches
    PR n the waiver still suppresses its rules (one finding, not two)
    but reports `waiver-expired` so CI fails until the debt is paid
    down or the deadline re-justified.
    """
    waived: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        terms = [t.strip() for t in m.group("rules").split(",") if t.strip()]
        rules: set[str] = set()
        expires: int | None = None
        malformed = False
        for term in terms:
            u = UNTIL_RE.match(term)
            if u:
                expires = int(u.group(1))
            elif "=" in term:
                malformed = True
            else:
                rules.add(term)
        if malformed:
            findings.append(Finding(
                path, i, "waiver",
                "malformed waiver term; the only keyword form is "
                "until=PR<n>"))
            continue
        if not m.group("reason").strip():
            findings.append(
                Finding(path, i, "waiver", "waiver without a written reason")
            )
            continue
        if expires is not None and current_pr is not None \
                and current_pr >= expires:
            findings.append(Finding(
                path, i, "waiver-expired",
                f"waiver for {', '.join(sorted(rules))} expired at "
                f"PR{expires} (now at PR{current_pr}); fix the code or "
                "re-justify with a later deadline"))
        target = i
        if line.strip().startswith("//"):  # comment-only line: waive the next line
            target = i + 1
        waived.setdefault(target, set()).update(rules)
    return waived


def is_comment_or_string(line: str, pos: int) -> bool:
    """True when pos sits inside a // comment or a double-quoted string."""
    comment = line.find("//")
    if comment != -1 and pos > comment:
        return True
    # Odd number of quotes before pos => inside a string literal.
    return (line[:pos].count('"') % 2) == 1


# ------------------------------------------------------------ line rules

ENTROPY_RE = re.compile(
    r"std::random_device|\brand\s*\(|\bsrand\s*\(|\bdrand48\s*\("
)
ENTROPY_SANCTIONED = ("src/rng/",)

WALLCLOCK_RE = re.compile(
    r"system_clock|high_resolution_clock|gettimeofday|CLOCK_REALTIME"
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)

TSA_OPTOUT_RE = re.compile(r"KC_NO_THREAD_SAFETY_ANALYSIS")


def has_nearby_comment(lines: list[str], idx: int) -> bool:
    """A '//' comment on line idx (0-based) or within the 3 lines above."""
    line = lines[idx]
    if "//" in line or "/*" in line or "*/" in line:
        return True
    for back in range(1, 4):
        if idx - back < 0:
            break
        stripped = lines[idx - back].strip()
        if stripped.startswith("//") or stripped.startswith("*") or \
                stripped.startswith("/*") or stripped.endswith("*/"):
            return True
    return False


def lint_lines(path: Path, rel: str, text: str, findings: list[Finding],
               current_pr: int | None = None):
    lines = text.splitlines()
    waived = parse_waivers(lines, path, findings, current_pr)

    def report(i: int, rule: str, message: str):
        if rule in waived.get(i, set()):
            return
        findings.append(Finding(path, i, rule, message))

    in_block_comment = False
    for i, line in enumerate(lines, start=1):
        # Cheap block-comment tracking: rules never need to fire inside
        # documentation, and the determinism patterns are rare enough
        # that a line both opening and closing /* */ around a match is
        # not a case worth engineering for.
        stripped = line.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
            continue
        if stripped.startswith("/*") and "*/" not in line:
            in_block_comment = True
            continue

        m = ENTROPY_RE.search(line)
        if m and not is_comment_or_string(line, m.start()):
            if not any(rel.startswith(p) for p in ENTROPY_SANCTIONED):
                report(i, "entropy",
                       f"ambient entropy '{m.group(0).strip()}' outside "
                       "src/rng/; derive randomness from the request seed")

        m = WALLCLOCK_RE.search(line)
        if m and not is_comment_or_string(line, m.start()):
            report(i, "wallclock",
                   f"wall-clock source '{m.group(0).strip()}'; use "
                   "steady_clock or exec/cpu_clock.hpp")

        m = TSA_OPTOUT_RE.search(line)
        if m and not is_comment_or_string(line, m.start()) and \
                "define" not in line:
            if not has_nearby_comment(lines, i - 1):
                report(i, "tsa-optout",
                       "KC_NO_THREAD_SAFETY_ANALYSIS without a written "
                       "reason in the 3 lines above")


# -------------------------------------------------------- guarded-by rule

MUTEX_MEMBER_RE = re.compile(r"(?:kc::)?compat::Mutex\s+(\w+)\s*;")
# A data member in this codebase's style: trailing-underscore name,
# optionally initialized, declared on one line.
MEMBER_RE = re.compile(r"^\s+[\w:<>,\s\*&\[\]]+?\s[\*&]?(\w+_)\s*(?:=[^;]*|\{[^;]*\})?;")
MEMBER_EXEMPT_RE = re.compile(
    r"std::atomic|compat::Mutex|compat::CondVar|std::mutex|"
    r"std::condition_variable|\bstatic\b|\bconstexpr\b|^\s*const\b|"
    r"KC_GUARDED_BY|KC_PT_GUARDED_BY|\busing\b|\btypedef\b"
)


def lint_guarded_by(path: Path, text: str, findings: list[Finding]):
    """Flags trailing-underscore data members of mutex-owning classes
    that carry no KC_GUARDED_BY annotation.

    Heuristic, brace-depth based: a class is "mutex-owning" once a
    compat::Mutex member is seen at its depth. Multi-line declarations
    are joined on the annotation check by looking one line ahead.
    """
    lines = text.splitlines()
    # Waiver hygiene findings (bare reason, expiry) are already
    # reported by lint_lines over the same text; a scratch list keeps
    # them from being counted twice for headers.
    scratch: list[Finding] = []
    waived = parse_waivers(lines, path, scratch)

    depth = 0
    mutex_depths: set[int] = set()
    for i, line in enumerate(lines, start=1):
        code = line.split("//")[0]
        if MUTEX_MEMBER_RE.search(code):
            mutex_depths.add(depth + code.count("{") - code.count("}"))
        opening = code.count("{")
        closing = code.count("}")
        if depth in mutex_depths and closing > opening:
            mutex_depths.discard(depth)
        prev_depth = depth
        depth += opening - closing

        if prev_depth not in mutex_depths:
            continue
        m = MEMBER_RE.match(code)
        if not m:
            continue
        if MEMBER_EXEMPT_RE.search(code):
            continue
        # Function declarations also match MEMBER_RE when they return a
        # templated type; require no parentheses before the member name.
        if "(" in code:
            continue
        joined = code + (lines[i] if i < len(lines) else "")
        if "KC_GUARDED_BY" in joined:
            continue
        if "guarded-by" in waived.get(i, set()):
            continue
        findings.append(Finding(
            path, i, "guarded-by",
            f"member '{m.group(1)}' of a mutex-owning class has no "
            "KC_GUARDED_BY annotation (or waiver naming the discipline "
            "that protects it)"))


# ----------------------------------------------------- compile_commands

ISA_FLAGS = ("-mavx2", "-mavx512f")


def lint_compile_commands(db_path: Path, findings: list[Finding]):
    try:
        entries = json.loads(db_path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        findings.append(Finding(db_path, 0, "fp-contract",
                                f"cannot read compilation database: {err}"))
        return
    for entry in entries:
        command = entry.get("command") or " ".join(entry.get("arguments", []))
        if not any(flag in command for flag in ISA_FLAGS):
            continue
        if "-ffp-contract=off" not in command:
            findings.append(Finding(
                Path(entry.get("file", "?")), 0, "fp-contract",
                "SIMD TU compiled without -ffp-contract=off; FMA "
                "contraction would break scalar/SIMD bit-identity"))


# ----------------------------------------------------------------- driver


def lint_tree(src_root: Path, repo_root: Path,
              current_pr: int | None) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
            continue
        rel = path.relative_to(repo_root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        lint_lines(path, rel, text, findings, current_pr)
        if path.suffix in (".hpp", ".h"):
            lint_guarded_by(path, text, findings)
    return findings


EXPECT_RE = re.compile(r"//\s*expect:\s*([\w\-]+)")


def self_test(fixtures: Path, repo_root: Path) -> int:
    """good/ fixtures must lint clean; each bad/ fixture must produce
    exactly the rule set its `// expect: <rule>` markers declare."""
    failures = 0
    good = sorted((fixtures / "good").glob("*"))
    bad = sorted((fixtures / "bad").glob("*"))
    if not good or not bad:
        print(f"kc_lint --self-test: no fixtures under {fixtures}",
              file=sys.stderr)
        return 1
    # Fixtures pin expiry behavior with far-off deadlines (until=PR3 is
    # always expired, until=PR9999 never is), so any current PR in the
    # repo's realistic lifetime asserts both sides. The real ledger
    # count keeps the self-test honest about the derivation path too.
    current_pr = current_pr_number(repo_root) or 10
    for path in good:
        if path.suffix not in (".cpp", ".hpp"):
            continue
        findings: list[Finding] = []
        text = path.read_text()
        # Good fixtures are linted as if they lived in the strictest
        # spot: a report-emitting directory.
        lint_lines(path, "src/harness/" + path.name, text, findings,
                   current_pr)
        if path.suffix == ".hpp":
            lint_guarded_by(path, text, findings)
        for f in findings:
            print(f"FAIL (good fixture flagged): {f}", file=sys.stderr)
            failures += 1
    for path in bad:
        if path.suffix not in (".cpp", ".hpp"):
            continue
        text = path.read_text()
        expected = sorted(EXPECT_RE.findall(text))
        findings = []
        lint_lines(path, "src/harness/" + path.name, text, findings,
                   current_pr)
        if path.suffix == ".hpp":
            lint_guarded_by(path, text, findings)
        got = sorted({f.rule for f in findings})
        missing = [r for r in expected if r not in got]
        surplus = [r for r in got if r not in expected]
        for rule in missing:
            print(f"FAIL (expected rule not fired): {path}: {rule}",
                  file=sys.stderr)
            failures += 1
        for rule in surplus:
            for f in findings:
                if f.rule == rule:
                    print(f"FAIL (unexpected finding): {f}", file=sys.stderr)
            failures += 1
    if failures == 0:
        print(f"kc_lint --self-test: {len(good) + len(bad)} fixtures OK")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src", type=Path, default=Path("src"),
                        help="source tree to lint (default: src)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json for the flag audit")
    parser.add_argument("--self-test", type=Path, default=None,
                        metavar="FIXTURES",
                        help="run against the fixture corpus and exit")
    parser.add_argument("--current-pr", type=int, default=None,
                        help="PR number for waiver expiry (default: "
                             "derived from CHANGES.md entry count + 1)")
    args = parser.parse_args(argv)

    repo_root = args.src.resolve().parent

    if args.self_test is not None:
        return self_test(args.self_test, repo_root)

    if not args.src.is_dir():
        print(f"kc_lint: no such source tree: {args.src}", file=sys.stderr)
        return 2

    current_pr = args.current_pr
    if current_pr is None:
        current_pr = current_pr_number(repo_root)

    findings = lint_tree(args.src.resolve(), repo_root, current_pr)
    if args.compile_commands is not None:
        lint_compile_commands(args.compile_commands, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"kc_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("kc_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
