#!/usr/bin/env python3
"""Assert the kc-* clang-tidy plugin against its fixture corpus.

Each file under <corpus>/bad carries `// expect: <check-name>` markers:
the named check must diagnose that line (or the next one — markers on
their own line annotate the statement below). Files under <corpus>/good
must produce zero kc-* diagnostics. Both directions are strict: a check
that fires where no marker stands fails the run too, so the corpus
pins the checks' precision as well as their recall.

Fixtures are hermetic — they mock the kc:: declarations they need
(matching qualified names is what the checks key on) instead of
including the real headers, so a header refactor cannot silently turn
the corpus into a no-op.
"""
from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

CHECKS = [
    "kc-lock-order",
    "kc-raw-kernel",
    "kc-atomic-rationale",
    "kc-wait-loop",
    "kc-unordered-emit",
]

EXPECT_RE = re.compile(r"//\s*expect(?P<above>-above)?:\s*(?P<check>kc-[\w-]+)")
DIAG_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+):\d+:\s+"
                     r"(?:warning|error):\s.*\[(?P<check>kc-[\w-]+)\]\s*$")


def expectations(path: Path) -> list[tuple[int, str]]:
    """(line, check) pairs. A marker on a comment-only line annotates
    the next line; `expect-above` annotates the previous line — needed
    for kc-atomic-rationale, whose comment-proximity rule would read a
    same-line or lines-above marker as the rationale it demands."""
    out = []
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines, start=1):
        m = EXPECT_RE.search(line)
        if not m:
            continue
        if m.group("above"):
            target = i - 1
        elif line.strip().startswith("//"):
            target = i + 1
        else:
            target = i
        out.append((target, m.group("check")))
    return out


def run_tidy(clang_tidy: str, plugin: str, facts_dir: str,
             path: Path) -> tuple[list[tuple[int, str]], str]:
    # AllowedDirs is overridden because the corpus itself lives under
    # tests/, which the shipped default exempts; FactsDir keeps the
    # lock-order YAML out of the source tree.
    config = ("{CheckOptions: ["
              "{key: 'kc-raw-kernel.AllowedDirs', value: 'src/geom/'}, "
              f"{{key: 'kc-lock-order.FactsDir', value: '{facts_dir}'}}"
              "]}")
    cmd = [
        clang_tidy,
        f"-load={plugin}",
        "--checks=-*," + ",".join(CHECKS),
        f"--config={config}",
        "--quiet",
        str(path),
        "--",
        "-std=c++20",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    diags = []
    hard_error = False
    for line in proc.stdout.splitlines() + proc.stderr.splitlines():
        m = DIAG_RE.match(line.strip())
        if m:
            diags.append((int(m.group("line")), m.group("check")))
        elif ": error:" in line and "[kc-" not in line:
            hard_error = True
    if hard_error:
        raise RuntimeError(
            f"fixture {path.name} failed to compile under clang-tidy:\n"
            f"{proc.stdout}\n{proc.stderr}")
    return diags, proc.stdout


def check_bad(path: Path, diags: list[tuple[int, str]]) -> list[str]:
    problems = []
    wanted = expectations(path)
    if not wanted:
        return [f"{path.name}: bad fixture has no expect markers"]
    matched = set()
    for line, check in wanted:
        hits = [d for d in diags if d[1] == check and d[0] in (line, line + 1)]
        if hits:
            matched.update(hits)
        else:
            problems.append(f"{path.name}:{line}: expected {check}, not fired")
    for d in diags:
        if d not in matched:
            problems.append(
                f"{path.name}:{d[0]}: unexpected {d[1]} (no marker)")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clang-tidy", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--corpus", required=True)
    parser.add_argument("--repo-root", default=".")
    args = parser.parse_args(argv)

    corpus = Path(args.corpus)
    bad = sorted((corpus / "bad").glob("*.cpp"))
    good = sorted((corpus / "good").glob("*.cpp"))
    if len(bad) < len(CHECKS) or len(good) < len(CHECKS):
        print(f"corpus incomplete: {len(bad)} bad / {len(good)} good "
              f"fixtures for {len(CHECKS)} checks", file=sys.stderr)
        return 1

    problems: list[str] = []
    with tempfile.TemporaryDirectory(prefix="kc-facts-") as facts_dir:
        for path in bad:
            diags, _ = run_tidy(args.clang_tidy, args.plugin, facts_dir, path)
            problems += check_bad(path, diags)
        for path in good:
            diags, out = run_tidy(args.clang_tidy, args.plugin, facts_dir, path)
            for line, check in diags:
                problems.append(
                    f"{path.name}:{line}: {check} fired on a good fixture")

    if problems:
        print("plugin corpus FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"plugin corpus OK: {len(bad)} bad + {len(good)} good fixtures, "
          f"{len(CHECKS)} checks")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
