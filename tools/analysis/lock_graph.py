#!/usr/bin/env python3
"""lock_graph: the cross-TU half of the kc-lock-order analysis.

Deadlock by lock-order inversion is a *global* property: TU A may only
ever take `state_mutex_` then `deadline_mutex_`, TU B only the reverse,
and no per-TU analysis (Clang TSA included) can see the conflict. The
kc-lock-order clang-tidy check (tools/analysis/checks/LockOrderCheck)
therefore only *emits facts* — which mutexes are held when another is
acquired, which functions acquire what, which calls happen under a
lock — one YAML file per translation unit. This tool is phase two: it
unions the facts into a global lock-order graph, closes the graph over
the call facts (an edge A -> B also exists when a function is called
with A held and that function, transitively, may acquire B), detects
cycles, and renders the graph as DOT for the CI artifact.

The same facts schema can be produced without a compiler: `extract`
derives facts from the sources directly with a brace-scope heuristic
over the repo's disciplined locking idiom (compat::LockGuard /
compat::MutexLock guards, KC_REQUIRES annotations). That keeps the
cycle gate running as a plain ctest entry on toolchains without clang
dev headers; when the plugin is available its AST-grounded facts take
precedence (macros, typedefs and out-of-line definitions resolved for
real).

Facts schema (a deliberately flat YAML subset; parsed here without
PyYAML so the tool runs on a bare python3):

    tu: src/svc/service.cpp
    acquisitions:
      - {function: "ServiceLoop::run", mutex: "ServiceLoop::state_mutex_", held: "A|B", line: 217}
    calls:
      - {function: "ServiceLoop::run", callee: "BoundedQueue::pop", held: "A", line: 230}

Usage:
    lock_graph.py extract --src src/svc src/exec src/fault --out build/lock_facts
    lock_graph.py merge --facts build/lock_facts --dot lock_order.dot
    lock_graph.py selftest --corpus tests/lint_fixtures/plugin
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# ------------------------------------------------------------------ facts

ITEM_RE = re.compile(r"\{([^}]*)\}")
FIELD_RE = re.compile(r"(\w+):\s*(?:\"([^\"]*)\"|(\d+))")


class Acquisition:
    def __init__(self, function: str, mutex: str, held: list[str],
                 tu: str, line: int):
        self.function = function
        self.mutex = mutex
        self.held = held
        self.tu = tu
        self.line = line


class Call:
    def __init__(self, function: str, callee: str, held: list[str],
                 tu: str, line: int):
        self.function = function
        self.callee = callee
        self.held = held
        self.tu = tu
        self.line = line


class Facts:
    def __init__(self):
        self.acquisitions: list[Acquisition] = []
        self.calls: list[Call] = []

    def dump(self, tu: str) -> str:
        out = [f"tu: {tu}", "acquisitions:"]
        for a in self.acquisitions:
            held = "|".join(a.held)
            out.append(f'  - {{function: "{a.function}", mutex: "{a.mutex}",'
                       f' held: "{held}", line: {a.line}}}')
        out.append("calls:")
        for c in self.calls:
            held = "|".join(c.held)
            out.append(f'  - {{function: "{c.function}", callee: "{c.callee}",'
                       f' held: "{held}", line: {c.line}}}')
        return "\n".join(out) + "\n"


def parse_facts(text: str) -> Facts:
    facts = Facts()
    tu = "?"
    section = None
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("tu:"):
            tu = line[3:].strip()
            continue
        if line.startswith("acquisitions:"):
            section = "acq"
            continue
        if line.startswith("calls:"):
            section = "call"
            continue
        m = ITEM_RE.search(line)
        if not m or section is None:
            continue
        fields = {k: s or n for k, s, n in FIELD_RE.findall(m.group(1))}
        held = [h for h in fields.get("held", "").split("|") if h]
        lineno = int(fields.get("line", "0"))
        if section == "acq":
            facts.acquisitions.append(Acquisition(
                fields.get("function", "?"), fields.get("mutex", "?"),
                held, tu, lineno))
        else:
            facts.calls.append(Call(
                fields.get("function", "?"), fields.get("callee", "?"),
                held, tu, lineno))
    return facts


# ------------------------------------------------- heuristic fact extract
#
# The fallback frontend. It understands exactly the locking idiom the
# repo enforces elsewhere (one guard declaration per line, mutex
# members named in the declaration, KC_REQUIRES on the definition) and
# is deliberately dumb about everything else. The clang-tidy check is
# the ground truth; this exists so the cycle gate never goes dark on
# gcc-only hosts.

GUARD_RE = re.compile(
    r"\bcompat::(?:LockGuard|MutexLock)\s+(\w+)\s*[({]\s*([\w.&>\[\]\-]+(?:\(\))?)\s*[)}]")
REQUIRES_RE = re.compile(r"KC_REQUIRES\(([^)]*)\)")
CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+(?:KC_\w+\(\"?\w*\"?\)\s+)?(\w+)[^;]*$")
MUTEX_DECL_RE = re.compile(r"(?:kc::)?compat::Mutex\s+(\w+)\s*;")
# A function definition header: optional template/qualifiers, a name
# (possibly Class::name) directly before the parameter list. Matched on
# the joined declaration line once its opening brace arrives.
FUNC_NAME_RE = re.compile(r"([\w~]+(?:::[\w~]+)*)\s*\($")
UNLOCK_RE = re.compile(r"\b(\w+)\.unlock\(\)")
RELOCK_RE = re.compile(r"\b(\w+)\.lock\(\)")


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments and string literal contents while
    preserving line structure (so reported line numbers stay real)."""
    out = []
    i = 0
    n = len(text)
    mode = None  # None | "line" | "block" | "str" | "chr"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if ch == "/" and nxt == "/":
                mode = "line"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                mode = "block"
                i += 2
                continue
            if ch == '"':
                mode = "str"
                out.append(ch)
                i += 1
                continue
            if ch == "'":
                mode = "chr"
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif mode == "line":
            if ch == "\n":
                mode = None
                out.append(ch)
        elif mode == "block":
            if ch == "*" and nxt == "/":
                mode = None
                i += 2
                continue
            if ch == "\n":
                out.append(ch)
        elif mode == "str":
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                mode = None
                out.append(ch)
            elif ch == "\n":  # unterminated; bail to code mode
                mode = None
                out.append(ch)
        elif mode == "chr":
            if ch == "\\":
                i += 2
                continue
            if ch == "'":
                mode = None
                out.append(ch)
            elif ch == "\n":
                mode = None
                out.append(ch)
        i += 1
    return "".join(out)


class MutexIndex:
    """Maps mutex member names to their canonical Owner::name form.

    Built by a whole-tree pre-pass over class/struct scopes. Ambiguous
    bare names (two classes both own a member `mutex`) are resolved by
    preferring an owner declared in the same file stem as the use.
    """

    def __init__(self):
        self.by_name: dict[str, list[tuple[str, str]]] = {}  # name -> [(owner, file)]

    def scan(self, path: Path, text: str):
        class_stack: list[tuple[str, int]] = []  # (name, depth at open)
        depth = 0
        pending_class: str | None = None
        for line in text.splitlines():
            m = CLASS_RE.match(line)
            if m and "{" not in line and ";" not in line:
                pending_class = m.group(1)
            opens = line.count("{")
            closes = line.count("}")
            if opens:
                name = None
                if m and "{" in line:
                    name = m.group(1)
                elif pending_class is not None:
                    name = pending_class
                if name is not None:
                    class_stack.append((name, depth))
                    pending_class = None
            dm = MUTEX_DECL_RE.search(line)
            if dm and class_stack:
                owner = class_stack[-1][0]
                self.by_name.setdefault(dm.group(1), []).append(
                    (owner, path.stem))
            depth += opens - closes
            while class_stack and depth <= class_stack[-1][1]:
                class_stack.pop()

    def canonical(self, expr: str, file_stem: str) -> str:
        """`scheduler_->drain_mutex_` -> `Scheduler::drain_mutex_`."""
        name = re.split(r"[.>]", expr.replace("->", ">"))[-1].strip("&() ")
        owners = self.by_name.get(name)
        if not owners:
            return name
        if len(owners) == 1:
            return f"{owners[0][0]}::{name}"
        for owner, stem in owners:
            if stem == file_stem:
                return f"{owner}::{name}"
        return f"{owners[0][0]}::{name}"


def extract_file(path: Path, rel: str, index: MutexIndex,
                 acquirer_names: set[str] | None) -> Facts:
    """One file's facts, via brace-scope tracking of guard lifetimes."""
    facts = Facts()
    text = strip_comments(path.read_text(encoding="utf-8", errors="replace"))
    lines = text.splitlines()

    depth = 0
    func: str | None = None
    func_depth = 0
    # Guards held right now: (canonical mutex, guard var, depth declared).
    held: list[tuple[str, str, int]] = []
    pending_sig = ""  # joined decl text while looking for a '{'

    for lineno, line in enumerate(lines, start=1):
        code = line
        if func is None:
            # Accumulate a potential function signature until its body
            # opens. A ';' ends a declaration without a body.
            pending_sig = (pending_sig + " " + code).strip()
            if ";" in code and "{" not in code:
                pending_sig = ""
            if "{" in code:
                sig = pending_sig.split("{")[0]
                # KC_REQUIRES on the definition: held on entry.
                entry_held = []
                for req in REQUIRES_RE.findall(sig):
                    for tok in req.split(","):
                        tok = tok.strip().lstrip("!")
                        if tok:
                            entry_held.append(index.canonical(tok, path.stem))
                paren = sig.find("(")
                name = None
                if paren > 0:
                    m = FUNC_NAME_RE.search(sig[:paren + 1])
                    if m:
                        name = m.group(1)
                kw_blocklist = {"if", "for", "while", "switch", "catch",
                                "return", "sizeof", "alignof", "decltype"}
                if name and name.split("::")[-1] not in kw_blocklist:
                    func = name
                    func_depth = depth
                    held = [(mx, "<entry>", depth) for mx in entry_held]
                pending_sig = ""
        else:
            gm = GUARD_RE.search(code)
            if gm:
                mutex = index.canonical(gm.group(2), path.stem)
                facts.acquisitions.append(Acquisition(
                    func, mutex, sorted({h for h, _, _ in held}), rel, lineno))
                held.append((mutex, gm.group(1), depth + code.count("{")))
            else:
                # MutexLock mid-scope unlock ends the hold early; the
                # matching relock() re-enters the same mutex, which the
                # graph ignores (self-edges are TSA's province).
                um = UNLOCK_RE.search(code)
                if um:
                    held = [h for h in held if h[1] != um.group(1)]
                # Call facts: a call to a known acquiring function while
                # holding something. Restricted to unqualified and
                # this-> calls — a call through some other object
                # (x.wait(), items_.size()) shares only a method *name*
                # with an acquirer, and resolving the receiver's type
                # is exactly what the AST check exists for.
                if held and acquirer_names:
                    for cm in re.finditer(r"([A-Za-z_]\w*)\s*\(", code):
                        callee = cm.group(1)
                        before = code[:cm.start()].rstrip()
                        if before.endswith(".") or before.endswith("->"):
                            if not re.search(r"\bthis\s*->$", before):
                                continue
                        if callee in acquirer_names and \
                                callee != func.split("::")[-1]:
                            facts.calls.append(Call(
                                func, callee, sorted({h for h, _, _ in held}),
                                rel, lineno))

        opens = line.count("{")
        closes = line.count("}")
        depth += opens - closes
        if func is not None:
            held = [h for h in held if h[2] <= depth]
            if depth <= func_depth:
                func = None
                held = []
                pending_sig = ""
    return facts


def cxx_files(roots: list[Path]) -> list[Path]:
    out = []
    for root in roots:
        if root.is_file():
            out.append(root)
            continue
        out.extend(p for p in sorted(root.rglob("*"))
                   if p.suffix in (".cpp", ".hpp", ".h", ".cc"))
    return out


def extract_tree(roots: list[Path], repo_root: Path) -> dict[str, Facts]:
    files = cxx_files(roots)
    index = MutexIndex()
    texts: dict[Path, str] = {}
    for path in files:
        text = strip_comments(
            path.read_text(encoding="utf-8", errors="replace"))
        texts[path] = text
        index.scan(path, text)

    # Pass 1.5: which unqualified function names acquire a guard in
    # their body? Used to emit call facts only where they can matter.
    # Names defined more than once stay indexed (the merge unions the
    # may-acquire sets, over-approximating — safe for a cycle gate on a
    # tree whose method names are distinct per class).
    acquirer_names: set[str] = set()
    prelim: dict[Path, Facts] = {}
    for path in files:
        rel = path.relative_to(repo_root).as_posix() if path.is_relative_to(
            repo_root) else path.as_posix()
        prelim[path] = extract_file(path, rel, index, None)
        for a in prelim[path].acquisitions:
            acquirer_names.add(a.function.split("::")[-1])

    out: dict[str, Facts] = {}
    for path in files:
        rel = path.relative_to(repo_root).as_posix() if path.is_relative_to(
            repo_root) else path.as_posix()
        out[rel] = extract_file(path, rel, index, acquirer_names)
    return out


# ------------------------------------------------------------------ graph


class Graph:
    def __init__(self):
        # edge (a, b) -> witness "tu:line via function"
        self.edges: dict[tuple[str, str], str] = {}
        self.nodes: set[str] = set()

    def add(self, a: str, b: str, witness: str):
        self.nodes.add(a)
        self.nodes.add(b)
        self.edges.setdefault((a, b), witness)

    def cycles(self) -> list[list[str]]:
        """All elementary cycles reachable by DFS (first witness per
        back edge; enough to fail the gate and name the loop)."""
        adj: dict[str, list[str]] = {}
        for (a, b) in self.edges:
            adj.setdefault(a, []).append(b)
        for outs in adj.values():
            outs.sort()

        found: list[list[str]] = []
        seen_cycles: set[tuple[str, ...]] = set()
        color: dict[str, int] = {}
        stack: list[str] = []

        def dfs(u: str):
            color[u] = 1
            stack.append(u)
            for v in adj.get(u, []):
                if color.get(v, 0) == 0:
                    dfs(v)
                elif color.get(v) == 1:
                    i = stack.index(v)
                    cyc = stack[i:] + [v]
                    key = tuple(sorted(cyc[:-1]))
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        found.append(cyc)
            stack.pop()
            color[u] = 2

        for node in sorted(self.nodes):
            if color.get(node, 0) == 0:
                dfs(node)
        return found

    def dot(self, title: str) -> str:
        out = [f'digraph "{title}" {{',
               '  rankdir=LR;',
               '  node [shape=box, fontname="monospace", fontsize=10];',
               '  edge [fontname="monospace", fontsize=8];']
        cyc_edges: set[tuple[str, str]] = set()
        for cyc in self.cycles():
            for a, b in zip(cyc, cyc[1:]):
                cyc_edges.add((a, b))
        for node in sorted(self.nodes):
            out.append(f'  "{node}";')
        for (a, b), witness in sorted(self.edges.items()):
            attrs = f'label="{witness}"'
            if (a, b) in cyc_edges:
                attrs += ', color=red, penwidth=2'
            out.append(f'  "{a}" -> "{b}" [{attrs}];')
        out.append("}")
        return "\n".join(out) + "\n"


def build_graph(all_facts: dict[str, Facts]) -> Graph:
    graph = Graph()
    # Direct edges: held -> acquired, per acquisition site.
    for tu, facts in sorted(all_facts.items()):
        for a in facts.acquisitions:
            for h in a.held:
                if h == a.mutex:
                    continue  # re-entry is TSA's double-lock, not ordering
                graph.add(h, a.mutex, f"{tu}:{a.line} {a.function}")

    # Transitive closure over call facts: may_acquire(f) = mutexes f
    # acquires directly or via any callee (by unqualified name; the
    # union over same-named functions over-approximates safely).
    direct: dict[str, set[str]] = {}
    callees: dict[str, set[str]] = {}
    for facts in all_facts.values():
        for a in facts.acquisitions:
            direct.setdefault(a.function.split("::")[-1], set()).add(a.mutex)
        for c in facts.calls:
            callees.setdefault(c.function.split("::")[-1], set()).add(c.callee)
    may: dict[str, set[str]] = {f: set(ms) for f, ms in direct.items()}
    changed = True
    while changed:
        changed = False
        for f, cs in callees.items():
            acc = may.setdefault(f, set())
            before = len(acc)
            for g in cs:
                acc |= may.get(g, set())
            if len(acc) != before:
                changed = True
    for tu, facts in sorted(all_facts.items()):
        for c in facts.calls:
            for m in sorted(may.get(c.callee, set())):
                for h in c.held:
                    if h != m:
                        graph.add(h, m,
                                  f"{tu}:{c.line} {c.function} -> {c.callee}")
    return graph


# ---------------------------------------------------------------- drivers


def cmd_extract(args) -> int:
    repo_root = Path(args.repo_root).resolve()
    roots = [Path(r).resolve() for r in args.src]
    all_facts = extract_tree(roots, repo_root)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    count = 0
    for rel, facts in sorted(all_facts.items()):
        if not facts.acquisitions and not facts.calls:
            continue
        name = rel.replace("/", "__").replace(".", "_") + ".yaml"
        (out_dir / name).write_text(facts.dump(rel))
        count += 1
    print(f"lock_graph extract: {count} fact file(s) -> {out_dir}")
    return 0


def load_facts_dir(facts_dir: Path) -> dict[str, Facts]:
    out: dict[str, Facts] = {}
    for path in sorted(facts_dir.glob("*.yaml")):
        facts = parse_facts(path.read_text())
        tu = facts.acquisitions[0].tu if facts.acquisitions else (
            facts.calls[0].tu if facts.calls else path.stem)
        out[tu] = facts
    return out


def cmd_merge(args) -> int:
    facts_dir = Path(args.facts)
    if not facts_dir.is_dir():
        print(f"lock_graph merge: no facts directory {facts_dir}",
              file=sys.stderr)
        return 2
    all_facts = load_facts_dir(facts_dir)
    graph = build_graph(all_facts)
    if args.dot:
        Path(args.dot).write_text(graph.dot("kc lock order"))
    cycles = graph.cycles()
    print(f"lock_graph merge: {len(all_facts)} TU(s), "
          f"{len(graph.nodes)} lock(s), {len(graph.edges)} edge(s)")
    for (a, b), witness in sorted(graph.edges.items()):
        print(f"  {a} -> {b}   [{witness}]")
    if cycles:
        print(f"lock_graph: {len(cycles)} lock-order cycle(s) "
              "(potential deadlock):", file=sys.stderr)
        for cyc in cycles:
            print("  " + " -> ".join(cyc), file=sys.stderr)
        return 1
    print("lock_graph: cycle-free")
    return 0


def cmd_gate(args) -> int:
    """extract + merge in one shot, for the ctest entry: no facts
    directory to manage, exit 1 on any cycle."""
    repo_root = Path(args.repo_root).resolve()
    roots = [Path(r).resolve() for r in args.src]
    all_facts = {tu: facts for tu, facts in
                 extract_tree(roots, repo_root).items()
                 if facts.acquisitions or facts.calls}
    graph = build_graph(all_facts)
    if args.dot:
        Path(args.dot).write_text(graph.dot("kc lock order"))
    print(f"lock_graph gate: {len(all_facts)} TU(s), "
          f"{len(graph.nodes)} lock(s), {len(graph.edges)} edge(s)")
    for (a, b), witness in sorted(graph.edges.items()):
        print(f"  {a} -> {b}   [{witness}]")
    cycles = graph.cycles()
    if cycles:
        print(f"lock_graph: {len(cycles)} lock-order cycle(s) "
              "(potential deadlock):", file=sys.stderr)
        for cyc in cycles:
            print("  " + " -> ".join(cyc), file=sys.stderr)
        return 1
    print("lock_graph: cycle-free")
    return 0


def cmd_selftest(args) -> int:
    """The lock-order corpus must behave: bad fixture has a cycle, good
    fixture does not. Runs the heuristic frontend, so it works on any
    host; the clang-tidy plugin job re-asserts the same corpus with AST
    facts when available."""
    corpus = Path(args.corpus)
    bad = sorted((corpus / "bad").glob("lock_order*"))
    good = sorted((corpus / "good").glob("lock_order*"))
    if not bad or not good:
        print(f"lock_graph selftest: no lock_order fixtures in {corpus}",
              file=sys.stderr)
        return 1
    failures = 0
    for paths, want_cycle in ((bad, True), (good, False)):
        facts = extract_tree([p for p in paths], corpus)
        graph = build_graph(facts)
        cycles = graph.cycles()
        label = "bad" if want_cycle else "good"
        if bool(cycles) != want_cycle:
            print(f"FAIL: {label} lock_order fixtures: cycle={bool(cycles)} "
                  f"want {want_cycle}", file=sys.stderr)
            for (a, b), w in sorted(graph.edges.items()):
                print(f"    {a} -> {b} [{w}]", file=sys.stderr)
            failures += 1
    if failures == 0:
        print(f"lock_graph selftest: {len(bad) + len(good)} fixture(s) OK")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("extract", help="derive facts without a compiler")
    p.add_argument("--src", nargs="+", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--repo-root", default=".")
    p.set_defaults(fn=cmd_extract)

    p = sub.add_parser("merge", help="union facts, detect cycles, emit DOT")
    p.add_argument("--facts", required=True)
    p.add_argument("--dot", default=None)
    p.set_defaults(fn=cmd_merge)

    p = sub.add_parser("gate", help="extract + merge + fail on cycle")
    p.add_argument("--src", nargs="+", required=True)
    p.add_argument("--repo-root", default=".")
    p.add_argument("--dot", default=None)
    p.set_defaults(fn=cmd_gate)

    p = sub.add_parser("selftest", help="assert the lock_order corpus")
    p.add_argument("--corpus", required=True)
    p.set_defaults(fn=cmd_selftest)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
