#ifndef KC_TIDY_ATOMIC_RATIONALE_CHECK_H
#define KC_TIDY_ATOMIC_RATIONALE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::kc {

/// Every non-seq_cst memory order must carry a rationale comment on
/// the same line or within the three lines above — the AST-accurate
/// replacement for the retired kc_lint `memory-order` regex rule: a
/// reference through a namespace alias, a `using enum`, a constexpr
/// alias variable or a defaulted template argument still resolves to
/// the same enumerator declaration here.
class AtomicRationaleCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::kc

#endif  // KC_TIDY_ATOMIC_RATIONALE_CHECK_H
