#include "UnorderedEmitCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::kc {

namespace {

constexpr char kDefaultSinkRegex[] =
    "^(std::basic_ostream|std::operator<<|printf|fprintf|fputs|fwrite|"
    "kc::harness::|kc::mr::JobTrace|kc::svc::json)";

/// Spelled name of the unordered container `T` resolves to, or empty.
std::string unorderedContainerName(QualType T) {
  if (T.isNull())
    return {};
  const std::string Canon = T.getCanonicalType().getAsString();
  for (const char *Name :
       {"unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"}) {
    if (Canon.find(std::string("std::") + Name) != std::string::npos)
      return std::string("std::") + Name;
  }
  return {};
}

/// Qualified name of the function a match landed in, or empty.
std::string functionName(const FunctionDecl *FD) {
  if (FD == nullptr)
    return {};
  std::string Name = FD->getQualifiedNameAsString();
  // Strip inline-namespace noise so the regex and the call-graph keys
  // agree between declaration contexts.
  const std::string Anon = "(anonymous namespace)::";
  for (size_t Pos = Name.find(Anon); Pos != std::string::npos;
       Pos = Name.find(Anon))
    Name.erase(Pos, Anon.size());
  return Name;
}

}  // namespace

UnorderedEmitCheck::UnorderedEmitCheck(StringRef Name,
                                       ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SinkRegex(Options.get("SinkRegex", kDefaultSinkRegex)),
      MaxDepth(Options.get("MaxDepth", 6U)) {}

void UnorderedEmitCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "SinkRegex", SinkRegex);
  Options.store(Opts, "MaxDepth", MaxDepth);
}

void UnorderedEmitCheck::registerMatchers(MatchFinder *Finder) {
  // Iteration sites: range-for over a hashed container, or explicit
  // begin()/cbegin() on one (iterator-loop and <algorithm> forms).
  Finder->addMatcher(
      cxxForRangeStmt(forFunction(functionDecl().bind("iter-fn")),
                      unless(isExpansionInSystemHeader()))
          .bind("range"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
                        forFunction(functionDecl().bind("iter-fn")),
                        // range-for desugars into hidden begin()/end()
                        // calls; the cxxForRangeStmt matcher already
                        // owns those sites.
                        unless(hasAncestor(cxxForRangeStmt())),
                        unless(isExpansionInSystemHeader()))
          .bind("begin-call"),
      this);
  // Call-graph edges for the reachability pass.
  Finder->addMatcher(
      callExpr(callee(functionDecl().bind("callee")),
               forFunction(functionDecl().bind("caller")),
               unless(isExpansionInSystemHeader())),
      this);
}

void UnorderedEmitCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Caller = Result.Nodes.getNodeAs<FunctionDecl>("caller")) {
    if (const auto *Callee = Result.Nodes.getNodeAs<FunctionDecl>("callee")) {
      const std::string From = functionName(Caller);
      const std::string To = functionName(Callee);
      if (!From.empty() && !To.empty()) {
        Calls[From].insert(To);
        if (llvm::Regex(SinkRegex).match(To))
          DirectSinks.insert(From);
      }
    }
    return;
  }

  const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("iter-fn");
  std::string Container;
  SourceLocation Loc;
  if (const auto *Range = Result.Nodes.getNodeAs<CXXForRangeStmt>("range")) {
    if (const Expr *Init = Range->getRangeInit())
      Container = unorderedContainerName(Init->getType());
    Loc = Range->getBeginLoc();
  } else if (const auto *Begin =
                 Result.Nodes.getNodeAs<CXXMemberCallExpr>("begin-call")) {
    if (const Expr *Obj = Begin->getImplicitObjectArgument())
      Container = unorderedContainerName(Obj->getType());
    Loc = Begin->getBeginLoc();
  }
  if (Container.empty() || Fn == nullptr)
    return;
  Loc = SM.getExpansionLoc(Loc);
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc))
    return;
  Sites.push_back({functionName(Fn), Container, Loc});
}

void UnorderedEmitCheck::onEndOfTranslationUnit() {
  if (Sites.empty()) {
    Calls.clear();
    DirectSinks.clear();
    return;
  }
  // Forward reachability with bounded depth: a function emits if its
  // body calls a sink, or any callee (transitively) does. Bounding the
  // depth keeps huge TUs cheap and matches how shallow the repo's real
  // reporting helpers are.
  std::set<std::string> Emits = DirectSinks;
  for (unsigned Round = 0; Round < MaxDepth; ++Round) {
    bool Changed = false;
    for (const auto &[From, Tos] : Calls) {
      if (Emits.count(From) != 0U)
        continue;
      for (const std::string &To : Tos) {
        if (Emits.count(To) != 0U) {
          Emits.insert(From);
          Changed = true;
          break;
        }
      }
    }
    if (!Changed)
      break;
  }
  for (const IterationSite &Site : Sites) {
    if (Emits.count(Site.Function) == 0U)
      continue;
    diag(Site.Loc,
         "iteration over %0 in '%1', which reaches a report/trace sink: "
         "hash order is seed- and libstdc++-version-dependent, so the "
         "emitted artifact is nondeterministic; sort keys first or use an "
         "ordered container")
        << Site.Container << Site.Function;
  }
  Sites.clear();
  Calls.clear();
  DirectSinks.clear();
}

}  // namespace clang::tidy::kc
