// kc-lock-order: phase one of the cross-TU lock-order analysis.
//
// Walks every function definition tracking the set of kc::compat
// mutexes held (LockGuard/MutexLock scopes, std::lock_guard/
// unique_lock/scoped_lock over annotated members, KC_REQUIRES entry
// capabilities) and records, for each acquisition, which mutexes were
// already held — plus which functions are called under a lock. The
// facts are written as one YAML file per translation unit (option
// `FactsDir`); tools/analysis/lock_graph.py merges them into the
// global lock-order graph and fails CI on a cycle.
//
// Inversions visible within a single TU (f takes A then B, g takes B
// then A) are diagnosed directly so the fixture corpus and local runs
// get immediate findings without the merge step.
#ifndef KC_TIDY_LOCK_ORDER_CHECK_H
#define KC_TIDY_LOCK_ORDER_CHECK_H

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::kc {

class LockOrderCheck : public ClangTidyCheck {
 public:
  LockOrderCheck(StringRef Name, ClangTidyContext *Context);
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void onEndOfTranslationUnit() override;

 private:
  struct Acquisition {
    std::string Function;
    std::string Mutex;
    std::vector<std::string> Held;
    std::string File;
    unsigned Line = 0;
    SourceLocation Loc;
  };
  struct CallFact {
    std::string Function;
    std::string Callee;
    std::vector<std::string> Held;
    std::string File;
    unsigned Line = 0;
  };

  void walkFunction(const FunctionDecl *FD, ASTContext &Ctx,
                    const SourceManager &SM);

  const std::string FactsDir;
  const std::string RepoRoot;
  std::string MainFile;
  std::vector<Acquisition> Acquisitions;
  std::vector<CallFact> Calls;
};

}  // namespace clang::tidy::kc

#endif  // KC_TIDY_LOCK_ORDER_CHECK_H
