// Shared helpers for the KC clang-tidy checks.
//
// Kept header-only and deliberately boring: the checks target every
// clang-tidy from 14 up, so only bread-and-butter APIs (SourceManager
// buffer access, AST node inspection) are used here.
#ifndef KC_TIDY_UTILS_H
#define KC_TIDY_UTILS_H

#include <cstring>
#include <string>

#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::kc {

/// True when `Loc`'s line, or one of the three lines above it, carries
/// a comment — the repo's "rationale comment in range" contract shared
/// with tools/kc_lint.py. Works on the expansion location so macro
/// uses are attributed to the line the developer wrote.
inline bool hasNearbyComment(const SourceManager &SM, SourceLocation Loc) {
  Loc = SM.getExpansionLoc(Loc);
  bool Invalid = false;
  StringRef Buffer = SM.getBufferData(SM.getFileID(Loc), &Invalid);
  if (Invalid)
    return true;  // unreadable buffer: stay permissive
  unsigned Line = SM.getExpansionLineNumber(Loc);  // 1-based

  llvm::SmallVector<StringRef, 0> Lines;
  Buffer.split(Lines, '\n');
  if (Line == 0 || Line > Lines.size())
    return true;
  const unsigned First = Line > 3 ? Line - 3 : 1;
  for (unsigned I = First; I <= Line; ++I) {
    StringRef Text = Lines[I - 1].trim();
    if (I == Line) {
      if (Text.contains("//") || Text.contains("/*") || Text.contains("*/"))
        return true;
      continue;
    }
    if (Text.startswith("//") || Text.startswith("/*") ||
        Text.startswith("*") || Text.endswith("*/"))
      return true;
  }
  return false;
}

/// Repo-style canonical name for a mutex member: `Owner::member` with
/// the `kc::`, `compat::` and anonymous-namespace noise stripped, so
/// the facts merge tool and the DOT artifact stay readable.
inline std::string canonicalMemberName(const FieldDecl *Field) {
  std::string Owner;
  if (const auto *Record = dyn_cast<RecordDecl>(Field->getParent()))
    Owner = Record->getQualifiedNameAsString();
  std::string Name = Owner + "::" + Field->getNameAsString();
  static const char *Prefixes[] = {"kc::", "(anonymous namespace)::"};
  bool Stripped = true;
  while (Stripped) {
    Stripped = false;
    for (const char *Prefix : Prefixes) {
      StringRef Ref(Name);
      if (Ref.startswith(Prefix)) {
        Name = Ref.drop_front(strlen(Prefix)).str();
        Stripped = true;
      }
    }
  }
  return Name;
}

/// Normalized path check: does `Path` (as spelled by the compilation)
/// contain the directory fragment `Dir` (e.g. "src/geom/")?
inline bool pathContainsDir(StringRef Path, StringRef Dir) {
  std::string Normalized = Path.str();
  for (char &C : Normalized)
    if (C == '\\')
      C = '/';
  return StringRef(Normalized).contains(Dir);
}

}  // namespace clang::tidy::kc

#endif  // KC_TIDY_UTILS_H
