#ifndef KC_TIDY_RAW_KERNEL_CHECK_H
#define KC_TIDY_RAW_KERNEL_CHECK_H

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::kc {

/// Bans calls into geom::KernelTable (entry points and table-member
/// function pointers) outside the allowed directories, so no new code
/// can bypass the DistanceOracle budget/cancel gates. See the .cpp for
/// the rationale.
class RawKernelCheck : public ClangTidyCheck {
 public:
  RawKernelCheck(StringRef Name, ClangTidyContext *Context);
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  const std::string AllowedDirs;  ///< ';'-separated dir fragments
};

}  // namespace clang::tidy::kc

#endif  // KC_TIDY_RAW_KERNEL_CHECK_H
