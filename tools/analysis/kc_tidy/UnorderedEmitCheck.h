#ifndef KC_TIDY_UNORDERED_EMIT_CHECK_H
#define KC_TIDY_UNORDERED_EMIT_CHECK_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang/Basic/SourceLocation.h"

namespace clang::tidy::kc {

/// Flags iteration over std::unordered_* containers in functions that
/// can reach a report/trace sink (stream output, harness reporting,
/// machine-readable emitters) through the per-TU call graph. Hash
/// iteration order is libstdc++-version- and seed-dependent; anything
/// it feeds into an artifact breaks the repo's determinism contract.
/// This replaces the retired kc_lint `unordered-iter` regex rule,
/// which could only flag iteration textually inside reporting files —
/// a helper one call away was invisible to it.
class UnorderedEmitCheck : public ClangTidyCheck {
 public:
  UnorderedEmitCheck(StringRef Name, ClangTidyContext *Context);
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void onEndOfTranslationUnit() override;

 private:
  /// Regex naming sink callees (qualified names). Matched functions
  /// count as emission points; reachability is computed from callers.
  const std::string SinkRegex;
  /// Extra hops allowed between an iterating function and a sink.
  const unsigned MaxDepth;

  struct IterationSite {
    std::string Function;  ///< qualified name of the iterating function
    std::string Container;  ///< spelled container type
    SourceLocation Loc;
  };
  std::vector<IterationSite> Sites;
  /// caller qualified-name -> callee qualified-names (per TU).
  std::map<std::string, std::set<std::string>> Calls;
  /// Functions whose body directly calls a sink-matching callee.
  std::set<std::string> DirectSinks;
};

}  // namespace clang::tidy::kc

#endif  // KC_TIDY_UNORDERED_EMIT_CHECK_H
