#include "LockOrderCheck.h"

#include <fstream>
#include <set>

#include "KCTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/StmtCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"

using namespace clang::ast_matchers;

namespace clang::tidy::kc {

namespace {

/// The scoped-guard types whose construction means "acquire arg0 until
/// end of scope". The kc::compat wrappers are the repo idiom; the std
/// types are tracked too so a TU that bypasses the wrappers still
/// contributes ordering facts instead of a blind spot.
bool isGuardRecord(const CXXRecordDecl *Record) {
  if (Record == nullptr)
    return false;
  const std::string Name = Record->getQualifiedNameAsString();
  return Name == "kc::compat::LockGuard" || Name == "kc::compat::MutexLock" ||
         Name == "std::lock_guard" || Name == "std::unique_lock" ||
         Name == "std::scoped_lock";
}

/// Resolves a mutex expression (the guard's constructor argument or a
/// KC_REQUIRES capability expression) to the FieldDecl of the mutex
/// member, looking through parens, casts, implicit this, and unary &.
const FieldDecl *mutexField(const Expr *E) {
  if (E == nullptr)
    return nullptr;
  E = E->IgnoreParenImpCasts();
  if (const auto *Unary = dyn_cast<UnaryOperator>(E))
    return mutexField(Unary->getSubExpr());
  if (const auto *Member = dyn_cast<MemberExpr>(E))
    return dyn_cast<FieldDecl>(Member->getMemberDecl());
  return nullptr;
}

/// One held lock: the canonical mutex name plus the guard variable (so
/// `lock.unlock()` can release it mid-scope; null for KC_REQUIRES
/// entry capabilities and bare Mutex::lock() calls).
struct Held {
  std::string Mutex;
  const VarDecl *Guard = nullptr;
  const FieldDecl *Field = nullptr;
};

}  // namespace

LockOrderCheck::LockOrderCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      FactsDir(Options.get("FactsDir", "")),
      RepoRoot(Options.get("RepoRoot", "")) {}

void LockOrderCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "FactsDir", FactsDir);
  Options.store(Opts, "RepoRoot", RepoRoot);
}

void LockOrderCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      functionDecl(isDefinition(), hasBody(compoundStmt()),
                   unless(isExpansionInSystemHeader()))
          .bind("fn"),
      this);
}

void LockOrderCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *FD = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (FD == nullptr || !FD->doesThisDeclarationHaveABody())
    return;
  const SourceManager &SM = *Result.SourceManager;
  if (MainFile.empty()) {
    if (const FileEntry *Entry = SM.getFileEntryForID(SM.getMainFileID())) {
      MainFile = Entry->getName().str();
      if (!RepoRoot.empty()) {
        StringRef Ref(MainFile);
        if (Ref.startswith(RepoRoot))
          MainFile = Ref.drop_front(RepoRoot.size()).ltrim('/').str();
      }
    }
  }
  walkFunction(FD, *Result.Context, SM);
}

void LockOrderCheck::walkFunction(const FunctionDecl *FD, ASTContext &Ctx,
                                  const SourceManager &SM) {
  std::string Function = FD->getQualifiedNameAsString();
  {
    StringRef Ref(Function);
    if (Ref.startswith("kc::"))
      Function = Ref.drop_front(4).str();
  }

  std::vector<Held> Entry;
  // KC_REQUIRES(m): m is held for the whole body. Negated capabilities
  // (!m) assert absence and contribute nothing.
  if (const auto *Attr = FD->getAttr<RequiresCapabilityAttr>()) {
    for (const Expr *Arg : Attr->args()) {
      if (const auto *Unary = dyn_cast<UnaryOperator>(Arg->IgnoreParens()))
        if (Unary->getOpcode() == UO_LNot)
          continue;
      if (const FieldDecl *Field = mutexField(Arg))
        Entry.push_back({canonicalMemberName(Field), nullptr, Field});
    }
  }

  // Recursive scope walk. CompoundStmt boundaries pop the guards
  // declared inside them; lambda bodies restart with an empty held set
  // (the closure runs later, not under the locks of its birthplace).
  struct Walker {
    LockOrderCheck &Check;
    const SourceManager &SM;
    std::string Function;
    std::string File;

    void record(const std::string &Mutex, const std::vector<Held> &HeldNow,
                SourceLocation Loc) {
      Acquisition A;
      A.Function = Function;
      A.Mutex = Mutex;
      std::set<std::string> Uniq;
      for (const Held &H : HeldNow)
        Uniq.insert(H.Mutex);
      A.Held.assign(Uniq.begin(), Uniq.end());
      A.File = File;
      A.Line = SM.getExpansionLineNumber(Loc);
      A.Loc = Loc;
      Check.Acquisitions.push_back(std::move(A));
    }

    void walk(const Stmt *S, std::vector<Held> &HeldNow) {
      if (S == nullptr)
        return;

      if (const auto *Lambda = dyn_cast<LambdaExpr>(S)) {
        std::vector<Held> Fresh;
        walk(Lambda->getBody(), Fresh);
        return;
      }

      if (const auto *Compound = dyn_cast<CompoundStmt>(S)) {
        const std::size_t Mark = HeldNow.size();
        for (const Stmt *Child : Compound->body())
          walk(Child, HeldNow);
        if (HeldNow.size() > Mark)
          HeldNow.resize(Mark);
        return;
      }

      if (const auto *DS = dyn_cast<DeclStmt>(S)) {
        for (const Decl *D : DS->decls()) {
          const auto *VD = dyn_cast<VarDecl>(D);
          if (VD == nullptr)
            continue;
          const CXXRecordDecl *Record =
              VD->getType().getCanonicalType()->getAsCXXRecordDecl();
          if (!isGuardRecord(Record)) {
            if (const Expr *Init = VD->getInit())
              walk(Init, HeldNow);
            continue;
          }
          const auto *Construct =
              dyn_cast_or_null<CXXConstructExpr>(VD->getInit());
          if (Construct == nullptr || Construct->getNumArgs() == 0)
            continue;
          if (const FieldDecl *Field = mutexField(Construct->getArg(0))) {
            const std::string Mutex = canonicalMemberName(Field);
            record(Mutex, HeldNow, VD->getBeginLoc());
            HeldNow.push_back({Mutex, VD, Field});
          }
        }
        return;
      }

      if (const auto *Call = dyn_cast<CXXMemberCallExpr>(S)) {
        const auto *Method = Call->getMethodDecl();
        const std::string Name =
            Method != nullptr ? Method->getNameAsString() : "";
        const Expr *Object =
            Call->getImplicitObjectArgument()->IgnoreParenImpCasts();
        const auto *ObjRef = dyn_cast<DeclRefExpr>(Object);
        const VarDecl *ObjVar =
            ObjRef != nullptr ? dyn_cast<VarDecl>(ObjRef->getDecl()) : nullptr;
        if (Name == "unlock" && ObjVar != nullptr) {
          // Guard-var mid-scope unlock releases; Mutex::unlock() on a
          // member (no guard var) releases the matching bare hold.
          for (auto It = HeldNow.begin(); It != HeldNow.end(); ++It) {
            if (It->Guard == ObjVar) {
              HeldNow.erase(It);
              break;
            }
          }
        } else if (Name == "unlock") {
          if (const FieldDecl *Field = mutexField(Object)) {
            for (auto It = HeldNow.rbegin(); It != HeldNow.rend(); ++It) {
              if (It->Field == Field && It->Guard == nullptr) {
                HeldNow.erase(std::next(It).base());
                break;
              }
            }
          }
        } else if (Name == "lock") {
          bool Reacquired = false;
          if (ObjVar != nullptr) {
            const CXXRecordDecl *Record =
                ObjVar->getType().getCanonicalType()->getAsCXXRecordDecl();
            if (isGuardRecord(Record)) {
              // MutexLock::lock() after an early unlock: re-resolve
              // the mutex from the guard's construction.
              if (const auto *Construct = dyn_cast_or_null<CXXConstructExpr>(
                      ObjVar->getInit())) {
                if (Construct->getNumArgs() > 0) {
                  if (const FieldDecl *Field =
                          mutexField(Construct->getArg(0))) {
                    const std::string Mutex = canonicalMemberName(Field);
                    record(Mutex, HeldNow, Call->getBeginLoc());
                    HeldNow.push_back({Mutex, ObjVar, Field});
                    Reacquired = true;
                  }
                }
              }
            }
          }
          if (!Reacquired) {
            // Bare Mutex::lock() on a member: held until unlock() or
            // end of function.
            if (const FieldDecl *Field = mutexField(Object)) {
              const std::string Mutex = canonicalMemberName(Field);
              record(Mutex, HeldNow, Call->getBeginLoc());
              HeldNow.push_back({Mutex, nullptr, Field});
            }
          }
        } else if (Method != nullptr && !HeldNow.empty()) {
          std::string Callee = Method->getQualifiedNameAsString();
          const StringRef Ref(Callee);
          if (!Ref.startswith("std::") && !Ref.startswith("__")) {
            if (Ref.startswith("kc::"))
              Callee = Callee.substr(4);
            CallFact C;
            C.Function = Function;
            C.Callee = Callee;
            std::set<std::string> Uniq;
            for (const Held &H : HeldNow)
              Uniq.insert(H.Mutex);
            C.Held.assign(Uniq.begin(), Uniq.end());
            C.File = File;
            C.Line = SM.getExpansionLineNumber(Call->getBeginLoc());
            Check.Calls.push_back(std::move(C));
          }
        }
        for (const Stmt *Child : Call->children())
          walk(Child, HeldNow);
        return;
      }

      if (const auto *Call = dyn_cast<CallExpr>(S)) {
        if (const FunctionDecl *Callee = Call->getDirectCallee();
            Callee != nullptr && !HeldNow.empty()) {
          std::string Name = Callee->getQualifiedNameAsString();
          StringRef Ref(Name);
          if (!Ref.startswith("std::") && !Ref.startswith("__") &&
              !Ref.startswith("operator")) {
            if (Ref.startswith("kc::"))
              Name = Ref.drop_front(4).str();
            CallFact C;
            C.Function = Function;
            C.Callee = Name;
            std::set<std::string> Uniq;
            for (const Held &H : HeldNow)
              Uniq.insert(H.Mutex);
            C.Held.assign(Uniq.begin(), Uniq.end());
            C.File = File;
            C.Line = SM.getExpansionLineNumber(Call->getBeginLoc());
            Check.Calls.push_back(std::move(C));
          }
        }
        for (const Stmt *Child : Call->children())
          walk(Child, HeldNow);
        return;
      }

      for (const Stmt *Child : S->children())
        walk(Child, HeldNow);
    }
  };

  Walker W{*this, SM, Function, MainFile};
  std::vector<Held> HeldNow = Entry;
  W.walk(FD->getBody(), HeldNow);
}

void LockOrderCheck::onEndOfTranslationUnit() {
  // Intra-TU inversion diagnostics: edge (A, B) and edge (B, A) both
  // witnessed in this TU is already a deadlock candidate no merge step
  // is needed to see.
  std::map<std::pair<std::string, std::string>, const Acquisition *> Edges;
  for (const Acquisition &A : Acquisitions)
    for (const std::string &H : A.Held)
      if (H != A.Mutex)
        Edges.try_emplace({H, A.Mutex}, &A);
  for (const auto &[Edge, Witness] : Edges) {
    const auto Reverse = Edges.find({Edge.second, Edge.first});
    if (Reverse == Edges.end() || Edge.first >= Edge.second)
      continue;  // report each inverted pair once, from one side
    diag(Witness->Loc,
         "lock-order inversion within this TU: '%0' acquired while "
         "holding '%1' here, but '%2' also acquires them in the "
         "opposite order; a global cycle means deadlock")
        << Edge.second << Edge.first << Reverse->second->Function;
    diag(Reverse->second->Loc, "the opposite-order acquisition is here",
         DiagnosticIDs::Note);
  }

  if (FactsDir.empty() || MainFile.empty())
    return;
  if (Acquisitions.empty() && Calls.empty())
    return;
  if (llvm::sys::fs::create_directories(FactsDir))
    return;

  std::string Stem = MainFile;
  for (char &C : Stem)
    if (C == '/' || C == '\\' || C == '.')
      C = '_';
  llvm::SmallString<256> Path(FactsDir);
  llvm::sys::path::append(Path, Stem + ".yaml");

  std::ofstream Out(Path.str().str());
  if (!Out)
    return;
  auto Join = [](const std::vector<std::string> &Items) {
    std::string Result;
    for (const std::string &Item : Items) {
      if (!Result.empty())
        Result += "|";
      Result += Item;
    }
    return Result;
  };
  Out << "tu: " << MainFile << "\n";
  Out << "acquisitions:\n";
  for (const Acquisition &A : Acquisitions)
    Out << "  - {function: \"" << A.Function << "\", mutex: \"" << A.Mutex
        << "\", held: \"" << Join(A.Held) << "\", line: " << A.Line << "}\n";
  Out << "calls:\n";
  for (const CallFact &C : Calls)
    Out << "  - {function: \"" << C.Function << "\", callee: \"" << C.Callee
        << "\", held: \"" << Join(C.Held) << "\", line: " << C.Line << "}\n";

  Acquisitions.clear();
  Calls.clear();
}

}  // namespace clang::tidy::kc
