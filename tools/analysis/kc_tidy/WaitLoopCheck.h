#ifndef KC_TIDY_WAIT_LOOP_CHECK_H
#define KC_TIDY_WAIT_LOOP_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::kc {

/// Every kc::compat::CondVar wait must sit inside a loop whose exit
/// condition reads a KC_GUARDED_BY member of the mutex held across the
/// wait. A wait outside a loop is a lost-wakeup/spurious-wakeup bug;
/// a loop whose condition reads unguarded state races the notifier.
/// The repo writes predicate waits as explicit while loops by design
/// (see compat/thread_safety.hpp), so this check closes the loop: the
/// explicit form is now enforced, not just enabled.
class WaitLoopCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::kc

#endif  // KC_TIDY_WAIT_LOOP_CHECK_H
