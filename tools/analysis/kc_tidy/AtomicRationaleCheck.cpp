#include "AtomicRationaleCheck.h"

#include "KCTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::kc {

void AtomicRationaleCheck::registerMatchers(MatchFinder *Finder) {
  // Both spellings families resolve to named declarations:
  //   - C++11 libstdc++/libc++: enumerators of enum std::memory_order
  //     (qualified std::memory_order_relaxed, ...);
  //   - C++20: enum class std::memory_order with enumerators
  //     (std::memory_order::relaxed) plus the inline constexpr
  //     compatibility variables (std::memory_order_relaxed).
  // Matching the declaration, not the token, is the whole point: an
  // alias (`constexpr auto kOrder = std::memory_order_relaxed`), a
  // `using std::memory_order_relaxed`, or a macro-wrapped argument
  // still reference the same decl. seq_cst needs no rationale.
  Finder->addMatcher(
      declRefExpr(
          to(namedDecl(hasAnyName(
              "::std::memory_order_relaxed", "::std::memory_order_acquire",
              "::std::memory_order_release", "::std::memory_order_acq_rel",
              "::std::memory_order_consume", "::std::memory_order::relaxed",
              "::std::memory_order::acquire", "::std::memory_order::release",
              "::std::memory_order::acq_rel",
              "::std::memory_order::consume"))),
          unless(isExpansionInSystemHeader()))
          .bind("weak-order"),
      this);
}

void AtomicRationaleCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Ref = Result.Nodes.getNodeAs<DeclRefExpr>("weak-order");
  if (Ref == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = SM.getExpansionLoc(Ref->getBeginLoc());
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc))
    return;
  if (hasNearbyComment(SM, Loc))
    return;
  diag(Loc,
       "'%0' without a rationale comment; say why the weaker ordering is "
       "sound (same line or the 3 lines above)")
      << Ref->getDecl()->getNameAsString();
}

}  // namespace clang::tidy::kc
