#include "WaitLoopCheck.h"

#include "KCTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::kc {

namespace {

/// Collects whether `S` (an expression tree) reads any member that
/// carries a GuardedByAttr. When `Mutex` is non-null, only members
/// guarded by that specific mutex field count; when the guarded-by
/// argument cannot be resolved to a field, any guarded member counts
/// (permissive on exotic attribute expressions, strict on the repo
/// idiom).
bool readsGuardedMember(const Stmt *S, const FieldDecl *Mutex) {
  if (S == nullptr)
    return false;
  if (const auto *Member = dyn_cast<MemberExpr>(S)) {
    if (const auto *Field = dyn_cast<FieldDecl>(Member->getMemberDecl())) {
      if (const auto *Attr = Field->getAttr<GuardedByAttr>()) {
        if (Mutex == nullptr)
          return true;
        const Expr *Arg = Attr->getArg()->IgnoreParenImpCasts();
        const auto *GuardMember = dyn_cast<MemberExpr>(Arg);
        const FieldDecl *GuardField =
            GuardMember != nullptr
                ? dyn_cast<FieldDecl>(GuardMember->getMemberDecl())
                : nullptr;
        if (GuardField == nullptr || GuardField == Mutex)
          return true;
      }
    }
  }
  for (const Stmt *Child : S->children())
    if (readsGuardedMember(Child, Mutex))
      return true;
  return false;
}

/// The mutex field a guard variable (MutexLock/unique_lock) was
/// constructed over, or null.
const FieldDecl *guardMutexField(const Expr *LockArg) {
  if (LockArg == nullptr)
    return nullptr;
  LockArg = LockArg->IgnoreParenImpCasts();
  const auto *Ref = dyn_cast<DeclRefExpr>(LockArg);
  if (Ref == nullptr)
    return nullptr;
  const auto *Var = dyn_cast<VarDecl>(Ref->getDecl());
  if (Var == nullptr)
    return nullptr;
  const auto *Construct = dyn_cast_or_null<CXXConstructExpr>(Var->getInit());
  if (Construct == nullptr || Construct->getNumArgs() == 0)
    return nullptr;
  const Expr *Arg = Construct->getArg(0)->IgnoreParenImpCasts();
  if (const auto *Member = dyn_cast<MemberExpr>(Arg))
    return dyn_cast<FieldDecl>(Member->getMemberDecl());
  return nullptr;
}

}  // namespace

void WaitLoopCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("wait", "wait_for", "wait_until"),
                               ofClass(hasName("::kc::compat::CondVar")))),
          unless(isExpansionInSystemHeader()))
          .bind("wait"),
      this);
}

void WaitLoopCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Wait = Result.Nodes.getNodeAs<CXXMemberCallExpr>("wait");
  if (Wait == nullptr)
    return;
  ASTContext &Ctx = *Result.Context;
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = SM.getExpansionLoc(Wait->getBeginLoc());

  // The mutex held across the wait: resolved from the MutexLock
  // argument's construction.
  const FieldDecl *Mutex =
      Wait->getNumArgs() > 0 ? guardMutexField(Wait->getArg(0)) : nullptr;

  // Walk up to the nearest enclosing loop, stopping at the function
  // (or lambda) boundary.
  DynTypedNode Node = DynTypedNode::create(*static_cast<const Stmt *>(Wait));
  const Stmt *Loop = nullptr;
  for (int Depth = 0; Depth < 64; ++Depth) {
    const auto Parents = Ctx.getParents(Node);
    if (Parents.empty())
      break;
    Node = Parents[0];
    if (const Stmt *S = Node.get<Stmt>()) {
      if (isa<WhileStmt>(S) || isa<DoStmt>(S) || isa<ForStmt>(S) ||
          isa<CXXForRangeStmt>(S)) {
        Loop = S;
        break;
      }
      if (isa<LambdaExpr>(S))
        break;
    } else if (Node.get<FunctionDecl>() != nullptr) {
      break;
    }
  }

  if (Loop == nullptr) {
    diag(Loc,
         "CondVar wait outside a loop: spurious wakeups and lost "
         "notifications make a single wait incorrect; re-check the "
         "guarded predicate in a while loop");
    return;
  }

  // The loop condition must re-read guarded state. A condition-less
  // `for (;;)` is accepted when some `if` inside the loop body reads a
  // guarded member (the break-based idiom); anything else races the
  // notifier or spins on unguarded state.
  const Expr *Cond = nullptr;
  if (const auto *While = dyn_cast<WhileStmt>(Loop))
    Cond = While->getCond();
  else if (const auto *Do = dyn_cast<DoStmt>(Loop))
    Cond = Do->getCond();
  else if (const auto *For = dyn_cast<ForStmt>(Loop))
    Cond = For->getCond();

  if (Cond != nullptr && readsGuardedMember(Cond, Mutex))
    return;

  if (Cond == nullptr) {
    // for(;;) { ... if (guarded) break/continue ...; cv.wait(lock); }
    struct IfScan {
      const FieldDecl *Mutex;
      bool Found = false;
      void walk(const Stmt *S) {
        if (S == nullptr || Found)
          return;
        if (const auto *If = dyn_cast<IfStmt>(S))
          if (readsGuardedMember(If->getCond(), Mutex)) {
            Found = true;
            return;
          }
        for (const Stmt *Child : S->children())
          walk(Child);
      }
    };
    IfScan Scan{Mutex};
    Scan.walk(Loop);
    if (Scan.Found)
      return;
  }

  diag(Loc,
       "CondVar wait in a loop whose condition does not read a "
       "KC_GUARDED_BY member of the held mutex; the predicate this wait "
       "depends on is either unguarded (races the notifier) or not "
       "re-checked (spurious wakeup bug)");
}

}  // namespace clang::tidy::kc
