//===--- KCTidyModule.cpp - project-specific clang-tidy checks -----------===//
//
// Out-of-tree clang-tidy module for the k-center repo. Loaded with
//   clang-tidy -load=libKCTidyModule.so -checks='kc-*' ...
// The checks encode invariants the generic clang-tidy catalogue cannot
// express: the repo's determinism contract, its DistanceOracle budget
// gating, and the cross-TU lock-order facts consumed by
// tools/analysis/lock_graph.py.
//
//===----------------------------------------------------------------------===//

#include "AtomicRationaleCheck.h"
#include "LockOrderCheck.h"
#include "RawKernelCheck.h"
#include "UnorderedEmitCheck.h"
#include "WaitLoopCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {
namespace kc {

class KCTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<LockOrderCheck>("kc-lock-order");
    Factories.registerCheck<RawKernelCheck>("kc-raw-kernel");
    Factories.registerCheck<AtomicRationaleCheck>("kc-atomic-rationale");
    Factories.registerCheck<WaitLoopCheck>("kc-wait-loop");
    Factories.registerCheck<UnorderedEmitCheck>("kc-unordered-emit");
  }
};

}  // namespace kc

static ClangTidyModuleRegistry::Add<kc::KCTidyModule> X(
    "kc-module", "Adds the k-center project checks (kc-*).");

// Anchor the module into the plugin so -load keeps the registration.
volatile int KCTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
