// kc-raw-kernel: the distance-kernel engine is reachable only through
// DistanceOracle.
//
// Every scan that goes through the oracle is gated: budget odometer,
// chunk-granular cancellation, counter attribution, spatial pruning
// with the bit-identical fallback. A call straight into the
// geom::KernelTable function pointers (or the table accessors
// active_kernels()/kernels_for()) bypasses all of it, so new code
// outside src/geom/ must not make one. The kernel equivalence tests
// and the microbenchmarks measure the tables themselves and are
// allowed (tests/, bench/), as is the engine's own home (src/geom/).
//
// AST-grounded where the old filename lint could not be: a call
// through a typedef'd table reference, a `using kc::simd::...`
// alias, or a macro still resolves to the same FieldDecl / function.
#include "RawKernelCheck.h"

#include "KCTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::kc {

RawKernelCheck::RawKernelCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedDirs(Options.get("AllowedDirs", "src/geom/;tests/;bench/")) {}

void RawKernelCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedDirs", AllowedDirs);
}

void RawKernelCheck::registerMatchers(MatchFinder *Finder) {
  // The two table accessors.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::kc::simd::active_kernels",
                                              "::kc::simd::kernels_for"))))
          .bind("accessor"),
      this);
  // A call through any KernelTable function-pointer member: the callee
  // expression contains a member access of a KernelTable field
  // (directly for `table.argmax(...)`, through an array subscript for
  // `table.pair[metric](...)`).
  const auto TableMember = memberExpr(member(fieldDecl(hasParent(
      recordDecl(hasName("::kc::simd::KernelTable"))))));
  Finder->addMatcher(
      callExpr(callee(expr(anyOf(TableMember, hasDescendant(TableMember)))))
          .bind("table-call"),
      this);
}

void RawKernelCheck::check(const MatchFinder::MatchResult &Result) {
  const Expr *Call = Result.Nodes.getNodeAs<Expr>("accessor");
  const bool Accessor = Call != nullptr;
  if (Call == nullptr)
    Call = Result.Nodes.getNodeAs<Expr>("table-call");
  if (Call == nullptr)
    return;

  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = SM.getExpansionLoc(Call->getBeginLoc());
  if (Loc.isInvalid() || SM.isInSystemHeader(Loc))
    return;
  const StringRef File = SM.getFilename(Loc);
  StringRef Dirs(AllowedDirs);
  while (!Dirs.empty()) {
    auto [Head, Tail] = Dirs.split(';');
    if (!Head.empty() && pathContainsDir(File, Head))
      return;
    Dirs = Tail;
  }

  if (Accessor)
    diag(Loc, "raw kernel-table access outside the engine: "
              "active_kernels()/kernels_for() bypasses the DistanceOracle "
              "budget/cancel gates; route the scan through the oracle");
  else
    diag(Loc, "direct KernelTable kernel call outside the engine: this "
              "bypasses the DistanceOracle budget/cancel gates; route the "
              "scan through the oracle");
}

}  // namespace clang::tidy::kc
