// Concurrent Solver instances sharing one execution backend: with the
// work-stealing scheduler, two jobs submitted from different threads
// interleave across the pool's workers (TaskGroups isolate their
// completion and errors) — and every simulated metric must still be
// bit-identical to a sequential-backend run of the same request, per
// the backend-invariance contract.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "test_util.hpp"

namespace kc {
namespace {

struct Job {
  const char* algorithm;
  std::size_t k;
  std::uint64_t seed;
};

api::SolveRequest request_for(const PointSet& data, const Job& job) {
  api::SolveRequest request;
  request.points = &data;
  request.k = job.k;
  request.algorithm = job.algorithm;
  request.seed = job.seed;
  request.exec.machines = 16;
  return request;
}

TEST(ConcurrentSolvers, TwoThreadsOneBackendBitIdenticalToSequential) {
  const PointSet data = test::small_gaussian_instance(16, 2'000, 77);
  const Job jobs[2] = {{"mrg", 16, 5}, {"eim", 8, 9}};

  // Sequential-backend references, one at a time.
  std::vector<api::SolveReport> want;
  for (const Job& job : jobs) {
    api::SolveRequest request = request_for(data, job);
    api::Solver solver;
    want.push_back(solver.solve(request));
  }

  // Both jobs at once, from different threads, on one shared pool.
  // Several repetitions so thread interleavings actually vary.
  const auto backend = exec::make_backend(exec::BackendKind::ThreadPool, 4);
  for (int repetition = 0; repetition < 5; ++repetition) {
    std::vector<api::SolveReport> got(2);
    std::vector<std::thread> threads;
    for (int j = 0; j < 2; ++j) {
      threads.emplace_back([&, j] {
        api::SolveRequest request = request_for(data, jobs[j]);
        request.exec.backend = backend;
        api::Solver solver;
        got[static_cast<std::size_t>(j)] = solver.solve(request);
      });
    }
    for (auto& thread : threads) thread.join();

    for (int j = 0; j < 2; ++j) {
      SCOPED_TRACE(std::string(jobs[j].algorithm) + " rep " +
                   std::to_string(repetition));
      const auto& w = want[static_cast<std::size_t>(j)];
      const auto& g = got[static_cast<std::size_t>(j)];
      EXPECT_EQ(g.centers, w.centers);
      EXPECT_EQ(g.value, w.value);
      EXPECT_EQ(g.radius_comparable, w.radius_comparable);
      EXPECT_EQ(g.iterations, w.iterations);
      EXPECT_EQ(g.rounds, w.rounds);
      EXPECT_EQ(g.dist_evals, w.dist_evals);
      EXPECT_EQ(g.backend, "threadpool");
    }
  }
}

TEST(ConcurrentSolvers, ManySmallJobsFromManyThreadsAllCorrect) {
  const PointSet data = test::small_gaussian_instance(8, 250, 78);
  api::SolveRequest reference;
  reference.points = &data;
  reference.k = 8;
  reference.algorithm = "mrg";
  reference.seed = 13;
  reference.exec.machines = 8;
  api::Solver reference_solver;
  const api::SolveReport want = reference_solver.solve(reference);

  const auto backend = exec::make_backend(exec::BackendKind::ThreadPool, 4);
  constexpr int kThreads = 6;
  std::vector<std::vector<index_t>> centers(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        api::SolveRequest request = reference;
        request.exec.backend = backend;
        api::Solver solver;
        centers[static_cast<std::size_t>(t)] = solver.solve(request).centers;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(centers[static_cast<std::size_t>(t)], want.centers)
        << "thread " << t;
  }
}

}  // namespace
}  // namespace kc
