// Additional edge-case and property coverage across modules: failure
// injection, degenerate geometries, and accounting invariants that the
// per-module suites do not exercise.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "cli/args.hpp"
#include "data/loader.hpp"
#include "harness/experiment.hpp"
#include "harness/paper_ref.hpp"
#include "test_util.hpp"

namespace kc {
namespace {

// ------------------------------------------------------- degenerate data

TEST(EdgeCases, SinglePointInstanceEverywhere) {
  const PointSet ps{{3.0, 4.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(4);

  EXPECT_EQ(gonzalez(oracle, all, 1).centers, std::vector<index_t>{0});
  EXPECT_EQ(hochbaum_shmoys(oracle, all, 1).centers, std::vector<index_t>{0});
  EXPECT_EQ(mrg(oracle, all, 1, cluster).centers, std::vector<index_t>{0});
  EXPECT_EQ(eim(oracle, all, 1, cluster).centers, std::vector<index_t>{0});
  EXPECT_EQ(brute_force_opt(oracle, all, 1).centers,
            std::vector<index_t>{0});
}

TEST(EdgeCases, TwoPointsKOne) {
  const PointSet ps{{0.0, 0.0}, {6.0, 8.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto gon = gonzalez(oracle, all, 1);
  EXPECT_EQ(gon.centers.size(), 1u);
  EXPECT_DOUBLE_EQ(oracle.to_reported(gon.radius_comparable), 10.0);
}

TEST(EdgeCases, CollinearPointsAllAlgorithms) {
  PointSet ps(101, 2);
  for (index_t i = 0; i <= 100; ++i) {
    ps.mutable_point(i)[0] = static_cast<double>(i);
    ps.mutable_point(i)[1] = 0.0;
  }
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto opt = brute_force_opt(oracle, all, 2);
  // Best 2-center split of [0,100]: centers 25 and 75, radius 25.
  EXPECT_DOUBLE_EQ(oracle.to_reported(opt.radius_comparable), 25.0);
  const auto gon = gonzalez(oracle, all, 2);
  EXPECT_LE(oracle.to_reported(gon.radius_comparable), 50.0 + 1e-9);
  const auto hs = hochbaum_shmoys(oracle, all, 2);
  EXPECT_LE(oracle.to_reported(hs.radius_comparable), 50.0 + 1e-9);
}

TEST(EdgeCases, ZeroSigmaGauIsDuplicateClusters) {
  Rng rng(1);
  const PointSet ps = data::generate_gau(1000, 5, 2, 100.0, 0.0, rng);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto gon = gonzalez(oracle, all, 5);
  EXPECT_NEAR(oracle.to_reported(gon.radius_comparable), 0.0, 1e-12);
}

TEST(EdgeCases, HugeCoordinateOverflowBehaviour) {
  // The squared-L2 comparable value overflows to inf beyond |coord|
  // ~1e153; below that it stays finite and ordered. L1 never squares.
  const PointSet safe{{1e150, 0.0}, {-1e150, 0.0}};
  const DistanceOracle d_safe(safe);
  EXPECT_TRUE(std::isfinite(d_safe.comparable(0, 1)));

  const PointSet overflow{{1e160, 0.0}, {-1e160, 0.0}};
  const DistanceOracle d_over(overflow);
  EXPECT_TRUE(std::isinf(d_over.comparable(0, 1)));
  const DistanceOracle l1(overflow, MetricKind::L1);
  EXPECT_DOUBLE_EQ(l1.distance(0, 1), 2e160);
}

TEST(EdgeCases, OneDimensionalMetricSpace) {
  PointSet ps(10, 1);
  for (index_t i = 0; i < 10; ++i) {
    ps.mutable_point(i)[0] = static_cast<double>(i * i);
  }
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto gon = gonzalez(oracle, all, 3);
  EXPECT_EQ(gon.centers.size(), 3u);
}

// ------------------------------------------------------- failure injection

TEST(FailureInjection, EimMaxIterationsTrips) {
  const PointSet ps = test::small_gaussian_instance(10, 3000, 2);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  EimOptions options;
  options.max_iterations = 0;  // the loop body may never run
  ASSERT_GT(static_cast<double>(ps.size()),
            eim_loop_threshold(ps.size(), 10, options));
  EXPECT_THROW((void)eim(oracle, all, 10, cluster, options),
               std::runtime_error);
}

TEST(FailureInjection, MrgMaxRoundsTrips) {
  const PointSet ps = test::small_gaussian_instance(2, 1000, 3);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(40);
  MrgOptions options;
  options.capacity = 50;  // n/m = 50 fits; k*m = 80 > 50: multi-round
  options.max_rounds = 1; // but only one round allowed
  EXPECT_THROW((void)mrg(oracle, all, 2, cluster, options),
               std::runtime_error);
}

TEST(FailureInjection, TaskExceptionPropagatesFromCluster) {
  const mr::SimCluster cluster(2);
  mr::JobTrace trace;
  EXPECT_THROW(cluster.run_indexed_round(
                   "boom", 2,
                   [](int machine) {
                     if (machine == 1) throw std::runtime_error("boom");
                   },
                   trace),
               std::runtime_error);
}

TEST(FailureInjection, SaveCsvToUnwritablePathThrows) {
  const PointSet ps{{1.0, 2.0}};
  EXPECT_THROW(data::save_csv(ps, "/nonexistent_dir/out.csv"),
               std::runtime_error);
}

// ------------------------------------------------------- accounting

TEST(Accounting, MrgShuffleVolumeMatchesSampleSizes) {
  const PointSet ps = test::small_gaussian_instance(4, 250, 4);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(5);
  const auto result = mrg(oracle, all, 4, cluster, {});
  // Round 0 shuffles all n points; the final round shuffles k*m.
  EXPECT_EQ(result.trace.rounds()[0].shuffle_items, ps.size());
  EXPECT_EQ(result.trace.rounds()[1].shuffle_items, 4u * 5u);
}

TEST(Accounting, EimItemFlowIsConsistent) {
  const PointSet ps = test::small_gaussian_instance(5, 2000, 5);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const auto result = eim(oracle, all, 5, cluster, {});
  ASSERT_TRUE(result.sampled);
  // Per iteration: prune rounds shrink R monotonically.
  std::uint64_t last_r = ps.size();
  for (const auto& round : result.trace.rounds()) {
    if (round.name != "eim-prune") continue;
    EXPECT_EQ(round.items_in, last_r);
    EXPECT_LT(round.items_out, round.items_in);
    last_r = round.items_out;
  }
}

TEST(Accounting, RunAlgorithmCountsAllWork) {
  const PointSet ps = test::small_gaussian_instance(4, 500, 6);
  harness::AlgoConfig config;
  config.kind = harness::AlgoKind::GON;
  counters::reset();
  const auto run = harness::run_algorithm(config, ps, 4, 7);
  // GON itself: exactly k*n evals; the recorded dist_evals excludes
  // the offline covering-radius evaluation.
  EXPECT_EQ(run.dist_evals, 4u * ps.size());
}

// ------------------------------------------------------- loader extras

TEST(LoaderExtras, SemicolonDelimiter) {
  const auto path =
      (std::filesystem::temp_directory_path() / "kc_semi.csv").string();
  {
    std::ofstream out(path);
    out << "1;2\n3;4\n";
  }
  data::CsvOptions options;
  options.delimiter = ';';
  const PointSet ps = data::load_numeric_csv(path, options);
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[1][1], 4.0);
  std::filesystem::remove(path);
}

TEST(LoaderExtras, ScientificNotationValues) {
  const auto path =
      (std::filesystem::temp_directory_path() / "kc_sci.csv").string();
  {
    std::ofstream out(path);
    out << "1e3,-2.5E-2\n4.0,5e0\n";
  }
  const PointSet ps = data::load_numeric_csv(path);
  EXPECT_DOUBLE_EQ(ps[0][0], 1000.0);
  EXPECT_DOUBLE_EQ(ps[0][1], -0.025);
  std::filesystem::remove(path);
}

// ------------------------------------------------------- lower bound extras

TEST(LowerBoundExtras, ZeroOnDuplicates) {
  const PointSet ps = test::all_duplicates(20);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  EXPECT_DOUBLE_EQ(eval::gonzalez_lower_bound(oracle, all, 3), 0.0);
  EXPECT_DOUBLE_EQ(eval::ratio_upper_bound(oracle, all, 3, 0.0), 1.0);
  EXPECT_EQ(eval::ratio_upper_bound(oracle, all, 3, 1.0), kInfDist);
}

TEST(LowerBoundExtras, ScalesLinearlyWithData) {
  // Doubling all coordinates doubles the lower bound (metric linearity).
  Rng rng(7);
  PointSet ps(100, 2);
  PointSet doubled(100, 2);
  for (index_t i = 0; i < 100; ++i) {
    for (std::size_t d = 0; d < 2; ++d) {
      const double c = rng.uniform(0, 10);
      ps.mutable_point(i)[d] = c;
      doubled.mutable_point(i)[d] = 2.0 * c;
    }
  }
  const DistanceOracle o1(ps);
  const DistanceOracle o2(doubled);
  const auto all = ps.all_indices();
  EXPECT_NEAR(2.0 * eval::gonzalez_lower_bound(o1, all, 4),
              eval::gonzalez_lower_bound(o2, all, 4), 1e-9);
}

// ------------------------------------------------------- harness extras

TEST(HarnessExtras, RunRepeatedIsDeterministic) {
  const auto pool = harness::DatasetPool::make(
      [](Rng& rng) { return data::generate_gau(500, 4, 2, 100.0, 0.5, rng); },
      2, 3);
  harness::AlgoConfig config;
  config.kind = harness::AlgoKind::MRG;
  config.machines = 4;
  const auto a = harness::run_repeated(config, pool, 4, 2, 9);
  const auto b = harness::run_repeated(config, pool, 4, 2, 9);
  EXPECT_DOUBLE_EQ(a.value, b.value);
}

TEST(HarnessExtras, ArgsEmptyValueFallsBack) {
  const char* argv[] = {"prog", "--n="};
  cli::Args args(2, argv);
  EXPECT_EQ(args.size("n", 42), 42u);
}

TEST(HarnessExtras, PaperSweepIsTheSixPaperKs) {
  // The quality tables all use k in {2,5,10,25,50,100}.
  const std::vector<std::size_t> expected{2, 5, 10, 25, 50, 100};
  std::vector<std::size_t> ks;
  for (const auto& row : harness::paper_table2()) {
    ks.push_back(static_cast<std::size_t>(row.k));
  }
  EXPECT_EQ(ks, expected);
}

}  // namespace
}  // namespace kc
