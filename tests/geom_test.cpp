#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/counters.hpp"
#include "geom/distance.hpp"
#include "geom/point_set.hpp"
#include "rng/rng.hpp"

namespace kc {
namespace {

// ---------------------------------------------------------------- PointSet

TEST(PointSet, SizedConstructorZeroInitializes) {
  PointSet ps(4, 3);
  EXPECT_EQ(ps.size(), 4u);
  EXPECT_EQ(ps.dim(), 3u);
  for (index_t i = 0; i < 4; ++i) {
    for (const double c : ps[i]) EXPECT_EQ(c, 0.0);
  }
}

TEST(PointSet, RejectsZeroDim) {
  EXPECT_THROW(PointSet(4, 0), std::invalid_argument);
}

TEST(PointSet, CoordinateConstructorChecksArity) {
  EXPECT_THROW(PointSet(3, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  const PointSet ps(2, std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[1][0], 3.0);
}

TEST(PointSet, InitializerListConstruction) {
  const PointSet ps{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps.dim(), 2u);
  EXPECT_EQ(ps[2][1], 6.0);
}

TEST(PointSet, PushBackInfersDimThenEnforcesIt) {
  PointSet ps;
  const std::vector<double> p1{1.0, 2.0, 3.0};
  ps.push_back(p1);
  EXPECT_EQ(ps.dim(), 3u);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(ps.push_back(bad), std::invalid_argument);
}

TEST(PointSet, SubsetGathersInOrder) {
  const PointSet ps{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  const std::vector<index_t> ids{3, 1};
  const PointSet sub = ps.subset(ids);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0][0], 3.0);
  EXPECT_EQ(sub[1][0], 1.0);
}

TEST(PointSet, SubsetValidatesIndices) {
  const PointSet ps{{0.0, 0.0}};
  const std::vector<index_t> bad{5};
  EXPECT_THROW((void)ps.subset(bad), std::out_of_range);
}

TEST(PointSet, AllIndicesIsIota) {
  const PointSet ps{{0.0}, {1.0}, {2.0}};
  const auto ids = ps.all_indices();
  ASSERT_EQ(ids.size(), 3u);
  for (index_t i = 0; i < 3; ++i) EXPECT_EQ(ids[i], i);
}

TEST(PointSet, MemoryBytesTracksStorage) {
  const PointSet ps(100, 4);
  EXPECT_EQ(ps.memory_bytes(), 100u * 4u * sizeof(double));
}

// ---------------------------------------------------------------- Metrics

class MetricAxioms : public ::testing::TestWithParam<MetricKind> {};

TEST_P(MetricAxioms, IdentityOfIndiscernibles) {
  Rng rng(1);
  PointSet ps(20, 3);
  for (index_t i = 0; i < 20; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(-10, 10);
  }
  const DistanceOracle d(ps, GetParam());
  for (index_t i = 0; i < 20; ++i) {
    EXPECT_EQ(d.distance(i, i), 0.0);
  }
}

TEST_P(MetricAxioms, Symmetry) {
  Rng rng(2);
  PointSet ps(20, 4);
  for (index_t i = 0; i < 20; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(-10, 10);
  }
  const DistanceOracle d(ps, GetParam());
  for (index_t i = 0; i < 20; ++i) {
    for (index_t j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(d.distance(i, j), d.distance(j, i));
    }
  }
}

TEST_P(MetricAxioms, TriangleInequalityOnReportedDistances) {
  Rng rng(3);
  PointSet ps(15, 3);
  for (index_t i = 0; i < 15; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(-5, 5);
  }
  const DistanceOracle d(ps, GetParam());
  for (index_t i = 0; i < 15; ++i) {
    for (index_t j = 0; j < 15; ++j) {
      for (index_t k = 0; k < 15; ++k) {
        EXPECT_LE(d.distance(i, k), d.distance(i, j) + d.distance(j, k) + 1e-12);
      }
    }
  }
}

TEST_P(MetricAxioms, ComparableIsOrderIsomorphicToReported) {
  Rng rng(4);
  PointSet ps(30, 2);
  for (index_t i = 0; i < 30; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 100);
  }
  const DistanceOracle d(ps, GetParam());
  for (index_t i = 1; i < 30; ++i) {
    const double ca = d.comparable(0, i);
    const double cb = d.comparable(0, (i + 1) % 30 == 0 ? 1 : (i + 1) % 30);
    EXPECT_EQ(ca < cb, d.to_reported(ca) < d.to_reported(cb));
  }
}

TEST_P(MetricAxioms, ReportedRoundTrips) {
  Rng rng(5);
  PointSet ps(10, 5);
  for (index_t i = 0; i < 10; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(-3, 3);
  }
  const DistanceOracle d(ps, GetParam());
  for (index_t i = 0; i < 10; ++i) {
    for (index_t j = 0; j < 10; ++j) {
      const double comp = d.comparable(i, j);
      EXPECT_NEAR(d.from_reported(d.to_reported(comp)), comp,
                  1e-9 * (1.0 + comp));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxioms,
                         ::testing::Values(MetricKind::L2, MetricKind::L1,
                                           MetricKind::Linf),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(Distance, L2ComparableIsSquaredEuclidean) {
  const PointSet ps{{0.0, 0.0}, {3.0, 4.0}};
  const DistanceOracle d(ps, MetricKind::L2);
  EXPECT_DOUBLE_EQ(d.comparable(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(d.distance(0, 1), 5.0);
}

TEST(Distance, L1AndLinfValues) {
  const PointSet ps{{0.0, 0.0, 0.0}, {1.0, -2.0, 3.0}};
  const DistanceOracle l1(ps, MetricKind::L1);
  const DistanceOracle li(ps, MetricKind::Linf);
  EXPECT_DOUBLE_EQ(l1.distance(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(li.distance(0, 1), 3.0);
}

TEST(Distance, HighDimensionalGenericKernel) {
  // dim > 3 exercises the generic loop rather than the specializations.
  PointSet ps(2, 10);
  for (std::size_t c = 0; c < 10; ++c) {
    ps.mutable_point(1)[c] = 1.0;
  }
  const DistanceOracle d(ps, MetricKind::L2);
  EXPECT_DOUBLE_EQ(d.comparable(0, 1), 10.0);
}

TEST(Distance, UpdateNearestMatchesPairwise) {
  Rng rng(6);
  PointSet ps(50, 3);
  for (index_t i = 0; i < 50; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 10);
  }
  const DistanceOracle d(ps);
  const auto ids = ps.all_indices();
  std::vector<double> best(50, kInfDist);
  d.update_nearest(ids, 7, best);
  d.update_nearest(ids, 23, best);
  for (index_t i = 0; i < 50; ++i) {
    const double expected = std::min(d.comparable(i, 7), d.comparable(i, 23));
    EXPECT_DOUBLE_EQ(best[i], expected);
  }
}

TEST(Distance, UpdateNearestMultiEqualsSequentialUpdates) {
  Rng rng(7);
  PointSet ps(40, 2);
  for (index_t i = 0; i < 40; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 10);
  }
  const DistanceOracle d(ps);
  const auto ids = ps.all_indices();
  const std::vector<index_t> centers{3, 9, 27};

  std::vector<double> a(40, kInfDist);
  std::vector<double> b(40, kInfDist);
  d.update_nearest_multi(ids, centers, a);
  for (const index_t c : centers) d.update_nearest(ids, c, b);
  for (index_t i = 0; i < 40; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Distance, UpdateNearestOnlyImproves) {
  const PointSet ps{{0.0, 0.0}, {1.0, 0.0}, {5.0, 0.0}};
  const DistanceOracle d(ps);
  const auto ids = ps.all_indices();
  std::vector<double> best{0.01, 0.01, 0.01};  // already tiny
  d.update_nearest(ids, 0, best);
  EXPECT_DOUBLE_EQ(best[1], 0.01);  // not overwritten upward
  EXPECT_DOUBLE_EQ(best[0], 0.0);   // improved to zero
}

TEST(Distance, NearestComparableAndCenter) {
  const PointSet ps{{0.0, 0.0}, {10.0, 0.0}, {2.0, 0.0}, {9.0, 0.0}};
  const DistanceOracle d(ps);
  const std::vector<index_t> centers{1, 2};
  EXPECT_DOUBLE_EQ(d.nearest_comparable(0, centers), 4.0);
  EXPECT_EQ(d.nearest_center(0, centers), 1u);  // index into centers
  EXPECT_EQ(d.nearest_center(3, centers), 0u);
  EXPECT_EQ(d.nearest_comparable(0, {}), kInfDist);
  EXPECT_EQ(d.nearest_center(0, {}), 0u);
}

TEST(Distance, PairwiseComparableIsSymmetricWithZeroDiagonal) {
  Rng rng(8);
  PointSet ps(12, 2);
  for (index_t i = 0; i < 12; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 10);
  }
  const DistanceOracle d(ps);
  const auto ids = ps.all_indices();
  const auto matrix = d.pairwise_comparable(ids);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(matrix[i * 12 + i], 0.0);
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i * 12 + j], matrix[j * 12 + i]);
      EXPECT_DOUBLE_EQ(matrix[i * 12 + j],
                       d.comparable(ids[i], ids[j]));
    }
  }
}

TEST(Argmax, FirstOfTiesWins) {
  const std::vector<double> v{1.0, 5.0, 5.0, 2.0};
  EXPECT_EQ(argmax(v), 1u);
}

TEST(Argmax, SingleElement) {
  const std::vector<double> v{3.0};
  EXPECT_EQ(argmax(v), 0u);
}

// ---------------------------------------------------------------- Counters

TEST(Counters, SinglePairEvaluationCounts) {
  const PointSet ps{{0.0, 0.0}, {1.0, 1.0}};
  const DistanceOracle d(ps);
  counters::reset();
  (void)d.comparable(0, 1);
  EXPECT_EQ(counters::read().distance_evals, 1u);
  EXPECT_EQ(counters::read().coord_ops, 2u);
}

TEST(Counters, BulkKernelCountsAllPairs) {
  const PointSet ps{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}};
  const DistanceOracle d(ps);
  const auto ids = ps.all_indices();
  std::vector<double> best(3, kInfDist);
  counters::reset();
  d.update_nearest(ids, 0, best);
  EXPECT_EQ(counters::read().distance_evals, 3u);
}

TEST(Counters, WorkScopeMeasuresDeltas) {
  const PointSet ps{{0.0, 0.0}, {1.0, 1.0}};
  const DistanceOracle d(ps);
  (void)d.comparable(0, 1);
  const WorkScope scope;
  (void)d.comparable(0, 1);
  (void)d.comparable(1, 0);
  EXPECT_EQ(scope.elapsed().distance_evals, 2u);
}

TEST(Counters, CounterArithmetic) {
  WorkCounters a{10, 20};
  const WorkCounters b{3, 6};
  const WorkCounters diff = a - b;
  EXPECT_EQ(diff.distance_evals, 7u);
  EXPECT_EQ(diff.coord_ops, 14u);
  const WorkCounters sum = diff + b;
  EXPECT_EQ(sum.distance_evals, 10u);
  EXPECT_EQ(sum.coord_ops, 20u);
}

}  // namespace
}  // namespace kc
