// Chaos: the deterministic fault-injection subsystem (src/fault) and
// the service plane's resilience to it — retry with backoff, the
// graceful-degradation ladder, the no-progress watchdog, simulated
// machine failures in reducer rounds, and the ≥1k-request soak whose
// report stream must be byte-identical across same-seed runs.
//
// Every fixture here is named Chaos* so the CI chaos leg can select
// exactly this file with `ctest -R Chaos` under a committed
// KC_FAULT_PLAN.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "rng/rng.hpp"
#include "svc/json.hpp"
#include "svc/service.hpp"

namespace kc {
namespace {

using svc::Json;

// ------------------------------------------------------- FaultPlan

TEST(ChaosFaultPlan, ParsesTriggersSeedAndRoundTrips) {
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      " seed=42 ; exec.task.run : p=0.25 ;"
      " svc.request.run: nth=3 , times=1 ; sim.machine:every=7,stall_ms=9 ");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.sites.size(), 3u);
  EXPECT_EQ(plan.sites[0].site, "exec.task.run");
  EXPECT_DOUBLE_EQ(plan.sites[0].p, 0.25);
  EXPECT_EQ(plan.sites[1].site, "svc.request.run");
  EXPECT_EQ(plan.sites[1].nth, 3u);
  EXPECT_EQ(plan.sites[1].times, 1u);
  EXPECT_EQ(plan.sites[2].every, 7u);
  EXPECT_EQ(plan.sites[2].stall_ms, 9u);

  // The canonical spelling is a fixed point of parse ∘ to_string.
  const std::string canonical = plan.to_string();
  EXPECT_EQ(fault::FaultPlan::parse(canonical).to_string(), canonical);

  EXPECT_TRUE(fault::FaultPlan::parse("").empty());
  EXPECT_TRUE(fault::FaultPlan::parse("  ;  ; ").empty());
}

TEST(ChaosFaultPlan, RejectsMalformedSpecs) {
  for (const char* bad :
       {"seed=x", "loneword", "site:", "site:times=2", "a:nth=0", "a:every=0",
        "a:p=1.5", "a:p=-0.1", "a:bogus=1", "a:nth", ":nth=1",
        "a:nth=1;a:every=2"}) {
    EXPECT_THROW((void)fault::FaultPlan::parse(bad), std::invalid_argument)
        << bad;
  }
}

TEST(ChaosFaultPlan, ReadsThePlanFromTheEnvironment) {
  ASSERT_EQ(::setenv("KC_FAULT_PLAN", "seed=5;x:nth=1", 1), 0);
  const fault::FaultPlan plan = fault::plan_from_env();
  EXPECT_EQ(plan.seed, 5u);
  ASSERT_EQ(plan.sites.size(), 1u);
  EXPECT_EQ(plan.sites[0].site, "x");

  ASSERT_EQ(::setenv("KC_FAULT_PLAN", "totally not a plan", 1), 0);
  EXPECT_THROW((void)fault::plan_from_env(), std::invalid_argument);

  ASSERT_EQ(::unsetenv("KC_FAULT_PLAN"), 0);
  EXPECT_TRUE(fault::plan_from_env().empty());
}

// ----------------------------------------------------- fault sites

TEST(ChaosFaultSites, CounterTriggersFireNthEveryAndRespectTimes) {
  const fault::ScopedPlan armed("seed=9;a:nth=3;b:every=4,times=2");
  for (int i = 1; i <= 6; ++i) {
    EXPECT_EQ(fault::hit("a").action,
              i == 3 ? fault::Action::Fail : fault::Action::None)
        << i;
  }
  for (int i = 1; i <= 12; ++i) {
    // every=4 wants hits 4, 8 and 12; times=2 caps the third.
    EXPECT_EQ(fault::hit("b").action,
              (i == 4 || i == 8) ? fault::Action::Fail : fault::Action::None)
        << i;
  }
  EXPECT_EQ(fault::stats("a").hits, 6u);
  EXPECT_EQ(fault::stats("a").fires, 1u);
  EXPECT_EQ(fault::stats("b").hits, 12u);
  EXPECT_EQ(fault::stats("b").fires, 2u);
  // A site the plan does not name is free.
  EXPECT_EQ(fault::hit("unlisted").action, fault::Action::None);
  EXPECT_EQ(fault::stats("unlisted").hits, 0u);
}

TEST(ChaosFaultSites, StallSitesStallInsteadOfFailing) {
  const fault::ScopedPlan armed("seed=9;c:p=1,stall_ms=7");
  const fault::Outcome outcome = fault::hit("c");
  EXPECT_EQ(outcome.action, fault::Action::Stall);
  EXPECT_EQ(outcome.stall_ms, 7u);
  // fires() is the lose-or-keep helper: a stall is not a loss.
  EXPECT_FALSE(fault::fires("c", 11));
  // point() sleeps through a stall rather than throwing.
  EXPECT_NO_THROW(fault::point("c"));
}

TEST(ChaosFaultSites, KeyedDecisionsDependOnlyOnTheKey) {
  constexpr int kKeys = 1000;
  std::vector<bool> forward(kKeys);
  {
    const fault::ScopedPlan armed("seed=77;k:p=0.5");
    for (int key = 0; key < kKeys; ++key) {
      forward[key] = fault::fires("k", static_cast<std::uint64_t>(key));
    }
  }
  // Re-arm (counters reset) and replay the keys in reverse: keyed
  // decisions must not see the different hit order.
  const fault::ScopedPlan armed("seed=77;k:p=0.5");
  int fires = 0;
  for (int key = kKeys - 1; key >= 0; --key) {
    const bool fired = fault::fires("k", static_cast<std::uint64_t>(key));
    EXPECT_EQ(fired, forward[key]) << key;
    fires += fired ? 1 : 0;
  }
  // The seeded hash should land near p over many keys.
  EXPECT_GT(fires, 350);
  EXPECT_LT(fires, 650);
}

TEST(ChaosFaultSites, DisarmedSitesDoNothing) {
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::hit("anything").action, fault::Action::None);
  EXPECT_FALSE(fault::fires("anything", 3));
  EXPECT_NO_THROW(fault::point("anything"));
}

// ----------------------------------------------------- service plane

[[nodiscard]] std::string request_line(int id, const char* tenant,
                                       const char* algorithm, int k,
                                       int points, std::uint64_t seed,
                                       const std::string& extra = "") {
  std::string line = "{\"id\": " + std::to_string(id) + ", \"tenant\": \"" +
                     tenant + "\", \"algorithm\": \"" + algorithm +
                     "\", \"k\": " + std::to_string(k) +
                     ", \"machines\": 4, \"seed\": " + std::to_string(seed) +
                     extra + ", \"points\": [";
  Rng rng(seed);
  for (int p = 0; p < points; ++p) {
    line += p == 0 ? "[" : ", [";
    line += svc::json_number(rng.uniform(0.0, 100.0)) + ", " +
            svc::json_number(rng.uniform(0.0, 100.0));
    line += "]";
  }
  line += "]}";
  return line;
}

[[nodiscard]] std::string status_of(const std::string& report) {
  return Json::parse(report).find("status")->string;
}

struct SoakResult {
  std::vector<std::string> reports;
  svc::ServiceLoop::Stats stats;
  std::size_t deadline_entries = 0;
  std::size_t watchdog_entries = 0;
};

/// Submits every line (rejections settle inline, in submission order),
/// closes, then drains run() on this thread. With a sequential backend
/// the emission order — all rejections, then reports in admission
/// order — is fully deterministic, which the byte-identity soak needs.
[[nodiscard]] SoakResult soak(const std::vector<std::string>& lines,
                              const svc::ServiceConfig& config) {
  svc::ServiceLoop service(config);
  SoakResult result;
  std::mutex mutex;
  const svc::EmitFn emit = [&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex);
    result.reports.push_back(line);
  };
  for (const auto& line : lines) {
    if (auto rejection = service.submit(line, emit)) emit(*rejection);
  }
  service.close();
  service.run();
  result.stats = service.stats();
  result.deadline_entries = service.deadline_entries();
  result.watchdog_entries = service.watchdog_entries();
  return result;
}

TEST(ChaosRetry, TransientFaultIsRetriedAndAttemptsReported) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  config.retry.max_attempts = 3;
  config.fault_plan = "seed=1;svc.request.run:nth=1,times=1";
  const SoakResult result = soak({request_line(1, "t", "gon", 2, 40, 5)},
                                 config);
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_EQ(status_of(result.reports[0]), "ok") << result.reports[0];
  EXPECT_EQ(Json::parse(result.reports[0]).find("attempts")->number, 2.0);
  EXPECT_EQ(result.stats.retries, 1u);
  EXPECT_EQ(result.stats.completed, 1u);
}

TEST(ChaosRetry, ExhaustedAttemptsSettleInternalError) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  config.retry.max_attempts = 2;
  config.fault_plan = "seed=1;svc.request.run:every=1";
  const SoakResult result = soak({request_line(1, "t", "gon", 2, 40, 5)},
                                 config);
  ASSERT_EQ(result.reports.size(), 1u);
  const Json report = Json::parse(result.reports[0]);
  EXPECT_EQ(report.find("status")->string, "internal-error");
  EXPECT_NE(report.find("error")->string.find("svc.request.run"),
            std::string::npos);
  EXPECT_EQ(report.find("attempts")->number, 2.0);
  EXPECT_EQ(result.stats.retries, 1u);
  EXPECT_EQ(result.stats.failed, 1u);
}

TEST(ChaosRetry, TenantRetryBudgetFailsFastWhenExhausted) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  config.retry.max_attempts = 5;
  config.retry.tenant_retry_budget = 1;  // one retry for the whole tenant
  config.fault_plan = "seed=1;svc.request.run:every=1";
  const SoakResult result = soak(
      {
          request_line(1, "t", "gon", 2, 40, 5),
          request_line(2, "t", "gon", 2, 40, 6),
      },
      config);
  ASSERT_EQ(result.reports.size(), 2u);
  // Request 1 spends the tenant's only retry token (attempts 2);
  // request 2 fails fast on its first attempt.
  EXPECT_EQ(Json::parse(result.reports[0]).find("attempts")->number, 2.0);
  EXPECT_EQ(Json::parse(result.reports[1]).find("attempts")->number, 1.0);
  EXPECT_EQ(result.stats.retries, 1u);
}

TEST(ChaosRetry, DeadlineCrossingBackoffSettlesDeadlineExceededOnce) {
  // Satellite: deadline + retry interplay. The first attempt fails
  // (injected, before any budget is spent), the backoff sleeps past
  // the 80 ms deadline, and the post-backoff check settles the request
  // deadline-exceeded without starting attempt 2 — with the 400-eval
  // tenant reservation refunded exactly once.
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  config.tenant_budget = 1000;
  config.retry.max_attempts = 6;
  config.retry.backoff_base_ms = 200;
  config.retry.backoff_max_ms = 400;
  config.fault_plan = "seed=1;svc.request.run:every=1";
  svc::ServiceLoop service(config);
  std::vector<std::string> reports;
  const svc::EmitFn emit = [&](const std::string& line) {
    reports.push_back(line);
  };
  ASSERT_FALSE(service
                   .submit(request_line(1, "t", "gon", 2, 40, 5,
                                        ", \"max_dist_evals\": 400,"
                                        " \"deadline_ms\": 80"),
                           emit)
                   .has_value());
  service.close();
  service.run();
  ASSERT_EQ(reports.size(), 1u);
  const Json report = Json::parse(reports[0]);
  EXPECT_EQ(report.find("status")->string, "deadline-exceeded") << reports[0];
  EXPECT_NE(report.find("error")->string.find(
                "during retry backoff after attempt 1"),
            std::string::npos)
      << reports[0];
  EXPECT_EQ(report.find("attempts")->number, 1.0);  // attempt 2 never started
  const auto stats = service.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failed, 1u);
  // Exactly-once refund: the injected failure consumed nothing, so the
  // tenant odometer must read zero spent after settlement.
  ASSERT_NE(service.tenant_budget("t"), nullptr);
  EXPECT_EQ(service.tenant_budget("t")->consumed(), 0u);
  EXPECT_EQ(service.deadline_entries(), 0u);
}

TEST(ChaosDegrade, LadderReroutesFlagsAndHonorsPerTenantOverride) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  config.degrade.high_watermark = 0.0;  // degrade from the first request
  svc::DegradePolicy vip;
  vip.high_watermark = 2.0;  // disabled for this tenant
  config.tenant_degrade.emplace("vip", vip);
  const SoakResult result = soak(
      {
          request_line(1, "t", "mrg", 2, 60, 5),
          request_line(2, "vip", "mrg", 2, 60, 5),
      },
      config);
  ASSERT_EQ(result.reports.size(), 2u);
  const Json degraded = Json::parse(result.reports[0]);
  EXPECT_EQ(degraded.find("status")->string, "ok") << result.reports[0];
  EXPECT_EQ(degraded.find("algorithm")->string, "ccm");  // rerouted
  ASSERT_NE(degraded.find("degraded"), nullptr);
  EXPECT_TRUE(degraded.find("degraded")->boolean);
  const Json untouched = Json::parse(result.reports[1]);
  EXPECT_EQ(untouched.find("algorithm")->string, "mrg");
  EXPECT_EQ(untouched.find("degraded"), nullptr);
  EXPECT_EQ(result.stats.degraded, 1u);
}

TEST(ChaosWatchdog, StalledRequestIsCancelledWithDiagnostics) {
  // The injected stall parks the attempt for 400 ms while its budget
  // odometer sits still; the 50 ms watchdog cancels through the
  // request's token and the settlement carries the diagnostics.
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  config.watchdog_ms = 50;
  config.fault_plan = "seed=1;svc.request.run:nth=1,times=1,stall_ms=400";
  const SoakResult result =
      soak({request_line(1, "t", "gon", 32, 2000, 5,
                         ", \"max_dist_evals\": 100000000")},
           config);
  ASSERT_EQ(result.reports.size(), 1u);
  const Json report = Json::parse(result.reports[0]);
  EXPECT_EQ(report.find("status")->string, "internal-error")
      << result.reports[0];
  EXPECT_NE(report.find("error")->string.find("watchdog: no budget progress"),
            std::string::npos)
      << result.reports[0];
  EXPECT_EQ(result.stats.watchdog_fired, 1u);
  EXPECT_EQ(result.watchdog_entries, 0u);  // no leaked watcher entries
}

// ------------------------------------------------- machine failures

[[nodiscard]] std::vector<std::string> reducer_lines() {
  std::vector<std::string> lines;
  const char* algorithms[] = {"mrg", "eim", "mrg-du", "ccm"};
  const char* tenants[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 12; ++i) {
    lines.push_back(request_line(i + 1, tenants[i % 3], algorithms[i % 4], 3,
                                 200, 900 + i));
  }
  return lines;
}

TEST(ChaosMachineFailure, SameSeedLosesTheSameMachinesOnEveryBackend) {
  // sim.machine decisions are keyed by (request seed, round ordinal,
  // machine index): the same plan seed loses the same machines whether
  // requests run one at a time or interleaved on a pool, so the report
  // streams must match byte for byte.
  const fault::ScopedPlan armed("seed=7;sim.machine:p=0.1");
  const auto lines = reducer_lines();

  svc::ServiceConfig seq;
  seq.backend = exec::BackendKind::Sequential;
  seq.style.stable = true;
  seq.queue_capacity = lines.size() + 1;
  const SoakResult sequential = soak(lines, seq);

  svc::ServiceConfig pool;
  pool.backend = exec::BackendKind::ThreadPool;
  pool.threads = 4;
  pool.max_in_flight = 4;
  pool.style.stable = true;
  pool.queue_capacity = lines.size() + 1;
  const SoakResult concurrent = soak(lines, pool);

  EXPECT_GT(fault::stats("sim.machine").fires, 0u);  // losses really happened
  ASSERT_EQ(sequential.reports.size(), lines.size());
  EXPECT_EQ(sequential.reports, concurrent.reports);
  for (const auto& report : sequential.reports) {
    EXPECT_EQ(status_of(report), "ok") << report;
  }
}

TEST(ChaosMachineFailure, ArmedButUnfiredPlanLeavesReportsByteIdentical) {
  const auto lines = reducer_lines();
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  config.queue_capacity = lines.size() + 1;
  const SoakResult baseline = soak(lines, config);
  SoakResult armed_run = [&] {
    // The armed site is never hit in-process (svc.emit.* lives in the
    // serve binary), so the zero-fault path must not change a byte.
    const fault::ScopedPlan armed("seed=3;svc.emit.write:nth=1");
    return soak(lines, config);
  }();
  EXPECT_EQ(baseline.reports, armed_run.reports);
}

TEST(ChaosMachineFailure, UnsurvivableLossExhaustsAttemptsAsInternalError) {
  // p=1 loses every machine of every round attempt; after the retry
  // cap the round surfaces as a typed internal error, never a hang or
  // a partial report.
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  config.fault_plan = "seed=1;sim.machine:p=1";
  const SoakResult result = soak({request_line(1, "t", "mrg", 3, 120, 9)},
                                 config);
  ASSERT_EQ(result.reports.size(), 1u);
  const Json report = Json::parse(result.reports[0]);
  EXPECT_EQ(report.find("status")->string, "internal-error")
      << result.reports[0];
  EXPECT_NE(report.find("error")->string.find("machine loss"),
            std::string::npos)
      << result.reports[0];
}

// -------------------------------------------------------- the soak

/// The committed chaos mix; the CI chaos leg overrides it through
/// KC_FAULT_PLAN to run the whole soak under an externally pinned
/// plan (including the TSan job).
[[nodiscard]] std::string soak_plan() {
  const char* env = std::getenv("KC_FAULT_PLAN");
  if (env != nullptr && *env != '\0') return env;
  return "seed=1337;svc.request.run:p=0.05;exec.task.run:p=0.002;"
         "sim.machine:p=0.02;codec.alloc:nth=97";
}

[[nodiscard]] std::vector<std::string> soak_lines() {
  const char* tenants[] = {"alpha", "beta", "gamma", "delta"};
  const char* algorithms[] = {"gon", "mrg", "eim", "ccm", "hs", "mrg-du"};
  std::vector<std::string> lines;
  for (int i = 0; i < 1050; ++i) {
    if (i % 83 == 41) {
      lines.push_back("{this is not a request");
      continue;
    }
    const std::string extra =
        i % 7 == 0 ? "" : ", \"max_dist_evals\": 10000";
    lines.push_back(request_line(i + 1, tenants[i % 4], algorithms[i % 6],
                                 1 + i % 4, 16 + i % 33, 2000 + i, extra));
  }
  return lines;
}

void check_soak_invariants(const SoakResult& result,
                           const std::vector<std::string>& lines) {
  // Exactly one typed report per submitted line.
  ASSERT_EQ(result.reports.size(), lines.size());
  EXPECT_EQ(result.stats.admitted + result.stats.rejected, lines.size());
  EXPECT_EQ(result.stats.completed + result.stats.failed,
            result.stats.admitted);
  std::set<std::uint64_t> ids;
  for (const auto& line : result.reports) {
    const Json report = Json::parse(line);
    const std::string status = report.find("status")->string;
    EXPECT_TRUE(status == "ok" || status == "bad-request" ||
                status == "internal-error" || status == "budget-exceeded")
        << line;
    const auto id = static_cast<std::uint64_t>(report.find("id")->number);
    if (id != 0) {
      EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
    }
  }
  // No watcher state may outlive the drain.
  EXPECT_EQ(result.deadline_entries, 0u);
  EXPECT_EQ(result.watchdog_entries, 0u);
}

TEST(ChaosSoak, SameSeedSequentialRunsAreByteIdentical) {
  const auto lines = soak_lines();
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  config.queue_capacity = lines.size() + 8;
  config.tenant_budget = 5'000'000;
  config.retry.max_attempts = 3;
  config.retry.backoff_base_ms = 1;
  config.retry.backoff_max_ms = 4;
  config.fault_plan = soak_plan();
  const SoakResult first = soak(lines, config);
  const SoakResult second = soak(lines, config);
  check_soak_invariants(first, lines);
  // Re-arming the plan resets the per-site counters, so the injected
  // failures — and therefore every report byte — replay exactly.
  EXPECT_EQ(first.reports, second.reports);
  EXPECT_EQ(first.stats.retries, second.stats.retries);
}

TEST(ChaosSoak, ConcurrentSoakDrainsWithOneReportPerRequest) {
  const auto lines = soak_lines();
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::ThreadPool;
  config.threads = 4;
  config.max_in_flight = 4;
  config.style.stable = true;
  config.queue_capacity = lines.size() + 8;
  config.tenant_budget = 5'000'000;
  config.retry.max_attempts = 3;
  config.retry.backoff_base_ms = 1;
  config.retry.backoff_max_ms = 4;
  config.fault_plan = soak_plan();
  const SoakResult result = soak(lines, config);
  check_soak_invariants(result, lines);
}

}  // namespace
}  // namespace kc
