// Spatial-pruning suite: the cell-pruned scans (geom/spatial_index.hpp)
// must be **bit-identical** to the unpruned path — pruning may only
// skip pairs the triangle inequality proves cannot win — while charging
// strictly no more distance evaluations, splitting the skipped pairs
// into the pruned_pairs counter, and honouring the same budget/cancel
// gating contract as the unpruned scans on every backend.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "algo/gonzalez.hpp"
#include "api/solver.hpp"
#include "data/generators.hpp"
#include "exec/backend.hpp"
#include "exec/chunk_context.hpp"
#include "geom/counters.hpp"
#include "geom/distance.hpp"
#include "geom/spatial_index.hpp"
#include "rng/rng.hpp"
#include "test_util.hpp"

namespace kc {
namespace {

void expect_bit_identical(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << "element " << i << ": " << got[i] << " vs " << want[i];
  }
}

/// The three input shapes pruning must handle: tight clusters (the case
/// it exists for), uniform spread (little to prune), and duplicate-heavy
/// data (giant cells, the degenerate-grid path).
PointSet make_input(int shape, std::size_t n, std::size_t dim, Rng& rng) {
  switch (shape) {
    case 0: return data::generate_gau(n, 8, dim, 100.0, 0.1, rng);
    case 1: return data::generate_unif(n, dim, 100.0, rng);
    default: {
      // ~12 distinct locations, each repeated many times exactly.
      PointSet distinct = data::generate_unif(12, dim, 100.0, rng);
      PointSet out;
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(
            distinct[static_cast<index_t>(rng.uniform_int(distinct.size()))]);
      }
      return out;
    }
  }
}

const char* shape_name(int shape) {
  return shape == 0 ? "clustered" : shape == 1 ? "uniform" : "duplicates";
}

// ------------------------------------------------------- index structure

TEST(SpatialIndex, GridHelpersMatchTheSharedSnappingRule) {
  EXPECT_EQ(grid_coord(0.0, 1.0), 0);
  EXPECT_EQ(grid_coord(2.5, 1.0), 2);
  EXPECT_EQ(grid_coord(-0.5, 1.0), -1);  // floor, not trunc
  EXPECT_EQ(grid_coord(7.0, 3.5), 2);
  // Saturation: huge coordinate over tiny width clamps, no UB cast.
  EXPECT_EQ(grid_coord(1e300, 1e-30), static_cast<std::int64_t>(9.0e18));
  EXPECT_EQ(grid_coord(-1e300, 1e-30), static_cast<std::int64_t>(-9.0e18));
}

TEST(SpatialIndex, CellsPartitionPointsAndBoxesContainMembers) {
  Rng rng(321);
  for (int shape = 0; shape < 3; ++shape) {
    for (const std::size_t dim : {1u, 2u, 3u, 7u}) {
      const PointSet pts = make_input(shape, 2000, dim, rng);
      const SpatialIndex index(pts);
      SCOPED_TRACE(std::string(shape_name(shape)) + " dim=" +
                   std::to_string(dim));

      ASSERT_EQ(index.size(), pts.size());
      ASSERT_GE(index.cell_count(), 1u);
      EXPECT_EQ(index.cell_begin(0), 0u);

      // order() is a permutation; cell runs tile it; every member lies
      // inside its cell's bounding box and shares its cell's grid key;
      // the permuted rows are bitwise copies of the source rows.
      std::vector<bool> seen(pts.size(), false);
      std::vector<std::int64_t> key(dim), key0(dim);
      for (std::size_t c = 0; c < index.cell_count(); ++c) {
        const std::size_t base = index.cell_begin(c);
        const std::size_t sz = index.cell_size(c);
        ASSERT_GE(sz, 1u);
        grid_cell_key(pts[index.order()[base]], index.cell_width(), key0);
        for (std::size_t j = 0; j < sz; ++j) {
          const index_t id = index.order()[base + j];
          EXPECT_FALSE(seen[id]);
          seen[id] = true;
          EXPECT_EQ(index.cell_of(id), c);
          grid_cell_key(pts[id], index.cell_width(), key);
          EXPECT_EQ(key, key0) << "member outside its cell's grid key";
          for (std::size_t d = 0; d < dim; ++d) {
            EXPECT_LE(index.cell_lo(c)[d], pts[id][d]);
            EXPECT_GE(index.cell_hi(c)[d], pts[id][d]);
            EXPECT_EQ(std::bit_cast<std::uint64_t>(
                          index.rows()[(base + j) * dim + d]),
                      std::bit_cast<std::uint64_t>(pts[id][d]));
          }
        }
      }
      for (const bool s : seen) EXPECT_TRUE(s);
    }
  }
}

TEST(SpatialIndex, CellMindistNeverExceedsAnyMemberDistance) {
  // The safety property the whole determinism argument rests on: the
  // cell bound, computed in rounded arithmetic, must be <= the kernel's
  // rounded comparable distance for every member and every metric.
  Rng rng(55);
  const PointSet pts = make_input(0, 1500, 3, rng);
  const SpatialIndex index(pts);
  for (const auto kind : {MetricKind::L2, MetricKind::L1, MetricKind::Linf}) {
    DistanceOracle oracle(pts, kind);
    for (index_t center = 0; center < 40; ++center) {
      for (std::size_t c = 0; c < index.cell_count(); ++c) {
        const double bound =
            index.cell_mindist_comparable(kind, pts.data(center), c);
        for (std::size_t j = 0; j < index.cell_size(c); ++j) {
          const index_t id = index.order()[index.cell_begin(c) + j];
          ASSERT_LE(bound, oracle.comparable(id, center))
              << to_string(kind) << " cell " << c << " member " << id;
        }
      }
    }
  }
}

// --------------------------------------------------------- bit identity

class PrunedScans : public ::testing::TestWithParam<exec::BackendKind> {};

TEST_P(PrunedScans, BitIdenticalToUnprunedAcrossShapesMetricsAndDims) {
  if (!exec::backend_available(GetParam())) GTEST_SKIP();
  const auto backend = exec::make_backend(GetParam(), 4);

  Rng rng(2024);
  for (int shape = 0; shape < 3; ++shape) {
    for (std::size_t dim = 1; dim <= 16; ++dim) {
      // Modest n keeps the full dim sweep fast; the sharding threshold
      // is irrelevant to identity (chunks write disjoint slices).
      const std::size_t n = 1800;
      const PointSet pts = make_input(shape, n, dim, rng);
      const std::vector<index_t> ids = pts.all_indices();
      std::vector<index_t> centers(12);
      for (auto& c : centers) {
        c = static_cast<index_t>(rng.uniform_int(n));
      }
      const SpatialIndex index(pts);

      for (const auto kind :
           {MetricKind::L2, MetricKind::L1, MetricKind::Linf}) {
        SCOPED_TRACE(std::string(shape_name(shape)) + " dim=" +
                     std::to_string(dim) + " " + std::string(to_string(kind)));
        DistanceOracle plain(pts, kind);
        plain.bind_executor(backend.get(), /*min_items=*/256);
        DistanceOracle pruned(pts, kind);
        pruned.bind_executor(backend.get(), /*min_items=*/256);
        pruned.bind_index(&index, PruneMode::On);

        // Multi scan from fresh infinity (covering-radius shape).
        std::vector<double> want(n, kInfDist);
        std::vector<double> got(n, kInfDist);
        const WorkScope plain_work;
        plain.update_nearest_multi(ids, centers, want);
        const WorkCounters plain_elapsed = plain_work.elapsed();
        const WorkScope pruned_work;
        pruned.update_nearest_multi(ids, centers, got);
        const WorkCounters pruned_elapsed = pruned_work.elapsed();
        expect_bit_identical(got, want);

        // Work accounting: never more evals than unpruned, and the
        // evaluated/pruned split sums to the unpruned total.
        EXPECT_LE(pruned_elapsed.distance_evals, plain_elapsed.distance_evals);
        EXPECT_EQ(pruned_elapsed.distance_evals + pruned_elapsed.pruned_pairs,
                  plain_elapsed.distance_evals);

        // Gonzalez-shaped sequence: one best[], one center per sweep,
        // cached bounds carried across sweeps.
        PruneCache cache(index);
        std::vector<double> want_seq(n, kInfDist);
        std::vector<double> got_seq(n, kInfDist);
        for (const index_t c : centers) {
          plain.update_nearest(ids, c, want_seq);
          pruned.update_nearest(ids, c, got_seq, &cache);
        }
        expect_bit_identical(got_seq, want_seq);
      }
    }
  }
}

TEST_P(PrunedScans, GonzalezRunsBitIdenticalWithPruning) {
  if (!exec::backend_available(GetParam())) GTEST_SKIP();
  const auto backend = exec::make_backend(GetParam(), 4);

  Rng rng(77);
  const PointSet pts = data::generate_gau(20'000, 16, 2, 100.0, 0.1, rng);
  const SpatialIndex index(pts);
  const std::vector<index_t> ids = pts.all_indices();

  DistanceOracle plain(pts);
  plain.bind_executor(backend.get());
  DistanceOracle pruned(pts);
  pruned.bind_executor(backend.get());
  pruned.bind_index(&index, PruneMode::On);

  const WorkScope plain_work;
  const GonzalezResult want = gonzalez(plain, ids, 16, {});
  const std::uint64_t plain_evals = plain_work.elapsed().distance_evals;
  const WorkScope pruned_work;
  const GonzalezResult got = gonzalez(pruned, ids, 16, {});
  const WorkCounters pruned_elapsed = pruned_work.elapsed();

  EXPECT_EQ(got.centers, want.centers);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.radius_comparable),
            std::bit_cast<std::uint64_t>(want.radius_comparable));
  expect_bit_identical(got.greedy_radii_comparable,
                       want.greedy_radii_comparable);
  EXPECT_EQ(pruned_elapsed.distance_evals + pruned_elapsed.pruned_pairs,
            plain_evals);
  if (!force_no_prune_requested()) {
    // Clustered data at k=16 must actually prune (this is the whole
    // point); the ratio bar lives in the bench, here just "engaged".
    EXPECT_GT(pruned_elapsed.pruned_pairs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PrunedScans,
                         ::testing::Values(exec::BackendKind::Sequential,
                                           exec::BackendKind::OpenMP,
                                           exec::BackendKind::ThreadPool),
                         [](const auto& param_info) {
                           return std::string(exec::to_string(param_info.param));
                         });

// -------------------------------------------------------- ordered domain

TEST(OrderedScans, ValuesMatchTheUnprunedScanAtPermutedPositions) {
  // The ordered scans fold into best[] laid out in the index's cell
  // order: best_ordered[j] belongs to point order()[j]. The values must
  // still be bitwise those of the plain id-order scan — the permutation
  // is the only difference.
  Rng rng(909);
  for (int shape = 0; shape < 3; ++shape) {
    for (const std::size_t dim : {1u, 2u, 5u}) {
      const std::size_t n = 2500;
      const PointSet pts = make_input(shape, n, dim, rng);
      const std::vector<index_t> ids = pts.all_indices();
      const SpatialIndex index(pts);
      std::vector<index_t> centers(10);
      for (auto& c : centers) c = static_cast<index_t>(rng.uniform_int(n));

      for (const auto kind :
           {MetricKind::L2, MetricKind::L1, MetricKind::Linf}) {
        SCOPED_TRACE(std::string(shape_name(shape)) + " dim=" +
                     std::to_string(dim) + " " + std::string(to_string(kind)));
        DistanceOracle plain(pts, kind);
        DistanceOracle pruned(pts, kind);
        pruned.bind_index(&index, PruneMode::On);
        ASSERT_EQ(pruned.ordered_scans_available(),
                  !force_no_prune_requested());
        if (!pruned.ordered_scans_available()) GTEST_SKIP();

        // Multi scan from fresh infinity.
        std::vector<double> want(n, kInfDist);
        std::vector<double> got(n, kInfDist);
        const WorkScope plain_work;
        plain.update_nearest_multi(ids, centers, want);
        const std::uint64_t plain_evals = plain_work.elapsed().distance_evals;
        const WorkScope pruned_work;
        pruned.update_nearest_multi_ordered(centers, got);
        const WorkCounters pruned_elapsed = pruned_work.elapsed();
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(std::bit_cast<std::uint64_t>(got[j]),
                    std::bit_cast<std::uint64_t>(want[index.order()[j]]))
              << "ordered slot " << j;
        }
        EXPECT_EQ(pruned_elapsed.distance_evals + pruned_elapsed.pruned_pairs,
                  plain_evals);

        // Sweep sequence sharing one cache across centers (GON shape).
        PruneCache cache(index);
        std::vector<double> want_seq(n, kInfDist);
        std::vector<double> got_seq(n, kInfDist);
        for (const index_t c : centers) {
          plain.update_nearest(ids, c, want_seq);
          pruned.update_nearest_ordered(c, got_seq, &cache);
        }
        for (std::size_t j = 0; j < n; ++j) {
          ASSERT_EQ(std::bit_cast<std::uint64_t>(got_seq[j]),
                    std::bit_cast<std::uint64_t>(want_seq[index.order()[j]]))
              << "ordered slot " << j;
        }
      }
    }
  }
}

TEST(OrderedScans, RequireAMatchingBoundIndex) {
  Rng rng(910);
  const PointSet pts = data::generate_gau(2000, 8, 2, 100.0, 0.1, rng);
  std::vector<double> best(pts.size(), kInfDist);
  const index_t centers[2] = {0, 1};

  // No index bound: the ordered domain does not even exist, so the
  // scans refuse rather than silently fall back to id order (the caller
  // would misread the result's layout).
  DistanceOracle bare(pts);
  EXPECT_FALSE(bare.ordered_scans_available());
  EXPECT_THROW(bare.update_nearest_ordered(0, best), std::logic_error);
  EXPECT_THROW(bare.update_nearest_multi_ordered(centers, best),
               std::logic_error);

  // Index bound but pruning off: same contract.
  const SpatialIndex index(pts);
  DistanceOracle off(pts);
  off.bind_index(&index, PruneMode::Off);
  EXPECT_FALSE(off.ordered_scans_available());
  EXPECT_THROW(off.update_nearest_ordered(0, best), std::logic_error);

  // Wrong-size best[]: the ordered domain covers the full point set
  // only.
  DistanceOracle on(pts);
  on.bind_index(&index, PruneMode::On);
  if (on.ordered_scans_available()) {
    std::vector<double> wrong(pts.size() - 1, kInfDist);
    EXPECT_THROW(on.update_nearest_multi_ordered(centers, wrong),
                 std::logic_error);
  }
}

// ------------------------------------------------------------ fallbacks

TEST(PrunedScansFallback, PartialRangeScansTakeTheExactUnprunedPath) {
  Rng rng(31);
  const PointSet pts = data::generate_gau(4000, 8, 2, 100.0, 0.1, rng);
  const SpatialIndex index(pts);
  DistanceOracle pruned(pts);
  pruned.bind_index(&index, PruneMode::On);
  DistanceOracle plain(pts);

  // A strict subset (EIM part shape): must not engage pruning — the
  // index's cell runs only tile the full set.
  std::vector<index_t> subset(1000);
  std::iota(subset.begin(), subset.end(), index_t{500});
  std::vector<double> want(subset.size(), kInfDist);
  std::vector<double> got(subset.size(), kInfDist);
  plain.update_nearest(subset, 3, want);
  const WorkScope scope;
  pruned.update_nearest(subset, 3, got);
  expect_bit_identical(got, want);
  EXPECT_EQ(scope.elapsed().pruned_pairs, 0u);
  EXPECT_EQ(scope.elapsed().distance_evals, subset.size());
}

TEST(PrunedScansFallback, PruneModeOffKeepsTheUnprunedPathAndCounters) {
  Rng rng(32);
  const PointSet pts = data::generate_gau(4000, 8, 2, 100.0, 0.1, rng);
  const SpatialIndex index(pts);
  DistanceOracle oracle(pts);
  oracle.bind_index(&index, PruneMode::Off);
  EXPECT_FALSE(oracle.pruning_enabled());

  const std::vector<index_t> ids = pts.all_indices();
  std::vector<double> best(ids.size(), kInfDist);
  const WorkScope scope;
  oracle.update_nearest(ids, 0, best);
  EXPECT_EQ(scope.elapsed().pruned_pairs, 0u);
  EXPECT_EQ(scope.elapsed().distance_evals, ids.size());
}

// --------------------------------------------------------- budget/cancel

TEST(PrunedScansGated, BudgetStopsWithinOneGateAndNeverOvercharges) {
  Rng rng(41);
  const PointSet pts = data::generate_gau(300'000, 16, 2, 100.0, 0.5, rng);
  const SpatialIndex index(pts);
  DistanceOracle oracle(pts);
  oracle.bind_index(&index, PruneMode::On);

  constexpr std::uint64_t kBudget = 1'000'000;
  exec::ChunkContext ctx;
  ctx.budget = std::make_shared<exec::EvalBudget>(kBudget);
  oracle.bind_context(&ctx);

  const std::vector<index_t> ids = pts.all_indices();
  std::vector<index_t> centers(16);
  std::iota(centers.begin(), centers.end(), index_t{0});
  std::vector<double> best(ids.size(), kInfDist);
  EXPECT_THROW(oracle.update_nearest_multi(ids, centers, best),
               BudgetExceededError);
  // Never overdrawn, and stopped promptly: the pruned scan pre-buys
  // credit in gate batches and refunds the unexecuted remainder on the
  // stop, so consumed() can sit up to ~two gates under the limit but
  // no executed work ever exceeds it.
  EXPECT_LE(ctx.budget->consumed(), kBudget);
  EXPECT_GE(ctx.budget->consumed() + 2 * exec::kGateEvals, kBudget);
}

TEST(PrunedScansGated, CancellationStopsThePrunedScan) {
  Rng rng(42);
  const PointSet pts = data::generate_gau(100'000, 16, 2, 100.0, 0.5, rng);
  const SpatialIndex index(pts);
  DistanceOracle oracle(pts);
  oracle.bind_index(&index, PruneMode::On);

  exec::ChunkContext ctx;
  ctx.cancel = CancellationToken::make();
  oracle.bind_context(&ctx);
  ctx.cancel.request_cancel();

  const std::vector<index_t> ids = pts.all_indices();
  std::vector<index_t> centers(16);
  std::iota(centers.begin(), centers.end(), index_t{0});
  std::vector<double> best(ids.size(), kInfDist);
  EXPECT_THROW(oracle.update_nearest_multi(ids, centers, best),
               CancelledError);
}

TEST(PrunedScansGated, CompletedGatedScanChargesExactlyItsEvaluatedPairs) {
  Rng rng(43);
  const PointSet pts = data::generate_gau(50'000, 16, 2, 100.0, 0.1, rng);
  const SpatialIndex index(pts);
  DistanceOracle oracle(pts);
  oracle.bind_index(&index, PruneMode::On);

  exec::ChunkContext ctx;
  ctx.budget = std::make_shared<exec::EvalBudget>(std::uint64_t{1} << 40);
  oracle.bind_context(&ctx);

  const std::vector<index_t> ids = pts.all_indices();
  std::vector<index_t> centers(16);
  std::iota(centers.begin(), centers.end(), index_t{0});
  std::vector<double> best(ids.size(), kInfDist);
  const WorkScope scope;
  oracle.update_nearest_multi(ids, centers, best);
  // The budget odometer and the thread-local counters agree exactly on
  // a completed scan: evaluated pairs, with the pruned ones free.
  EXPECT_EQ(ctx.budget->consumed(), scope.elapsed().distance_evals);
}

// ------------------------------------------------------------- api knob

TEST(ApiSolverPrune, AutoPrunesBitIdenticallyAndReportsTheSplit) {
  Rng rng(2025);
  const PointSet pts = data::generate_gau(8000, 16, 2, 100.0, 0.1, rng);

  api::SolveRequest request;
  request.points = &pts;
  request.k = 8;
  request.algorithm = "gon";
  request.prune = PruneMode::Off;
  api::Solver solver;
  const api::SolveReport off = solver.solve(request);

  request.prune = PruneMode::Auto;  // n >= 4096, dim 2: auto builds
  const api::SolveReport on = solver.solve(request);

  EXPECT_EQ(on.centers, off.centers);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(on.value),
            std::bit_cast<std::uint64_t>(off.value));
  EXPECT_EQ(off.pairs_pruned, 0u);
  EXPECT_EQ(on.dist_evals + on.pairs_pruned, off.dist_evals);
  if (!force_no_prune_requested()) {
    EXPECT_GT(on.pairs_pruned, 0u);
  }
}

TEST(ApiSolverPrune, AutoStaysOffInHighDimensionOrSmallInstances) {
  Rng rng(2026);
  api::Solver solver;

  // dim > kAutoPruneMaxDim: auto must not build an index.
  const PointSet high_dim =
      data::generate_gau(5000, 8, kAutoPruneMaxDim + 1, 100.0, 0.1, rng);
  api::SolveRequest request;
  request.points = &high_dim;
  request.k = 4;
  request.algorithm = "gon";
  const api::SolveReport hd = solver.solve(request);
  EXPECT_EQ(hd.pairs_pruned, 0u);

  // Small n: same.
  const PointSet small =
      data::generate_gau(kAutoPruneMinPoints - 1, 8, 2, 100.0, 0.1, rng);
  request.points = &small;
  const api::SolveReport sm = solver.solve(request);
  EXPECT_EQ(sm.pairs_pruned, 0u);

  // But On forces the index even there, still bit-identically.
  request.prune = PruneMode::On;
  const api::SolveReport forced = solver.solve(request);
  EXPECT_EQ(forced.centers, sm.centers);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(forced.value),
            std::bit_cast<std::uint64_t>(sm.value));
}

}  // namespace
}  // namespace kc
