// The solve facade: registry round-trips, request validation and the
// typed error taxonomy, budget enforcement, cooperative cancellation
// (a multi-round run must stop within one round of the request), and
// bit-identity between Solver output and the direct free-function path
// on every available execution backend.

// GCC 12 under -fsanitize=address,undefined reports the disengaged
// std::optional<std::vector<int>> inside MrgOptions as
// "maybe-uninitialized" when a request is built by value (GCC
// PR80635 family). False positive, suppressed for this TU; later GCCs
// and Clang are unaffected.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cli/algos.hpp"
#include "cli/args.hpp"
#include "harness/experiment.hpp"
#include "test_util.hpp"

namespace kc {
namespace {

using api::ErrorKind;

/// Runs `request` and returns the Error kind it throws; fails the test
/// if it does not throw api::Error.
ErrorKind error_kind_of(api::SolveRequest& request) {
  api::Solver solver;
  try {
    (void)solver.solve(request);
  } catch (const api::Error& e) {
    return e.kind();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected api::Error, got: " << e.what();
    return ErrorKind::BadRequest;
  }
  ADD_FAILURE() << "expected api::Error, got success";
  return ErrorKind::BadRequest;
}

TEST(ApiRegistry, BuiltinsRegisteredAndAliasesRoundTrip) {
  const auto names = api::registry().names();
  for (const char* expected :
       {"gon", "hs", "brute", "mrg", "eim", "mrg-du", "ccm"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing built-in '" << expected << "'";
  }
  for (const auto& algo : api::registry().algorithms()) {
    EXPECT_FALSE(algo.description.empty()) << algo.name;
    EXPECT_EQ(api::registry().find(algo.name), &algo);
    for (const auto& alias : algo.aliases) {
      EXPECT_EQ(api::registry().find(alias), &algo)
          << "alias '" << alias << "' does not round-trip";
    }
  }
  EXPECT_EQ(api::registry().find("gon")->options_index,
            api::options_index_of<GonzalezOptions>());
  EXPECT_EQ(api::registry().find("mrg")->options_index,
            api::options_index_of<MrgOptions>());
  EXPECT_EQ(api::registry().find("eim")->options_index,
            api::options_index_of<EimOptions>());
  EXPECT_EQ(api::registry().find("no-such-algorithm"), nullptr);
}

TEST(ApiRegistry, SolveRunsEveryBuiltin) {
  const PointSet data = test::small_gaussian_instance(3, 10, 41);
  for (const auto& name : api::registry().names()) {
    api::SolveRequest request;
    request.points = &data;
    request.k = 3;
    request.algorithm = name;
    request.exec.machines = 8;
    request.seed = 7;
    api::Solver solver;
    const api::SolveReport report = solver.solve(request);
    EXPECT_EQ(report.algorithm, name);
    EXPECT_EQ(report.centers.size(), 3u) << name;
    EXPECT_TRUE(test::valid_center_set(report.centers, data.size())) << name;
    EXPECT_GT(report.value, 0.0) << name;
    EXPECT_FALSE(report.guarantee.empty()) << name;
    EXPECT_EQ(report.backend, "sequential") << name;
    EXPECT_FALSE(report.kernel_isa.empty()) << name;
    const bool uses_cluster = api::registry().find(name)->uses_cluster;
    EXPECT_EQ(report.rounds > 0, uses_cluster) << name;
    EXPECT_GT(report.dist_evals, 0u) << name;
  }
}

TEST(ApiSolver, ValidationErrorKinds) {
  const PointSet data = test::small_gaussian_instance(3, 10, 42);
  api::SolveRequest request;
  request.points = &data;
  request.k = 3;

  {
    api::SolveRequest r = request;
    r.points = nullptr;
    EXPECT_EQ(error_kind_of(r), ErrorKind::BadRequest);
  }
  {
    api::SolveRequest r = request;
    r.k = 0;
    EXPECT_EQ(error_kind_of(r), ErrorKind::BadRequest);
  }
  {
    api::SolveRequest r = request;
    r.algorithm = "no-such-algorithm";
    EXPECT_EQ(error_kind_of(r), ErrorKind::BadRequest);
  }
  {
    api::SolveRequest r = request;
    r.algorithm = "gon";
    r.options = EimOptions{};  // variant does not match the algorithm
    EXPECT_EQ(error_kind_of(r), ErrorKind::BadRequest);
  }
  {
    api::SolveRequest r = request;
    r.algorithm = "mrg";
    r.exec.machines = 0;
    EXPECT_EQ(error_kind_of(r), ErrorKind::BadRequest);
  }
  {
    api::SolveRequest r = request;
    r.exec.threads = -1;
    EXPECT_EQ(error_kind_of(r), ErrorKind::BadRequest);
  }
  {
    // Option *values* the algorithm itself rejects surface as
    // BadRequest too (mapped from std::invalid_argument).
    api::SolveRequest r = request;
    r.algorithm = "eim";
    EimOptions bad;
    bad.epsilon = 1.5;
    r.options = bad;
    EXPECT_EQ(error_kind_of(r), ErrorKind::BadRequest);
  }
  {
    api::SolveRequest r = request;
    r.k = data.size() + 1;  // k > n can never be satisfied
    EXPECT_EQ(error_kind_of(r), ErrorKind::BadRequest);
  }
  {
    api::SolveRequest r = request;
    r.algorithm = "ccm";
    CcmOptions bad;
    bad.epsilon = 0.0;
    r.options = bad;
    EXPECT_EQ(error_kind_of(r), ErrorKind::BadRequest);
  }
}

TEST(ApiSolver, NonFiniteCoordinatesAreRejectedUpFront) {
  for (const double poison : {std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()}) {
    PointSet data = test::small_gaussian_instance(3, 20, 44);
    data.mutable_point(11)[1] = poison;
    api::SolveRequest request;
    request.points = &data;
    request.k = 3;
    EXPECT_EQ(error_kind_of(request), ErrorKind::BadRequest);
  }
}

TEST(ApiSolver, DuplicateOnlyInputsSolveWithoutCrashOrNonsense) {
  // Every point identical: any k <= n must produce a radius-0 report
  // (never UB in the kernels, never an untyped escape), and the eval
  // layer must keep its per-cluster stats well-defined even when
  // redundant centers own zero points.
  const PointSet data = test::all_duplicates(40);
  for (const auto& name : api::registry().names()) {
    api::SolveRequest request;
    request.points = &data;
    request.k = 3;
    request.algorithm = name;
    request.exec.machines = 4;
    api::Solver solver;
    const api::SolveReport report = solver.solve(request);
    EXPECT_EQ(report.value, 0.0) << name;
    ASSERT_FALSE(report.centers.empty()) << name;

    const DistanceOracle oracle(data);
    const auto all = data.all_indices();
    const auto stats = eval::cluster_stats(oracle, all, report.centers);
    EXPECT_EQ(stats.max_radius, 0.0) << name;
    // All points land on the first center; extra centers are empty and
    // must not zero out smallest_cluster.
    EXPECT_EQ(stats.largest_cluster, data.size()) << name;
    EXPECT_EQ(stats.smallest_cluster, data.size()) << name;
    EXPECT_EQ(stats.empty_clusters, report.centers.size() - 1) << name;
  }
}

TEST(ApiSolver, UnsupportedBackendKind) {
  if (exec::backend_available(exec::BackendKind::OpenMP)) {
    GTEST_SKIP() << "all backends available in this build";
  }
  const PointSet data = test::small_gaussian_instance(3, 10, 43);
  api::SolveRequest request;
  request.points = &data;
  request.k = 3;
  request.algorithm = "gon";
  request.exec.kind = exec::BackendKind::OpenMP;
  EXPECT_EQ(error_kind_of(request), ErrorKind::UnsupportedBackend);
}

TEST(ApiSolver, BudgetExceededOnSequentialRun) {
  const PointSet data = test::small_gaussian_instance(5, 100, 44);
  api::SolveRequest request;
  request.points = &data;
  request.k = 5;
  request.algorithm = "gon";
  request.max_dist_evals = 10;  // GON needs (k-1)*(n-1) ~ 2000
  EXPECT_EQ(error_kind_of(request), ErrorKind::BudgetExceeded);
}

/// MRG configuration that needs several reduce rounds: capacity is
/// large enough for the input (>= ceil(n/m)) but far below k*m, so the
/// emitted sample must be re-clustered repeatedly (§3.3).
api::SolveRequest multi_round_request(const PointSet& data) {
  api::SolveRequest request;
  request.points = &data;
  request.k = 16;
  request.algorithm = "mrg";
  request.exec.machines = 32;
  MrgOptions options;
  options.capacity = 64;  // ceil(2048/32) = 64 <= c < k*m = 512
  request.options = options;
  return request;
}

TEST(ApiSolver, BudgetStopsMultiRoundMrgMidRun) {
  const PointSet data = test::small_gaussian_instance(16, 128, 45);
  ASSERT_EQ(data.size(), 2048u);

  // Unbudgeted reference: the run takes several rounds and many evals.
  api::SolveRequest reference = multi_round_request(data);
  api::Solver solver;
  const api::SolveReport full = solver.solve(reference);
  ASSERT_GE(full.iterations, 2);

  // Budget enforcement lives in the chunk-gated kernels: a starved
  // budget aborts inside the first round's first scan, before any
  // progress tick can fire.
  api::SolveRequest budgeted = multi_round_request(data);
  budgeted.max_dist_evals = 1;
  int events = 0;
  budgeted.progress = [&events](const ProgressEvent&) { ++events; };
  EXPECT_EQ(error_kind_of(budgeted), ErrorKind::BudgetExceeded);
  EXPECT_EQ(events, 0);

  // A mid-run budget (covers round 1, not the whole job) lets at least
  // one round complete — its progress event fires — and still aborts
  // with BudgetExceeded before reaching the reference's total.
  api::SolveRequest mid = multi_round_request(data);
  mid.budget = std::make_shared<exec::EvalBudget>(
      full.trace.rounds()[0].total_dist_evals + 100);
  int mid_events = 0;
  mid.progress = [&mid_events](const ProgressEvent&) { ++mid_events; };
  EXPECT_EQ(error_kind_of(mid), ErrorKind::BudgetExceeded);
  EXPECT_GE(mid_events, 1);
  EXPECT_LT(mid.budget->consumed(), full.dist_evals);
}

TEST(ApiSolver, CancellationStopsMrgWithinOneRound) {
  const PointSet data = test::small_gaussian_instance(16, 128, 46);
  api::SolveRequest request = multi_round_request(data);

  const CancellationToken token = CancellationToken::make();
  std::vector<ProgressEvent> events;
  request.cancel = token;
  request.progress = [&events, token](const ProgressEvent& event) {
    events.push_back(event);
    token.request_cancel();  // fire mid-run, after the first round
  };

  EXPECT_EQ(error_kind_of(request), ErrorKind::Cancelled);
  // The loop noticed the token at the next round boundary: exactly one
  // more progress tick ever happened.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].algorithm, "mrg");
  EXPECT_EQ(events[0].round, 1);
  EXPECT_GT(events[0].dist_evals, 0u);
}

TEST(ApiSolver, CancellationStopsEimWithinOneIteration) {
  Rng rng(47);
  const PointSet data =
      data::generate_gau(20'000, 10, 2, 100.0, 0.5, rng);
  api::SolveRequest request;
  request.points = &data;
  request.k = 5;
  request.algorithm = "eim";
  request.exec.machines = 16;

  const CancellationToken token = CancellationToken::make();
  std::vector<ProgressEvent> events;
  request.cancel = token;
  request.progress = [&events, token](const ProgressEvent& event) {
    events.push_back(event);
    token.request_cancel();
  };

  EXPECT_EQ(error_kind_of(request), ErrorKind::Cancelled);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].algorithm, "eim");
}

TEST(ApiSolver, BudgetOnlyRequestKeepsVariantEmbeddedProgress) {
  const PointSet data = test::small_gaussian_instance(16, 128, 54);
  api::SolveRequest request = multi_round_request(data);
  // Callback lives in the options variant; the request sets only a
  // budget. The budget wrapper must chain to (not silence) it.
  int events = 0;
  MrgOptions options = std::get<MrgOptions>(request.options);
  options.progress = [&events](const ProgressEvent&) { ++events; };
  request.options = options;
  request.max_dist_evals = std::uint64_t{1} << 60;  // never exceeded
  api::Solver solver;
  const api::SolveReport report = solver.solve(request);
  EXPECT_EQ(events, report.iterations);
}

TEST(ApiSolver, MrgDuProgressReportsJobCumulativeEvals) {
  const PointSet data = test::small_gaussian_instance(8, 100, 52);
  api::SolveRequest request;
  request.points = &data;
  request.k = 4;
  request.algorithm = "mrg-du";
  request.exec.machines = 8;
  DisjointUnionOptions options;
  options.instances = 4;
  request.options = options;
  std::vector<ProgressEvent> events;
  request.progress = [&events](const ProgressEvent& e) {
    events.push_back(e);
  };
  api::Solver solver;
  const api::SolveReport report = solver.solve(request);
  // Every chunk run fires at least one event (here each chunk is a
  // 2-round MRG with one reduce round) and dist_evals is cumulative
  // across chunks — the invariant global budget enforcement needs.
  ASSERT_GE(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].algorithm, "mrg-du");
    if (i > 0) {
      EXPECT_GT(events[i].dist_evals, events[i - 1].dist_evals);
    }
  }
  EXPECT_LE(events.back().dist_evals, report.dist_evals);
}

TEST(ApiSolver, BackendAccessorTracksRequestSuppliedBackend) {
  const PointSet data = test::small_gaussian_instance(3, 10, 53);
  api::SolveRequest request;
  request.points = &data;
  request.k = 3;
  request.algorithm = "gon";
  api::Solver solver;
  EXPECT_EQ(solver.backend(), nullptr);  // nothing ran yet
  const auto shared = exec::make_backend(exec::BackendKind::ThreadPool, 2);
  request.exec.backend = shared;
  (void)solver.solve(request);
  EXPECT_EQ(solver.backend(), shared);
  request.exec.backend = nullptr;  // fall back to the ExecSpec kind
  (void)solver.solve(request);
  ASSERT_NE(solver.backend(), nullptr);
  EXPECT_EQ(solver.backend()->kind(), exec::BackendKind::Sequential);
}

TEST(ApiSolver, PreCancelledTokenStopsBeforeDispatch) {
  const PointSet data = test::small_gaussian_instance(3, 10, 48);
  api::SolveRequest request;
  request.points = &data;
  request.k = 3;
  request.algorithm = "gon";
  const CancellationToken token = CancellationToken::make();
  token.request_cancel();
  request.cancel = token;
  bool progressed = false;
  request.progress = [&progressed](const ProgressEvent&) { progressed = true; };
  EXPECT_EQ(error_kind_of(request), ErrorKind::Cancelled);
  EXPECT_FALSE(progressed);
}

TEST(ApiSolver, RequestSeedOverridesVariantSeed) {
  const PointSet data = test::small_gaussian_instance(5, 40, 49);
  api::SolveRequest request;
  request.points = &data;
  request.k = 5;
  request.algorithm = "gon";
  GonzalezOptions options;
  options.first = GonzalezOptions::FirstCenter::Random;
  options.seed = 999;  // must be ignored in favour of request.seed
  request.options = options;
  request.seed = 7;
  api::Solver solver;
  const auto via_variant_seed = solver.solve(request);

  options.seed = 7;
  request.options = options;
  const auto via_request_seed = solver.solve(request);
  EXPECT_EQ(via_variant_seed.centers, via_request_seed.centers);
}

std::vector<std::shared_ptr<exec::ExecutionBackend>> all_backends() {
  std::vector<std::shared_ptr<exec::ExecutionBackend>> backends;
  backends.push_back(exec::make_backend(exec::BackendKind::Sequential));
  backends.push_back(exec::make_backend(exec::BackendKind::ThreadPool, 4));
  if (exec::backend_available(exec::BackendKind::OpenMP)) {
    backends.push_back(exec::make_backend(exec::BackendKind::OpenMP, 4));
  }
  return backends;
}

// The acceptance bar for the facade: routing through Solver must be
// bit-identical to calling the free functions directly, on every
// execution backend this build provides.
TEST(ApiDeterminism, SolverMatchesFreeFunctionPathOnAllBackends) {
  const PointSet data = test::small_gaussian_instance(8, 400, 50);
  const std::size_t k = 8;
  const std::uint64_t seed = 1234;
  const int machines = 16;
  const std::vector<index_t> all = data.all_indices();

  for (const auto& backend : all_backends()) {
    SCOPED_TRACE(std::string(backend->name()));
    DistanceOracle oracle(data);
    oracle.bind_executor(backend.get());
    const mr::SimCluster cluster(machines, 0, backend);

    api::SolveRequest request;
    request.points = &data;
    request.k = k;
    request.seed = seed;
    request.exec.backend = backend;
    request.exec.machines = machines;
    api::Solver solver;

    {  // GON
      GonzalezOptions options;
      options.first = GonzalezOptions::FirstCenter::Random;
      options.seed = seed;
      const GonzalezResult direct = gonzalez(oracle, all, k, options);

      request.algorithm = "gon";
      request.options = options;
      const api::SolveReport report = solver.solve(request);
      EXPECT_EQ(report.centers, direct.centers);
      EXPECT_EQ(report.radius_comparable, direct.radius_comparable);
      EXPECT_EQ(report.value,
                eval::covering_radius(oracle, all, direct.centers).radius);
    }
    {  // MRG (registry defaults == MrgOptions defaults)
      MrgOptions options;
      options.seed = seed;
      const MrgResult direct = mrg(oracle, all, k, cluster, options);

      request.algorithm = "mrg";
      request.options = std::monostate{};
      const api::SolveReport report = solver.solve(request);
      EXPECT_EQ(report.centers, direct.centers);
      EXPECT_EQ(report.radius_comparable, direct.radius_comparable);
      EXPECT_EQ(report.iterations, direct.reduce_rounds);
      EXPECT_EQ(report.rounds, direct.trace.num_rounds());
      EXPECT_EQ(report.dist_evals, direct.trace.total_dist_evals());
    }
    {  // EIM
      EimOptions options;
      options.seed = seed;
      const EimResult direct = eim(oracle, all, k, cluster, options);

      request.algorithm = "eim";
      request.options = std::monostate{};
      const api::SolveReport report = solver.solve(request);
      EXPECT_EQ(report.centers, direct.centers);
      EXPECT_EQ(report.radius_comparable, direct.radius_comparable);
      EXPECT_EQ(report.iterations, direct.iterations);
      EXPECT_EQ(report.sampled, direct.sampled);
      EXPECT_EQ(report.final_sample_size, direct.final_sample_size);
      EXPECT_EQ(report.dist_evals, direct.trace.total_dist_evals());
    }
  }
}

// harness::run_algorithm is now a thin adapter over the facade; its
// RunResult must agree with a direct Solver call.
TEST(ApiDeterminism, HarnessAdapterMatchesSolver) {
  const PointSet data = test::small_gaussian_instance(6, 100, 51);
  harness::AlgoConfig config;
  config.kind = harness::AlgoKind::MRG;
  config.machines = 12;
  const harness::RunResult run = harness::run_algorithm(config, data, 6, 99);

  api::SolveRequest request;
  request.points = &data;
  request.k = 6;
  request.algorithm = "mrg";
  request.seed = 99;
  request.exec.machines = 12;
  api::Solver solver;
  const api::SolveReport report = solver.solve(request);
  EXPECT_EQ(run.centers, report.centers);
  EXPECT_EQ(run.value, report.value);
  EXPECT_EQ(run.dist_evals, report.dist_evals);
  EXPECT_EQ(run.map_reduce_rounds, report.rounds);
}

TEST(CliAlgoKind, ResolvesRegistryNamesAndAliases) {
  {
    const char* argv[] = {"prog", "--algo=gonzalez"};
    cli::Args args(2, argv);
    EXPECT_EQ(cli::algo_kind(args), "gon");
  }
  {
    const char* argv[] = {"prog"};
    cli::Args args(1, argv);
    EXPECT_EQ(cli::algo_kind(args), "mrg");  // default fallback
    EXPECT_EQ(cli::algo_kind(args, ""), "");  // empty fallback = no choice
  }
  {
    const char* argv[] = {"prog", "--algo=nope"};
    cli::Args args(2, argv);
    EXPECT_THROW((void)cli::algo_kind(args), std::invalid_argument);
  }
}

TEST(CliAlgoKind, ListAlgosPrintsEveryRegisteredAlgorithm) {
  {
    const char* argv[] = {"prog"};
    cli::Args args(1, argv);
    EXPECT_FALSE(cli::list_algos(args));
  }
  const char* argv[] = {"prog", "--list-algos"};
  cli::Args args(2, argv);
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  EXPECT_TRUE(cli::list_algos(args, sink));
  std::rewind(sink);
  std::string output;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), sink)) > 0) {
    output.append(buffer, got);
  }
  std::fclose(sink);
  for (const auto& name : api::registry().names()) {
    EXPECT_NE(output.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace kc
