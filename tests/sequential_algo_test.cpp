// Tests for the sequential algorithms: GON (Gonzalez), HS
// (Hochbaum-Shmoys) and the brute-force exact solver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "test_util.hpp"

namespace kc {
namespace {

// ---------------------------------------------------------------- GON

TEST(Gonzalez, SelectsRequestedNumberOfCenters) {
  const PointSet ps = test::small_gaussian_instance(5, 40, 1);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  for (const std::size_t k : {1u, 2u, 7u, 25u}) {
    const auto result = gonzalez(oracle, all, k);
    EXPECT_EQ(result.centers.size(), k);
    EXPECT_TRUE(test::valid_center_set(result.centers, ps.size()));
  }
}

TEST(Gonzalez, AllPointsWhenKExceedsN) {
  const PointSet ps{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto result = gonzalez(oracle, all, 10);
  EXPECT_EQ(result.centers.size(), 3u);
  EXPECT_DOUBLE_EQ(result.radius_comparable, 0.0);
}

TEST(Gonzalez, RejectsInvalidArguments) {
  const PointSet ps{{0.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  EXPECT_THROW((void)gonzalez(oracle, all, 0), std::invalid_argument);
  EXPECT_THROW((void)gonzalez(oracle, {}, 1), std::invalid_argument);
}

TEST(Gonzalez, GreedyRadiiAreNonIncreasing) {
  const PointSet ps = test::small_gaussian_instance(8, 50, 2);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto result = gonzalez(oracle, all, 20);
  // greedy_radii[0] = 0 sentinel for the arbitrary first pick; from
  // index 1 on, each new center is picked at a non-increasing distance.
  ASSERT_EQ(result.greedy_radii_comparable.size(), 20u);
  for (std::size_t i = 2; i < result.greedy_radii_comparable.size(); ++i) {
    EXPECT_LE(result.greedy_radii_comparable[i],
              result.greedy_radii_comparable[i - 1] + 1e-12);
  }
}

TEST(Gonzalez, RadiusIsNextGreedyDistance) {
  // The covering radius after k centers equals the selection distance
  // the (k+1)-th center would have had.
  const PointSet ps = test::small_gaussian_instance(6, 30, 3);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto k5 = gonzalez(oracle, all, 5);
  const auto k6 = gonzalez(oracle, all, 6);
  ASSERT_EQ(k6.greedy_radii_comparable.size(), 6u);
  EXPECT_DOUBLE_EQ(k5.radius_comparable, k6.greedy_radii_comparable[5]);
}

TEST(Gonzalez, FirstCenterIsSubsetFront) {
  const PointSet ps{{5.0, 5.0}, {0.0, 0.0}, {9.0, 9.0}};
  const DistanceOracle oracle(ps);
  const std::vector<index_t> subset{2, 0, 1};
  const auto result = gonzalez(oracle, subset, 2);
  EXPECT_EQ(result.centers[0], 2u);  // first element of the subset
}

TEST(Gonzalez, RandomFirstCenterIsSeedDeterministic) {
  const PointSet ps = test::small_gaussian_instance(4, 25, 4);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  GonzalezOptions options;
  options.first = GonzalezOptions::FirstCenter::Random;
  options.seed = 99;
  const auto a = gonzalez(oracle, all, 5, options);
  const auto b = gonzalez(oracle, all, 5, options);
  EXPECT_EQ(a.centers, b.centers);
  options.seed = 100;
  const auto c = gonzalez(oracle, all, 5, options);
  //

  // Different seed picks a different start (overwhelmingly likely on
  // 100 points); the radius may coincide but the first center must
  // match the seeded draw, so just check determinism differs somewhere.
  EXPECT_NE(a.centers[0], c.centers[0]);
}

TEST(Gonzalez, ExactDistanceEvaluationCount) {
  // Each of the k update sweeps evaluates |pts| pairs: k * n total
  // (the O(k*N) of §5.1 with constant exactly 1).
  const PointSet ps = test::small_gaussian_instance(4, 100, 5);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  counters::reset();
  (void)gonzalez(oracle, all, 7);
  EXPECT_EQ(counters::read().distance_evals, 7u * ps.size());
}

TEST(Gonzalez, WorksOnSubsetsWithGlobalIds) {
  const PointSet ps = test::small_gaussian_instance(4, 50, 6);
  const DistanceOracle oracle(ps);
  // Odd indices only.
  std::vector<index_t> subset;
  for (index_t i = 1; i < ps.size(); i += 2) subset.push_back(i);
  const auto result = gonzalez(oracle, subset, 4);
  for (const index_t c : result.centers) {
    EXPECT_EQ(c % 2, 1u) << "center outside the subset";
  }
}

TEST(Gonzalez, HandlesDuplicatePoints) {
  const PointSet ps = test::all_duplicates(100);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto result = gonzalez(oracle, all, 5);
  EXPECT_EQ(result.centers.size(), 5u);
  EXPECT_DOUBLE_EQ(result.radius_comparable, 0.0);
}

class GonzalezApproximation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GonzalezApproximation, WithinTwiceExactOptimum) {
  // Random small instances solved exactly by brute force.
  Rng rng(GetParam());
  const std::size_t n = 12 + rng.uniform_int(6);
  const std::size_t k = 2 + rng.uniform_int(2);
  PointSet ps(n, 2);
  for (index_t i = 0; i < n; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 10);
  }
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto opt = brute_force_opt(oracle, all, k);
  const auto gon = gonzalez(oracle, all, k);
  EXPECT_LE(oracle.to_reported(gon.radius_comparable),
            2.0 * oracle.to_reported(opt.radius_comparable) + 1e-9);
}

TEST_P(GonzalezApproximation, WithinTwicePlantedOptimum) {
  Rng rng(GetParam() + 1000);
  const auto inst = data::make_planted(5, 9, 2.0, 12.0, 2, rng);
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();
  const auto gon = gonzalez(oracle, all, 5);
  EXPECT_LE(oracle.to_reported(gon.radius_comparable),
            2.0 * inst.opt_radius + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GonzalezApproximation,
                         ::testing::Range<std::uint64_t>(0, 10));

// ---------------------------------------------------------------- HS

TEST(HochbaumShmoys, SelectsAtMostK) {
  const PointSet ps = test::small_gaussian_instance(5, 20, 7);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto result = hochbaum_shmoys(oracle, all, 5);
  EXPECT_LE(result.centers.size(), 5u);
  EXPECT_TRUE(test::valid_center_set(result.centers, ps.size()));
}

TEST(HochbaumShmoys, AllPointsWhenKExceedsN) {
  const PointSet ps{{0.0, 0.0}, {3.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto result = hochbaum_shmoys(oracle, all, 5);
  EXPECT_EQ(result.centers.size(), 2u);
  EXPECT_DOUBLE_EQ(result.radius_comparable, 0.0);
}

TEST(HochbaumShmoys, RejectsOversizedInput) {
  const PointSet ps = test::small_gaussian_instance(2, 50, 8);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  HochbaumShmoysOptions options;
  options.max_points = 10;
  EXPECT_THROW((void)hochbaum_shmoys(oracle, all, 2, options),
               std::length_error);
}

TEST(HochbaumShmoys, RejectsInvalidArguments) {
  const PointSet ps{{0.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  EXPECT_THROW((void)hochbaum_shmoys(oracle, all, 0), std::invalid_argument);
  EXPECT_THROW((void)hochbaum_shmoys(oracle, {}, 1), std::invalid_argument);
}

TEST(HochbaumShmoys, ReportedRadiusMatchesEvaluation) {
  const PointSet ps = test::small_gaussian_instance(4, 15, 9);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto result = hochbaum_shmoys(oracle, all, 4);
  EXPECT_NEAR(oracle.to_reported(result.radius_comparable),
              test::value_of(oracle, all, result.centers), 1e-9);
}

class HsApproximation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HsApproximation, WithinTwiceExactOptimum) {
  Rng rng(GetParam());
  const std::size_t n = 10 + rng.uniform_int(8);
  const std::size_t k = 2 + rng.uniform_int(2);
  PointSet ps(n, 2);
  for (index_t i = 0; i < n; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 10);
  }
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto opt = brute_force_opt(oracle, all, k);
  const auto hs = hochbaum_shmoys(oracle, all, k);
  EXPECT_LE(oracle.to_reported(hs.radius_comparable),
            2.0 * oracle.to_reported(opt.radius_comparable) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HsApproximation,
                         ::testing::Range<std::uint64_t>(100, 110));

TEST(HochbaumShmoys, NonEuclideanMetricsWork) {
  Rng rng(10);
  PointSet ps(30, 3);
  for (index_t i = 0; i < 30; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 10);
  }
  for (const auto metric : {MetricKind::L1, MetricKind::Linf}) {
    const DistanceOracle oracle(ps, metric);
    const auto all = ps.all_indices();
    const auto hs = hochbaum_shmoys(oracle, all, 3);
    const auto opt = brute_force_opt(oracle, all, 3);
    EXPECT_LE(hs.radius_comparable, 2.0 * opt.radius_comparable + 1e-9);
  }
}

// ---------------------------------------------------------------- brute

TEST(BruteForce, SolvesHandComputableInstance) {
  // Two tight pairs far apart: k=2 optimum picks one point per pair.
  const PointSet ps{{0.0, 0.0}, {1.0, 0.0}, {100.0, 0.0}, {101.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto opt = brute_force_opt(oracle, all, 2);
  EXPECT_DOUBLE_EQ(oracle.to_reported(opt.radius_comparable), 1.0);
}

TEST(BruteForce, SingleCenterPicksMinimaxPoint) {
  const PointSet ps{{0.0, 0.0}, {2.0, 0.0}, {10.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto opt = brute_force_opt(oracle, all, 1);
  EXPECT_EQ(opt.centers.size(), 1u);
  EXPECT_EQ(opt.centers[0], 1u);  // point 2.0 minimizes the max (8.0)
  EXPECT_DOUBLE_EQ(oracle.to_reported(opt.radius_comparable), 8.0);
}

TEST(BruteForce, KGreaterEqualNIsZeroRadius) {
  const PointSet ps{{0.0, 0.0}, {5.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto opt = brute_force_opt(oracle, all, 2);
  EXPECT_DOUBLE_EQ(opt.radius_comparable, 0.0);
  EXPECT_EQ(opt.centers.size(), 2u);
}

TEST(BruteForce, GuardsCombinatorialExplosion) {
  const PointSet ps = test::small_gaussian_instance(10, 10, 11);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  EXPECT_THROW((void)brute_force_opt(oracle, all, 20, /*max_subsets=*/1000),
               std::length_error);
}

TEST(BruteForce, NeverWorseThanAnyHeuristic) {
  Rng rng(12);
  PointSet ps(14, 2);
  for (index_t i = 0; i < 14; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 10);
  }
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto opt = brute_force_opt(oracle, all, 3);
  const auto gon = gonzalez(oracle, all, 3);
  const auto hs = hochbaum_shmoys(oracle, all, 3);
  EXPECT_LE(opt.radius_comparable, gon.radius_comparable + 1e-12);
  EXPECT_LE(opt.radius_comparable, hs.radius_comparable + 1e-12);
}

// ---------------------------------------------------------------- driver

TEST(Driver, DispatchesBothAlgorithms) {
  const PointSet ps = test::small_gaussian_instance(3, 20, 13);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto gon = run_sequential(SeqAlgo::Gonzalez, oracle, all, 3);
  const auto hs = run_sequential(SeqAlgo::HochbaumShmoys, oracle, all, 3);
  EXPECT_EQ(gon.centers.size(), 3u);
  EXPECT_LE(hs.centers.size(), 3u);
}

TEST(Driver, Names) {
  EXPECT_EQ(to_string(SeqAlgo::Gonzalez), "GON");
  EXPECT_EQ(to_string(SeqAlgo::HochbaumShmoys), "HS");
}

}  // namespace
}  // namespace kc
