// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/kcenter.hpp"

namespace kc::test {

/// Small clustered instance for algorithm tests: `clusters` Gaussian
/// blobs of `per_cluster` points each in 2-D.
inline PointSet small_gaussian_instance(std::size_t clusters,
                                        std::size_t per_cluster,
                                        std::uint64_t seed,
                                        double side = 100.0,
                                        double sigma = 0.5) {
  Rng rng(seed);
  return data::generate_gau(clusters * per_cluster, clusters, 2, side, sigma,
                            rng);
}

/// A point set where every point is identical: the adversarial input
/// for termination tests (all pairwise distances are zero).
inline PointSet all_duplicates(std::size_t n, std::size_t dim = 2) {
  PointSet ps(n, dim);
  for (index_t i = 0; i < n; ++i) {
    auto p = ps.mutable_point(i);
    for (auto& c : p) c = 42.0;
  }
  return ps;
}

/// True if `centers` is a subset of `universe` with no duplicates.
inline bool valid_center_set(std::span<const index_t> centers,
                             std::size_t universe_size) {
  std::vector<bool> seen(universe_size, false);
  for (const index_t c : centers) {
    if (c >= universe_size) return false;
    if (seen[c]) return false;
    seen[c] = true;
  }
  return true;
}

/// Covering radius in reported scale, sequential (no OpenMP) so tests
/// are deterministic in work accounting too.
inline double value_of(const DistanceOracle& oracle,
                       std::span<const index_t> pts,
                       std::span<const index_t> centers) {
  return eval::covering_radius(oracle, pts, centers, /*parallel=*/false).radius;
}

/// The hand-crafted 1-D instance on which 2-round MRG with block
/// partitioning and first-point seeding realizes approximation ratio
/// ~3.81 (the paper's future-work section states the factor 4 is
/// tight). Layout: four unit-radius clusters A{0,1,2}, B{4,5,6.05},
/// C{8,9,10}, D{12,13,14}; exact OPT = 1.05 (one center per cluster,
/// B forces 1.05); block partition M1 = first six points, M2 = last
/// six leads GON astray as derived in the accompanying test comments.
struct AdversarialMrgInstance {
  PointSet points{12, 1};
  std::size_t k = 4;
  int machines = 2;
  double opt = 1.05;
  double expected_value = 4.0;

  AdversarialMrgInstance() {
    const double coords[12] = {// machine 1's block
                               4.0, 13.0, 9.0, 8.0, 12.0, 5.0,
                               // machine 2's block
                               2.0, 14.0, 6.05, 10.0, 0.0, 1.0};
    for (index_t i = 0; i < 12; ++i) points.mutable_point(i)[0] = coords[i];
  }
};

}  // namespace kc::test
