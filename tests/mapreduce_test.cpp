#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "geom/distance.hpp"
#include "mapreduce/cluster.hpp"
#include "mapreduce/partition.hpp"
#include "mapreduce/trace.hpp"
#include "rng/rng.hpp"

namespace kc::mr {
namespace {

std::vector<index_t> iota_items(std::size_t n) {
  std::vector<index_t> v(n);
  std::iota(v.begin(), v.end(), index_t{0});
  return v;
}

// ---------------------------------------------------------------- partition

struct PartitionCase {
  PartitionStrategy strategy;
  std::size_t n;
  int machines;
};

class PartitionInvariants : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionInvariants, UnionEqualsInputAndSizesBounded) {
  const auto [strategy, n, machines] = GetParam();
  const auto items = iota_items(n);
  Rng rng(5);
  const auto parts = partition_items(items, machines, strategy, &rng);

  // Union check (as multiset: every input exactly once).
  std::vector<int> seen(n, 0);
  std::size_t total = 0;
  for (const auto& part : parts) {
    EXPECT_FALSE(part.empty());
    for (const index_t x : part) {
      ASSERT_LT(x, n);
      ++seen[x];
      ++total;
    }
  }
  EXPECT_EQ(total, n);
  for (const int count : seen) EXPECT_EQ(count, 1);

  // Size bound: |part| <= ceil(n / machines) (Algorithm 1 line 3).
  const std::size_t cap = (n + machines - 1) / machines;
  for (const auto& part : parts) EXPECT_LE(part.size(), cap);

  // Machine bound.
  EXPECT_LE(parts.size(), static_cast<std::size_t>(machines));
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PartitionInvariants,
    ::testing::Values(
        PartitionCase{PartitionStrategy::Block, 100, 7},
        PartitionCase{PartitionStrategy::Block, 1000, 50},
        PartitionCase{PartitionStrategy::Block, 5, 50},
        PartitionCase{PartitionStrategy::RoundRobin, 100, 7},
        PartitionCase{PartitionStrategy::RoundRobin, 999, 50},
        PartitionCase{PartitionStrategy::Shuffled, 100, 7},
        PartitionCase{PartitionStrategy::Shuffled, 1000, 13},
        PartitionCase{PartitionStrategy::Block, 1, 4},
        PartitionCase{PartitionStrategy::RoundRobin, 4, 4}),
    [](const auto& param_info) {
      std::string name(to_string(param_info.param.strategy));
      std::erase(name, '-');  // gtest test names must be alphanumeric
      return name + "_n" + std::to_string(param_info.param.n) + "_m" +
             std::to_string(param_info.param.machines);
    });

TEST(Partition, BlockIsContiguous) {
  const auto items = iota_items(10);
  const auto parts = partition_items(items, 3, PartitionStrategy::Block);
  ASSERT_EQ(parts.size(), 3u);
  // Sizes 4,3,3 and contiguous ranges.
  EXPECT_EQ(parts[0].size(), 4u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
  for (const auto& part : parts) {
    for (std::size_t i = 1; i < part.size(); ++i) {
      EXPECT_EQ(part[i], part[i - 1] + 1);
    }
  }
}

TEST(Partition, RoundRobinInterleaves) {
  const auto items = iota_items(9);
  const auto parts = partition_items(items, 3, PartitionStrategy::RoundRobin);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::vector<index_t>{0, 3, 6}));
  EXPECT_EQ(parts[1], (std::vector<index_t>{1, 4, 7}));
  EXPECT_EQ(parts[2], (std::vector<index_t>{2, 5, 8}));
}

TEST(Partition, ShuffledRequiresRng) {
  const auto items = iota_items(10);
  EXPECT_THROW(
      (void)partition_items(items, 2, PartitionStrategy::Shuffled, nullptr),
      std::invalid_argument);
}

TEST(Partition, ShuffledIsSeedDeterministic) {
  const auto items = iota_items(50);
  Rng r1(9);
  Rng r2(9);
  const auto a = partition_items(items, 5, PartitionStrategy::Shuffled, &r1);
  const auto b = partition_items(items, 5, PartitionStrategy::Shuffled, &r2);
  EXPECT_EQ(a, b);
}

TEST(Partition, ExplicitHonorsAssignment) {
  const auto items = iota_items(6);
  const std::vector<int> assignment{2, 0, 2, 1, 0, 2};
  const auto parts = partition_items(items, 3, PartitionStrategy::Explicit,
                                     nullptr, assignment);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::vector<index_t>{1, 4}));
  EXPECT_EQ(parts[1], (std::vector<index_t>{3}));
  EXPECT_EQ(parts[2], (std::vector<index_t>{0, 2, 5}));
}

TEST(Partition, ExplicitDropsEmptyMachines) {
  const auto items = iota_items(3);
  const std::vector<int> assignment{4, 4, 4};
  const auto parts = partition_items(items, 5, PartitionStrategy::Explicit,
                                     nullptr, assignment);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 3u);
}

TEST(Partition, ExplicitValidatesArity) {
  const auto items = iota_items(4);
  const std::vector<int> bad{0, 1};
  EXPECT_THROW((void)partition_items(items, 2, PartitionStrategy::Explicit,
                                     nullptr, bad),
               std::invalid_argument);
}

TEST(Partition, ExplicitValidatesMachineRange) {
  const auto items = iota_items(2);
  const std::vector<int> bad{0, 7};
  EXPECT_THROW((void)partition_items(items, 2, PartitionStrategy::Explicit,
                                     nullptr, bad),
               std::out_of_range);
}

TEST(Partition, RejectsNonPositiveMachines) {
  const auto items = iota_items(4);
  EXPECT_THROW((void)partition_items(items, 0, PartitionStrategy::Block),
               std::invalid_argument);
}

TEST(Partition, EmptyInputYieldsNoParts) {
  const std::vector<index_t> empty;
  EXPECT_TRUE(partition_items(empty, 4, PartitionStrategy::Block).empty());
}

// ---------------------------------------------------------------- cluster

TEST(SimCluster, RejectsNonPositiveMachines) {
  EXPECT_THROW(SimCluster(0), std::invalid_argument);
}

TEST(SimCluster, RunsAllTasksAndRecordsStats) {
  const SimCluster cluster(4);
  JobTrace trace;
  std::vector<int> hits(4, 0);
  cluster.run_indexed_round("work", 4, [&](int machine) { hits[machine] = 1; },
                            trace);
  for (const int h : hits) EXPECT_EQ(h, 1);
  ASSERT_EQ(trace.num_rounds(), 1);
  const auto& round = trace.rounds()[0];
  EXPECT_EQ(round.machines_used, 4);
  EXPECT_EQ(round.name, "work");
  EXPECT_GE(round.max_machine_seconds, 0.0);
  EXPECT_GE(round.total_machine_seconds, round.max_machine_seconds);
}

TEST(SimCluster, MaxMachineTimeDominatesSkewedRound) {
  const SimCluster cluster(3);
  JobTrace trace;
  cluster.run_indexed_round(
      "skewed", 3,
      [&](int machine) {
        if (machine == 1) {
          // One straggler dominates the round.
          volatile double sink = 0.0;
          for (int i = 0; i < 3000000; ++i) sink = sink + i * 0.5;
        }
      },
      trace);
  const auto& round = trace.rounds()[0];
  // The max must be a large share of the total: the two idle machines
  // contribute (almost) nothing.
  EXPECT_GT(round.max_machine_seconds, 0.5 * round.total_machine_seconds);
}

// Simulated time is per-task *thread CPU time*: a task that sleeps
// (or blocks on I/O, or waits for a core) performs no work, so it must
// not inflate the paper's processing-time metric the way wall-clock
// charging did.
TEST(SimCluster, WallClockSleepDoesNotInflateSimulatedTime) {
  for (const auto kind :
       {exec::BackendKind::Sequential, exec::BackendKind::ThreadPool}) {
    const SimCluster cluster(3, 0, kind, /*threads=*/3);
    JobTrace trace;
    cluster.run_indexed_round(
        "sleepy", 3,
        [&](int machine) {
          if (machine == 1) {
            std::this_thread::sleep_for(std::chrono::milliseconds(60));
          }
        },
        trace);
    const auto& round = trace.rounds()[0];
    // 60ms of sleep, virtually zero CPU: the simulated max must be far
    // below the wall time of the sleeping task.
    EXPECT_LT(round.max_machine_seconds, 0.030)
        << "backend " << exec::to_string(kind);
    EXPECT_GE(round.wall_seconds, 0.050);
  }
}

// And a task that *computes* is charged its CPU time even when other
// tasks contend for the host: the busy task's charge reflects its own
// work, not the host's scheduling.
TEST(SimCluster, BusyTaskChargedItsOwnCpuTime) {
  const SimCluster cluster(2);
  JobTrace trace;
  cluster.run_indexed_round(
      "busy", 2,
      [&](int machine) {
        if (machine == 0) {
          volatile double sink = 0.0;
          for (int i = 0; i < 2'000'000; ++i) sink = sink + i * 0.5;
        }
      },
      trace);
  const auto& round = trace.rounds()[0];
  EXPECT_GT(round.max_machine_seconds, 0.0);
  EXPECT_GE(round.total_machine_seconds, round.max_machine_seconds);
}

TEST(SimCluster, AttributesDistanceWorkToRound) {
  const PointSet ps{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  const DistanceOracle oracle(ps);
  const SimCluster cluster(2);
  JobTrace trace;
  cluster.run_indexed_round(
      "dist", 2,
      [&](int machine) {
        (void)oracle.comparable(0, static_cast<index_t>(machine + 1));
        if (machine == 1) (void)oracle.comparable(2, 3);
      },
      trace);
  const auto& round = trace.rounds()[0];
  EXPECT_EQ(round.total_dist_evals, 3u);
  EXPECT_EQ(round.max_machine_dist_evals, 2u);
}

TEST(SimCluster, CapacityCheckThrowsWhenExceeded) {
  const SimCluster cluster(2, /*capacity_items=*/100);
  EXPECT_NO_THROW(cluster.check_capacity(100, "ok"));
  EXPECT_THROW(cluster.check_capacity(101, "too big"), std::length_error);
}

TEST(SimCluster, UnlimitedCapacityNeverThrows) {
  const SimCluster cluster(2, 0);
  EXPECT_NO_THROW(cluster.check_capacity(1u << 30, "huge"));
}

TEST(SimCluster, BackendsProduceSameResults) {
  // Results must be backend-independent: each task writes its own slot.
  const auto body = [](int machine, std::vector<std::uint64_t>& out) {
    Rng rng(static_cast<std::uint64_t>(machine) + 1);
    out[machine] = rng();
  };
  const auto run_with = [&](exec::BackendKind kind) {
    std::vector<std::uint64_t> out(8, 0);
    const SimCluster cluster(8, 0, kind, /*threads=*/4);
    JobTrace trace;
    cluster.run_indexed_round("r", 8, [&](int m) { body(m, out); }, trace);
    return out;
  };
  const auto seq = run_with(exec::BackendKind::Sequential);
  EXPECT_EQ(seq, run_with(exec::BackendKind::ThreadPool));
  if (exec::backend_available(exec::BackendKind::OpenMP)) {
    EXPECT_EQ(seq, run_with(exec::BackendKind::OpenMP));
  }
}

TEST(SimCluster, RecordsEffectiveBackendInRoundStats) {
  const SimCluster cluster(2, 0, exec::BackendKind::ThreadPool, 2);
  EXPECT_EQ(cluster.backend().name(), "threadpool");
  JobTrace trace;
  cluster.run_indexed_round("r", 2, [](int) {}, trace);
  EXPECT_EQ(trace.rounds()[0].backend, "threadpool");
  EXPECT_NE(trace.rounds()[0].summary().find("exec=threadpool"),
            std::string::npos);
}

TEST(SimCluster, UnavailableBackendThrowsInsteadOfDegrading) {
  if (exec::backend_available(exec::BackendKind::OpenMP)) {
    GTEST_SKIP() << "OpenMP is available in this build";
  }
  EXPECT_THROW(SimCluster(2, 0, exec::BackendKind::OpenMP),
               std::runtime_error);
}

// ---------------------------------------------------------------- trace

TEST(JobTrace, SimulatedTimeIsSumOfRoundMaxima) {
  JobTrace trace;
  RoundStats r1;
  r1.max_machine_seconds = 1.5;
  r1.total_machine_seconds = 6.0;
  RoundStats r2;
  r2.max_machine_seconds = 0.5;
  r2.total_machine_seconds = 0.5;
  trace.add_round(r1);
  trace.add_round(r2);
  EXPECT_DOUBLE_EQ(trace.simulated_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(trace.total_machine_seconds(), 6.5);
}

TEST(JobTrace, RoundIndicesAreAssignedSequentially) {
  JobTrace trace;
  trace.add_round(RoundStats{});
  trace.add_round(RoundStats{});
  trace.add_round(RoundStats{});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(trace.rounds()[i].round_index, i);
  }
}

TEST(JobTrace, AggregatesWorkAndShuffle) {
  JobTrace trace;
  RoundStats r;
  r.total_dist_evals = 100;
  r.shuffle_items = 7;
  r.machines_used = 3;
  trace.add_round(r);
  r.total_dist_evals = 50;
  r.shuffle_items = 5;
  r.machines_used = 9;
  trace.add_round(r);
  EXPECT_EQ(trace.total_dist_evals(), 150u);
  EXPECT_EQ(trace.total_shuffle_items(), 12u);
  EXPECT_EQ(trace.max_machines_used(), 9);
}

TEST(JobTrace, AppendReindexesRounds) {
  JobTrace a;
  a.add_round(RoundStats{});
  JobTrace b;
  b.add_round(RoundStats{});
  b.add_round(RoundStats{});
  a.append(b);
  ASSERT_EQ(a.num_rounds(), 3);
  EXPECT_EQ(a.rounds()[2].round_index, 2);
}

TEST(JobTrace, ToStringHasOneLinePerRound) {
  JobTrace trace;
  RoundStats r;
  r.name = "alpha";
  trace.add_round(r);
  r.name = "beta";
  trace.add_round(r);
  const std::string s = trace.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

}  // namespace
}  // namespace kc::mr
