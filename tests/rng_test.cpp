#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace kc {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 123;
  std::uint64_t s2 = 123;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  EXPECT_NE(splitmix64_next(a), splitmix64_next(b));
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  // xoshiro must not collapse to the all-zero state.
  std::uint64_t acc = 0;
  for (int i = 0; i < 16; ++i) acc |= rng();
  EXPECT_NE(acc, 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 17.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 17.0);
  }
}

TEST(Rng, UniformIntWithinBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(13), 13u);
  }
}

TEST(Rng, UniformIntZeroBoundReturnsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(0), 0u);
}

TEST(Rng, UniformIntCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaledMeanSigma) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(10.0, 2.0);
    sum += g;
    sum_sq += (g - 10.0) * (g - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.log_uniform(1e2, 1e8);
    EXPECT_GE(v, 1e2 * (1 - 1e-12));
    EXPECT_LE(v, 1e8 * (1 + 1e-12));
  }
}

TEST(Rng, LogUniformMedianIsGeometricMean) {
  Rng rng(41);
  std::vector<double> vals(20001);
  for (auto& v : vals) v = rng.log_uniform(1.0, 1e6);
  std::nth_element(vals.begin(), vals.begin() + 10000, vals.end());
  EXPECT_NEAR(std::log10(vals[10000]), 3.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(43);
  Rng child_a = parent.split(0);
  Rng child_b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a() == child_b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(47);
  Rng p2(47);
  Rng c1 = p1.split(5);
  Rng c2 = p2.split(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(59);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += (v[i] != i) ? 1 : 0;
  EXPECT_GT(moved, 50);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(61);
  const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalDegenerateWeights) {
  Rng rng(67);
  const std::vector<double> zero{0.0, 0.0, 0.0};
  EXPECT_EQ(rng.categorical(zero), 2u);  // documented fallback: last index
  const std::vector<double> single{5.0};
  EXPECT_EQ(rng.categorical(single), 0u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace kc
