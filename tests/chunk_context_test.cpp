// Chunk-granular stop conditions: the EvalBudget primitive, the gated
// oracle scans (cancel/budget observed between ~kGateEvals-pair
// chunks, on every backend), and the end-to-end acceptance bar — an
// MRG/EIM solve whose single round performs >= 10M point-pair
// evaluations stops well short of the full scan when its budget runs
// dry or its token fires, with Error::budget-exceeded / cancelled
// semantics preserved through the facade.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "api/solver.hpp"
#include "data/generators.hpp"
#include "eval/evaluate.hpp"
#include "exec/chunk_context.hpp"
#include "test_util.hpp"

namespace kc {
namespace {

using exec::ChunkContext;
using exec::EvalBudget;
using exec::StopReason;

// -------------------------------------------------------------- EvalBudget

TEST(EvalBudget, ChargesUntilExhaustedWithoutPartialDeduction) {
  EvalBudget budget(100);
  EXPECT_TRUE(budget.try_charge(60));
  EXPECT_EQ(budget.consumed(), 60u);
  EXPECT_FALSE(budget.try_charge(50));  // would overdraw: nothing deducted
  EXPECT_EQ(budget.consumed(), 60u);
  EXPECT_TRUE(budget.try_charge(40));  // exactly the remainder is fine
  EXPECT_EQ(budget.consumed(), 100u);
  EXPECT_EQ(budget.remaining(), 0u);
  EXPECT_FALSE(budget.try_charge(1));
}

TEST(EvalBudget, ConcurrentChargesNeverOverdraw) {
  constexpr std::uint64_t kLimit = 100'000;
  EvalBudget budget(kLimit);
  std::atomic<std::uint64_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        if (budget.try_charge(7)) granted.fetch_add(7);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), budget.consumed());
  EXPECT_LE(budget.consumed(), kLimit);
  // 8 * 10'000 * 7 = 560'000 demanded: the budget must be (nearly)
  // fully handed out — at most one failed last charge of slack.
  EXPECT_GE(budget.consumed(), kLimit - 7);
}

TEST(ChunkContext, ChecksCancelBeforeBudgetAndChargesNothingOnStop) {
  ChunkContext ctx;
  ctx.cancel = CancellationToken::make();
  ctx.budget = std::make_shared<EvalBudget>(1000);
  EXPECT_TRUE(ctx.armed());
  EXPECT_EQ(ctx.charge(100), StopReason::None);
  ctx.cancel.request_cancel();
  EXPECT_EQ(ctx.charge(100), StopReason::Cancelled);  // not BudgetExhausted
  EXPECT_EQ(ctx.budget->consumed(), 100u);            // stop charged nothing
  EXPECT_EQ(ctx.check(), StopReason::Cancelled);
}

TEST(ChunkContext, InertByDefault) {
  const ChunkContext ctx;
  EXPECT_FALSE(ctx.armed());
  EXPECT_EQ(ctx.check(), StopReason::None);
  EXPECT_EQ(ctx.charge(std::uint64_t{1} << 40), StopReason::None);
}

// ------------------------------------------------------ gated oracle scans

class GatedScans : public ::testing::TestWithParam<exec::BackendKind> {};

TEST_P(GatedScans, BudgetStopsUpdateNearestMultiWithinOneGate) {
  if (!exec::backend_available(GetParam())) GTEST_SKIP();
  const auto backend = exec::make_backend(GetParam(), 4);

  // 1M ids x 16 centers = 16M pair evals in one bulk scan.
  Rng rng(11);
  const PointSet data = data::generate_gau(1'000'000, 16, 2, 100.0, 0.5, rng);
  DistanceOracle oracle(data);
  oracle.bind_executor(backend.get());

  constexpr std::uint64_t kBudget = 100'000;
  ChunkContext ctx;
  ctx.budget = std::make_shared<EvalBudget>(kBudget);
  oracle.bind_context(&ctx);

  const std::vector<index_t> ids = data.all_indices();
  std::vector<index_t> centers(16);
  std::iota(centers.begin(), centers.end(), index_t{0});
  std::vector<double> best(ids.size(), kInfDist);

  EXPECT_THROW(oracle.update_nearest_multi(ids, centers, best),
               BudgetExceededError);
  // The scan stopped within one gate chunk of exhaustion: everything
  // the budget could cover ran, nothing beyond one further gate did.
  EXPECT_LE(ctx.budget->consumed(), kBudget);
  EXPECT_GE(ctx.budget->consumed(), kBudget - exec::kGateEvals);
}

TEST_P(GatedScans, CancellationStopsScanMidFlight) {
  if (!exec::backend_available(GetParam())) GTEST_SKIP();
  const auto backend = exec::make_backend(GetParam(), 4);

  Rng rng(12);
  const PointSet data = data::generate_gau(1'000'000, 16, 2, 100.0, 0.5, rng);
  DistanceOracle oracle(data);
  oracle.bind_executor(backend.get());

  // Huge-limit budget as an odometer: the canceller waits for the scan
  // to start (first gate charged), fires, and the scan must stop well
  // short of its 16M pair evaluations.
  constexpr std::uint64_t kTotalEvals = 16'000'000;
  ChunkContext ctx;
  ctx.cancel = CancellationToken::make();
  ctx.budget = std::make_shared<EvalBudget>(std::uint64_t{1} << 40);
  oracle.bind_context(&ctx);

  std::thread canceller([&] {
    while (ctx.budget->consumed() == 0) std::this_thread::yield();
    ctx.cancel.request_cancel();
  });

  const std::vector<index_t> ids = data.all_indices();
  std::vector<index_t> centers(16);
  std::iota(centers.begin(), centers.end(), index_t{0});
  std::vector<double> best(ids.size(), kInfDist);
  // On a loaded (or single-core) host the canceller may not get a
  // timeslice before one scan finishes, so keep scanning until the
  // token lands; it must then stop the in-flight scan between gates,
  // well short of that scan's 16M pair evaluations.
  bool cancelled = false;
  std::uint64_t consumed_before_last = 0;
  for (int scan = 0; scan < 1000 && !cancelled; ++scan) {
    consumed_before_last = ctx.budget->consumed();
    try {
      oracle.update_nearest_multi(ids, centers, best);
    } catch (const CancelledError&) {
      cancelled = true;
    }
  }
  canceller.join();
  ASSERT_TRUE(cancelled);
  EXPECT_LT(ctx.budget->consumed() - consumed_before_last, kTotalEvals);
}

TEST_P(GatedScans, CompletedScansChargeExactlyTheirEvalsAndStayBitIdentical) {
  if (!exec::backend_available(GetParam())) GTEST_SKIP();
  const auto backend = exec::make_backend(GetParam(), 4);

  const PointSet data = test::small_gaussian_instance(8, 4000, 13);
  const std::vector<index_t> ids = data.all_indices();
  const std::size_t n = ids.size();

  // Ungated reference.
  DistanceOracle plain(data);
  plain.bind_executor(backend.get());
  std::vector<double> want(n, kInfDist);
  plain.update_nearest(ids, 0, want);
  const auto pair_matrix_want = plain.pairwise_comparable(
      std::span<const index_t>(ids).subspan(0, 600));

  // Gated run with an ample budget: identical results, exact charge.
  DistanceOracle gated(data);
  gated.bind_executor(backend.get());
  ChunkContext ctx;
  ctx.budget = std::make_shared<EvalBudget>(std::uint64_t{1} << 40);
  gated.bind_context(&ctx);

  std::vector<double> got(n, kInfDist);
  gated.update_nearest(ids, 0, got);
  EXPECT_EQ(ctx.budget->consumed(), n);
  EXPECT_EQ(got, want);

  const auto before = ctx.budget->consumed();
  const auto pair_matrix_got = gated.pairwise_comparable(
      std::span<const index_t>(ids).subspan(0, 600));
  EXPECT_EQ(ctx.budget->consumed() - before, 600u * 599u / 2u);
  EXPECT_EQ(pair_matrix_got, pair_matrix_want);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GatedScans,
                         ::testing::Values(exec::BackendKind::Sequential,
                                           exec::BackendKind::OpenMP,
                                           exec::BackendKind::ThreadPool),
                         [](const auto& param_info) {
                           return std::string(
                               exec::to_string(param_info.param));
                         });

// ------------------------------------------------- facade acceptance bar

/// MRG request whose whole job is one MapReduce round performing
/// >= 10M point-pair evaluations: one machine, capacity n, so the
/// while loop never runs and the final round is Gonzalez on all 1M
/// points with k = 11 — ten 1M-point scans.
api::SolveRequest ten_megapair_single_round_request(const PointSet& data,
                                                    const char* algorithm) {
  api::SolveRequest request;
  request.points = &data;
  request.k = 11;
  request.algorithm = algorithm;
  request.exec.machines = 1;
  request.seed = 3;
  return request;
}

class HugeRoundStops : public ::testing::Test {
 protected:
  static const PointSet& data() {
    static const PointSet* points = [] {
      Rng rng(21);
      return new PointSet(
          data::generate_gau(1'000'000, 16, 2, 100.0, 0.5, rng));
    }();
    return *points;
  }
};

TEST_F(HugeRoundStops, MrgBudgetExhaustionStopsWithinOneChunkOfTheScan) {
  api::SolveRequest request = ten_megapair_single_round_request(data(), "mrg");
  constexpr std::uint64_t kBudget = 150'000;
  request.budget = std::make_shared<EvalBudget>(kBudget);
  api::Solver solver;
  try {
    (void)solver.solve(request);
    FAIL() << "expected BudgetExceeded";
  } catch (const api::Error& e) {
    EXPECT_EQ(e.kind(), api::ErrorKind::BudgetExceeded);
  }
  // The round would have evaluated >= 10M pairs; the gated kernels
  // stopped it within one gate chunk of the budget.
  EXPECT_LE(request.budget->consumed(), kBudget);
  EXPECT_GE(request.budget->consumed(), kBudget - exec::kGateEvals);
}

TEST_F(HugeRoundStops, EimBudgetExhaustionStopsMidIteration) {
  api::SolveRequest request = ten_megapair_single_round_request(data(), "eim");
  request.exec.machines = 16;
  constexpr std::uint64_t kBudget = 150'000;
  request.budget = std::make_shared<EvalBudget>(kBudget);
  api::Solver solver;
  try {
    (void)solver.solve(request);
    FAIL() << "expected BudgetExceeded";
  } catch (const api::Error& e) {
    EXPECT_EQ(e.kind(), api::ErrorKind::BudgetExceeded);
  }
  EXPECT_LE(request.budget->consumed(), kBudget);
  EXPECT_GE(request.budget->consumed(), kBudget - exec::kGateEvals);
}

TEST_F(HugeRoundStops, MrgCancellationStopsMidScan) {
  api::SolveRequest request = ten_megapair_single_round_request(data(), "mrg");
  const CancellationToken token = CancellationToken::make();
  request.cancel = token;
  // Odometer only — never exhausted.
  request.budget = std::make_shared<EvalBudget>(std::uint64_t{1} << 40);

  std::thread canceller([&] {
    while (request.budget->consumed() == 0) std::this_thread::yield();
    token.request_cancel();
  });
  api::Solver solver;
  // Loop until the token lands (a starved canceller thread may miss
  // the first solve entirely); once it does, the in-flight solve must
  // stop between chunks — its >= 10M-pair round cut short.
  bool cancelled = false;
  std::uint64_t consumed_before_last = 0;
  for (int attempt = 0; attempt < 1000 && !cancelled; ++attempt) {
    consumed_before_last = request.budget->consumed();
    try {
      (void)solver.solve(request);
    } catch (const api::Error& e) {
      ASSERT_EQ(e.kind(), api::ErrorKind::Cancelled);
      cancelled = true;
    }
  }
  canceller.join();
  ASSERT_TRUE(cancelled);
  EXPECT_LT(request.budget->consumed() - consumed_before_last, 10'000'000u);
}

TEST_F(HugeRoundStops, AmpleBudgetDoesNotPerturbTheSolve) {
  api::SolveRequest budgeted =
      ten_megapair_single_round_request(data(), "mrg");
  budgeted.budget = std::make_shared<EvalBudget>(std::uint64_t{1} << 40);
  api::SolveRequest plain = ten_megapair_single_round_request(data(), "mrg");
  api::Solver solver;
  const api::SolveReport a = solver.solve(budgeted);
  const api::SolveReport b = solver.solve(plain);
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.dist_evals, b.dist_evals);
  // A completed job's budget odometer equals its kernel evaluations
  // (single-pair calls are counted by the counters only).
  EXPECT_LE(budgeted.budget->consumed(), a.dist_evals);
  EXPECT_GT(budgeted.budget->consumed(), a.dist_evals * 9 / 10);
}

// ------------------------------------------------ offline eval gating

/// Offline evaluation of untrusted requests must be budget-gated and
/// cancellable too: eval::covering_radius / assign_clusters /
/// cluster_stats honour the oracle's bound ChunkContext, and a solve
/// with budgeted_eval charges its evaluation scans against the same
/// budget — so no request can burn unbounded CPU after its solve
/// completed within budget.
class HugeEvalStops : public ::testing::Test {
 protected:
  static const PointSet& data() {
    static const PointSet* points = [] {
      Rng rng(22);
      return new PointSet(
          data::generate_gau(1'000'000, 16, 2, 100.0, 0.5, rng));
    }();
    return *points;
  }
};

TEST_F(HugeEvalStops, CoveringRadiusStopsWithinOneGateOfItsBudget) {
  DistanceOracle oracle(data());
  constexpr std::uint64_t kBudget = 120'000;
  ChunkContext ctx;
  ctx.budget = std::make_shared<EvalBudget>(kBudget);
  oracle.bind_context(&ctx);

  const std::vector<index_t> pts = data().all_indices();
  std::vector<index_t> centers(16);
  std::iota(centers.begin(), centers.end(), index_t{0});
  // 1M x 16 = 16M pair evals if unchecked.
  EXPECT_THROW((void)eval::covering_radius(oracle, pts, centers),
               BudgetExceededError);
  EXPECT_LE(ctx.budget->consumed(), kBudget);
  EXPECT_GE(ctx.budget->consumed(), kBudget - exec::kGateEvals);
}

TEST_F(HugeEvalStops, AssignClustersAndStatsStopWithinOneGate) {
  DistanceOracle oracle(data());
  const std::vector<index_t> pts = data().all_indices();
  std::vector<index_t> centers(16);
  std::iota(centers.begin(), centers.end(), index_t{0});

  for (const bool stats : {false, true}) {
    constexpr std::uint64_t kBudget = 120'000;
    ChunkContext ctx;
    ctx.budget = std::make_shared<EvalBudget>(kBudget);
    oracle.bind_context(&ctx);
    if (stats) {
      EXPECT_THROW((void)eval::cluster_stats(oracle, pts, centers),
                   BudgetExceededError);
    } else {
      EXPECT_THROW((void)eval::assign_clusters(oracle, pts, centers),
                   BudgetExceededError);
    }
    EXPECT_LE(ctx.budget->consumed(), kBudget);
    EXPECT_GE(ctx.budget->consumed(), kBudget - exec::kGateEvals);
    oracle.bind_context(nullptr);
  }
}

TEST_F(HugeEvalStops, CancelledContextStopsEvaluationImmediately) {
  DistanceOracle oracle(data());
  ChunkContext ctx;
  ctx.cancel = CancellationToken::make();
  ctx.budget = std::make_shared<EvalBudget>(std::uint64_t{1} << 40);
  ctx.cancel.request_cancel();
  oracle.bind_context(&ctx);

  const std::vector<index_t> pts = data().all_indices();
  const std::vector<index_t> centers = {0, 1, 2, 3};
  EXPECT_THROW((void)eval::covering_radius(oracle, pts, centers),
               CancelledError);
  EXPECT_THROW((void)eval::assign_clusters(oracle, pts, centers),
               CancelledError);
  // A cancelled stop charges nothing.
  EXPECT_EQ(ctx.budget->consumed(), 0u);
}

TEST_F(HugeEvalStops, BudgetedEvalSolveFailsWhenEvaluationExhaustsBudget) {
  // GON with k = 1 spends exactly n kernel evals solving; the offline
  // evaluation then needs n more. A budget of 1.5n covers the solve
  // and runs dry mid-evaluation — with budgeted_eval the request must
  // fail.
  api::SolveRequest request;
  request.points = &data();
  request.k = 1;
  request.algorithm = "gon";
  request.seed = 5;
  request.budgeted_eval = true;
  const std::uint64_t n = data().size();
  request.budget = std::make_shared<EvalBudget>(n * 3 / 2);
  api::Solver solver;
  try {
    (void)solver.solve(request);
    FAIL() << "expected BudgetExceeded";
  } catch (const api::Error& e) {
    EXPECT_EQ(e.kind(), api::ErrorKind::BudgetExceeded);
  }
  EXPECT_LE(request.budget->consumed(), n * 3 / 2);
  EXPECT_GE(request.budget->consumed(), n * 3 / 2 - exec::kGateEvals);
}

TEST_F(HugeEvalStops, DefaultSolveKeepsEvaluationOffBudget) {
  // Identical request without budgeted_eval: the same budget suffices,
  // because offline evaluation is not charged (paper methodology), and
  // the odometer records only kernel solve work.
  api::SolveRequest request;
  request.points = &data();
  request.k = 1;
  request.algorithm = "gon";
  request.seed = 5;
  const std::uint64_t n = data().size();
  request.budget = std::make_shared<EvalBudget>(n * 3 / 2);
  api::Solver solver;
  const api::SolveReport report = solver.solve(request);
  EXPECT_GT(report.value, 0.0);
  EXPECT_LE(request.budget->consumed(), report.dist_evals);
  EXPECT_EQ(report.budget_consumed, request.budget->consumed());
}

/// One budget shared across requests: the service pattern. The second
/// solve starts with whatever the first left over.
TEST(SharedBudget, SpansMultipleSolves) {
  const PointSet data = test::small_gaussian_instance(6, 200, 31);
  api::SolveRequest request;
  request.points = &data;
  request.k = 6;
  request.algorithm = "gon";
  const auto shared = std::make_shared<EvalBudget>(1'000'000);
  request.budget = shared;

  api::Solver solver;
  (void)solver.solve(request);
  const std::uint64_t after_first = shared->consumed();
  EXPECT_GT(after_first, 0u);
  (void)solver.solve(request);
  EXPECT_GT(shared->consumed(), after_first);
}

}  // namespace
}  // namespace kc
