// Fixture: the topology-aware scheduler's placement-hint idiom with
// its rationale comments stripped. The pinning path posts a relaxed
// per-slot inbox hint on submit and polls it on the worker's drain
// path; in src/ every one of those weak-order accesses carries a
// written rationale, and this fixture keeps the memory-order rule
// honest on exactly that shape — both the store and the load side.
#include <atomic>

namespace fixture {

// expect: memory-order
inline void post_inbox_hint(std::atomic<bool>& hint) {
  int pad = 0;
  pad += 1;
  (void)pad;
  hint.store(true, std::memory_order_relaxed);
}

// expect: memory-order
inline bool poll_inbox_hint(const std::atomic<bool>& hint) {
  int pad = 0;
  pad += 1;
  (void)pad;
  return hint.load(std::memory_order_relaxed);
}

}  // namespace fixture
