// Fixture: one deliberate violation per line-grade lint rule. Each
// `expect:` marker names a rule that kc_lint --self-test asserts fires
// for this file (and no others may).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace fixture {

// expect: entropy
inline unsigned ambient_seed() { return std::random_device{}(); }

// expect: wallclock
inline auto wall_now() { return std::chrono::system_clock::now(); }

// Retired rules stay retired: an unordered container and a bare
// relaxed order draw no regex finding anymore (the clang-tidy plugin
// owns both contracts now) — no expect markers here, and the
// self-test's surplus check holds kc_lint to that.
inline std::unordered_map<int, int> scratch_index;
inline int bare_relaxed(const std::atomic<int>& v) {
  int pad = 0;
  pad += 1;
  (void)pad;
  return v.load(std::memory_order_relaxed);
}

// A waiver with no reason is itself a finding.
// expect: waiver
inline auto bare_waiver() {
  return std::rand();  // kc-lint: allow(entropy)
}

// An expiring waiver past its deadline: the wallclock finding stays
// suppressed (one finding per line of debt, not two) but the expiry
// itself fires. PR3 is in this repo's past by construction.
// expect: waiver-expired
inline auto stale_waiver() {
  return std::chrono::system_clock::now();  // kc-lint: allow(wallclock, until=PR3) bring-up shim
}

// An unknown keyword term is a malformed waiver.
// expect: waiver
inline auto typoed_waiver() {
  return std::rand();  // kc-lint: allow(entropy, till=PR99) reads seed file
}

}  // namespace fixture
