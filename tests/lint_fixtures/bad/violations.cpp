// Fixture: one deliberate violation per line-grade lint rule. Each
// `expect:` marker names a rule that kc_lint --self-test asserts fires
// for this file (and no others may).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace fixture {

// expect: entropy
inline unsigned ambient_seed() { return std::random_device{}(); }

// expect: wallclock
inline auto wall_now() { return std::chrono::system_clock::now(); }

// expect: unordered-iter
inline std::unordered_map<int, int> report_index;

// expect: memory-order
// (the marker comment sits more than three lines above the access, so
// it cannot itself satisfy the nearby-rationale requirement)
inline int bare_relaxed(const std::atomic<int>& v) {
  int pad = 0;
  pad += 1;
  (void)pad;
  return v.load(std::memory_order_relaxed);
}

// A waiver with no reason is itself a finding.
// expect: waiver
inline auto bare_waiver() {
  return std::rand();  // kc-lint: allow(entropy)
}

}  // namespace fixture
