// Fixture: a mutex-owning class with an unannotated mutable member.
#pragma once

#include <vector>

#include "compat/thread_safety.hpp"

namespace fixture {

class Unguarded {
 public:
  void push(int v);

 private:
  kc::compat::Mutex mutex_;
  // expect: guarded-by
  // (pad so the marker is not mistaken for an annotation; the member
  // below has neither KC_GUARDED_BY nor a waiver)
  std::vector<int> items_;
};

}  // namespace fixture
