// kc-lock-order bad fixture: two methods of one class acquire the same
// pair of mutexes in opposite orders — the classic ABBA deadlock. The
// clang-tidy check pairs the inverted edges inside this TU; the Python
// extractor (lock_graph.py selftest) derives the same two edges and
// must report a cycle in the merged graph.
//
// Hermetic mocks: the checks match qualified names, not headers.
namespace kc::compat {
class Mutex {
 public:
  void lock();
  void unlock();
};
class LockGuard {
 public:
  explicit LockGuard(Mutex &m);
  ~LockGuard();
};
}  // namespace kc::compat

namespace kc {

class Account {
 public:
  void debit();
  void credit();

 private:
  compat::Mutex ledger_;
  compat::Mutex audit_;
  int balance_ = 0;
};

void Account::debit() {
  compat::LockGuard ledger(ledger_);
  compat::LockGuard audit(audit_);
  balance_ -= 1;
}

void Account::credit() {
  compat::LockGuard audit(audit_);
  compat::LockGuard ledger(ledger_);  // expect: kc-lock-order
  balance_ += 1;
}

}  // namespace kc
