// kc-unordered-emit bad fixture: hash-ordered iteration feeding report
// sinks — directly, through a helper one call away (the case the
// retired regex rule could never see), and via an explicit iterator
// loop.
namespace std {
template <class K, class V>
struct unordered_map {
  struct value_type {
    K first;
    V second;
  };
  struct iterator {
    value_type *p;
    value_type &operator*() const { return *p; }
    iterator &operator++() {
      ++p;
      return *this;
    }
    bool operator!=(const iterator &o) const { return p != o.p; }
  };
  iterator begin() const;
  iterator end() const;
};
}  // namespace std

namespace kc::harness {
void write_row(int key, int value);  // report sink
}  // namespace kc::harness

namespace kc {

using Counts = std::unordered_map<int, int>;

// Direct: the iterating function calls the sink itself.
void report_counts(const Counts &counts) {
  for (const auto &kv : counts)  // expect: kc-unordered-emit
    harness::write_row(kv.first, kv.second);
}

void forward_row(int key, int value) { harness::write_row(key, value); }

// Indirect: the sink is one call away; reachability must follow it.
void report_via_helper(const Counts &counts) {
  for (const auto &kv : counts)  // expect: kc-unordered-emit
    forward_row(kv.first, kv.second);
}

// Explicit iterator loop, same reachability.
void report_iterators(const Counts &counts) {
  for (auto it = counts.begin(); it != counts.end(); ++it)  // expect: kc-unordered-emit
    forward_row((*it).first, (*it).second);
}

}  // namespace kc
