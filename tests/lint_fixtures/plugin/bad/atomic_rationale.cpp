// kc-atomic-rationale bad fixture: weakened memory orders with no
// rationale comment nearby. Markers use expect-above because a marker
// on (or just above) the offending line would itself satisfy the
// comment-proximity rule the check enforces.
//
// The std mock mirrors the C++11 shape: a plain enum whose enumerators
// are what the check's hasAnyName list resolves against.
namespace std {
enum memory_order {
  memory_order_relaxed,
  memory_order_consume,
  memory_order_acquire,
  memory_order_release,
  memory_order_acq_rel,
  memory_order_seq_cst
};
template <class T>
struct atomic {
  T load(memory_order) const;
  void store(T, memory_order);
  bool compare_exchange_weak(T &, T, memory_order, memory_order);
};
}  // namespace std

namespace kc {

std::atomic<int> counter;
std::atomic<bool> flag;

int read_counter() {
  return counter.load(std::memory_order_relaxed);
  // expect-above: kc-atomic-rationale
}

void publish() {
  flag.store(true, std::memory_order_release);
  // expect-above: kc-atomic-rationale
}

bool try_claim(int want) {
  int expected = 0;

  return counter.compare_exchange_weak(expected, want, std::memory_order_acq_rel, std::memory_order_acquire);
  // expect-above: kc-atomic-rationale
}

// An alias does not launder the order: the reference below still
// resolves to the enumerator declaration. The blank lines are load
// bearing: they keep this block outside the check's 3-line
// comment-proximity window for the alias declaration.



constexpr auto kSneakyOrder = std::memory_order_consume;
// expect-above: kc-atomic-rationale

int read_via_alias() { return counter.load(kSneakyOrder); }

}  // namespace kc
