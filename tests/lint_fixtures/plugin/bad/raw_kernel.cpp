// kc-raw-kernel bad fixture: code outside src/geom/ calling the kernel
// table accessors and the table's function-pointer members directly,
// bypassing the DistanceOracle budget/cancel gates. The corpus runs
// with AllowedDirs=src/geom/ so this file counts as "outside".
namespace kc::simd {
struct KernelTable {
  double (*pair)(const double *, const double *, unsigned);
  unsigned (*argmax)(const double *, unsigned);
  int width;
};
const KernelTable &active_kernels();
const KernelTable &kernels_for(int isa);
}  // namespace kc::simd

// Aliases must not launder the access: the check resolves the decl,
// not the spelling.
using kc::simd::active_kernels;

double sneak_distance(const double *a, const double *b, unsigned dim) {
  const auto &kt = active_kernels();  // expect: kc-raw-kernel
  return kt.pair(a, b, dim);  // expect: kc-raw-kernel
}

unsigned sneak_argmax(const double *row, unsigned n) {
  const kc::simd::KernelTable &kt = kc::simd::kernels_for(2);  // expect: kc-raw-kernel
  return kt.argmax(row, n);  // expect: kc-raw-kernel
}
