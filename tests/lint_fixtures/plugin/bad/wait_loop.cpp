// kc-wait-loop bad fixture: CondVar waits that are (a) not in a loop
// at all and (b) in a loop whose condition reads a member that is not
// guarded by the mutex held across the wait.
namespace kc::compat {
struct __attribute__((capability("mutex"))) Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex &m);
  ~MutexLock();
  void lock();
  void unlock();
};
struct CondVar {
  void wait(MutexLock &lk);
  template <class Rep>
  bool wait_for(MutexLock &lk, Rep d);
  void notify_one();
  void notify_all();
};
}  // namespace kc::compat

#define KC_GUARDED_BY(m) __attribute__((guarded_by(m)))

namespace kc {

class Mailbox {
 public:
  void take_once();
  void spin_on_hint();

 private:
  compat::Mutex mutex_;
  int items_ KC_GUARDED_BY(mutex_) = 0;
  bool hint_ = false;  // deliberately unguarded
  compat::CondVar ready_;
};

void Mailbox::take_once() {
  compat::MutexLock lock(mutex_);
  ready_.wait(lock);  // expect: kc-wait-loop
  items_ -= 1;
}

void Mailbox::spin_on_hint() {
  compat::MutexLock lock(mutex_);
  while (!hint_)
    ready_.wait(lock);  // expect: kc-wait-loop
  items_ -= 1;
}

}  // namespace kc
