// kc-lock-order good fixture: both methods acquire ledger_ before
// audit_, so the TU contributes one consistent edge and neither the
// plugin nor the Python extractor may report anything. Also exercises
// the mid-scope unlock: releasing the outer guard before taking the
// second mutex contributes no edge at all.
namespace kc::compat {
class Mutex {
 public:
  void lock();
  void unlock();
};
class LockGuard {
 public:
  explicit LockGuard(Mutex &m);
  ~LockGuard();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex &m);
  ~MutexLock();
  void lock();
  void unlock();
};
}  // namespace kc::compat

namespace kc {

class Account {
 public:
  void debit();
  void credit();
  void audit_only();

 private:
  compat::Mutex ledger_;
  compat::Mutex audit_;
  int balance_ = 0;
};

void Account::debit() {
  compat::LockGuard ledger(ledger_);
  compat::LockGuard audit(audit_);
  balance_ -= 1;
}

void Account::credit() {
  compat::LockGuard ledger(ledger_);
  compat::LockGuard audit(audit_);
  balance_ += 1;
}

void Account::audit_only() {
  compat::MutexLock ledger(ledger_);
  balance_ += 0;
  ledger.unlock();
  // ledger_ no longer held: this acquisition has an empty held set.
  compat::LockGuard audit(audit_);
}

}  // namespace kc
