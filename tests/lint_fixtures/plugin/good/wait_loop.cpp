// kc-wait-loop good fixture: the repo's sanctioned wait shapes — a
// while loop re-reading a KC_GUARDED_BY member of the held mutex, a
// timed wait in the same shape, and the for(;;) + guarded-if-break
// idiom.
namespace kc::compat {
struct __attribute__((capability("mutex"))) Mutex {
  void lock();
  void unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex &m);
  ~MutexLock();
  void lock();
  void unlock();
};
struct CondVar {
  void wait(MutexLock &lk);
  template <class Rep>
  bool wait_for(MutexLock &lk, Rep d);
  void notify_one();
  void notify_all();
};
}  // namespace kc::compat

#define KC_GUARDED_BY(m) __attribute__((guarded_by(m)))

namespace kc {

class Mailbox {
 public:
  void take();
  bool take_timed(int budget_ms);
  void drain();

 private:
  compat::Mutex mutex_;
  int items_ KC_GUARDED_BY(mutex_) = 0;
  bool closed_ KC_GUARDED_BY(mutex_) = false;
  compat::CondVar ready_;
};

void Mailbox::take() {
  compat::MutexLock lock(mutex_);
  while (items_ == 0 && !closed_)
    ready_.wait(lock);
  items_ -= 1;
}

bool Mailbox::take_timed(int budget_ms) {
  compat::MutexLock lock(mutex_);
  while (items_ == 0) {
    if (!ready_.wait_for(lock, budget_ms))
      return false;
  }
  items_ -= 1;
  return true;
}

void Mailbox::drain() {
  compat::MutexLock lock(mutex_);
  for (;;) {
    if (closed_)
      break;
    ready_.wait(lock);
  }
}

}  // namespace kc
