// kc-atomic-rationale good fixture: every weakened order carries a
// rationale within the window (same line or the 3 lines above), and
// seq_cst — the default that needs no justification — appears bare.
namespace std {
enum memory_order {
  memory_order_relaxed,
  memory_order_consume,
  memory_order_acquire,
  memory_order_release,
  memory_order_acq_rel,
  memory_order_seq_cst
};
template <class T>
struct atomic {
  T load(memory_order) const;
  void store(T, memory_order);
  bool compare_exchange_weak(T &, T, memory_order, memory_order);
};
}  // namespace std

namespace kc {

std::atomic<int> counter;
std::atomic<bool> flag;

int read_counter() {
  // relaxed: monotonic odometer, read for stats only; no ordering
  // needed against any other memory.
  return counter.load(std::memory_order_relaxed);
}

void publish() {
  flag.store(true, std::memory_order_release);  // pairs with acquire in consume_side()
}

bool consume_side() {
  // acquire: pairs with the release store in publish(); everything
  // written before the store is visible after this load.
  return flag.load(std::memory_order_acquire);
}

int strict_read() {
  return counter.load(std::memory_order_seq_cst);
}

}  // namespace kc
