// kc-unordered-emit good fixture: unordered iteration is fine when the
// function cannot reach a report sink (pure reduction — the result is
// order-independent and nothing is emitted), and emission is fine when
// it walks an ordered container.
namespace std {
template <class K, class V>
struct unordered_map {
  struct value_type {
    K first;
    V second;
  };
  struct iterator {
    value_type *p;
    value_type &operator*() const { return *p; }
    iterator &operator++() {
      ++p;
      return *this;
    }
    bool operator!=(const iterator &o) const { return p != o.p; }
  };
  iterator begin() const;
  iterator end() const;
};
template <class K, class V>
struct map {
  struct value_type {
    K first;
    V second;
  };
  struct iterator {
    value_type *p;
    value_type &operator*() const { return *p; }
    iterator &operator++() {
      ++p;
      return *this;
    }
    bool operator!=(const iterator &o) const { return p != o.p; }
  };
  iterator begin() const;
  iterator end() const;
};
}  // namespace std

namespace kc::harness {
void write_row(int key, int value);  // report sink
}  // namespace kc::harness

namespace kc {

// Order-independent reduction: iterates the hash map but reaches no
// sink, so the hash order cannot leak into any artifact.
int total(const std::unordered_map<int, int> &counts) {
  int sum = 0;
  for (const auto &kv : counts)
    sum += kv.second;
  return sum;
}

// Emission from an ordered container: deterministic by construction.
void report_sorted(const std::map<int, int> &counts) {
  for (const auto &kv : counts)
    harness::write_row(kv.first, kv.second);
}

}  // namespace kc
