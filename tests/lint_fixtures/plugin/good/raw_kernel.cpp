// kc-raw-kernel good fixture: distance work routed through the oracle
// facade; mentioning KernelTable in a type position (no call) and
// reading a non-function member are both fine — only calls through the
// accessors or the table's function pointers are gated.
namespace kc::simd {
struct KernelTable {
  double (*pair)(const double *, const double *, unsigned);
  int width;
};
const KernelTable &active_kernels();
}  // namespace kc::simd

namespace kc::geom {
class DistanceOracle {
 public:
  double distance(unsigned a, unsigned b) const;
  unsigned farthest_from(unsigned a) const;
};
}  // namespace kc::geom

double legit_distance(const kc::geom::DistanceOracle &oracle, unsigned a,
                      unsigned b) {
  return oracle.distance(a, b);
}

unsigned legit_farthest(const kc::geom::DistanceOracle &oracle, unsigned a) {
  return oracle.farthest_from(a);
}

// A type-only mention: declaring a pointer to the table is not a call.
const kc::simd::KernelTable *stashed = nullptr;
