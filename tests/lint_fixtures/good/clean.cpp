// Fixture: a TU that exercises every lint rule's *allowed* form.
// Linted as if it lived in a report-emitting directory (the strictest
// placement); kc_lint --self-test must report zero findings here.
#include <atomic>
#include <chrono>
#include <map>
#include <vector>

namespace fixture {

// steady_clock is the sanctioned time source.
inline double elapsed(std::chrono::steady_clock::time_point t0) {
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Ordered container in a report TU: fine, iteration order is defined.
inline int sum(const std::map<int, int>& m) {
  int total = 0;
  for (const auto& [k, v] : m) total += v;
  return total;
}

// A weak-order access with its rationale comment in range.
inline int load_counter(const std::atomic<int>& counter) {
  // Relaxed: monitoring counter; no data is published through it.
  return counter.load(std::memory_order_relaxed);
}

// The scheduler's placement-hint pair in its sanctioned form: the
// relaxed flag is an optimization hint whose ground truth lives under
// a mutex, and both sides say so in range.
inline void post_inbox_hint(std::atomic<bool>& hint) {
  // Relaxed: advisory fast-path flag; the inbox mutex publishes the
  // actual task pointers, a stale read only delays one drain pass.
  hint.store(true, std::memory_order_relaxed);
}

// A waived wall-clock use, with a written reason.
inline long log_stamp() {
  return std::chrono::system_clock::now()  // kc-lint: allow(wallclock) operator-facing log stamp, never in report bytes
      .time_since_epoch()
      .count();
}

// An expiring waiver whose deadline is still ahead: suppresses the
// finding and stays silent itself until the repo reaches PR9999.
inline long deferred_cleanup_stamp() {
  return std::chrono::system_clock::now()  // kc-lint: allow(wallclock, until=PR9999) scaffold for the ops log rework
      .time_since_epoch()
      .count();
}

}  // namespace fixture
