// Fixture: a mutex-owning class whose members are all annotated or
// legitimately exempt. Must lint clean.
#pragma once

#include <atomic>
#include <vector>

#include "compat/thread_safety.hpp"

namespace fixture {

class Guarded {
 public:
  void push(int v) {
    const kc::compat::LockGuard lock(mutex_);
    items_.push_back(v);
  }

 private:
  kc::compat::Mutex mutex_;
  std::vector<int> items_ KC_GUARDED_BY(mutex_);
  std::atomic<int> hits_{0};      // atomics need no lock
  const int capacity_ = 16;       // immutable after construction
  // Written once in the constructor, read-only afterwards.
  // kc-lint: allow(guarded-by) construction-only write, then immutable
  int seed_ = 0;
};

}  // namespace fixture
