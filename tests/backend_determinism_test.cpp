// Cross-backend determinism: the execution backend decides only where
// closures run, so for a fixed seed MRG and EIM must produce identical
// centers, radii, round/iteration counts, and per-round (and
// per-machine-max) distance-eval counts under Sequential, ThreadPool
// and (when built) OpenMP — including when the oracle's sharded
// distance kernels are forced on with a tiny shard threshold.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "api/solver.hpp"
#include "harness/experiment.hpp"
#include "test_util.hpp"

namespace kc {
namespace {

std::vector<std::shared_ptr<exec::ExecutionBackend>> all_backends() {
  std::vector<std::shared_ptr<exec::ExecutionBackend>> backends;
  backends.push_back(exec::make_backend(exec::BackendKind::Sequential));
  backends.push_back(exec::make_backend(exec::BackendKind::ThreadPool, 4));
  if (exec::backend_available(exec::BackendKind::OpenMP)) {
    backends.push_back(exec::make_backend(exec::BackendKind::OpenMP, 4));
  }
  return backends;
}

/// The simulated metrics of one trace that must be backend-invariant
/// (times are wall-clock measurements and legitimately vary).
struct TraceCounts {
  std::vector<std::string> names;
  std::vector<int> machines;
  std::vector<std::uint64_t> total_evals;
  std::vector<std::uint64_t> max_evals;
  std::vector<std::uint64_t> items_in, items_out;

  explicit TraceCounts(const mr::JobTrace& trace) {
    for (const auto& r : trace.rounds()) {
      names.push_back(r.name);
      machines.push_back(r.machines_used);
      total_evals.push_back(r.total_dist_evals);
      max_evals.push_back(r.max_machine_dist_evals);
      items_in.push_back(r.items_in);
      items_out.push_back(r.items_out);
    }
  }

  friend bool operator==(const TraceCounts&, const TraceCounts&) = default;
};

/// Oracle bound to `backend` with a tiny shard threshold, so even
/// test-sized scans exercise the two-level parallel kernels.
DistanceOracle sharded_oracle(const PointSet& ps,
                              exec::ExecutionBackend* backend) {
  DistanceOracle oracle(ps);
  oracle.bind_executor(backend, /*min_items=*/64);
  return oracle;
}

TEST(BackendDeterminism, MrgInvariantAcrossBackends) {
  const PointSet ps = test::small_gaussian_instance(6, 400, 21);
  const auto all = ps.all_indices();
  MrgOptions options;
  options.seed = 99;
  // Small capacity forces a multi-round run (40 machines emit 200
  // centers > 60), so several distinct round shapes — wide reduce,
  // narrow reduce, final — are all compared.
  options.capacity = 60;

  const auto backends = all_backends();
  ASSERT_GE(backends.size(), 2u);

  std::vector<MrgResult> results;
  for (const auto& backend : backends) {
    const DistanceOracle oracle = sharded_oracle(ps, backend.get());
    const mr::SimCluster cluster(40, 0, backend);
    results.push_back(mrg(oracle, all, 5, cluster, options));
  }

  const auto& reference = results.front();
  EXPECT_GT(reference.reduce_rounds, 1);  // multi-round regime reached
  for (std::size_t b = 1; b < results.size(); ++b) {
    SCOPED_TRACE(std::string(backends[b]->name()));
    EXPECT_EQ(results[b].centers, reference.centers);
    EXPECT_EQ(results[b].radius_comparable, reference.radius_comparable);
    EXPECT_EQ(results[b].reduce_rounds, reference.reduce_rounds);
    EXPECT_EQ(TraceCounts(results[b].trace), TraceCounts(reference.trace));
  }
}

TEST(BackendDeterminism, CcmInvariantAcrossBackends) {
  const PointSet ps = test::small_gaussian_instance(6, 400, 23);
  const auto all = ps.all_indices();
  CcmOptions options;
  options.seed = 17;
  options.epsilon = 0.25;
  options.first_center = GonzalezOptions::FirstCenter::Random;

  const auto backends = all_backends();
  ASSERT_GE(backends.size(), 2u);

  std::vector<CcmResult> results;
  for (const auto& backend : backends) {
    const DistanceOracle oracle = sharded_oracle(ps, backend.get());
    const mr::SimCluster cluster(16, 0, backend);
    results.push_back(ccm(oracle, all, 5, cluster, options));
  }

  const auto& reference = results.front();
  EXPECT_EQ(reference.centers.size(), 5u);
  EXPECT_GT(reference.coreset_size, 5u);  // the grid round really ran
  EXPECT_GT(reference.grid_width, 0.0);
  for (std::size_t b = 1; b < results.size(); ++b) {
    SCOPED_TRACE(std::string(backends[b]->name()));
    EXPECT_EQ(results[b].centers, reference.centers);
    EXPECT_EQ(results[b].radius_comparable, reference.radius_comparable);
    EXPECT_EQ(results[b].coreset_size, reference.coreset_size);
    EXPECT_EQ(results[b].grid_width, reference.grid_width);
    EXPECT_EQ(TraceCounts(results[b].trace), TraceCounts(reference.trace));
  }
}

TEST(BackendDeterminism, EimInvariantAcrossBackends) {
  const PointSet ps = test::small_gaussian_instance(5, 2000, 33);
  const auto all = ps.all_indices();
  EimOptions options;
  options.seed = 7;

  const auto backends = all_backends();
  std::vector<EimResult> results;
  for (const auto& backend : backends) {
    const DistanceOracle oracle = sharded_oracle(ps, backend.get());
    const mr::SimCluster cluster(10, 0, backend);
    results.push_back(eim(oracle, all, 5, cluster, options));
  }

  const auto& reference = results.front();
  ASSERT_TRUE(reference.sampled);  // the parallel regime, not the collapse
  for (std::size_t b = 1; b < results.size(); ++b) {
    SCOPED_TRACE(std::string(backends[b]->name()));
    EXPECT_EQ(results[b].centers, reference.centers);
    EXPECT_EQ(results[b].radius_comparable, reference.radius_comparable);
    EXPECT_EQ(results[b].iterations, reference.iterations);
    EXPECT_EQ(results[b].final_sample_size, reference.final_sample_size);
    EXPECT_EQ(TraceCounts(results[b].trace), TraceCounts(reference.trace));
  }
}

TEST(BackendDeterminism, ShardedKernelsMatchSequentialBitForBit) {
  const PointSet ps = test::small_gaussian_instance(4, 1000, 5);
  const auto all = ps.all_indices();
  const DistanceOracle plain(ps);

  std::vector<double> expected(all.size(), kInfDist);
  counters::reset();
  plain.update_nearest(all, 0, expected);
  plain.update_nearest_multi(all, std::vector<index_t>{1, 2, 3}, expected);
  const auto expected_evals = counters::read().distance_evals;

  for (const auto& backend : all_backends()) {
    SCOPED_TRACE(std::string(backend->name()));
    const DistanceOracle sharded = sharded_oracle(ps, backend.get());
    std::vector<double> best(all.size(), kInfDist);
    counters::reset();
    sharded.update_nearest(all, 0, best);
    sharded.update_nearest_multi(all, std::vector<index_t>{1, 2, 3}, best);
    // Same values bit for bit, and the whole scan charged to this
    // thread regardless of which threads executed it.
    EXPECT_EQ(best, expected);
    EXPECT_EQ(counters::read().distance_evals, expected_evals);
  }
  counters::reset();
}

TEST(BackendDeterminism, SimdKernelsMatchForcedScalarEndToEnd) {
  // The kernel engine is one more axis that must not change simulated
  // results: a full MRG and EIM run with the runtime-dispatched SIMD
  // table must equal the same run with the scalar table forced (the
  // in-process equivalent of KC_FORCE_SCALAR). Trivially true on
  // scalar-only hosts; on AVX hosts this is the end-to-end
  // bit-identity check.
  const PointSet ps = test::small_gaussian_instance(5, 2000, 33);
  const auto all = ps.all_indices();
  const auto backend = exec::make_backend(exec::BackendKind::ThreadPool, 4);
  const mr::SimCluster cluster(10, 0, backend);

  DistanceOracle active = sharded_oracle(ps, backend.get());
  DistanceOracle forced = sharded_oracle(ps, backend.get());
  forced.force_kernels(simd::kernels_for(simd::IsaLevel::Scalar));

  EimOptions eim_options;
  eim_options.seed = 7;
  const auto eim_a = eim(active, all, 5, cluster, eim_options);
  const auto eim_b = eim(forced, all, 5, cluster, eim_options);
  EXPECT_EQ(eim_a.centers, eim_b.centers);
  EXPECT_EQ(eim_a.radius_comparable, eim_b.radius_comparable);
  EXPECT_EQ(eim_a.iterations, eim_b.iterations);
  EXPECT_EQ(TraceCounts(eim_a.trace), TraceCounts(eim_b.trace));

  const PointSet mrg_ps = test::small_gaussian_instance(6, 400, 21);
  const auto mrg_all = mrg_ps.all_indices();
  DistanceOracle mrg_active = sharded_oracle(mrg_ps, backend.get());
  DistanceOracle mrg_forced = sharded_oracle(mrg_ps, backend.get());
  mrg_forced.force_kernels(simd::kernels_for(simd::IsaLevel::Scalar));
  MrgOptions mrg_options;
  mrg_options.seed = 99;
  mrg_options.capacity = 60;  // multi-round regime, as in the MRG test above
  const mr::SimCluster mrg_cluster(40, 0, backend);
  const auto mrg_a = mrg(mrg_active, mrg_all, 5, mrg_cluster, mrg_options);
  const auto mrg_b = mrg(mrg_forced, mrg_all, 5, mrg_cluster, mrg_options);
  EXPECT_EQ(mrg_a.centers, mrg_b.centers);
  EXPECT_EQ(mrg_a.radius_comparable, mrg_b.radius_comparable);
  EXPECT_EQ(TraceCounts(mrg_a.trace), TraceCounts(mrg_b.trace));
}

TEST(BackendDeterminism, PinnedRunsByteIdenticalToUnpinned) {
  // Worker pinning (the in-process equivalent of KC_PIN=off|core|node)
  // is pure placement: inbox distribution, near-first stealing and
  // affinity syscalls may move tasks between threads, but every field
  // of the report except the timings must stay byte-identical. Driven
  // through ExecSpec::pin rather than the environment so the three
  // modes run in one process.
  const PointSet ps = test::small_gaussian_instance(5, 2000, 33);

  std::vector<api::SolveReport> reports;
  for (const exec::PinMode pin :
       {exec::PinMode::Off, exec::PinMode::Core, exec::PinMode::Node}) {
    api::SolveRequest request;
    request.points = &ps;
    request.k = 5;
    request.algorithm = "mrg";
    request.seed = 99;
    request.exec.kind = exec::BackendKind::ThreadPool;
    request.exec.threads = 4;
    request.exec.machines = 10;
    request.exec.pin = pin;
    api::Solver solver;
    reports.push_back(solver.solve(request));
  }

  const auto& reference = reports.front();
  EXPECT_FALSE(reference.centers.empty());
  for (std::size_t r = 1; r < reports.size(); ++r) {
    SCOPED_TRACE("pin mode index " + std::to_string(r));
    EXPECT_EQ(reports[r].centers, reference.centers);
    EXPECT_EQ(reports[r].radius_comparable, reference.radius_comparable);
    EXPECT_EQ(reports[r].value, reference.value);
    EXPECT_EQ(reports[r].guarantee, reference.guarantee);
    EXPECT_EQ(reports[r].rounds, reference.rounds);
    EXPECT_EQ(reports[r].iterations, reference.iterations);
    EXPECT_EQ(reports[r].dist_evals, reference.dist_evals);
    EXPECT_EQ(reports[r].pairs_pruned, reference.pairs_pruned);
    EXPECT_EQ(reports[r].backend, reference.backend);
    EXPECT_EQ(reports[r].kernel_isa, reference.kernel_isa);
    EXPECT_EQ(TraceCounts(reports[r].trace), TraceCounts(reference.trace));
  }
}

TEST(BackendDeterminism, PinnedSchedulerRunsChunksAndTasksCorrectly) {
  // Functional smoke of the placement machinery itself (inboxes,
  // drain, near-first steal): a pinned scheduler must execute every
  // chunk exactly once, whichever path delivered it.
  for (const exec::PinMode pin : {exec::PinMode::Core, exec::PinMode::Node}) {
    exec::Scheduler scheduler(4, pin);
    EXPECT_EQ(scheduler.pin_mode(), pin);
    EXPECT_TRUE(scheduler.pin_engaged());
    constexpr std::size_t kItems = 10'000;
    std::vector<std::atomic<int>> hits(kItems);
    scheduler.run_chunks(kItems, 64, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        // Relaxed: independent per-item tallies, checked after the
        // barrier run_chunks provides.
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "item " << i;
    }
  }
}

TEST(BackendDeterminism, HarnessRunsIdenticalValueAcrossBackends) {
  const PointSet ps = test::small_gaussian_instance(5, 500, 13);
  const auto pool = harness::DatasetPool::wrap(ps);

  for (const auto kind : {harness::AlgoKind::MRG, harness::AlgoKind::EIM,
                          harness::AlgoKind::GON}) {
    harness::AlgoConfig seq;
    seq.kind = kind;
    seq.machines = 8;
    harness::AlgoConfig pooled = seq;
    pooled.exec = exec::BackendKind::ThreadPool;
    pooled.threads = 4;

    const auto a = harness::run_repeated(seq, pool, 5, 2, 17);
    const auto b = harness::run_repeated(pooled, pool, 5, 2, 17);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.map_reduce_rounds, b.map_reduce_rounds);
    EXPECT_EQ(a.dist_evals, b.dist_evals);
  }
}

}  // namespace
}  // namespace kc
