// The sysfs topology probe against synthetic /sys trees: NUMA layout
// parsing, offline cpus, sparse node numbering, affinity-mask
// intersection (the container-cpuset case), and the fallback shape
// when sysfs is absent or malformed. Every tree is built in a temp
// directory through the ProbeOptions seam — the live host never leaks
// into these assertions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/topology.hpp"

namespace kc::exec {
namespace {

namespace fs = std::filesystem;

/// Builder for a synthetic /sys/devices/system tree.
class SysTree {
 public:
  SysTree() {
    root_ = fs::path(::testing::TempDir()) /
            ("kc_systree_" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(root_ / "cpu");
  }
  ~SysTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  SysTree& online(const std::string& list) {
    write(root_ / "cpu" / "online", list);
    return *this;
  }

  SysTree& node(int id, const std::string& cpulist) {
    const fs::path dir = root_ / "node" / ("node" + std::to_string(id));
    fs::create_directories(dir);
    write(dir / "cpulist", cpulist);
    return *this;
  }

  SysTree& core(int cpu, int package, int core_id) {
    const fs::path dir =
        root_ / "cpu" / ("cpu" + std::to_string(cpu)) / "topology";
    fs::create_directories(dir);
    write(dir / "physical_package_id", std::to_string(package));
    write(dir / "core_id", std::to_string(core_id));
    return *this;
  }

  [[nodiscard]] ProbeOptions options(
      std::optional<std::vector<int>> affinity = std::nullopt) const {
    ProbeOptions opts;
    opts.sysfs_root = root_.string();
    opts.affinity = std::move(affinity);
    return opts;
  }

 private:
  static void write(const fs::path& path, const std::string& text) {
    std::ofstream out(path);
    out << text << "\n";
  }

  fs::path root_;
};

std::vector<int> cpu_ids(const Topology& topo) {
  std::vector<int> ids;
  ids.reserve(topo.cpus.size());
  for (const auto& cpu : topo.cpus) ids.push_back(cpu.id);
  return ids;
}

TEST(TopologyProbe, TwoNodeHostParsesShape) {
  SysTree tree;
  tree.online("0-3")
      .node(0, "0-1")
      .node(1, "2-3")
      .core(0, 0, 0)
      .core(1, 0, 1)
      .core(2, 1, 0)
      .core(3, 1, 1);
  const Topology topo =
      probe_topology(tree.options(std::vector<int>{0, 1, 2, 3}));

  EXPECT_EQ(cpu_ids(topo), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes, 2);
  EXPECT_EQ(topo.cores, 4);
  EXPECT_EQ(topo.hw_threads, 4);
  EXPECT_FALSE(topo.restricted);
  EXPECT_EQ(topo.cpus[0].node, 0);
  EXPECT_EQ(topo.cpus[2].node, 1);
}

TEST(TopologyProbe, SmtThreadsCollapseToCores) {
  // 4 hw threads, 2 physical cores (0,2 and 1,3 are sibling pairs).
  SysTree tree;
  tree.online("0-3")
      .node(0, "0-3")
      .core(0, 0, 0)
      .core(1, 0, 1)
      .core(2, 0, 0)
      .core(3, 0, 1);
  const Topology topo =
      probe_topology(tree.options(std::vector<int>{0, 1, 2, 3}));

  EXPECT_EQ(topo.hw_threads, 4);
  EXPECT_EQ(topo.cores, 2);
  EXPECT_EQ(topo.nodes, 1);
}

TEST(TopologyProbe, OfflineCpusAreSkipped) {
  // cpu1 offline: the online list has a hole, and no cpu1 entry may
  // appear even though node0 still claims it.
  SysTree tree;
  tree.online("0,2-3").node(0, "0-3");
  const Topology topo =
      probe_topology(tree.options(std::vector<int>{0, 1, 2, 3}));

  EXPECT_EQ(cpu_ids(topo), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(topo.hw_threads, 3);
  // No topology dirs: every thread counts as its own core.
  EXPECT_EQ(topo.cores, 3);
}

TEST(TopologyProbe, SparseNodeNumberingSurvives) {
  // Nodes 0 and 4 exist (2 populated nodes on a possible-8 host);
  // unclaimed cpus fall to node 0.
  SysTree tree;
  tree.online("0-4").node(0, "0-1").node(4, "2-3");
  const Topology topo =
      probe_topology(tree.options(std::vector<int>{0, 1, 2, 3, 4}));

  EXPECT_EQ(topo.nodes, 2);
  EXPECT_EQ(topo.cpus[2].node, 4);
  EXPECT_EQ(topo.cpus[3].node, 4);
  EXPECT_EQ(topo.cpus[4].node, 0);  // cpu4 unclaimed by any node dir
}

TEST(TopologyProbe, RestrictedAffinityNarrowsAndFlags) {
  // A container cpuset pinning us to node 0's half of the machine:
  // the probe must shrink to the mask AND brand the host restricted,
  // so the scheduler never re-pins.
  SysTree tree;
  tree.online("0-3").node(0, "0-1").node(1, "2-3");
  const Topology topo = probe_topology(tree.options(std::vector<int>{0, 1}));

  EXPECT_EQ(cpu_ids(topo), (std::vector<int>{0, 1}));
  EXPECT_TRUE(topo.restricted);
  EXPECT_EQ(topo.nodes, 1);
}

TEST(TopologyProbe, AffinityMaskOutsideOnlineSetIsIgnored) {
  SysTree tree;
  tree.online("0-1").node(0, "0-1");
  const Topology topo =
      probe_topology(tree.options(std::vector<int>{0, 1, 7, 9}));

  // Mask ids with no online cpu contribute nothing and do not flag.
  EXPECT_EQ(cpu_ids(topo), (std::vector<int>{0, 1}));
  EXPECT_FALSE(topo.restricted);
}

TEST(TopologyProbe, MalformedOnlineListFallsBack) {
  SysTree tree;
  tree.online("zen4-epyc");
  const Topology topo = probe_topology(tree.options());

  EXPECT_TRUE(topo.restricted);
  EXPECT_EQ(topo.nodes, 1);
  EXPECT_EQ(topo.hw_threads,
            static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency())));
  EXPECT_FALSE(topo.cpus.empty());
}

TEST(TopologyProbe, MissingTreeFallsBack) {
  ProbeOptions opts;
  opts.sysfs_root = "/nonexistent/kc-topology-test";
  const Topology topo = probe_topology(opts);

  EXPECT_TRUE(topo.restricted);
  EXPECT_EQ(topo.nodes, 1);
  EXPECT_FALSE(topo.cpus.empty());
}

TEST(TopologyProbe, UnparseableNodeEntriesAreSkipped) {
  // A nodeXYZ directory that is not node<int> and a node with an
  // unreadable cpulist must not derail the probe.
  SysTree tree;
  tree.online("0-1").node(0, "0-1");
  fs::create_directories(fs::path(tree.options().sysfs_root) / "node" /
                         "node_power");
  fs::create_directories(fs::path(tree.options().sysfs_root) / "node" /
                         "node7");  // no cpulist file
  const Topology topo = probe_topology(tree.options(std::vector<int>{0, 1}));

  EXPECT_EQ(topo.nodes, 1);
  EXPECT_EQ(cpu_ids(topo), (std::vector<int>{0, 1}));
}

TEST(TopologyProbe, DuplicateAndUnsortedListEntriesCollapse) {
  SysTree tree;
  tree.online("3,1,0-1,2").node(0, "0-3");
  const Topology topo =
      probe_topology(tree.options(std::vector<int>{0, 1, 2, 3}));

  EXPECT_EQ(cpu_ids(topo), (std::vector<int>{0, 1, 2, 3}));
}

TEST(TopologyProbe, LiveHostProbeStaysSane) {
  // The cached process-wide probe on whatever host runs the suite:
  // shape invariants only, nothing machine-specific.
  const Topology& topo = topology();
  EXPECT_FALSE(topo.cpus.empty());
  EXPECT_GE(topo.nodes, 1);
  EXPECT_GE(topo.cores, 1);
  EXPECT_EQ(topo.hw_threads, static_cast<int>(topo.cpus.size()));
  for (std::size_t i = 1; i < topo.cpus.size(); ++i) {
    EXPECT_LT(topo.cpus[i - 1].id, topo.cpus[i].id);
  }
}

}  // namespace
}  // namespace kc::exec
