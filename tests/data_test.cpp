#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "algo/brute_force.hpp"
#include "algo/gonzalez.hpp"
#include "data/generators.hpp"
#include "data/loader.hpp"
#include "data/planted.hpp"
#include "data/surrogates.hpp"
#include "eval/evaluate.hpp"
#include "geom/distance.hpp"

namespace kc::data {
namespace {

// ---------------------------------------------------------------- UNIF

TEST(Unif, PointsStayInCube) {
  Rng rng(1);
  const PointSet ps = generate_unif(5000, 3, 50.0, rng);
  EXPECT_EQ(ps.size(), 5000u);
  EXPECT_EQ(ps.dim(), 3u);
  for (index_t i = 0; i < ps.size(); ++i) {
    for (const double c : ps[i]) {
      EXPECT_GE(c, 0.0);
      EXPECT_LT(c, 50.0);
    }
  }
}

TEST(Unif, CoordinatesFillTheCube) {
  Rng rng(2);
  const PointSet ps = generate_unif(20000, 2, 100.0, rng);
  double mean_x = 0.0;
  for (index_t i = 0; i < ps.size(); ++i) mean_x += ps[i][0];
  mean_x /= static_cast<double>(ps.size());
  EXPECT_NEAR(mean_x, 50.0, 1.5);
}

TEST(Unif, RejectsZeroPoints) {
  Rng rng(3);
  EXPECT_THROW((void)generate_unif(0, 2, 1.0, rng), std::invalid_argument);
}

// ---------------------------------------------------------------- GAU

TEST(Gau, HasRequestedShape) {
  Rng rng(4);
  const PointSet ps = generate_gau(10000, 25, 2, 100.0, 0.1, rng);
  EXPECT_EQ(ps.size(), 10000u);
  EXPECT_EQ(ps.dim(), 2u);
}

TEST(Gau, PointsConcentrateNearClusterCenters) {
  // With sigma = 0.1 and side = 100, a k'-center solution with k = k'
  // must have a tiny radius compared to the cube: that is the defining
  // property the paper's Tables 2/4 exhibit (values drop ~40x at k=k').
  Rng rng(5);
  const std::size_t kPrime = 8;
  const PointSet ps = generate_gau(4000, kPrime, 2, 100.0, 0.1, rng);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  // Gonzalez with k = k' should find every cluster: radius < 2 (vs
  // ~100 for the whole cube).
  const auto result = gonzalez(oracle, all, kPrime);
  EXPECT_LT(oracle.to_reported(result.radius_comparable), 2.0);
}

TEST(Gau, ClusterSizesRoughlyBalanced) {
  Rng rng(6);
  const std::size_t kPrime = 10;
  const PointSet ps = generate_gau(20000, kPrime, 2, 1000.0, 0.1, rng);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto gon = gonzalez(oracle, all, kPrime);
  const auto stats = eval::cluster_stats(oracle, all, gon.centers);
  // Uniform assignment: each cluster ~2000 points; allow generous slack.
  EXPECT_GT(stats.smallest_cluster, 1000u);
  EXPECT_LT(stats.largest_cluster, 4000u);
}

// ---------------------------------------------------------------- UNB

TEST(Unb, HeavyClusterGetsRequestedFraction) {
  Rng rng(7);
  const std::size_t kPrime = 10;
  const PointSet ps =
      generate_unb(20000, kPrime, 2, 1000.0, 0.1, 0.5, rng);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto gon = gonzalez(oracle, all, kPrime);
  const auto stats = eval::cluster_stats(oracle, all, gon.centers);
  // One cluster holds ~half of everything.
  EXPECT_GT(stats.largest_cluster, 9000u);
  EXPECT_LT(stats.largest_cluster, 11000u);
}

TEST(Unb, FractionOneCollapsesToSingleCluster) {
  Rng rng(8);
  const PointSet ps = generate_unb(1000, 5, 2, 1000.0, 0.1, 1.0, rng);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  // All points in one Gaussian blob: 1-center radius is tiny.
  const auto gon = gonzalez(oracle, all, 1);
  EXPECT_LT(oracle.to_reported(gon.radius_comparable), 2.0);
}

TEST(Unb, ValidatesFraction) {
  Rng rng(9);
  EXPECT_THROW((void)generate_unb(10, 2, 2, 1.0, 0.1, 1.5, rng),
               std::invalid_argument);
  EXPECT_THROW((void)generate_unb(10, 2, 2, 1.0, 0.1, -0.1, rng),
               std::invalid_argument);
}

// ---------------------------------------------------------------- spec

TEST(SyntheticSpec, DispatchesToAllKinds) {
  for (const auto kind :
       {SyntheticKind::Unif, SyntheticKind::Gau, SyntheticKind::Unb}) {
    SyntheticSpec spec;
    spec.kind = kind;
    spec.n = 500;
    Rng rng(10);
    const PointSet ps = generate(spec, rng);
    EXPECT_EQ(ps.size(), 500u);
    EXPECT_EQ(ps.dim(), 2u);
  }
}

TEST(SyntheticSpec, KindNames) {
  EXPECT_EQ(to_string(SyntheticKind::Unif), "UNIF");
  EXPECT_EQ(to_string(SyntheticKind::Gau), "GAU");
  EXPECT_EQ(to_string(SyntheticKind::Unb), "UNB");
}

TEST(SyntheticSpec, SameSeedSameData) {
  SyntheticSpec spec;
  spec.n = 200;
  Rng r1(11);
  Rng r2(11);
  const PointSet a = generate(spec, r1);
  const PointSet b = generate(spec, r2);
  for (index_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i][0], b[i][0]);
    EXPECT_EQ(a[i][1], b[i][1]);
  }
}

// ---------------------------------------------------------------- planted

TEST(Planted, ExactOptConstruction) {
  Rng rng(12);
  const auto inst = make_planted(4, 9, 1.0, 10.0, 2, rng);
  EXPECT_EQ(inst.points.size(), 36u);
  EXPECT_EQ(inst.optimal_centers.size(), 4u);
  EXPECT_DOUBLE_EQ(inst.opt_radius, 1.0);

  // The planted centers cover everything at exactly the claimed OPT.
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();
  const auto cover =
      eval::covering_radius(oracle, all, inst.optimal_centers, false);
  EXPECT_NEAR(cover.radius, 1.0, 1e-9);
}

TEST(Planted, SatellitesSitAtExactRadius) {
  Rng rng(13);
  const auto inst = make_planted(2, 5, 3.0, 20.0, 3, rng);
  const DistanceOracle oracle(inst.points);
  // Cluster c occupies indices [c*5, (c+1)*5); index c*5 is the site.
  for (index_t c = 0; c < 2; ++c) {
    const index_t site = c * 5;
    for (index_t s = 1; s < 5; ++s) {
      EXPECT_NEAR(oracle.distance(site, site + s), 3.0, 1e-9);
    }
  }
}

TEST(Planted, AntipodalPairsAreDiametrical) {
  Rng rng(14);
  const auto inst = make_planted(1, 7, 2.0, 20.0, 2, rng);
  const DistanceOracle oracle(inst.points);
  // Satellites come in consecutive antipodal pairs after the site.
  for (index_t p = 1; p < 7; p += 2) {
    EXPECT_NEAR(oracle.distance(p, p + 1), 4.0, 1e-9);
  }
}

TEST(Planted, BruteForceConfirmsOptimality) {
  Rng rng(15);
  const auto inst = make_planted(3, 3, 1.5, 10.0, 2, rng);
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();
  const auto opt = brute_force_opt(oracle, all, 3);
  EXPECT_NEAR(oracle.to_reported(opt.radius_comparable), 1.5, 1e-9);
}

TEST(Planted, ValidatesArguments) {
  Rng rng(16);
  EXPECT_THROW((void)make_planted(0, 3, 1.0, 10.0, 2, rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_planted(2, 4, 1.0, 10.0, 2, rng),
               std::invalid_argument);  // even per-cluster count
  EXPECT_THROW((void)make_planted(2, 3, 1.0, 3.0, 2, rng),
               std::invalid_argument);  // separation <= 4r
  EXPECT_THROW((void)make_planted(2, 3, 1.0, 10.0, 1, rng),
               std::invalid_argument);  // dim < 2
}

// ---------------------------------------------------------------- surrogates

TEST(PokerSurrogate, EncodesValidHands) {
  Rng rng(17);
  const PointSet hands = poker_hand_surrogate(2000, rng);
  EXPECT_EQ(hands.size(), 2000u);
  EXPECT_EQ(hands.dim(), kPokerHandDim);
  for (index_t i = 0; i < hands.size(); ++i) {
    const auto h = hands[i];
    std::set<std::pair<int, int>> cards;
    for (int c = 0; c < 5; ++c) {
      const int suit = static_cast<int>(h[2 * c]);
      const int rank = static_cast<int>(h[2 * c + 1]);
      EXPECT_GE(suit, 1);
      EXPECT_LE(suit, 4);
      EXPECT_GE(rank, 1);
      EXPECT_LE(rank, 13);
      cards.insert({suit, rank});
    }
    EXPECT_EQ(cards.size(), 5u) << "hand " << i << " has duplicate cards";
  }
}

TEST(PokerSurrogate, DistanceScaleMatchesPaper) {
  // Table 5's values range ~8.4..19.4; the hand-space diameter is
  // sqrt(5*(3^2+12^2)) ~ 27.7. The surrogate's 2-center value must sit
  // in the same band.
  Rng rng(18);
  const PointSet hands = poker_hand_surrogate(5000, rng);
  const DistanceOracle oracle(hands);
  const auto all = hands.all_indices();
  const auto gon = gonzalez(oracle, all, 2);
  const double value =
      eval::covering_radius(oracle, all, gon.centers, false).radius;
  EXPECT_GT(value, 10.0);
  EXPECT_LT(value, 27.7);
}

TEST(KddSurrogate, ShapeAndArchetypeMix) {
  Rng rng(19);
  const PointSet kdd = kdd_cup_surrogate(20000, rng);
  EXPECT_EQ(kdd.size(), 20000u);
  EXPECT_EQ(kdd.dim(), kKddCupDim);

  // The smurf archetype (~57%) pins src_bytes in [520, 1032] with
  // count near 500: check the dominant mode is present.
  std::size_t smurf_like = 0;
  for (index_t i = 0; i < kdd.size(); ++i) {
    const auto f = kdd[i];
    if (f[1] >= 520.0 && f[1] <= 1032.0 && f[19] >= 450.0) ++smurf_like;
  }
  EXPECT_GT(smurf_like, kdd.size() / 2);
  EXPECT_LT(smurf_like, kdd.size() * 7 / 10);
}

TEST(KddSurrogate, ContainsExtremeOutliers) {
  // Figure 1's 10^8..10^9 values at small k require enormous flows.
  Rng rng(20);
  const PointSet kdd = kdd_cup_surrogate(10000, rng);
  double max_src = 0.0;
  for (index_t i = 0; i < kdd.size(); ++i) {
    max_src = std::max(max_src, kdd[i][1]);
  }
  EXPECT_GT(max_src, 1e8);
}

TEST(KddSurrogate, SmallKValuesSpanOrdersOfMagnitude) {
  Rng rng(21);
  const PointSet kdd = kdd_cup_surrogate(20000, rng);
  const DistanceOracle oracle(kdd);
  const auto all = kdd.all_indices();
  const double v2 =
      eval::covering_radius(oracle, all, gonzalez(oracle, all, 2).centers,
                            false)
          .radius;
  const double v64 =
      eval::covering_radius(oracle, all, gonzalez(oracle, all, 64).centers,
                            false)
          .radius;
  EXPECT_GT(v2, 1e7);          // dominated by the bulk-transfer outliers
  EXPECT_LT(v64, v2 / 10.0);   // value collapses as k grows (Figure 1)
}

// ---------------------------------------------------------------- loader

class LoaderTest : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() / "kc_loader_test.csv";
  void TearDown() override { std::filesystem::remove(path_); }
  void write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
};

TEST_F(LoaderTest, ParsesPlainNumericCsv) {
  write("1,2,3\n4,5,6\n7,8,9\n");
  const PointSet ps = load_numeric_csv(path_.string());
  EXPECT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps.dim(), 3u);
  EXPECT_EQ(ps[1][2], 6.0);
}

TEST_F(LoaderTest, DropsNonNumericColumns) {
  // KDD-style rows: protocol/service/flag strings are skipped.
  write("0,tcp,http,SF,215,45076\n0,udp,domain,SF,44,133\n");
  const PointSet ps = load_numeric_csv(path_.string());
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.dim(), 3u);  // duration, src_bytes, dst_bytes
  EXPECT_EQ(ps[0][1], 215.0);
  EXPECT_EQ(ps[1][2], 133.0);
}

TEST_F(LoaderTest, DropLastColumnRemovesLabel) {
  write("1,2,9\n3,4,9\n");
  CsvOptions options;
  options.drop_last_column = true;
  const PointSet ps = load_numeric_csv(path_.string(), options);
  EXPECT_EQ(ps.dim(), 2u);
}

TEST_F(LoaderTest, MaxRowsTruncates) {
  write("1\n2\n3\n4\n5\n");
  CsvOptions options;
  options.max_rows = 3;
  const PointSet ps = load_numeric_csv(path_.string(), options);
  EXPECT_EQ(ps.size(), 3u);
}

TEST_F(LoaderTest, SkipsHeaderAndBlankLines) {
  write("x,y\n\n1,2\n3,4\n");
  const PointSet ps = load_numeric_csv(path_.string());
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.dim(), 2u);
}

TEST_F(LoaderTest, RejectsInconsistentRows) {
  write("1,2\n3,4,5\n");
  EXPECT_THROW((void)load_numeric_csv(path_.string()), std::runtime_error);
}

TEST_F(LoaderTest, RejectsMissingFile) {
  EXPECT_THROW((void)load_numeric_csv("/nonexistent/file.csv"),
               std::runtime_error);
}

TEST_F(LoaderTest, ValidatesExpectedDim) {
  write("1,2,3\n");
  CsvOptions options;
  options.expect_dim = 4;
  EXPECT_THROW((void)load_numeric_csv(path_.string(), options),
               std::runtime_error);
}

TEST_F(LoaderTest, SaveLoadRoundTrip) {
  Rng rng(22);
  const PointSet original = generate_unif(50, 3, 10.0, rng);
  save_csv(original, path_.string());
  const PointSet loaded = load_numeric_csv(path_.string());
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (index_t i = 0; i < original.size(); ++i) {
    for (std::size_t d = 0; d < original.dim(); ++d) {
      EXPECT_DOUBLE_EQ(loaded[i][d], original[i][d]);
    }
  }
}

}  // namespace
}  // namespace kc::data
