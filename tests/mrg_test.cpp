// Tests for MRG (Algorithm 1): round structure, approximation factors,
// capacity handling and the adversarial tightness witness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "test_util.hpp"

namespace kc {
namespace {

MrgOptions default_options(std::uint64_t seed = 1) {
  MrgOptions options;
  options.seed = seed;
  return options;
}

TEST(Mrg, TwoRoundsWithDerivedCapacity) {
  const PointSet ps = test::small_gaussian_instance(5, 200, 1);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const auto result = mrg(oracle, all, 5, cluster, default_options());
  EXPECT_EQ(result.reduce_rounds, 1);          // one while-loop pass
  EXPECT_EQ(result.trace.num_rounds(), 2);     // + final = 2 MapReduce rounds
  EXPECT_EQ(result.guaranteed_factor(), 4);
  EXPECT_EQ(result.centers.size(), 5u);
  EXPECT_TRUE(test::valid_center_set(result.centers, ps.size()));
}

TEST(Mrg, FirstRoundUsesAllMachines) {
  const PointSet ps = test::small_gaussian_instance(4, 100, 2);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(8);
  const auto result = mrg(oracle, all, 4, cluster, default_options());
  EXPECT_EQ(result.trace.rounds()[0].machines_used, 8);
  EXPECT_EQ(result.trace.rounds()[1].machines_used, 1);  // final round
}

TEST(Mrg, RoundAccountingTracksItemFlow) {
  const PointSet ps = test::small_gaussian_instance(4, 100, 3);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(8);
  const auto result = mrg(oracle, all, 4, cluster, default_options());
  const auto& reduce = result.trace.rounds()[0];
  const auto& final_round = result.trace.rounds()[1];
  EXPECT_EQ(reduce.items_in, ps.size());
  EXPECT_EQ(reduce.items_out, 8u * 4u);  // k centers per machine
  EXPECT_EQ(final_round.items_in, reduce.items_out);
  EXPECT_EQ(final_round.items_out, 4u);
}

TEST(Mrg, SingleMachineEqualsSequentialGonzalez) {
  const PointSet ps = test::small_gaussian_instance(6, 50, 4);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(1);
  // With m=1 and capacity >= n the loop never runs: MRG *is* GON.
  MrgOptions options = default_options();
  options.capacity = ps.size();
  const auto parallel = mrg(oracle, all, 6, cluster, options);
  const auto sequential = gonzalez(oracle, all, 6);
  EXPECT_EQ(parallel.centers, sequential.centers);
  EXPECT_EQ(parallel.reduce_rounds, 0);
  EXPECT_EQ(parallel.guaranteed_factor(), 2);  // no parallel loss
}

TEST(Mrg, MultiRoundUnderTightCapacity) {
  const PointSet ps = test::small_gaussian_instance(4, 500, 5);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(20);
  MrgOptions options = default_options();
  // n/m = 100 fits capacity 100, but k*m = 8*20 = 160 centers exceed
  // it, so the sample itself needs another reduce round.
  options.capacity = 100;
  const auto result = mrg(oracle, all, 8, cluster, options);
  EXPECT_GE(result.reduce_rounds, 2);
  EXPECT_EQ(result.guaranteed_factor(), 2 * (result.reduce_rounds + 1));
  EXPECT_EQ(result.centers.size(), 8u);
  // Every reduce round after the first uses just enough machines.
  for (int r = 1; r + 1 < result.trace.num_rounds(); ++r) {
    const auto& round = result.trace.rounds()[r];
    const auto needed = static_cast<int>(
        (round.items_in + options.capacity - 1) / options.capacity);
    EXPECT_EQ(round.machines_used, std::min(20, needed));
  }
}

TEST(Mrg, MachineCountShrinksPerInequalityOne) {
  // Inequality (1): m_i <= m * (k/c)^i + (1 - (k/c)^i) / (1 - k/c).
  const PointSet ps = test::small_gaussian_instance(2, 1000, 6);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const int m = 40;  // n/m = 50 = c, but k*m = 80 > c: multi-round
  const std::size_t k = 2;
  const std::size_t c = 50;
  const mr::SimCluster cluster(m);
  MrgOptions options = default_options();
  options.capacity = c;
  const auto result = mrg(oracle, all, k, cluster, options);
  const double ratio = static_cast<double>(k) / static_cast<double>(c);
  for (int i = 1; i + 1 < result.trace.num_rounds(); ++i) {
    const double bound = m * std::pow(ratio, i) +
                         (1.0 - std::pow(ratio, i)) / (1.0 - ratio);
    EXPECT_LE(result.trace.rounds()[i].machines_used, bound + 1e-9)
        << "round " << i;
  }
}

TEST(Mrg, ThrowsWhenInputCannotFitCluster) {
  const PointSet ps = test::small_gaussian_instance(2, 500, 7);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(2);
  MrgOptions options = default_options();
  options.capacity = 100;  // ceil(1000/2) = 500 > 100
  EXPECT_THROW((void)mrg(oracle, all, 2, cluster, options), std::length_error);
}

TEST(Mrg, ThrowsWhenKTooLargeForCapacity) {
  const PointSet ps = test::small_gaussian_instance(2, 500, 8);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  MrgOptions options = default_options();
  // k = 120 > c = 100: selecting k centers on one machine is impossible,
  // and reduce rounds cannot shrink the sample (k*m' >= |S|).
  options.capacity = 100;
  EXPECT_THROW((void)mrg(oracle, all, 120, cluster, options),
               std::runtime_error);
}

TEST(Mrg, RejectsInvalidArguments) {
  const PointSet ps{{0.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(2);
  EXPECT_THROW((void)mrg(oracle, all, 0, cluster), std::invalid_argument);
  EXPECT_THROW((void)mrg(oracle, {}, 1, cluster), std::invalid_argument);
}

TEST(Mrg, DeterministicGivenSeed) {
  const PointSet ps = test::small_gaussian_instance(5, 100, 9);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(7);
  const auto a = mrg(oracle, all, 5, cluster, default_options(42));
  const auto b = mrg(oracle, all, 5, cluster, default_options(42));
  EXPECT_EQ(a.centers, b.centers);
}

TEST(Mrg, ShuffledPartitionIsSeedDeterministic) {
  const PointSet ps = test::small_gaussian_instance(5, 100, 10);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(7);
  MrgOptions options = default_options(42);
  options.partition = mr::PartitionStrategy::Shuffled;
  const auto a = mrg(oracle, all, 5, cluster, options);
  const auto b = mrg(oracle, all, 5, cluster, options);
  EXPECT_EQ(a.centers, b.centers);
}

TEST(Mrg, OpenMPExecutionMatchesSequential) {
  if (!exec::backend_available(exec::BackendKind::OpenMP)) {
    GTEST_SKIP() << "built without OpenMP";
  }
  const PointSet ps = test::small_gaussian_instance(5, 200, 11);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster seq(8, 0, exec::BackendKind::Sequential);
  const mr::SimCluster omp(8, 0, exec::BackendKind::OpenMP);
  const auto a = mrg(oracle, all, 5, seq, default_options(7));
  const auto b = mrg(oracle, all, 5, omp, default_options(7));
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_EQ(a.reduce_rounds, b.reduce_rounds);
}

TEST(Mrg, HochbaumShmoysAsInnerAlgorithm) {
  const PointSet ps = test::small_gaussian_instance(4, 100, 12);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(8);
  MrgOptions options = default_options();
  options.inner = SeqAlgo::HochbaumShmoys;
  options.final_algo = SeqAlgo::HochbaumShmoys;
  const auto result = mrg(oracle, all, 4, cluster, options);
  EXPECT_LE(result.centers.size(), 4u);
  EXPECT_FALSE(result.centers.empty());
  // Still a 4-approx in two rounds (Lemma 1 holds for any 2-approx inner).
  EXPECT_EQ(result.trace.num_rounds(), 2);
}

TEST(Mrg, ExplicitPartitionValidated) {
  const PointSet ps = test::small_gaussian_instance(2, 50, 13);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(2);
  MrgOptions options = default_options();
  options.partition = mr::PartitionStrategy::Explicit;
  // Missing assignment vector.
  EXPECT_THROW((void)mrg(oracle, all, 2, cluster, options),
               std::invalid_argument);
  options.explicit_assignment = std::vector<int>{0, 1};  // wrong arity
  EXPECT_THROW((void)mrg(oracle, all, 2, cluster, options),
               std::invalid_argument);
}

// ------------------------------------------------- approximation factors

class MrgApproximation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MrgApproximation, TwoRoundRunIsFourApproxOnPlanted) {
  Rng rng(GetParam());
  const auto inst = data::make_planted(6, 21, 1.0, 10.0, 2, rng);
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();
  const mr::SimCluster cluster(6);
  MrgOptions options = default_options(GetParam());
  options.partition = mr::PartitionStrategy::Shuffled;
  const auto result = mrg(oracle, all, 6, cluster, options);
  ASSERT_EQ(result.reduce_rounds, 1);
  EXPECT_LE(test::value_of(oracle, all, result.centers),
            4.0 * inst.opt_radius + 1e-9);
}

TEST_P(MrgApproximation, MultiRoundRespectsLoosenedBound) {
  Rng rng(GetParam() + 500);
  const auto inst = data::make_planted(4, 51, 1.0, 12.0, 2, rng);
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();
  const mr::SimCluster cluster(17);
  MrgOptions options = default_options(GetParam());
  options.capacity = 30;  // force k*m = 68 > 30: multiple rounds
  const auto result = mrg(oracle, all, 4, cluster, options);
  EXPECT_GE(result.reduce_rounds, 2);
  EXPECT_LE(test::value_of(oracle, all, result.centers),
            result.guaranteed_factor() * inst.opt_radius + 1e-9);
}

TEST_P(MrgApproximation, WithinFourTimesBruteForceOnRandomInstances) {
  Rng rng(GetParam() + 900);
  const std::size_t n = 16;
  const std::size_t k = 2 + rng.uniform_int(2);
  PointSet ps(n, 2);
  for (index_t i = 0; i < n; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 10);
  }
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto opt = brute_force_opt(oracle, all, k);
  const mr::SimCluster cluster(2);
  MrgOptions options = default_options(GetParam());
  options.capacity = std::max<std::size_t>(n / 2, k * 2);
  const auto result = mrg(oracle, all, k, cluster, options);
  EXPECT_LE(test::value_of(oracle, all, result.centers),
            4.0 * oracle.to_reported(opt.radius_comparable) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrgApproximation,
                         ::testing::Range<std::uint64_t>(0, 8));

// ------------------------------------------------- tightness witness

TEST(Mrg, AdversarialInstanceRealizesNearlyFactorFour) {
  // Hand-derived 1-D instance (see test_util.hpp): four unit clusters
  // A{0,1,2} B{4,5,6.05} C{8,9,10} D{12,13,14}; exact OPT = 1.05.
  // Block partition M1 = {4,13,9,8,12,5}, M2 = {2,14,6.05,10,0,1}:
  //   GON(M1) emits [4,13,9,8]; GON(M2) emits [2,14,6.05,10]
  //   (0 is never the farthest point, so it survives as a non-center
  //   at distance 2 from its representative 2);
  //   final GON on C = [4,13,9,8,2,14,6.05,10] seeded at 4 emits
  //   {4,14,9,6.05} - covering 2 via 4 - and point 0 ends up at
  //   distance 4.0 = 3.81 * OPT, demonstrating the paper's claim that
  //   MRG's factor 4 is tight (future-work section).
  const test::AdversarialMrgInstance inst;
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();

  // Confirm the claimed exact optimum by brute force.
  const auto opt = brute_force_opt(oracle, all, inst.k);
  ASSERT_NEAR(oracle.to_reported(opt.radius_comparable), inst.opt, 1e-9);

  const mr::SimCluster cluster(inst.machines);
  MrgOptions options;
  options.partition = mr::PartitionStrategy::Block;
  const auto result = mrg(oracle, all, inst.k, cluster, options);
  ASSERT_EQ(result.reduce_rounds, 1);

  const double value = test::value_of(oracle, all, result.centers);
  EXPECT_NEAR(value, inst.expected_value, 1e-9);

  const double ratio = value / inst.opt;
  EXPECT_GT(ratio, 3.5);                      // far beyond GON's factor 2
  EXPECT_LE(value, 4.0 * inst.opt + 1e-9);    // but still within Lemma 2
}

TEST(Mrg, AdversarialInstanceIsEasyForSequentialGonzalez) {
  // The same instance is solved well by plain GON (the badness is the
  // partition, not the data).
  const test::AdversarialMrgInstance inst;
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();
  const auto gon = gonzalez(oracle, all, inst.k);
  EXPECT_LE(test::value_of(oracle, all, gon.centers), 2.0 * inst.opt + 1e-9);
}

}  // namespace
}  // namespace kc
