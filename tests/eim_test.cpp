// Tests for EIM (Algorithm 2 + Select): termination (including the
// §4.1 fixes), the sampling/no-sampling regimes, the phi knob, and the
// probabilistic approximation guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "test_util.hpp"

namespace kc {
namespace {

EimOptions default_options(std::uint64_t seed = 1) {
  EimOptions options;
  options.seed = seed;
  return options;
}

TEST(EimThreshold, MatchesFormula) {
  EimOptions options;
  options.epsilon = 0.1;
  options.log_base = LogBase::Ten;
  const double t = eim_loop_threshold(100000, 25, options);
  EXPECT_NEAR(t, (4.0 / 0.1) * 25 * std::pow(100000.0, 0.1) * 5.0, 1e-6);
}

TEST(EimThreshold, LogBasesAreOrdered) {
  EimOptions options;
  options.log_base = LogBase::Two;
  const double t2 = eim_loop_threshold(50000, 10, options);
  options.log_base = LogBase::E;
  const double te = eim_loop_threshold(50000, 10, options);
  options.log_base = LogBase::Ten;
  const double t10 = eim_loop_threshold(50000, 10, options);
  EXPECT_GT(t2, te);
  EXPECT_GT(te, t10);
}

TEST(EimThreshold, LogBaseNames) {
  EXPECT_EQ(to_string(LogBase::E), "ln");
  EXPECT_EQ(to_string(LogBase::Two), "log2");
  EXPECT_EQ(to_string(LogBase::Ten), "log10");
  EXPECT_DOUBLE_EQ(log_with_base(8.0, LogBase::Two), 3.0);
  EXPECT_DOUBLE_EQ(log_with_base(100.0, LogBase::Ten), 2.0);
  EXPECT_NEAR(log_with_base(std::exp(1.0), LogBase::E), 1.0, 1e-12);
}

TEST(Eim, SamplesWhenAboveThreshold) {
  const PointSet ps = test::small_gaussian_instance(10, 3000, 1);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const EimOptions options = default_options();
  ASSERT_GT(static_cast<double>(ps.size()),
            eim_loop_threshold(ps.size(), 10, options));
  const auto result = eim(oracle, all, 10, cluster, options);
  EXPECT_TRUE(result.sampled);
  EXPECT_GE(result.iterations, 1);
  // 3 MapReduce rounds per iteration plus the final clean-up.
  EXPECT_EQ(result.trace.num_rounds(), 3 * result.iterations + 1);
  EXPECT_EQ(result.centers.size(), 10u);
  EXPECT_TRUE(test::valid_center_set(result.centers, ps.size()));
  // The final sample is a strict subset of the input.
  EXPECT_LT(result.final_sample_size, ps.size());
  EXPECT_GE(result.final_sample_size, 10u);
}

TEST(Eim, DegeneratesToSequentialWhenKTooLarge) {
  // Figure 3b / 4b: when n <= (4/eps) k n^eps log n the loop never
  // runs and the whole input goes to one machine.
  const PointSet ps = test::small_gaussian_instance(10, 200, 2);  // n = 2000
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const EimOptions options = default_options();
  ASSERT_LE(static_cast<double>(ps.size()),
            eim_loop_threshold(ps.size(), 100, options));
  const auto result = eim(oracle, all, 100, cluster, options);
  EXPECT_FALSE(result.sampled);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.trace.num_rounds(), 1);
  EXPECT_EQ(result.final_sample_size, ps.size());
  EXPECT_EQ(result.centers.size(), 100u);
}

TEST(Eim, DegenerateRunMatchesGonzalezValue) {
  const PointSet ps = test::small_gaussian_instance(8, 100, 3);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const auto result = eim(oracle, all, 50, cluster, default_options());
  ASSERT_FALSE(result.sampled);
  // Same algorithm (GON with random seed) on the same full input: the
  // value must be within GON's guarantee band.
  const auto gon = gonzalez(oracle, all, 50);
  const double eim_value = test::value_of(oracle, all, result.centers);
  const double gon_value = oracle.to_reported(gon.radius_comparable);
  EXPECT_LT(eim_value, 2.5 * gon_value + 1e-9);
  EXPECT_LT(gon_value, 2.5 * eim_value + 1e-9);
}

TEST(Eim, TerminatesOnAllDuplicatePoints) {
  // The adversarial case behind the §4.1 fixes: every distance is 0,
  // so the original "remove strictly closer than v" rule would loop
  // forever. With the `<=` rule R drains and the algorithm halts.
  const PointSet ps = test::all_duplicates(5000);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  EimOptions options = default_options();
  options.max_iterations = 50;
  const auto result = eim(oracle, all, 2, cluster, options);
  EXPECT_EQ(result.centers.size(), 2u);
  EXPECT_LE(result.iterations, 3);  // ties all removed in one pass
}

TEST(Eim, TerminatesOnTwoValueData) {
  // Half the points at one location, half at another: massive ties.
  PointSet ps(4000, 2);
  for (index_t i = 0; i < ps.size(); ++i) {
    auto p = ps.mutable_point(i);
    p[0] = (i % 2 == 0) ? 0.0 : 50.0;
    p[1] = 0.0;
  }
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const auto result = eim(oracle, all, 2, cluster, default_options());
  EXPECT_EQ(result.centers.size(), 2u);
  // Both locations must be represented: the value is 0.
  EXPECT_NEAR(test::value_of(oracle, all, result.centers), 0.0, 1e-12);
}

TEST(Eim, OriginalRemovalRuleStallsOnTies) {
  // Regression demonstration for §4.1: with the original strict-<
  // removal and without forced sample removal, an all-ties instance
  // never shrinks R ("the procedure looping indefinitely" in the
  // paper's words); our safety valve converts that into an exception.
  const PointSet ps = test::all_duplicates(5000);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  EimOptions original = default_options();
  original.tie_breaking_removal = false;
  original.remove_sampled = false;
  original.max_iterations = 8;
  EXPECT_THROW((void)eim(oracle, all, 2, cluster, original),
               std::runtime_error);
}

TEST(Eim, EachFixAloneRestoresTermination) {
  // Either §4.1 fix suffices on the all-ties adversary: `<=` prunes
  // the tied points, and sample removal drains R via the samples.
  const PointSet ps = test::all_duplicates(5000);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);

  EimOptions tie_fix_only = default_options();
  tie_fix_only.remove_sampled = false;
  EXPECT_EQ(eim(oracle, all, 2, cluster, tie_fix_only).centers.size(), 2u);

  EimOptions sample_fix_only = default_options();
  sample_fix_only.tie_breaking_removal = false;
  sample_fix_only.max_iterations = 50;
  EXPECT_EQ(eim(oracle, all, 2, cluster, sample_fix_only).centers.size(), 2u);
}

TEST(Eim, StrictRuleStillWorksOnContinuousData) {
  // On continuous data the only tie is the pivot itself (its distance
  // *equals* the threshold), so the strict-< rule merely keeps v alive
  // a little longer: the run still terminates with comparable quality.
  const PointSet ps = test::small_gaussian_instance(5, 2000, 12);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  EimOptions strict = default_options(5);
  strict.tie_breaking_removal = false;
  const auto fixed = eim(oracle, all, 5, cluster, default_options(5));
  const auto original = eim(oracle, all, 5, cluster, strict);
  const double v_fixed = test::value_of(oracle, all, fixed.centers);
  const double v_original = test::value_of(oracle, all, original.centers);
  EXPECT_LT(v_original, 3.0 * v_fixed + 1e-9);
  EXPECT_LT(v_fixed, 3.0 * v_original + 1e-9);
}

TEST(Eim, SampledPointsNeverSurviveInR) {
  // §4.1 fix 2: the output C = S + R has no duplicates (a sampled
  // point must leave R, otherwise it would appear twice).
  const PointSet ps = test::small_gaussian_instance(5, 2000, 4);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const auto result = eim(oracle, all, 5, cluster, default_options());
  ASSERT_TRUE(result.sampled);
  EXPECT_TRUE(test::valid_center_set(result.centers, ps.size()));
}

TEST(Eim, RejectsInvalidArguments) {
  const PointSet ps{{0.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(2);
  EXPECT_THROW((void)eim(oracle, all, 0, cluster), std::invalid_argument);
  EXPECT_THROW((void)eim(oracle, {}, 1, cluster), std::invalid_argument);
  EimOptions bad = default_options();
  bad.epsilon = 0.0;
  EXPECT_THROW((void)eim(oracle, all, 1, cluster, bad), std::invalid_argument);
  bad = default_options();
  bad.epsilon = 1.0;
  EXPECT_THROW((void)eim(oracle, all, 1, cluster, bad), std::invalid_argument);
  bad = default_options();
  bad.phi = 0.0;
  EXPECT_THROW((void)eim(oracle, all, 1, cluster, bad), std::invalid_argument);
}

TEST(Eim, DeterministicGivenSeed) {
  const PointSet ps = test::small_gaussian_instance(5, 2000, 5);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const auto a = eim(oracle, all, 5, cluster, default_options(77));
  const auto b = eim(oracle, all, 5, cluster, default_options(77));
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.final_sample_size, b.final_sample_size);
}

TEST(Eim, OpenMPExecutionMatchesSequential) {
  if (!exec::backend_available(exec::BackendKind::OpenMP)) {
    GTEST_SKIP() << "built without OpenMP";
  }
  const PointSet ps = test::small_gaussian_instance(5, 2000, 6);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster seq(10, 0, exec::BackendKind::Sequential);
  const mr::SimCluster omp(10, 0, exec::BackendKind::OpenMP);
  const auto a = eim(oracle, all, 5, seq, default_options(7));
  const auto b = eim(oracle, all, 5, omp, default_options(7));
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Eim, SmallerPhiPrunesFaster) {
  // phi controls the pivot rank: lower phi picks a farther pivot,
  // removes more of R per iteration, and needs no more iterations.
  const PointSet ps = test::small_gaussian_instance(10, 5000, 7);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);

  EimOptions low = default_options(3);
  low.phi = 1.0;
  EimOptions high = default_options(3);
  high.phi = 8.0;
  const auto fast = eim(oracle, all, 10, cluster, low);
  const auto slow = eim(oracle, all, 10, cluster, high);
  ASSERT_TRUE(fast.sampled);
  ASSERT_TRUE(slow.sampled);
  EXPECT_LE(fast.iterations, slow.iterations);
  EXPECT_LE(fast.trace.total_dist_evals(), slow.trace.total_dist_evals());
}

TEST(Eim, SampleSizeGrowsWithK) {
  const PointSet ps = test::small_gaussian_instance(10, 5000, 8);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const auto small_k = eim(oracle, all, 2, cluster, default_options(9));
  const auto big_k = eim(oracle, all, 10, cluster, default_options(9));
  ASSERT_TRUE(small_k.sampled);
  ASSERT_TRUE(big_k.sampled);
  EXPECT_LT(small_k.final_sample_size, big_k.final_sample_size);
}

TEST(Eim, FinalRoundRunsOnOneMachine) {
  const PointSet ps = test::small_gaussian_instance(5, 2000, 10);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const auto result = eim(oracle, all, 5, cluster, default_options());
  const auto& final_round = result.trace.rounds().back();
  EXPECT_EQ(final_round.machines_used, 1);
  EXPECT_EQ(final_round.items_in, result.final_sample_size);
  EXPECT_EQ(final_round.items_out, result.centers.size());
}

TEST(Eim, HochbaumShmoysFinalAlgorithm) {
  const PointSet ps = test::small_gaussian_instance(4, 1500, 11);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  EimOptions options = default_options();
  options.final_algo = SeqAlgo::HochbaumShmoys;
  // HS is quadratic: keep the sample small by construction (k small).
  const auto result = eim(oracle, all, 4, cluster, options);
  EXPECT_LE(result.centers.size(), 4u);
  EXPECT_FALSE(result.centers.empty());
}

class EimApproximation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EimApproximation, WithinTenTimesPlantedOptimum) {
  // The 10-approximation holds "with sufficient probability" (§6);
  // on planted instances with well-separated unit clusters we check
  // the bound directly for several seeds.
  Rng rng(GetParam());
  const auto inst = data::make_planted(6, 1001, 1.0, 12.0, 2, rng);
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();
  const mr::SimCluster cluster(10);
  EimOptions options = default_options(GetParam() * 31 + 1);
  options.phi = 6.0;  // within the provable range (phi > 5.15)
  const auto result = eim(oracle, all, 6, cluster, options);
  EXPECT_LE(test::value_of(oracle, all, result.centers),
            10.0 * inst.opt_radius + 1e-9);
}

TEST_P(EimApproximation, ComparableToGonzalezOnClusteredData) {
  // §8: "the solutions for the parallelized algorithms are comparable
  // to those of the baseline". Enforce a loose factor to catch
  // regressions without flaking on randomness.
  const PointSet ps = test::small_gaussian_instance(10, 4000, GetParam() + 50);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const auto result =
      eim(oracle, all, 10, cluster, default_options(GetParam()));
  const auto gon = gonzalez(oracle, all, 10);
  EXPECT_LE(test::value_of(oracle, all, result.centers),
            3.0 * oracle.to_reported(gon.radius_comparable) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EimApproximation,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace kc
