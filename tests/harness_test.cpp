#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cli/args.hpp"
#include "harness/experiment.hpp"
#include "harness/format.hpp"
#include "harness/paper_ref.hpp"
#include "harness/table.hpp"
#include "test_util.hpp"

namespace kc::harness {
namespace {

// ---------------------------------------------------------------- format

TEST(Format, SignificantDigitsMatchPaperStyle) {
  EXPECT_EQ(format_sig(96.04), "96.04");
  EXPECT_EQ(format_sig(0.961), "0.961");
  EXPECT_EQ(format_sig(8.764), "8.764");
  EXPECT_EQ(format_sig(61.9), "61.9");
  EXPECT_EQ(format_sig(41.31), "41.31");
}

TEST(Format, LargeAndTinyGoScientific) {
  EXPECT_EQ(format_sig(1.234e9), "1.234e+09");
  EXPECT_EQ(format_sig(1.2e-8), "1.2e-08");
}

TEST(Format, SubTenthKeepsSignificantDigits) {
  EXPECT_EQ(format_sig(0.05, 2), "0.05");
  EXPECT_EQ(format_sig(0.15, 2), "0.15");
  EXPECT_EQ(format_sig(0.00123, 3), "0.00123");
  EXPECT_EQ(format_sig(-0.05, 2), "-0.05");
}

TEST(Format, ZeroAndSpecials) {
  EXPECT_EQ(format_sig(0.0), "0");
  EXPECT_EQ(format_sig(std::nan("")), "nan");
  EXPECT_EQ(format_sig(std::numeric_limits<double>::infinity()), "inf");
}

TEST(Format, SecondsBands) {
  EXPECT_EQ(format_seconds(123.456), "123.5");
  EXPECT_EQ(format_seconds(1.5), "1.500");
  EXPECT_EQ(format_seconds(0.00123), "1.23e-03");
}

TEST(Format, CountGrouping) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  Table t({"k", "MRG", "EIM"});
  t.add_row({"2", "96.04", "93.11"});
  t.add_row({"100", "0.607", "0.556"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("k"), std::string::npos);
  EXPECT_NE(s.find("96.04"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, WritesCsv) {
  const auto path =
      (std::filesystem::temp_directory_path() / "kc_table_test.csv").string();
  Table t({"k", "value"});
  t.add_row({"2", "96.04"});
  t.add_row({"5", "61.90"});
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,value");
  std::getline(in, line);
  EXPECT_EQ(line, "2,96.04");
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- args

TEST(Args, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--full", "--n=5000", "--phi=2.5",
                        "--k=2,5,10", "positional"};
  cli::Args args(6, argv);
  EXPECT_TRUE(args.flag("full"));
  EXPECT_FALSE(args.flag("quick"));
  EXPECT_EQ(args.size("n", 0), 5000u);
  EXPECT_DOUBLE_EQ(args.real("phi", 0.0), 2.5);
  EXPECT_EQ(args.size_list("k", {}),
            (std::vector<std::size_t>{2, 5, 10}));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Args, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  cli::Args args(1, argv);
  EXPECT_EQ(args.integer("m", 50), 50);
  EXPECT_EQ(args.size_list("k", {2, 5}), (std::vector<std::size_t>{2, 5}));
  EXPECT_FALSE(args.str("csv").has_value());
}

TEST(Args, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=abc", "--phi=xyz"};
  cli::Args args(3, argv);
  EXPECT_THROW((void)args.integer("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.real("phi", 0.0), std::invalid_argument);
}

TEST(Args, TracksUnconsumedFlags) {
  const char* argv[] = {"prog", "--used", "--typo=1"};
  cli::Args args(3, argv);
  (void)args.flag("used");
  const auto leftover = args.unconsumed();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "typo");
}

TEST(Args, NegativeSizeRejected) {
  const char* argv[] = {"prog", "--n=-5"};
  cli::Args args(2, argv);
  EXPECT_THROW((void)args.size("n", 0), std::invalid_argument);
}

// ---------------------------------------------------------------- paper_ref

TEST(PaperRef, TablesHaveSixRowsEach) {
  EXPECT_EQ(paper_table2().size(), 6u);
  EXPECT_EQ(paper_table3().size(), 6u);
  EXPECT_EQ(paper_table4().size(), 6u);
  EXPECT_EQ(paper_table5().size(), 6u);
  EXPECT_EQ(paper_table6().size(), 6u);
  EXPECT_EQ(paper_table7().size(), 6u);
}

TEST(PaperRef, SpotChecksAgainstPaperText) {
  EXPECT_DOUBLE_EQ(*paper_value(2, 25, "MRG"), 0.961);
  EXPECT_DOUBLE_EQ(*paper_value(3, 100, "GON"), 8.727);
  EXPECT_DOUBLE_EQ(*paper_value(4, 2, "EIM"), 93.69);
  EXPECT_DOUBLE_EQ(*paper_value(5, 50, "EIM"), 9.418);
  EXPECT_DOUBLE_EQ(*paper_value(6, 100, "1"), 0.478);
  EXPECT_DOUBLE_EQ(*paper_value(7, 100, "8"), 3.59);
}

TEST(PaperRef, UnknownCellsReturnNullopt) {
  EXPECT_FALSE(paper_value(2, 3, "MRG").has_value());
  EXPECT_FALSE(paper_value(2, 2, "XYZ").has_value());
  EXPECT_FALSE(paper_value(99, 2, "MRG").has_value());
}

TEST(PaperRef, QualityTablesShowMrgFastestStoryline) {
  // Sanity on transcription: at k = k' = 25 on GAU (Table 2), all
  // three algorithms collapse to sub-1 values (they find the planted
  // clusters), two orders of magnitude below k = 10.
  for (const auto& row : paper_table2()) {
    if (row.k == 10) {
      EXPECT_GT(row.mrg, 30.0);
    }
    if (row.k == 25) {
      EXPECT_LT(row.mrg, 1.0);
      EXPECT_LT(row.eim, 1.0);
      EXPECT_LT(row.gon, 1.0);
    }
  }
}

TEST(PaperRef, Table7RuntimesIncreaseWithPhi) {
  // The headline of the trade-off: phi=1 is consistently faster than
  // phi=8 for k >= 10 in the paper's measurements.
  for (const auto& row : paper_table7()) {
    if (row.k >= 10) {
      EXPECT_LT(row.phi1, row.phi8);
    }
  }
}

// ---------------------------------------------------------------- experiment

TEST(Experiment, RunAlgorithmProducesEvaluatedResult) {
  const PointSet ps = test::small_gaussian_instance(5, 200, 1);
  AlgoConfig config;
  config.kind = AlgoKind::MRG;
  config.machines = 5;
  const auto run = run_algorithm(config, ps, 5, 7);
  EXPECT_EQ(run.centers.size(), 5u);
  EXPECT_GT(run.value, 0.0);
  EXPECT_GT(run.dist_evals, 0u);
  EXPECT_EQ(run.map_reduce_rounds, 2);
  EXPECT_GE(run.wall_seconds, run.sim_seconds * 0.5);  // sim <= wall-ish
}

TEST(Experiment, GonHasNoRounds) {
  const PointSet ps = test::small_gaussian_instance(4, 100, 2);
  AlgoConfig config;
  config.kind = AlgoKind::GON;
  const auto run = run_algorithm(config, ps, 4, 7);
  EXPECT_EQ(run.map_reduce_rounds, 0);
  EXPECT_DOUBLE_EQ(run.sim_seconds, run.wall_seconds);
}

TEST(Experiment, EimReportsSamplingState) {
  const PointSet ps = test::small_gaussian_instance(10, 3000, 3);
  AlgoConfig config;
  config.kind = AlgoKind::EIM;
  config.machines = 10;
  const auto run = run_algorithm(config, ps, 10, 7);
  EXPECT_TRUE(run.eim_sampled);
  EXPECT_GT(run.eim_iterations, 0);
}

TEST(Experiment, AggregateAveragesRuns) {
  std::vector<RunResult> results(2);
  results[0].value = 10.0;
  results[0].sim_seconds = 1.0;
  results[0].map_reduce_rounds = 2;
  results[1].value = 20.0;
  results[1].sim_seconds = 3.0;
  results[1].map_reduce_rounds = 4;
  const auto agg = Aggregate::of(results);
  EXPECT_DOUBLE_EQ(agg.value, 15.0);
  EXPECT_DOUBLE_EQ(agg.sim_seconds, 2.0);
  EXPECT_DOUBLE_EQ(agg.map_reduce_rounds, 3.0);
  EXPECT_EQ(agg.runs, 2);
}

TEST(Experiment, DatasetPoolIsSeedDeterministic) {
  const auto gen = [](Rng& rng) {
    return data::generate_unif(100, 2, 10.0, rng);
  };
  const auto a = DatasetPool::make(gen, 3, 5);
  const auto b = DatasetPool::make(gen, 3, 5);
  ASSERT_EQ(a.num_graphs(), 3);
  for (int g = 0; g < 3; ++g) {
    for (index_t i = 0; i < 100; ++i) {
      EXPECT_EQ(a.graph(g)[i][0], b.graph(g)[i][0]);
    }
  }
  // Different graphs within a pool differ.
  EXPECT_NE(a.graph(0)[0][0], a.graph(1)[0][0]);
}

TEST(Experiment, RunRepeatedHonorsProtocol) {
  // 3 graphs x 2 runs = the paper's six results per synthetic config.
  const auto pool = DatasetPool::make(
      [](Rng& rng) { return data::generate_gau(800, 4, 2, 100.0, 0.5, rng); },
      3, 11);
  AlgoConfig config;
  config.kind = AlgoKind::MRG;
  config.machines = 4;
  const auto agg = run_repeated(config, pool, 4, 2, 13);
  EXPECT_EQ(agg.runs, 6);
  EXPECT_GT(agg.value, 0.0);
}

TEST(Experiment, AlgoKindNames) {
  EXPECT_EQ(to_string(AlgoKind::GON), "GON");
  EXPECT_EQ(to_string(AlgoKind::MRG), "MRG");
  EXPECT_EQ(to_string(AlgoKind::EIM), "EIM");
  AlgoConfig config;
  config.kind = AlgoKind::EIM;
  EXPECT_EQ(config.display_label(), "EIM");
  config.label = "EIM(phi=4)";
  EXPECT_EQ(config.display_label(), "EIM(phi=4)");
}

}  // namespace
}  // namespace kc::harness
