// Memory contract of the exact k = 1 solver: the covering radii are
// streamed out of the tiled pairwise engine, so a 50k-point instance
// must complete in O(n) extra memory. The pre-tile implementation
// materialized the dense n^2 comparable matrix — 20 GB at this size —
// so this test both asserts the documented contract and guards against
// a regression that would re-introduce the allocation (the peak-RSS
// delta bound below would blow past by two orders of magnitude).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "algo/brute_force.hpp"
#include "data/generators.hpp"
#include "geom/distance.hpp"
#include "rng/rng.hpp"

namespace kc {
namespace {

/// Peak resident set (VmHWM) in KiB, or 0 when /proc is unavailable.
std::size_t peak_rss_kib() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::size_t kib = 0;
      fields >> kib;
      return kib;
    }
  }
  return 0;
}

TEST(BruteForceMemory, FiftyThousandPointsKOneStaysLinear) {
  constexpr std::size_t kPoints = 50'000;
  Rng rng(4242);
  const PointSet ps = data::generate_gau(kPoints, 4, 3, 100.0, 0.5, rng);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();

  const std::size_t before = peak_rss_kib();
  const KCenterResult result = brute_force_opt(oracle, all, 1);
  const std::size_t after = peak_rss_kib();

  ASSERT_EQ(result.centers.size(), 1u);
  EXPECT_GT(result.radius_comparable, 0.0);

  // Sanity on the value: the chosen center's radius can be recomputed
  // with one linear scan.
  std::vector<double> best(all.size(), kInfDist);
  oracle.update_nearest(all, result.centers[0], best);
  double radius = 0.0;
  for (const double d : best) {
    if (d > radius) radius = d;
  }
  EXPECT_EQ(radius, result.radius_comparable);

  if (before == 0) GTEST_SKIP() << "no /proc/self/status on this host";
  // O(n) working set: the radii array plus tile staging is ~1 MB; the
  // old dense matrix was ~20 GB. 200 MB of slack absorbs allocator and
  // test-harness noise while staying two orders of magnitude below the
  // quadratic footprint.
  EXPECT_LE(after - before, 200u * 1024u)
      << "peak RSS grew by " << (after - before) / 1024 << " MiB";
}

}  // namespace
}  // namespace kc
