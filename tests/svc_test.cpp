// The batch solve service (src/svc): JSON parser hardening, strict
// request-schema validation mapped onto the api::Error taxonomy, codec
// fuzzing (malformed bytes -> typed rejection, never a crash), the
// bounded admission queue, per-tenant budget reservation/refund,
// deadline enforcement, and the concurrent multi-tenant soak — a
// shared-scheduler service run must produce bit-identical reports to a
// sequential one.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/error.hpp"
#include "svc/codec.hpp"
#include "svc/json.hpp"
#include "svc/queue.hpp"
#include "svc/service.hpp"
#include "rng/rng.hpp"
#include "test_util.hpp"

namespace kc {
namespace {

using api::ErrorKind;
using svc::Json;

// ------------------------------------------------------------------ JSON

TEST(SvcJson, ParsesScalarsArraysAndObjects) {
  EXPECT_EQ(Json::parse("null").type, Json::Type::Null);
  EXPECT_TRUE(Json::parse("true").boolean);
  EXPECT_FALSE(Json::parse(" false ").boolean);
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").number, -1250.0);
  EXPECT_EQ(Json::parse("\"a\\nb\\u0041\"").string, "a\nbA");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").string, "\xF0\x9F\x98\x80");

  const Json arr = Json::parse("[1, [2, 3], {\"x\": 4}]");
  ASSERT_EQ(arr.array.size(), 3u);
  EXPECT_DOUBLE_EQ(arr.array[1].array[1].number, 3.0);
  EXPECT_DOUBLE_EQ(arr.array[2].find("x")->number, 4.0);

  const Json obj = Json::parse("{\"a\": 1, \"b\": \"two\"}");
  EXPECT_DOUBLE_EQ(obj.find("a")->number, 1.0);
  EXPECT_EQ(obj.find("b")->string, "two");
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(SvcJson, RejectsMalformedInput) {
  for (const char* bad :
       {"", "tru", "01", "1.", "1e", "+1", "nan", "inf", "1e999", "\"abc",
        "\"\\x\"", "\"\\u12\"", "\"\\ud800\"", "[1,", "[1 2]", "{\"a\" 1}",
        "{\"a\": 1,}", "{\"a\": 1, \"a\": 2}", "{} {}", "[1] trailing",
        "\"raw\ncontrol\""}) {
    EXPECT_THROW((void)Json::parse(bad), svc::JsonError) << bad;
  }
}

TEST(SvcJson, DepthLimitStopsNestingBombs) {
  std::string bomb;
  for (int i = 0; i < 2000; ++i) bomb += '[';
  EXPECT_THROW((void)Json::parse(bomb), svc::JsonError);
  // A tame depth parses fine under the same limit.
  EXPECT_NO_THROW((void)Json::parse("[[[[[[[[1]]]]]]]]"));
}

TEST(SvcJson, EscapeAndNumberRoundTrip) {
  const std::string raw = "line\n\"quoted\"\tand\\slash\x01";
  const Json back = Json::parse("\"" + svc::json_escape(raw) + "\"");
  EXPECT_EQ(back.string, raw);
  EXPECT_EQ(Json::parse(svc::json_number(0.1)).number, 0.1);
  EXPECT_EQ(svc::json_number(
                std::numeric_limits<double>::infinity()),
            "null");
}

// ----------------------------------------------------------------- codec

[[nodiscard]] std::string valid_line() {
  return R"({"id": 9, "tenant": "acme", "algorithm": "mrg", "k": 2,)"
         R"( "metric": "L1", "seed": 11, "machines": 3,)"
         R"( "max_dist_evals": 5000, "deadline_ms": 250,)"
         R"( "options": {"capacity": 64},)"
         R"( "points": [[0, 1], [2, 3], [4, 5], [6, 7]]})";
}

TEST(SvcCodec, ParsesEveryField) {
  const svc::WireRequest wire = svc::parse_request(valid_line());
  EXPECT_EQ(wire.id, 9u);
  EXPECT_EQ(wire.tenant, "acme");
  EXPECT_EQ(wire.request.algorithm, "mrg");
  EXPECT_EQ(wire.request.k, 2u);
  EXPECT_EQ(wire.request.metric, MetricKind::L1);
  EXPECT_EQ(wire.request.seed, 11u);
  EXPECT_EQ(wire.request.exec.machines, 3);
  EXPECT_EQ(wire.max_dist_evals, 5000u);
  EXPECT_EQ(wire.request.max_dist_evals, 5000u);
  EXPECT_EQ(wire.deadline_ms, 250u);
  ASSERT_EQ(wire.points.size(), 4u);
  EXPECT_EQ(wire.points.dim(), 2u);
  EXPECT_DOUBLE_EQ(wire.points[3][1], 7.0);
  EXPECT_EQ(wire.request.points, &wire.points);
  ASSERT_TRUE(std::holds_alternative<MrgOptions>(wire.request.options));
  EXPECT_EQ(std::get<MrgOptions>(wire.request.options).capacity, 64u);
}

TEST(SvcCodec, MovedWireRequestKeepsPointsBound) {
  svc::WireRequest wire = svc::parse_request(valid_line());
  svc::WireRequest moved = std::move(wire);
  EXPECT_EQ(moved.request.points, &moved.points);
  std::vector<svc::WireRequest> queue;
  queue.push_back(std::move(moved));
  queue.emplace_back();  // may reallocate the vector
  EXPECT_EQ(queue[0].request.points, &queue[0].points);
}

TEST(SvcCodec, AliasAndPerAlgorithmOptionsRoundTrip) {
  const svc::WireRequest ccm = svc::parse_request(
      R"({"k": 1, "algorithm": "grid-coreset",)"
      R"( "options": {"epsilon": 0.25, "max_coreset_per_machine": 99},)"
      R"( "points": [[1]]})");
  EXPECT_EQ(ccm.request.algorithm, "ccm");  // canonicalized
  ASSERT_TRUE(std::holds_alternative<CcmOptions>(ccm.request.options));
  EXPECT_DOUBLE_EQ(std::get<CcmOptions>(ccm.request.options).epsilon, 0.25);
  EXPECT_EQ(
      std::get<CcmOptions>(ccm.request.options).max_coreset_per_machine, 99u);

  const svc::WireRequest gon = svc::parse_request(
      R"({"k": 1, "algorithm": "gon", "options": {"first": "random"},)"
      R"( "points": [[1]]})");
  EXPECT_EQ(std::get<GonzalezOptions>(gon.request.options).first,
            GonzalezOptions::FirstCenter::Random);
}

/// Expects parse_request to throw api::Error(BadRequest) whose message
/// contains `fragment`.
void expect_bad(const std::string& line, std::string_view fragment) {
  try {
    (void)svc::parse_request(line);
    FAIL() << "accepted: " << line;
  } catch (const api::Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::BadRequest) << line;
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message '" << e.what() << "' lacks '" << fragment << "'";
  }
}

TEST(SvcCodec, StrictSchemaRejectsEveryMalformedField) {
  expect_bad("", "malformed JSON");
  expect_bad("[]", "must be a JSON object");
  expect_bad(R"({"k": 1})", "missing required field 'points'");
  expect_bad(R"({"points": [[1]]})", "missing required field 'k'");
  expect_bad(R"({"k": 1, "points": [[1]], "bogus": 1})", "unknown request");
  expect_bad(R"({"k": -1, "points": [[1]]})", "k must be an integer");
  expect_bad(R"({"k": 1.5, "points": [[1]]})", "k must be an integer");
  expect_bad(R"({"k": 1, "points": []})", "points must not be empty");
  expect_bad(R"({"k": 1, "points": [[1], [2, 3]]})", "row 1");
  expect_bad(R"({"k": 1, "points": [[1], "x"]})", "row 1");
  expect_bad(R"({"k": 1, "points": 7})", "points must be an array");
  expect_bad(R"({"k": 1, "points": [[1]], "metric": "L3"})", "metric");
  expect_bad(R"({"k": 1, "points": [[1]], "tenant": ""})", "tenant");
  expect_bad(R"({"k": 1, "points": [[1]], "algorithm": "nope"})",
             "unknown algorithm");
  expect_bad(R"({"k": 1, "points": [[1]], "options": 5})",
             "options must be an object");
  expect_bad(
      R"({"k": 1, "points": [[1]], "algorithm": "gon",)"
      R"( "options": {"epsilon": 1}})",
      "not an option of algorithm 'gon'");
  expect_bad(
      R"({"k": 1, "points": [[1]], "algorithm": "gon",)"
      R"( "options": {"first": "середина"}})",
      "options.first");
  // Abuse bounds: declared sizes are rejected before allocation.
  svc::CodecLimits limits;
  limits.max_points = 4;
  try {
    (void)svc::parse_request(
        R"({"k": 1, "points": [[1], [2], [3], [4], [5]]})", limits);
    FAIL();
  } catch (const api::Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::BadRequest);
  }
  limits = {};
  limits.max_line_bytes = 16;
  try {
    (void)svc::parse_request(valid_line(), limits);
    FAIL();
  } catch (const api::Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::BadRequest);
  }
}

TEST(SvcCodec, FuzzedLinesNeverEscapeTheTaxonomy) {
  // Deterministic mutation fuzz over the valid record: truncations,
  // byte flips, insertions and deletions. Every outcome must be either
  // a parsed request or api::Error — anything else (crash, foreign
  // exception) fails the test harness itself.
  const std::string seed_line = valid_line();
  Rng rng(20260729);
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    std::string line = seed_line;
    const int mutations = 1 + static_cast<int>(rng.uniform_int(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.uniform_int(line.size());
      switch (rng.uniform_int(4)) {
        case 0: line = line.substr(0, pos); break;                // truncate
        case 1: line[pos] = static_cast<char>(rng.uniform_int(256)); break;
        case 2:
          line.insert(pos, 1, static_cast<char>(rng.uniform_int(256)));
          break;
        default: line.erase(pos, 1); break;
      }
      if (line.empty()) break;
    }
    try {
      const svc::WireRequest wire = svc::parse_request(line);
      EXPECT_GE(wire.request.k, 1u);
      ++parsed;
    } catch (const api::Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::BadRequest);
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 4000u);
  EXPECT_GT(rejected, 0u);
}

TEST(SvcCodec, ReportLinesAreValidJson) {
  api::SolveReport report;
  report.algorithm = "gon";
  report.centers = {3, 1, 2};
  report.value = 1.25;
  report.guarantee = "2";
  report.backend = "sequential";
  report.kernel_isa = "avx2";
  const Json full = Json::parse(svc::write_report(7, "a\"b", report));
  EXPECT_EQ(full.find("status")->string, "ok");
  EXPECT_EQ(full.find("tenant")->string, "a\"b");
  EXPECT_EQ(full.find("centers")->array.size(), 3u);
  EXPECT_NE(full.find("wall_seconds"), nullptr);

  svc::ReportStyle stable;
  stable.stable = true;
  const Json trimmed =
      Json::parse(svc::write_report(7, "t", report, stable));
  EXPECT_EQ(trimmed.find("wall_seconds"), nullptr);
  EXPECT_EQ(trimmed.find("backend"), nullptr);
  EXPECT_EQ(trimmed.find("kernel_isa"), nullptr);

  const Json error = Json::parse(
      svc::write_error(8, "t", "bad-request", "k must be\nat least 1"));
  EXPECT_EQ(error.find("status")->string, "bad-request");
  EXPECT_EQ(error.find("error")->string, "k must be\nat least 1");
}

// ----------------------------------------------------------------- queue

TEST(SvcQueue, BoundBlocksProducersAndCloseDrains) {
  svc::BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  int three = 3;
  EXPECT_FALSE(queue.try_push(three));  // full

  std::atomic<bool> unblocked{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(3));  // blocks until a pop frees a slot
    unblocked.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(unblocked.load());
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_TRUE(unblocked.load());

  queue.close();
  EXPECT_FALSE(queue.push(9));
  // Closed but not drained: the backlog is still served, in order.
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.try_pop(), 3);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.try_pop(), std::nullopt);
}

TEST(SvcQueue, TryPushRefusalLeavesTheItemUntouched) {
  svc::BoundedQueue<std::unique_ptr<int>> queue(1);
  auto first = std::make_unique<int>(1);
  EXPECT_TRUE(queue.try_push(first));
  EXPECT_EQ(first, nullptr);  // accepted: moved in
  auto second = std::make_unique<int>(2);
  EXPECT_FALSE(queue.try_push(second));  // full
  ASSERT_NE(second, nullptr);  // refused: caller still owns the value
  EXPECT_EQ(*second, 2);
  queue.close();
  EXPECT_FALSE(queue.try_push(second));  // closed
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(*second, 2);
}

TEST(SvcQueue, CloseWakesEveryBlockedProducerToRefuse) {
  svc::BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(0));
  std::atomic<int> refused{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < 4; ++i) {
    producers.emplace_back([&queue, &refused, i] {
      if (!queue.push(100 + i)) refused.fetch_add(1);
    });
  }
  // Give the producers time to park in push()'s full-queue wait, then
  // close underneath them: each must wake and refuse, not hang or slip
  // an item past the close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(refused.load(), 4);
  EXPECT_EQ(queue.pop(), 0);  // only the pre-close item drains
  EXPECT_EQ(queue.pop(), std::nullopt);
}

// --------------------------------------------------------------- service

/// Runs `lines` through one ServiceLoop (stdin-mode shape: submit all,
/// close, drain) and returns the emitted reports in emission order.
std::vector<std::string> serve_all(const std::vector<std::string>& lines,
                                   const svc::ServiceConfig& config) {
  svc::ServiceLoop service(config);
  std::vector<std::string> reports;
  std::mutex mutex;
  const svc::EmitFn emit = [&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex);
    reports.push_back(line);
  };
  std::thread consumer([&service] { service.run(); });
  for (const auto& line : lines) {
    if (auto rejection = service.submit(line, emit)) emit(*rejection);
  }
  service.close();
  consumer.join();
  return reports;
}

[[nodiscard]] std::string request_line(int id, const char* tenant,
                                       const char* algorithm, int k,
                                       int points, std::uint64_t seed,
                                       const char* extra = "") {
  std::string line = "{\"id\": " + std::to_string(id) + ", \"tenant\": \"" +
                     tenant + "\", \"algorithm\": \"" + algorithm +
                     "\", \"k\": " + std::to_string(k) +
                     ", \"machines\": 4, \"seed\": " + std::to_string(seed) +
                     std::string(extra) + ", \"points\": [";
  Rng rng(seed);
  for (int p = 0; p < points; ++p) {
    line += p == 0 ? "[" : ", [";
    line += svc::json_number(rng.uniform(0.0, 100.0)) + ", " +
            svc::json_number(rng.uniform(0.0, 100.0));
    line += "]";
  }
  line += "]}";
  return line;
}

[[nodiscard]] std::string status_of(const std::string& report) {
  return Json::parse(report).find("status")->string;
}

TEST(SvcService, MixedBatchProducesOneTypedReportPerLine) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  const auto reports = serve_all(
      {
          request_line(1, "a", "gon", 3, 50, 7),
          "garbage",
          request_line(2, "a", "mrg", 2, 40, 8),
          R"({"id": 3, "k": 0, "points": [[1, 2]]})",
          request_line(4, "a", "ccm", 2, 40, 9),
      },
      config);
  ASSERT_EQ(reports.size(), 5u);
  std::size_t ok = 0;
  std::size_t bad = 0;
  for (const auto& report : reports) {
    const std::string status = status_of(report);
    if (status == "ok") {
      ++ok;
    } else {
      EXPECT_EQ(status, "bad-request") << report;
      ++bad;
    }
  }
  EXPECT_EQ(ok, 3u);
  EXPECT_EQ(bad, 2u);
}

TEST(SvcService, TenantBudgetReservationRefundsAndExhausts) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.tenant_budget = 2000;
  config.style.stable = true;
  svc::ServiceLoop service(config);
  std::vector<std::string> reports;
  const svc::EmitFn emit = [&](const std::string& line) {
    reports.push_back(line);
  };
  std::thread consumer([&service] { service.run(); });

  // Within budget: gon k=1 on 100 points = 100 solve + 100 eval = 200
  // per request, capped at 300 each, so the 2000 budget admits many —
  // the refund of each 300-reservation is what makes that possible:
  // without it, 7 reservations would exhaust the tenant.
  for (int i = 0; i < 6; ++i) {
    auto rejection = service.submit(
        request_line(i, "acme", "gon", 1, 100, 40 + i,
                     ", \"max_dist_evals\": 300"),
        emit);
    EXPECT_FALSE(rejection.has_value()) << *rejection;
  }
  service.close();
  consumer.join();
  ASSERT_EQ(reports.size(), 6u);
  for (const auto& report : reports) {
    EXPECT_EQ(status_of(report), "ok") << report;
    EXPECT_EQ(Json::parse(report).find("budget_consumed")->number, 200.0);
  }
  const auto tenant = service.tenant_budget("acme");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->consumed(), 6u * 200u);  // refunds returned the rest
  EXPECT_EQ(service.tenant_budget("unseen"), nullptr);
}

TEST(SvcService, ExhaustedTenantIsRejectedAtAdmission) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.tenant_budget = 150;  // one gon k=1 x 100 points needs 200
  config.style.stable = true;
  const auto reports = serve_all(
      {
          request_line(1, "t", "gon", 1, 100, 3),
          request_line(2, "t", "gon", 1, 100, 4),
      },
      config);
  ASSERT_EQ(reports.size(), 2u);
  // Both capless requests draw on the shared 150-eval tenant odometer;
  // the first exhausts it mid-run (a gon solve+eval needs 200) and the
  // second fails at its first gate (or is refused at admission if the
  // odometer already reads zero there) — either way the tenant's
  // over-consumption surfaces as budget-exceeded on both.
  EXPECT_EQ(status_of(reports[0]), "budget-exceeded");
  EXPECT_EQ(status_of(reports[1]), "budget-exceeded");
}

TEST(SvcService, CaplessRequestsShareTheTenantOdometerWithoutStarving) {
  // A capless request must not reserve the tenant's whole remainder:
  // several queued capless requests of one tenant all run and settle
  // against the same odometer instead of rejecting each other.
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.tenant_budget = 10'000;
  config.style.stable = true;
  std::vector<std::string> lines;
  for (int i = 0; i < 4; ++i) {
    lines.push_back(request_line(i, "t", "gon", 1, 100, 70 + i));
  }
  svc::ServiceLoop service(config);
  std::vector<std::string> reports;
  const svc::EmitFn emit = [&](const std::string& line) {
    reports.push_back(line);
  };
  // Submit everything before the consumer starts, so every admission
  // decision happens while all four are outstanding.
  for (const auto& line : lines) {
    ASSERT_FALSE(service.submit(line, emit).has_value());
  }
  service.close();
  service.run();
  ASSERT_EQ(reports.size(), 4u);
  for (const auto& report : reports) {
    EXPECT_EQ(status_of(report), "ok") << report;
  }
  EXPECT_EQ(service.tenant_budget("t")->consumed(), 4u * 200u);
}

TEST(SvcService, DeadlineExpiryReportsDeadlineExceeded) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.style.stable = true;
  svc::ServiceLoop service(config);
  std::vector<std::string> reports;
  const svc::EmitFn emit = [&](const std::string& line) {
    reports.push_back(line);
  };
  // Deterministic expiry: the consumer is not running yet, so the
  // request sits admitted while its 1 ms deadline passes; the watcher
  // fires the token, and execution maps the pre-dispatch Cancelled to
  // deadline-exceeded. (Mid-scan deadline stops ride the same token
  // through the gated kernels — HugeRoundStops covers that path.)
  ASSERT_FALSE(
      service
          .submit(request_line(1, "t", "mrg", 4, 100, 5,
                               ", \"deadline_ms\": 1"),
                  emit)
          .has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.close();
  service.run();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(status_of(reports[0]), "deadline-exceeded") << reports[0];
}

TEST(SvcService, NonBlockingAdmissionAnswersOverloaded) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.queue_capacity = 1;
  svc::ServiceLoop service(config);  // run() never started: queue fills
  std::vector<std::string> reports;
  const svc::EmitFn emit = [&](const std::string& line) {
    reports.push_back(line);
  };
  const std::string line = request_line(1, "t", "gon", 1, 10, 2);
  EXPECT_FALSE(
      service.submit(line, emit, /*blocking=*/false).has_value());
  const auto overloaded =
      service.submit(line, emit, /*blocking=*/false);
  ASSERT_TRUE(overloaded.has_value());
  EXPECT_EQ(status_of(*overloaded), "overloaded");
  service.close();
  service.run();  // drain the one admitted request
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(status_of(reports[0]), "ok");
}

TEST(SvcService, SubmitAfterCloseSettlesShuttingDown) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  svc::ServiceLoop service(config);
  std::vector<std::string> reports;
  const svc::EmitFn emit = [&](const std::string& line) {
    reports.push_back(line);
  };
  service.close();
  const std::string line = request_line(1, "t", "gon", 1, 10, 2);
  // Both admission paths answer the typed shutdown status: producers
  // distinguish "stop sending" from a shedding "overloaded".
  const auto blocking = service.submit(line, emit);
  ASSERT_TRUE(blocking.has_value());
  EXPECT_EQ(status_of(*blocking), "shutting-down") << *blocking;
  const auto non_blocking = service.submit(line, emit, /*blocking=*/false);
  ASSERT_TRUE(non_blocking.has_value());
  EXPECT_EQ(status_of(*non_blocking), "shutting-down") << *non_blocking;
  service.run();
  EXPECT_TRUE(reports.empty());
  EXPECT_EQ(service.stats().rejected, 2u);
  EXPECT_EQ(service.deadline_entries(), 0u);  // nothing stayed armed
}

TEST(SvcService, SubmitAfterCancelAllSettlesShuttingDown) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  svc::ServiceLoop service(config);
  std::vector<std::string> reports;
  const svc::EmitFn emit = [&](const std::string& line) {
    reports.push_back(line);
  };
  service.cancel_all();  // global disconnect, admission not yet closed
  const auto rejection =
      service.submit(request_line(1, "t", "gon", 1, 10, 2), emit);
  ASSERT_TRUE(rejection.has_value());
  EXPECT_EQ(status_of(*rejection), "shutting-down") << *rejection;
  service.close();
  service.run();
  EXPECT_TRUE(reports.empty());
}

TEST(SvcService, CancelAllStopsInFlightRequests) {
  svc::ServiceConfig config;
  config.backend = exec::BackendKind::Sequential;
  config.queue_capacity = 8;
  svc::ServiceLoop service(config);
  std::vector<std::string> reports;
  std::mutex mutex;
  const svc::EmitFn emit = [&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex);
    reports.push_back(line);
  };
  for (int i = 0; i < 4; ++i) {
    ASSERT_FALSE(service
                     .submit(request_line(i, "t", "gon", 32, 2000, 60 + i),
                             emit)
                     .has_value());
  }
  service.cancel_all();  // every queued request's token fires before run
  service.close();
  service.run();
  ASSERT_EQ(reports.size(), 4u);
  for (const auto& report : reports) {
    EXPECT_EQ(status_of(report), "cancelled") << report;
  }
}

/// The acceptance soak: two tenants' interleaved request streams on a
/// shared work-stealing scheduler must yield byte-identical reports to
/// a sequential one-at-a-time service — same statuses, same centers,
/// same eval counts, same emission order.
TEST(SvcService, ConcurrentMultiTenantSoakMatchesSequentialBitForBit) {
  std::vector<std::string> lines;
  for (int i = 0; i < 24; ++i) {
    const char* tenant = i % 2 == 0 ? "alpha" : "beta";
    const char* algorithm = (i % 4 == 0)   ? "mrg"
                            : (i % 4 == 1) ? "gon"
                            : (i % 4 == 2) ? "eim"
                                           : "ccm";
    lines.push_back(request_line(i, tenant, algorithm, 4, 300, 100 + i,
                                 ", \"max_dist_evals\": 40000"));
  }

  svc::ServiceConfig seq;
  seq.backend = exec::BackendKind::Sequential;
  seq.tenant_budget = 10'000'000;
  seq.style.stable = true;
  const auto sequential = serve_all(lines, seq);

  svc::ServiceConfig pool;
  pool.backend = exec::BackendKind::ThreadPool;
  pool.threads = 4;
  pool.max_in_flight = 4;
  pool.tenant_budget = 10'000'000;
  pool.style.stable = true;
  const auto concurrent = serve_all(lines, pool);

  ASSERT_EQ(sequential.size(), lines.size());
  EXPECT_EQ(sequential, concurrent);
  for (const auto& report : sequential) {
    EXPECT_EQ(status_of(report), "ok") << report;
  }
}

}  // namespace
}  // namespace kc
