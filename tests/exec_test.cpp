// Tests for the execution-backend subsystem: the work-stealing
// scheduler (task completion, TaskGroup isolation, exception
// propagation per group, interleaving of independent jobs, graceful
// destruction with a job in flight) and the backend interface
// (parsing, availability, the deterministic chunk partition,
// run_tasks/parallel_for semantics).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/backend.hpp"
#include "exec/deque.hpp"
#include "exec/scheduler.hpp"

namespace kc::exec {
namespace {

// ---------------------------------------------------------- chunk_bounds

TEST(ChunkBounds, PartitionsExactlyAndEvenly) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 7u}) {
      if (chunks > n) continue;
      std::size_t covered = 0;
      std::size_t previous_hi = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [lo, hi] = chunk_bounds(n, chunks, c);
        EXPECT_EQ(lo, previous_hi);  // contiguous, in order
        EXPECT_GE(hi, lo);
        EXPECT_LE(hi - lo, n / chunks + 1);  // near-equal
        covered += hi - lo;
        previous_hi = hi;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(previous_hi, n);
    }
  }
}

// --------------------------------------------------------------- WorkDeque

TEST(WorkDeque, LifoForOwnerFifoForThief) {
  WorkDeque<int*> deque(8);
  int items[4] = {0, 1, 2, 3};
  for (int& item : items) ASSERT_TRUE(deque.push(&item));

  int* out = nullptr;
  ASSERT_EQ(deque.steal(out), WorkDeque<int*>::Claim::Ok);
  EXPECT_EQ(out, &items[0]);  // thief takes the oldest
  ASSERT_EQ(deque.pop(out), WorkDeque<int*>::Claim::Ok);
  EXPECT_EQ(out, &items[3]);  // owner takes the newest
  ASSERT_EQ(deque.pop(out), WorkDeque<int*>::Claim::Ok);
  EXPECT_EQ(out, &items[2]);
  ASSERT_EQ(deque.steal(out), WorkDeque<int*>::Claim::Ok);
  EXPECT_EQ(out, &items[1]);
  EXPECT_EQ(deque.pop(out), WorkDeque<int*>::Claim::Empty);
  EXPECT_EQ(deque.steal(out), WorkDeque<int*>::Claim::Empty);
}

TEST(WorkDeque, ReportsFullInsteadOfGrowing) {
  WorkDeque<int*> deque(4);
  int item = 0;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(deque.push(&item));
  EXPECT_FALSE(deque.push(&item));
  int* out = nullptr;
  ASSERT_EQ(deque.pop(out), WorkDeque<int*>::Claim::Ok);
  EXPECT_TRUE(deque.push(&item));  // space reclaimed
}

TEST(WorkDeque, PredicateClaimsSkipWithoutRemoving) {
  WorkDeque<int*> deque(8);
  int mine = 0;
  int foreign = 0;
  ASSERT_TRUE(deque.push(&foreign));
  ASSERT_TRUE(deque.push(&mine));

  const auto only_mine = [&](int* candidate) { return candidate == &mine; };
  int* out = nullptr;
  // Bottom is `mine`: pop_if takes it, then refuses `foreign`.
  ASSERT_EQ(deque.pop_if(only_mine, out), WorkDeque<int*>::Claim::Ok);
  EXPECT_EQ(out, &mine);
  EXPECT_EQ(deque.pop_if(only_mine, out), WorkDeque<int*>::Claim::Skipped);
  EXPECT_EQ(deque.steal_if(only_mine, out), WorkDeque<int*>::Claim::Skipped);
  // The skipped element is still there for an unconditional claim.
  ASSERT_EQ(deque.steal(out), WorkDeque<int*>::Claim::Ok);
  EXPECT_EQ(out, &foreign);
}

TEST(WorkDeque, ConcurrentOwnerAndThievesLoseNothing) {
  constexpr int kItems = 20'000;
  WorkDeque<std::intptr_t*> deque(1024);
  std::vector<std::intptr_t> items(kItems);
  std::atomic<std::int64_t> claimed_sum{0};
  std::atomic<int> claimed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      std::intptr_t* out = nullptr;
      while (!done.load() || deque.size_hint() > 0) {
        if (deque.steal(out) == WorkDeque<std::intptr_t*>::Claim::Ok) {
          claimed_sum.fetch_add(*out);
          claimed_count.fetch_add(1);
        }
      }
    });
  }

  std::int64_t expected_sum = 0;
  std::intptr_t* out = nullptr;
  for (int i = 0; i < kItems; ++i) {
    items[i] = i;
    expected_sum += i;
    while (!deque.push(&items[i])) {
      // Full: drain one ourselves.
      if (deque.pop(out) == WorkDeque<std::intptr_t*>::Claim::Ok) {
        claimed_sum.fetch_add(*out);
        claimed_count.fetch_add(1);
      }
    }
    if (i % 3 == 0 &&
        deque.pop(out) == WorkDeque<std::intptr_t*>::Claim::Ok) {
      claimed_sum.fetch_add(*out);
      claimed_count.fetch_add(1);
    }
  }
  done.store(true);
  for (auto& thief : thieves) thief.join();
  // Owner drains the rest.
  while (deque.pop(out) == WorkDeque<std::intptr_t*>::Claim::Ok) {
    claimed_sum.fetch_add(*out);
    claimed_count.fetch_add(1);
  }

  EXPECT_EQ(claimed_count.load(), kItems);  // every item exactly once
  EXPECT_EQ(claimed_sum.load(), expected_sum);
}

// --------------------------------------------------------------- Scheduler

TEST(Scheduler, RunsEveryChunkExactlyOnce) {
  Scheduler scheduler(4);
  EXPECT_EQ(scheduler.concurrency(), 4);
  EXPECT_EQ(scheduler.workers(), 3);

  std::vector<std::atomic<int>> hits(1000);
  scheduler.run_chunks(hits.size(), 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ReusedAcrossManyRounds) {
  // The whole point of a persistent pool: hundreds of rounds, zero
  // respawns.
  Scheduler scheduler(4);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    scheduler.run_chunks(64, 8, [&](std::size_t lo, std::size_t hi) {
      sum.fetch_add(static_cast<std::int64_t>(hi - lo));
    });
  }
  EXPECT_EQ(sum.load(), 200 * 64);
}

TEST(Scheduler, UsesMultipleThreadsWhenAvailable) {
  Scheduler scheduler(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  // Many more chunks than threads; the exact spread is
  // scheduling-dependent, so assert only that no *more* than
  // `concurrency` threads participate.
  scheduler.run_chunks(64, 64, [&](std::size_t, std::size_t) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), 4u);
}

TEST(Scheduler, PropagatesFirstException) {
  Scheduler scheduler(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      scheduler.run_chunks(32, 32,
                           [&](std::size_t lo, std::size_t) {
                             executed.fetch_add(1);
                             if (lo == 7) throw std::runtime_error("chunk 7");
                           }),
      std::runtime_error);
  // Every chunk is still attempted (OpenMP-matching semantics).
  EXPECT_EQ(executed.load(), 32);
  // And the scheduler remains usable afterwards.
  std::atomic<int> after{0};
  scheduler.run_chunks(8, 8,
                       [&](std::size_t, std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(Scheduler, NestedSubmissionCompletes) {
  Scheduler scheduler(4);
  std::atomic<int> inner_total{0};
  scheduler.run_chunks(8, 8, [&](std::size_t, std::size_t) {
    // A nested submission from inside scheduler work must not deadlock;
    // with per-worker deques it is a real submission other workers can
    // steal from, not a sequential degrade.
    scheduler.run_chunks(4, 4, [&](std::size_t lo, std::size_t hi) {
      inner_total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(Scheduler, SingleThreadSchedulerRunsInline) {
  Scheduler scheduler(1);
  EXPECT_EQ(scheduler.workers(), 0);
  int calls = 0;
  scheduler.run_chunks(100, 10, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(Scheduler, GroupErrorDoesNotLeakIntoOtherGroups) {
  Scheduler scheduler(4);
  TaskGroup good(scheduler);
  TaskGroup bad(scheduler);
  std::atomic<int> good_ran{0};
  for (int t = 0; t < 8; ++t) {
    good.submit([&good_ran] { good_ran.fetch_add(1); });
    bad.submit([] { throw std::runtime_error("bad group"); });
  }
  EXPECT_THROW(bad.wait(), std::runtime_error);
  EXPECT_NO_THROW(good.wait());
  EXPECT_EQ(good_ran.load(), 8);
}

TEST(Scheduler, InterleavedGroupsOnOneThreadWithoutWorkers) {
  // Two groups interleaved in one participant deque, zero workers: the
  // waiter must reach its own task even when a newer group's task sits
  // at the bottom of its deque (it steals it from the top).
  Scheduler scheduler(1);
  ASSERT_EQ(scheduler.workers(), 0);
  int first = 0;
  int second = 0;
  TaskGroup g1(scheduler);
  TaskGroup g2(scheduler);
  g1.submit([&first] { ++first; });
  g2.submit([&second] { ++second; });
  g1.wait();  // g1's task is buried beneath g2's
  EXPECT_EQ(first, 1);
  g2.wait();
  EXPECT_EQ(second, 1);
}

TEST(Scheduler, TaskBuriedMidDequeIsStillReachable) {
  // Pathological non-LIFO interleaving: g1's task sits *between* two
  // g2 tasks in the one participant deque, where neither the bottom
  // pop nor the top steal can see it and no worker exists to drain
  // the others. The waiter must relocate the blockers (not execute
  // them — attribution) and finish.
  Scheduler scheduler(1);
  ASSERT_EQ(scheduler.workers(), 0);
  int g1_ran = 0;
  int g2_ran = 0;
  TaskGroup g1(scheduler);
  TaskGroup g2(scheduler);
  g2.submit([&g2_ran] { ++g2_ran; });
  g1.submit([&g1_ran] { ++g1_ran; });
  g2.submit([&g2_ran] { ++g2_ran; });
  g1.wait();
  EXPECT_EQ(g1_ran, 1);
  g2.wait();
  EXPECT_EQ(g2_ran, 2);
}

TEST(Scheduler, NonLifoGroupDestructionKeepsTheLeaseSound) {
  // Sibling groups on one thread share a refcounted participant-slot
  // lease: destroying the first-created group while a sibling lives
  // must not free the slot under it (another thread could then co-own
  // the deque). The surviving group keeps submitting afterwards.
  Scheduler scheduler(4);
  int ran = 0;
  auto g1 = std::make_unique<TaskGroup>(scheduler);
  TaskGroup g2(scheduler);
  g1->submit([&ran] { ++ran; });
  g2.submit([&ran] { ++ran; });
  g1->wait();
  g1.reset();  // non-LIFO: the oldest group dies first
  g2.submit([&ran] { ++ran; });
  g2.wait();
  EXPECT_EQ(ran, 3);
}

TEST(Scheduler, ResubmitAfterCompletionNeverDropsWork) {
  // Stresses the completion/resubmit race: a task finishing (pending
  // hits 0) while the owner immediately submits the next one must not
  // leave a stale "completed" that lets wait() return early.
  Scheduler scheduler(4);
  std::atomic<int> ran{0};
  TaskGroup group(scheduler);
  int expected = 0;
  for (int i = 0; i < 3000; ++i) {
    group.submit([&ran] { ran.fetch_add(1); });
    ++expected;
    if (i % 3 == 0) {
      group.wait();
      EXPECT_EQ(ran.load(), expected);
    }
  }
  group.wait();
  EXPECT_EQ(ran.load(), expected);
}

TEST(Scheduler, IndependentJobsFromTwoThreadsBothComplete) {
  Scheduler scheduler(4);
  std::atomic<std::int64_t> total{0};
  const auto job = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      scheduler.run_chunks(256, 16, [&](std::size_t lo, std::size_t hi) {
        total.fetch_add(static_cast<std::int64_t>(hi - lo));
      });
    }
  };
  std::thread a(job, 50);
  std::thread b(job, 50);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 50 * 256);
}

TEST(Scheduler, StatsCountExecutionAndStealing) {
  Scheduler scheduler(4);
  // Skewed chunks: one long chunk pins a thread, the rest must be
  // claimed by others, so steals are overwhelmingly likely (but not
  // guaranteed — assert only on the executed count).
  std::atomic<int> executed{0};
  for (int round = 0; round < 20; ++round) {
    scheduler.run_chunks(64, 64,
                         [&](std::size_t, std::size_t) { executed.fetch_add(1); });
  }
  const Scheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(executed.load(), 20 * 64);
  EXPECT_EQ(stats.executed, 20u * 64u);
  EXPECT_LE(stats.stolen, stats.executed);
}

// Satellite: destroying the scheduler while a job is in flight must
// join cleanly — the in-flight job completes, its waiter receives the
// result (or the first task exception) — instead of racing the worker
// shutdown.
TEST(Scheduler, DestructorWithJobInFlightJoinsCleanly) {
  std::atomic<std::int64_t> sum{0};
  std::atomic<bool> started{false};
  std::thread submitter;
  {
    Scheduler scheduler(4);
    submitter = std::thread([&] {
      scheduler.run_chunks(512, 64, [&](std::size_t lo, std::size_t hi) {
        started.store(true);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        sum.fetch_add(static_cast<std::int64_t>(hi - lo));
      });
    });
    while (!started.load()) std::this_thread::yield();
    // Scheduler destructor runs here, mid-job.
  }
  submitter.join();
  EXPECT_EQ(sum.load(), 512);
}

TEST(Scheduler, DestructorPropagatesTaskExceptionToWaiter) {
  std::atomic<bool> started{false};
  std::atomic<bool> threw{false};
  std::thread submitter;
  {
    Scheduler scheduler(4);
    submitter = std::thread([&] {
      try {
        scheduler.run_chunks(128, 32, [&](std::size_t lo, std::size_t) {
          started.store(true);
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          if (lo == 0) throw std::runtime_error("task failure");
        });
      } catch (const std::runtime_error&) {
        threw.store(true);
      }
    });
    while (!started.load()) std::this_thread::yield();
  }
  submitter.join();
  EXPECT_TRUE(threw.load());
}

// -------------------------------------------------------- backend basics

TEST(Backend, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parse_backend("seq"), BackendKind::Sequential);
  EXPECT_EQ(parse_backend("sequential"), BackendKind::Sequential);
  EXPECT_EQ(parse_backend("omp"), BackendKind::OpenMP);
  EXPECT_EQ(parse_backend("openmp"), BackendKind::OpenMP);
  EXPECT_EQ(parse_backend("pool"), BackendKind::ThreadPool);
  EXPECT_EQ(parse_backend("threadpool"), BackendKind::ThreadPool);
  EXPECT_EQ(parse_backend("gpu"), std::nullopt);
  for (const auto kind : {BackendKind::Sequential, BackendKind::OpenMP,
                          BackendKind::ThreadPool}) {
    EXPECT_EQ(parse_backend(to_string(kind)), kind);
  }
}

TEST(Backend, FactoryHonorsAvailability) {
  EXPECT_EQ(make_backend(BackendKind::Sequential)->name(), "sequential");
  EXPECT_EQ(make_backend(BackendKind::ThreadPool, 2)->name(), "threadpool");
  EXPECT_TRUE(backend_available(BackendKind::Sequential));
  EXPECT_TRUE(backend_available(BackendKind::ThreadPool));
  if (backend_available(BackendKind::OpenMP)) {
    EXPECT_EQ(make_backend(BackendKind::OpenMP)->name(), "openmp");
  } else {
    // No silent degrade: requesting the missing backend throws.
    EXPECT_THROW((void)make_backend(BackendKind::OpenMP), std::runtime_error);
  }
}

TEST(Backend, SequentialRunsTasksInOrder) {
  SequentialBackend backend;
  EXPECT_EQ(backend.concurrency(), 1);
  std::vector<int> order;
  std::vector<ExecutionBackend::Task> tasks;
  for (int t = 0; t < 5; ++t) {
    tasks.emplace_back([&order, t] { order.push_back(t); });
  }
  backend.run_tasks(tasks);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

class BackendParam
    : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendParam, RunsAllTasksAndPropagatesException) {
  if (!backend_available(GetParam())) GTEST_SKIP() << "backend unavailable";
  const auto backend = make_backend(GetParam(), 4);

  std::vector<std::atomic<int>> hits(16);
  std::vector<ExecutionBackend::Task> tasks;
  for (std::size_t t = 0; t < hits.size(); ++t) {
    tasks.emplace_back([&hits, t] { hits[t].fetch_add(1); });
  }
  backend->run_tasks(tasks);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  std::vector<ExecutionBackend::Task> failing;
  std::atomic<int> attempted{0};
  for (int t = 0; t < 8; ++t) {
    failing.emplace_back([&attempted, t] {
      attempted.fetch_add(1);
      if (t == 3) throw std::invalid_argument("task 3");
    });
  }
  EXPECT_THROW(backend->run_tasks(failing), std::invalid_argument);
  EXPECT_EQ(attempted.load(), 8);
}

TEST_P(BackendParam, ParallelForCoversRangeDisjointly) {
  if (!backend_available(GetParam())) GTEST_SKIP() << "backend unavailable";
  const auto backend = make_backend(GetParam(), 4);
  std::vector<std::atomic<int>> hits(10'000);
  backend->parallel_for(hits.size(), 128, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendParam,
                         ::testing::Values(BackendKind::Sequential,
                                           BackendKind::OpenMP,
                                           BackendKind::ThreadPool),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

}  // namespace
}  // namespace kc::exec
