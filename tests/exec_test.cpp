// Tests for the execution-backend subsystem: the persistent thread
// pool (task completion, exception propagation, reuse across rounds,
// reentrancy) and the backend interface (parsing, availability, the
// deterministic chunk partition, run_tasks/parallel_for semantics).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/backend.hpp"
#include "exec/thread_pool.hpp"

namespace kc::exec {
namespace {

// ---------------------------------------------------------- chunk_bounds

TEST(ChunkBounds, PartitionsExactlyAndEvenly) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 7u}) {
      if (chunks > n) continue;
      std::size_t covered = 0;
      std::size_t previous_hi = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [lo, hi] = chunk_bounds(n, chunks, c);
        EXPECT_EQ(lo, previous_hi);  // contiguous, in order
        EXPECT_GE(hi, lo);
        EXPECT_LE(hi - lo, n / chunks + 1);  // near-equal
        covered += hi - lo;
        previous_hi = hi;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(previous_hi, n);
    }
  }
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4);
  EXPECT_EQ(pool.workers(), 3);

  std::vector<std::atomic<int>> hits(1000);
  pool.run_chunks(hits.size(), 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusedAcrossManyRounds) {
  // The whole point of the pool: hundreds of rounds, zero respawns.
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.run_chunks(64, 8, [&](std::size_t lo, std::size_t hi) {
      sum.fetch_add(static_cast<std::int64_t>(hi - lo));
    });
  }
  EXPECT_EQ(sum.load(), 200 * 64);
}

TEST(ThreadPool, UsesMultipleThreadsWhenAvailable) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  // Many more chunks than threads, each slow enough that workers get a
  // chance to claim some; the exact spread is scheduling-dependent, so
  // assert only that no *more* than `concurrency` threads participate.
  pool.run_chunks(64, 64, [&](std::size_t, std::size_t) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), 4u);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.run_chunks(32, 32,
                      [&](std::size_t lo, std::size_t) {
                        executed.fetch_add(1);
                        if (lo == 7) throw std::runtime_error("chunk 7");
                      }),
      std::runtime_error);
  // Every chunk is still attempted (OpenMP-matching semantics).
  EXPECT_EQ(executed.load(), 32);
  // And the pool remains usable afterwards.
  std::atomic<int> after{0};
  pool.run_chunks(8, 8, [&](std::size_t, std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, NestedSubmissionRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.run_chunks(8, 8, [&](std::size_t, std::size_t) {
    EXPECT_TRUE(ThreadPool::busy_on_this_thread());
    // A nested submission from inside pool work must not deadlock.
    pool.run_chunks(4, 4, [&](std::size_t lo, std::size_t hi) {
      inner_total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
  EXPECT_FALSE(ThreadPool::busy_on_this_thread());
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 0);
  int calls = 0;
  pool.run_chunks(100, 10, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);
}

// -------------------------------------------------------- backend basics

TEST(Backend, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parse_backend("seq"), BackendKind::Sequential);
  EXPECT_EQ(parse_backend("sequential"), BackendKind::Sequential);
  EXPECT_EQ(parse_backend("omp"), BackendKind::OpenMP);
  EXPECT_EQ(parse_backend("openmp"), BackendKind::OpenMP);
  EXPECT_EQ(parse_backend("pool"), BackendKind::ThreadPool);
  EXPECT_EQ(parse_backend("threadpool"), BackendKind::ThreadPool);
  EXPECT_EQ(parse_backend("gpu"), std::nullopt);
  for (const auto kind : {BackendKind::Sequential, BackendKind::OpenMP,
                          BackendKind::ThreadPool}) {
    EXPECT_EQ(parse_backend(to_string(kind)), kind);
  }
}

TEST(Backend, FactoryHonorsAvailability) {
  EXPECT_EQ(make_backend(BackendKind::Sequential)->name(), "sequential");
  EXPECT_EQ(make_backend(BackendKind::ThreadPool, 2)->name(), "threadpool");
  EXPECT_TRUE(backend_available(BackendKind::Sequential));
  EXPECT_TRUE(backend_available(BackendKind::ThreadPool));
  if (backend_available(BackendKind::OpenMP)) {
    EXPECT_EQ(make_backend(BackendKind::OpenMP)->name(), "openmp");
  } else {
    // No silent degrade: requesting the missing backend throws.
    EXPECT_THROW((void)make_backend(BackendKind::OpenMP), std::runtime_error);
  }
}

TEST(Backend, SequentialRunsTasksInOrder) {
  SequentialBackend backend;
  EXPECT_EQ(backend.concurrency(), 1);
  std::vector<int> order;
  std::vector<ExecutionBackend::Task> tasks;
  for (int t = 0; t < 5; ++t) {
    tasks.emplace_back([&order, t] { order.push_back(t); });
  }
  backend.run_tasks(tasks);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

class BackendParam
    : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendParam, RunsAllTasksAndPropagatesException) {
  if (!backend_available(GetParam())) GTEST_SKIP() << "backend unavailable";
  const auto backend = make_backend(GetParam(), 4);

  std::vector<std::atomic<int>> hits(16);
  std::vector<ExecutionBackend::Task> tasks;
  for (std::size_t t = 0; t < hits.size(); ++t) {
    tasks.emplace_back([&hits, t] { hits[t].fetch_add(1); });
  }
  backend->run_tasks(tasks);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  std::vector<ExecutionBackend::Task> failing;
  std::atomic<int> attempted{0};
  for (int t = 0; t < 8; ++t) {
    failing.emplace_back([&attempted, t] {
      attempted.fetch_add(1);
      if (t == 3) throw std::invalid_argument("task 3");
    });
  }
  EXPECT_THROW(backend->run_tasks(failing), std::invalid_argument);
  EXPECT_EQ(attempted.load(), 8);
}

TEST_P(BackendParam, ParallelForCoversRangeDisjointly) {
  if (!backend_available(GetParam())) GTEST_SKIP() << "backend unavailable";
  const auto backend = make_backend(GetParam(), 4);
  std::vector<std::atomic<int>> hits(10'000);
  backend->parallel_for(hits.size(), 128, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendParam,
                         ::testing::Values(BackendKind::Sequential,
                                           BackendKind::OpenMP,
                                           BackendKind::ThreadPool),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace kc::exec
