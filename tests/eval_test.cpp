#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace kc::eval {
namespace {

TEST(CoveringRadius, MatchesHandComputation) {
  const PointSet ps{{0.0, 0.0}, {1.0, 0.0}, {4.0, 0.0}, {10.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const std::vector<index_t> centers{0, 3};
  const auto result = covering_radius(oracle, all, centers, false);
  // Point 4.0 is 4 from center 0 and 6 from center 10: radius 4.
  EXPECT_DOUBLE_EQ(result.radius, 4.0);
  EXPECT_EQ(result.witness, 2u);
  EXPECT_DOUBLE_EQ(result.radius_comparable, 16.0);
}

TEST(CoveringRadius, ZeroWhenCentersCoverAll) {
  const PointSet ps{{0.0, 0.0}, {5.0, 5.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto result = covering_radius(oracle, all, all, false);
  EXPECT_DOUBLE_EQ(result.radius, 0.0);
}

TEST(CoveringRadius, ParallelMatchesSequential) {
  const PointSet ps = test::small_gaussian_instance(6, 500, 1);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const std::vector<index_t> centers{0, 100, 700, 1500};
  const auto par = covering_radius(oracle, all, centers, true);
  const auto seq = covering_radius(oracle, all, centers, false);
  EXPECT_DOUBLE_EQ(par.radius, seq.radius);
}

TEST(CoveringRadius, ValidatesInput) {
  const PointSet ps{{0.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  EXPECT_THROW((void)covering_radius(oracle, all, {}, false),
               std::invalid_argument);
  EXPECT_THROW((void)covering_radius(oracle, {}, all, false),
               std::invalid_argument);
}

TEST(AssignClusters, NearestCenterWins) {
  const PointSet ps{{0.0, 0.0}, {9.0, 0.0}, {1.0, 0.0}, {8.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const std::vector<index_t> centers{0, 1};
  const auto assignment = assign_clusters(oracle, all, centers, false);
  EXPECT_EQ(assignment[0], 0u);
  EXPECT_EQ(assignment[1], 1u);
  EXPECT_EQ(assignment[2], 0u);
  EXPECT_EQ(assignment[3], 1u);
}

TEST(ClusterStats, SizesAndRadii) {
  const PointSet ps{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0},
                    {50.0, 0.0}, {51.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const std::vector<index_t> centers{0, 3};
  const auto stats = cluster_stats(oracle, all, centers);
  ASSERT_EQ(stats.sizes.size(), 2u);
  EXPECT_EQ(stats.sizes[0], 3u);
  EXPECT_EQ(stats.sizes[1], 2u);
  EXPECT_DOUBLE_EQ(stats.radii[0], 2.0);
  EXPECT_DOUBLE_EQ(stats.radii[1], 1.0);
  EXPECT_DOUBLE_EQ(stats.max_radius, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_radius, 1.5);
  EXPECT_EQ(stats.largest_cluster, 3u);
  EXPECT_EQ(stats.smallest_cluster, 2u);
}

TEST(ClusterStats, MaxRadiusEqualsCoveringRadius) {
  const PointSet ps = test::small_gaussian_instance(5, 200, 2);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto gon = gonzalez(oracle, all, 5);
  const auto stats = cluster_stats(oracle, all, gon.centers);
  const auto cover = covering_radius(oracle, all, gon.centers, false);
  EXPECT_NEAR(stats.max_radius, cover.radius, 1e-9);
}

TEST(LowerBound, NeverExceedsExactOptimum) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    PointSet ps(14, 2);
    for (index_t i = 0; i < 14; ++i) {
      for (auto& c : ps.mutable_point(i)) c = rng.uniform(0, 10);
    }
    const DistanceOracle oracle(ps);
    const auto all = ps.all_indices();
    const auto opt = brute_force_opt(oracle, all, 3);
    const double lb = gonzalez_lower_bound(oracle, all, 3);
    EXPECT_LE(lb, oracle.to_reported(opt.radius_comparable) + 1e-9);
    // And it is not vacuous: at least OPT/2 by the GON guarantee.
    EXPECT_GE(lb, oracle.to_reported(opt.radius_comparable) / 2.0 - 1e-9);
  }
}

TEST(LowerBound, ExactOnPlantedInstances) {
  Rng rng(4);
  const auto inst = data::make_planted(4, 9, 1.0, 10.0, 2, rng);
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();
  const double lb = gonzalez_lower_bound(oracle, all, 4);
  EXPECT_LE(lb, inst.opt_radius + 1e-9);
  EXPECT_GE(lb, inst.opt_radius / 2.0 - 1e-9);
}

TEST(RatioUpperBound, BoundsGonzalezByTwo) {
  const PointSet ps = test::small_gaussian_instance(6, 300, 5);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const auto gon = gonzalez(oracle, all, 6);
  const double value = oracle.to_reported(gon.radius_comparable);
  // value / LB <= value / (value/2) = 2... but LB uses its own GON run;
  // both are within a factor 2 of OPT so the ratio is at most 4; for
  // the same run's radius the certified bound is exactly <= 2 when LB
  // derives from the same greedy sequence. Use the weaker sound bound.
  EXPECT_LE(ratio_upper_bound(oracle, all, 6, value), 4.0 + 1e-9);
}

TEST(RatioUpperBound, DegenerateZeroRadius) {
  const PointSet ps = test::all_duplicates(10);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  EXPECT_DOUBLE_EQ(ratio_upper_bound(oracle, all, 2, 0.0), 1.0);
}

}  // namespace
}  // namespace kc::eval
