#include "harness/gnuplot.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace kc::harness {
namespace {

PlotSpec titled(std::string title) {
  PlotSpec spec;
  spec.title = std::move(title);
  return spec;
}

class GnuplotTest : public ::testing::Test {
 protected:
  std::filesystem::path base_ =
      std::filesystem::temp_directory_path() / "kc_gnuplot_test";
  void TearDown() override {
    std::filesystem::remove(base_.string() + ".dat");
    std::filesystem::remove(base_.string() + ".plt");
  }
  static std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(GnuplotTest, WritesDatWithHeaderAndRows) {
  Table t({"k", "MRG (s)", "GON (s)"});
  t.add_row({"2", "0.001", "0.01"});
  t.add_row({"100", "0.003", "0.07"});
  write_gnuplot(t, base_.string(), titled("fig"));
  const std::string dat = slurp(base_.string() + ".dat");
  EXPECT_NE(dat.find("# k MRG (s) GON (s)"), std::string::npos);
  EXPECT_NE(dat.find("2 0.001 0.01"), std::string::npos);
  EXPECT_NE(dat.find("100 0.003 0.07"), std::string::npos);
}

TEST_F(GnuplotTest, NonNumericCellsBecomeNan) {
  Table t({"k", "value", "sampled?"});
  t.add_row({"2", "1.5", "yes"});
  write_gnuplot(t, base_.string(), titled("fig"));
  const std::string dat = slurp(base_.string() + ".dat");
  EXPECT_NE(dat.find("2 1.5 nan"), std::string::npos);
}

TEST_F(GnuplotTest, ScriptPlotsEverySeriesWithLogAxis) {
  Table t({"k", "a", "b"});
  t.add_row({"1", "2", "3"});
  PlotSpec spec;
  spec.title = "paper fig";
  spec.log_y = true;
  write_gnuplot(t, base_.string(), spec);
  const std::string plt = slurp(base_.string() + ".plt");
  EXPECT_NE(plt.find("set logscale y"), std::string::npos);
  EXPECT_NE(plt.find("using 1:2"), std::string::npos);
  EXPECT_NE(plt.find("using 1:3"), std::string::npos);
  EXPECT_NE(plt.find("\"paper fig\""), std::string::npos);
  EXPECT_NE(plt.find(base_.string() + ".png"), std::string::npos);
}

TEST_F(GnuplotTest, SeriesSubsetSelection) {
  Table t({"k", "a", "b", "c"});
  t.add_row({"1", "2", "3", "4"});
  PlotSpec spec;
  spec.title = "subset";
  spec.series = {2};  // only column "b"
  write_gnuplot(t, base_.string(), spec);
  const std::string plt = slurp(base_.string() + ".plt");
  EXPECT_EQ(plt.find("using 1:2,"), std::string::npos);
  EXPECT_NE(plt.find("using 1:3"), std::string::npos);
  EXPECT_EQ(plt.find("using 1:4"), std::string::npos);
}

TEST_F(GnuplotTest, RejectsSingleColumnTable) {
  Table t({"only_x"});
  EXPECT_THROW(write_gnuplot(t, base_.string(), titled("x")),
               std::invalid_argument);
}

TEST_F(GnuplotTest, RejectsUnwritablePath) {
  Table t({"k", "v"});
  t.add_row({"1", "2"});
  EXPECT_THROW(
      write_gnuplot(t, "/nonexistent_dir/plot", titled("x")),
      std::runtime_error);
}

}  // namespace
}  // namespace kc::harness
