// Cross-module integration tests: full pipelines over every data
// source, certified approximation ratios, and the paper's headline
// qualitative claims at test scale.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "test_util.hpp"

namespace kc {
namespace {

struct PipelineCase {
  const char* name;
  data::SyntheticKind kind;
  std::size_t n;
  std::size_t clusters;
  std::size_t k;
};

class FullPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(FullPipeline, AllAlgorithmsProduceCertifiedSolutions) {
  const auto& pc = GetParam();
  data::SyntheticSpec spec;
  spec.kind = pc.kind;
  spec.n = pc.n;
  spec.inherent_clusters = pc.clusters;
  Rng rng(2024);
  const PointSet ps = data::generate(spec, rng);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();

  // Certified lower bound: value/LB bounds the true approximation ratio.
  const double lb = eval::gonzalez_lower_bound(oracle, all, pc.k);

  for (const auto kind : {harness::AlgoKind::GON, harness::AlgoKind::MRG,
                          harness::AlgoKind::EIM}) {
    harness::AlgoConfig config;
    config.kind = kind;
    config.machines = 10;
    const auto run = harness::run_algorithm(config, ps, pc.k, 7);
    EXPECT_EQ(run.centers.size(), pc.k) << harness::to_string(kind);
    ASSERT_TRUE(test::valid_center_set(run.centers, ps.size()));
    if (lb > 0.0) {
      const double certified_ratio = run.value / lb;
      // Sound bounds: value <= factor * OPT and LB >= OPT/2, so the
      // certified ratio is at most 2 * factor (GON: 4, MRG 2-round: 8,
      // EIM: 20).
      const double allowance =
          kind == harness::AlgoKind::GON ? 4.0 : (kind == harness::AlgoKind::MRG ? 8.0 : 20.0);
      EXPECT_LE(certified_ratio, allowance + 1e-9)
          << harness::to_string(kind) << " on " << pc.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FullPipeline,
    ::testing::Values(
        PipelineCase{"gau_small_k", data::SyntheticKind::Gau, 20000, 10, 5},
        PipelineCase{"gau_match_k", data::SyntheticKind::Gau, 20000, 10, 10},
        PipelineCase{"unif", data::SyntheticKind::Unif, 20000, 0, 8},
        PipelineCase{"unb", data::SyntheticKind::Unb, 20000, 10, 10}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(Integration, PokerPipeline) {
  Rng rng(1);
  const PointSet hands = data::poker_hand_surrogate(5000, rng);
  harness::AlgoConfig config;
  config.kind = harness::AlgoKind::MRG;
  config.machines = 10;
  const auto run = harness::run_algorithm(config, hands, 10, 3);
  EXPECT_EQ(run.centers.size(), 10u);
  // Table 5 band: values between ~8 and ~20 across the k sweep.
  EXPECT_GT(run.value, 5.0);
  EXPECT_LT(run.value, 25.0);
}

TEST(Integration, KddPipelineIsOutlierDominated) {
  Rng rng(2);
  const PointSet kdd = data::kdd_cup_surrogate(30000, rng);
  harness::AlgoConfig gon;
  gon.kind = harness::AlgoKind::GON;
  harness::AlgoConfig mrg_cfg;
  mrg_cfg.kind = harness::AlgoKind::MRG;
  mrg_cfg.machines = 10;
  const auto g = harness::run_algorithm(gon, kdd, 25, 5);
  const auto m = harness::run_algorithm(mrg_cfg, kdd, 25, 5);
  // Both must tame the 1e9-scale outliers into the same order of
  // magnitude (Figure 1's mid-k regime).
  EXPECT_LT(g.value / m.value, 10.0);
  EXPECT_LT(m.value / g.value, 10.0);
}

TEST(Integration, MrgIsFasterThanGonInSimulatedTime) {
  // The paper's headline: MRG's simulated time beats sequential GON by
  // roughly the machine count. At test scale we only require a clear
  // win to avoid flakiness on noisy CI hosts.
  const PointSet ps = test::small_gaussian_instance(10, 10000, 3);
  harness::AlgoConfig gon;
  gon.kind = harness::AlgoKind::GON;
  harness::AlgoConfig mrg_cfg;
  mrg_cfg.kind = harness::AlgoKind::MRG;
  mrg_cfg.machines = 50;
  const auto g = harness::run_algorithm(gon, ps, 25, 7);
  const auto m = harness::run_algorithm(mrg_cfg, ps, 25, 7);
  EXPECT_LT(m.sim_seconds, g.sim_seconds);
}

TEST(Integration, QualityComparableAcrossAlgorithms) {
  // §8.1: parallel solutions are comparable to the sequential baseline.
  const PointSet ps = test::small_gaussian_instance(25, 2000, 4);
  double values[3] = {0, 0, 0};
  int i = 0;
  for (const auto kind : {harness::AlgoKind::GON, harness::AlgoKind::MRG,
                          harness::AlgoKind::EIM}) {
    harness::AlgoConfig config;
    config.kind = kind;
    config.machines = 25;
    values[i++] = harness::run_algorithm(config, ps, 25, 9).value;
  }
  // All three find the 25 planted clusters: values within 3x of each
  // other (in the paper they differ by <15%).
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      EXPECT_LT(values[a], 3.0 * values[b] + 1e-9);
    }
  }
}

TEST(Integration, EimMatchesItsOwnTraceAccounting) {
  const PointSet ps = test::small_gaussian_instance(10, 4000, 5);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const WorkScope scope;
  const auto result = eim(oracle, all, 10, cluster, {});
  // All distance work of the run is attributed to some round.
  EXPECT_EQ(scope.elapsed().distance_evals, result.trace.total_dist_evals());
}

TEST(Integration, MrgMatchesItsOwnTraceAccounting) {
  const PointSet ps = test::small_gaussian_instance(10, 2000, 6);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  const WorkScope scope;
  const auto result = mrg(oracle, all, 10, cluster, {});
  EXPECT_EQ(scope.elapsed().distance_evals, result.trace.total_dist_evals());
}

TEST(Integration, NonEuclideanEndToEnd) {
  // The whole stack is metric-generic: run MRG under L1 and Linf.
  const PointSet ps = test::small_gaussian_instance(6, 500, 7);
  for (const auto metric : {MetricKind::L1, MetricKind::Linf}) {
    const DistanceOracle oracle(ps, metric);
    const auto all = ps.all_indices();
    const mr::SimCluster cluster(6);
    const auto result = mrg(oracle, all, 6, cluster, {});
    EXPECT_EQ(result.centers.size(), 6u);
    const auto value = eval::covering_radius(oracle, all, result.centers,
                                             false);
    EXPECT_GT(value.radius, 0.0);
  }
}

TEST(Integration, LargeKProducesDegenerateEimAcrossStack) {
  // Figure 4b's regime through the full harness: small n, large k.
  const PointSet ps = test::small_gaussian_instance(10, 300, 8);  // n = 3000
  harness::AlgoConfig config;
  config.kind = harness::AlgoKind::EIM;
  config.machines = 10;
  const auto run = harness::run_algorithm(config, ps, 100, 11);
  EXPECT_FALSE(run.eim_sampled);
  EXPECT_EQ(run.map_reduce_rounds, 1);
}

}  // namespace
}  // namespace kc
