// Kernel-equivalence suite: every vectorized kernel table must produce
// **bit-identical** results to the scalar reference — not merely close.
// The execution-backend determinism contract (backend_determinism_test)
// only stays meaningful if the per-core kernels underneath it cannot
// introduce drift, so equality here is checked on the raw bit patterns.
//
// Coverage: all three metrics, dims 1-16, ragged lengths around both
// vector widths (4 and 8 lanes), gather vs contiguous id spans,
// center-blocked multi folds vs repeated single-center passes, and the
// vectorized argmax (including ties).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "geom/distance.hpp"
#include "geom/kernels.hpp"
#include "rng/rng.hpp"

namespace kc {
namespace {

using simd::IsaLevel;
using simd::KernelTable;

std::vector<IsaLevel> simd_levels_available() {
  std::vector<IsaLevel> out;
  for (const IsaLevel level :
       {IsaLevel::Avx2, IsaLevel::Avx512, IsaLevel::Neon}) {
    if (simd::isa_compiled(level) && simd::isa_supported(level)) {
      out.push_back(level);
    }
  }
  return out;
}

/// Bitwise comparison: EXPECT_EQ on doubles would conflate +0/-0 and
/// miss payload differences; the contract is stronger than value
/// equality.
void expect_bit_identical(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << "element " << i << ": " << got[i] << " vs " << want[i];
  }
}

std::vector<double> random_coords(std::size_t count, Rng& rng) {
  std::vector<double> coords(count);
  for (auto& c : coords) c = rng.uniform(-50.0, 50.0);
  return coords;
}

/// best[] prefilled with a mix of kInfDist and small values, so both
/// the "improves" and the "keeps" sides of the min-fold are exercised.
std::vector<double> random_best(std::size_t n, Rng& rng) {
  std::vector<double> best(n);
  for (auto& b : best) {
    b = rng.bernoulli(0.3) ? rng.uniform(0.0, 5.0) : kInfDist;
  }
  return best;
}

// Lengths straddling both vector widths (4 and 8) plus larger ragged
// sizes; 1 exercises the pure-tail path.
constexpr std::size_t kLengths[] = {1, 3, 4, 5, 7, 8, 9, 13, 19, 257, 1000};

struct IdLayout {
  const char* name;
  bool contiguous;
  std::vector<index_t> (*make)(std::size_t n, std::size_t n_points, Rng& rng);
};

const IdLayout kLayouts[] = {
    {"iota", true,
     [](std::size_t n, std::size_t, Rng&) {
       std::vector<index_t> ids(n);
       for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<index_t>(i);
       return ids;
     }},
    {"iota-offset", true,
     [](std::size_t n, std::size_t n_points, Rng&) {
       const std::size_t off = n_points - n;  // points allocated with slack
       std::vector<index_t> ids(n);
       for (std::size_t i = 0; i < n; ++i) {
         ids[i] = static_cast<index_t>(off + i);
       }
       return ids;
     }},
    {"gather", false,
     [](std::size_t n, std::size_t n_points, Rng& rng) {
       // Random ids with duplicates: the gather path must not assume
       // distinct rows.
       std::vector<index_t> ids(n);
       for (auto& id : ids) {
         id = static_cast<index_t>(rng.uniform_int(n_points));
       }
       return ids;
     }},
};

class KernelEquivalence : public ::testing::TestWithParam<MetricKind> {};

TEST_P(KernelEquivalence, UpdateNearestBitIdenticalAcrossIsas) {
  const auto levels = simd_levels_available();
  if (levels.empty()) GTEST_SKIP() << "no SIMD kernels on this host";
  const KernelTable* scalar = simd::kernels_for(IsaLevel::Scalar);
  const auto m = static_cast<std::size_t>(GetParam());

  Rng rng(42);
  for (std::size_t dim = 1; dim <= 16; ++dim) {
    const std::size_t n_points = 1024;
    const auto coords = random_coords(n_points * dim, rng);
    const auto center = random_coords(dim, rng);
    for (const std::size_t n : kLengths) {
      for (const auto& layout : kLayouts) {
        const auto ids = layout.make(n, n_points, rng);
        const auto init = random_best(n, rng);

        std::vector<double> want = init;
        scalar->nearest_gather[m](coords.data(), dim, ids.data(), n,
                                  center.data(), want.data());
        for (const IsaLevel level : levels) {
          const KernelTable* table = simd::kernels_for(level);
          SCOPED_TRACE(std::string(table->name) + " dim=" +
                       std::to_string(dim) + " n=" + std::to_string(n) + " " +
                       layout.name);
          std::vector<double> got = init;
          table->nearest_gather[m](coords.data(), dim, ids.data(), n,
                                   center.data(), got.data());
          expect_bit_identical(got, want);

          if (layout.contiguous) {
            // The contiguous entry point must agree with the gather one
            // on the same span (and hence with scalar).
            const double* rows =
                coords.data() + static_cast<std::size_t>(ids[0]) * dim;
            got = init;
            table->nearest_contig[m](rows, dim, n, center.data(), got.data());
            expect_bit_identical(got, want);
          }
        }
      }
    }
  }
}

// Masked-tail contract (AVX-512 replaces the scalar tail loop with
// lane-masked kernels): every ragged remainder 1..W-1 must stay
// bit-identical to scalar when the scan ends exactly at the end of its
// allocations, and the masked store must leave best[] beyond n
// untouched. The buffers here have zero slack after the last element,
// so a tail that over-reads or over-writes by even one double corrupts
// the guard values or faults under a sanitizer.
TEST_P(KernelEquivalence, RaggedTailsExactBufferEndAndNoOverstore) {
  const auto levels = simd_levels_available();
  if (levels.empty()) GTEST_SKIP() << "no SIMD kernels on this host";
  const KernelTable* scalar = simd::kernels_for(IsaLevel::Scalar);
  const auto m = static_cast<std::size_t>(GetParam());
  constexpr double kGuard = -1234.5;

  Rng rng(97);
  for (std::size_t dim = 1; dim <= 9; ++dim) {
    const auto center = random_coords(dim, rng);
    for (std::size_t n = 1; n <= 17; ++n) {
      // Coordinates sized exactly n rows — no slack for an over-read.
      const auto coords = random_coords(n * dim, rng);
      std::vector<index_t> ids(n);
      for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<index_t>(i);
      const auto init = random_best(n, rng);

      std::vector<double> want = init;
      scalar->nearest_contig[m](coords.data(), dim, n, center.data(),
                                want.data());
      for (const IsaLevel level : levels) {
        const KernelTable* table = simd::kernels_for(level);
        SCOPED_TRACE(std::string(table->name) + " dim=" + std::to_string(dim) +
                     " n=" + std::to_string(n));
        // Guard slots after best[n): a masked store must not touch them.
        std::vector<double> got(init);
        got.resize(n + 8, kGuard);
        table->nearest_contig[m](coords.data(), dim, n, center.data(),
                                 got.data());
        for (std::size_t i = n; i < got.size(); ++i) {
          EXPECT_EQ(got[i], kGuard) << "overstore at " << i;
        }
        got.resize(n);
        expect_bit_identical(got, want);

        got = init;
        got.resize(n + 8, kGuard);
        table->nearest_gather[m](coords.data(), dim, ids.data(), n,
                                 center.data(), got.data());
        for (std::size_t i = n; i < got.size(); ++i) {
          EXPECT_EQ(got[i], kGuard) << "overstore at " << i;
        }
        got.resize(n);
        expect_bit_identical(got, want);
      }
    }
  }
}

// Same exact-buffer-end contract for the center-blocked multi kernels,
// whose ragged tails are also lane-masked on AVX-512: every remainder
// 1..W-1, every block size 1..kCenterBlock, scan ending flush with the
// coordinate allocation, guards after best[n) untouched.
TEST_P(KernelEquivalence, RaggedTailsMultiExactBufferEndAndNoOverstore) {
  const auto levels = simd_levels_available();
  if (levels.empty()) GTEST_SKIP() << "no SIMD kernels on this host";
  const KernelTable* scalar = simd::kernels_for(IsaLevel::Scalar);
  const auto m = static_cast<std::size_t>(GetParam());
  constexpr double kGuard = -1234.5;

  Rng rng(181);
  for (std::size_t dim = 1; dim <= 9; ++dim) {
    for (std::size_t nc = 1; nc <= simd::kCenterBlock; ++nc) {
      std::vector<std::vector<double>> centers(nc);
      std::vector<const double*> cptr(nc);
      for (std::size_t c = 0; c < nc; ++c) {
        centers[c] = random_coords(dim, rng);
        cptr[c] = centers[c].data();
      }
      for (std::size_t n = 1; n <= 17; ++n) {
        // Coordinates sized exactly n rows — no slack for an over-read.
        const auto coords = random_coords(n * dim, rng);
        std::vector<index_t> ids(n);
        for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<index_t>(i);
        const auto init = random_best(n, rng);

        std::vector<double> want = init;
        scalar->nearest_multi_contig[m](coords.data(), dim, n, cptr.data(),
                                        nc, want.data());
        for (const IsaLevel level : levels) {
          const KernelTable* table = simd::kernels_for(level);
          SCOPED_TRACE(std::string(table->name) + " dim=" +
                       std::to_string(dim) + " nc=" + std::to_string(nc) +
                       " n=" + std::to_string(n));
          std::vector<double> got(init);
          got.resize(n + 8, kGuard);
          table->nearest_multi_contig[m](coords.data(), dim, n, cptr.data(),
                                         nc, got.data());
          for (std::size_t i = n; i < got.size(); ++i) {
            EXPECT_EQ(got[i], kGuard) << "overstore at " << i;
          }
          got.resize(n);
          expect_bit_identical(got, want);

          got = init;
          got.resize(n + 8, kGuard);
          table->nearest_multi_gather[m](coords.data(), dim, ids.data(), n,
                                         cptr.data(), nc, got.data());
          for (std::size_t i = n; i < got.size(); ++i) {
            EXPECT_EQ(got[i], kGuard) << "overstore at " << i;
          }
          got.resize(n);
          expect_bit_identical(got, want);
        }
      }
    }
  }
}

TEST_P(KernelEquivalence, BlockedMultiMatchesRepeatedSingleCenterPasses) {
  const auto levels = simd_levels_available();
  if (levels.empty()) GTEST_SKIP() << "no SIMD kernels on this host";
  const KernelTable* scalar = simd::kernels_for(IsaLevel::Scalar);
  const auto m = static_cast<std::size_t>(GetParam());

  Rng rng(77);
  for (const std::size_t dim : {1u, 2u, 3u, 5u, 11u}) {
    const std::size_t n_points = 512;
    const auto coords = random_coords(n_points * dim, rng);
    // 1..kCenterBlock+1 centers: exercises partial blocks and tiling.
    for (std::size_t nc = 1; nc <= simd::kCenterBlock + 1; ++nc) {
      std::vector<std::vector<double>> centers(nc);
      std::vector<const double*> cptr(nc);
      for (std::size_t c = 0; c < nc; ++c) {
        centers[c] = random_coords(dim, rng);
        cptr[c] = centers[c].data();
      }
      for (const std::size_t n : {1u, 7u, 8u, 9u, 33u, 400u}) {
        const auto ids = kLayouts[2].make(n, n_points, rng);
        const auto init = random_best(n, rng);

        // Reference: scalar single-center passes, in center order.
        std::vector<double> want = init;
        for (std::size_t c = 0; c < nc; ++c) {
          scalar->nearest_gather[m](coords.data(), dim, ids.data(), n,
                                    centers[c].data(), want.data());
        }
        for (const IsaLevel level : levels) {
          const KernelTable* table = simd::kernels_for(level);
          SCOPED_TRACE(std::string(table->name) + " dim=" +
                       std::to_string(dim) + " nc=" + std::to_string(nc) +
                       " n=" + std::to_string(n));
          // Tile like DistanceOracle::update_nearest_multi does.
          std::vector<double> got = init;
          for (std::size_t cb = 0; cb < nc; cb += simd::kCenterBlock) {
            const std::size_t block = std::min(simd::kCenterBlock, nc - cb);
            table->nearest_multi_gather[m](coords.data(), dim, ids.data(), n,
                                           cptr.data() + cb, block,
                                           got.data());
          }
          expect_bit_identical(got, want);

          // Contiguous blocked variant over an iota span.
          const auto iota = kLayouts[0].make(n, n_points, rng);
          std::vector<double> want_c = init;
          for (std::size_t c = 0; c < nc; ++c) {
            scalar->nearest_gather[m](coords.data(), dim, iota.data(), n,
                                      centers[c].data(), want_c.data());
          }
          got = init;
          for (std::size_t cb = 0; cb < nc; cb += simd::kCenterBlock) {
            const std::size_t block = std::min(simd::kCenterBlock, nc - cb);
            table->nearest_multi_contig[m](coords.data(), dim, n,
                                           cptr.data() + cb, block,
                                           got.data());
          }
          expect_bit_identical(got, want_c);
        }
      }
    }
  }
}

// Tiled pairwise kernel: the raw m x n tile must match the scalar
// reference bit for bit on every ISA, for ragged shapes on both sides,
// and a padded output stride (ldo > n) must leave the padding
// untouched — the engine reuses one tile buffer, so a stray lane store
// would smear stale distances into later tiles.
TEST_P(KernelEquivalence, TiledPairwiseBitIdenticalAcrossIsas) {
  const auto levels = simd_levels_available();
  if (levels.empty()) GTEST_SKIP() << "no SIMD kernels on this host";
  const KernelTable* scalar = simd::kernels_for(IsaLevel::Scalar);
  const auto m = static_cast<std::size_t>(GetParam());
  constexpr double kGuard = -1234.5;

  Rng rng(133);
  for (std::size_t dim = 1; dim <= 16; ++dim) {
    for (const std::size_t rows : {1u, 2u, 3u, 7u, 8u}) {
      for (const std::size_t cols : {1u, 3u, 4u, 5u, 8u, 9u, 13u, 31u}) {
        const auto arows = random_coords(rows * dim, rng);
        const auto brows = random_coords(cols * dim, rng);
        std::vector<double> want(rows * cols);
        scalar->pairwise_tile[m](arows.data(), brows.data(), dim, rows, cols,
                                 want.data(), cols);
        for (const IsaLevel level : levels) {
          const KernelTable* table = simd::kernels_for(level);
          SCOPED_TRACE(std::string(table->name) + " dim=" +
                       std::to_string(dim) + " m=" + std::to_string(rows) +
                       " n=" + std::to_string(cols));
          // Tight stride, with guards after the last element.
          std::vector<double> got(rows * cols + 8, kGuard);
          table->pairwise_tile[m](arows.data(), brows.data(), dim, rows, cols,
                                  got.data(), cols);
          for (std::size_t i = rows * cols; i < got.size(); ++i) {
            EXPECT_EQ(got[i], kGuard) << "overstore at " << i;
          }
          got.resize(rows * cols);
          expect_bit_identical(got, want);

          // Padded stride: row r lives at r * (cols + 3); the 3-slot
          // gaps must keep their guard values.
          const std::size_t ldo = cols + 3;
          std::vector<double> padded(rows * ldo, kGuard);
          table->pairwise_tile[m](arows.data(), brows.data(), dim, rows, cols,
                                  padded.data(), ldo);
          std::vector<double> unpadded;
          unpadded.reserve(rows * cols);
          for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
              unpadded.push_back(padded[r * ldo + c]);
            }
            for (std::size_t c = cols; c < ldo; ++c) {
              EXPECT_EQ(padded[r * ldo + c], kGuard)
                  << "padding overwrite at row " << r << " col " << c;
            }
          }
          expect_bit_identical(unpadded, want);
        }
      }
    }
  }
}

// Oracle-level tile streams: pairwise_tiles / pairwise_upper_tiles on
// every ISA table must reassemble into exactly the per-pair scalar
// comparable() values, over both contiguous and gathered id spans —
// this is the contract that lets HS, brute force and the evaluation
// scans stream tiles without changing a single output byte.
TEST_P(KernelEquivalence, TiledOracleStreamsMatchPerPairScalar) {
  const auto kind = GetParam();
  Rng rng(201);
  constexpr std::size_t kPoints = 300;  // >= the largest id span below
  constexpr std::size_t kDim = 5;
  PointSet ps(kPoints, kDim);
  for (index_t i = 0; i < kPoints; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(-50.0, 50.0);
  }

  std::vector<const KernelTable*> tables{simd::kernels_for(IsaLevel::Scalar)};
  for (const IsaLevel level : simd_levels_available()) {
    tables.push_back(simd::kernels_for(level));
  }

  DistanceOracle reference(ps, kind);
  reference.force_kernels(simd::kernels_for(IsaLevel::Scalar));

  for (const auto& layout : kLayouts) {
    const auto a_ids = layout.make(17, kPoints, rng);
    const auto b_ids = layout.make(260, kPoints, rng);  // > one tile column
    // Per-pair scalar reference for the rectangle.
    std::vector<double> want;
    want.reserve(a_ids.size() * b_ids.size());
    for (const index_t a : a_ids) {
      for (const index_t b : b_ids) {
        want.push_back(reference.comparable(a, b));
      }
    }
    for (const KernelTable* table : tables) {
      SCOPED_TRACE(std::string(table->name) + " layout=" + layout.name);
      DistanceOracle oracle(ps, kind);
      oracle.force_kernels(table);
      std::vector<double> got(a_ids.size() * b_ids.size(), 0.0);
      oracle.pairwise_tiles(
          a_ids, b_ids,
          [&](std::size_t i0, std::size_t j0, std::size_t tm, std::size_t tn,
              const double* tile, std::size_t ldt) {
            for (std::size_t r = 0; r < tm; ++r) {
              for (std::size_t c = 0; c < tn; ++c) {
                got[(i0 + r) * b_ids.size() + (j0 + c)] = tile[r * ldt + c];
              }
            }
          });
      expect_bit_identical(got, want);

      // Upper-triangle stream vs the scalar dense matrix adapter.
      const auto ids = layout.make(61, kPoints, rng);
      const std::vector<double> dense = reference.pairwise_comparable(ids);
      std::vector<double> upper(ids.size() * ids.size(), 0.0);
      oracle.pairwise_upper_tiles(
          ids, [&](std::size_t i0, std::size_t j0, std::size_t tm,
                   std::size_t tn, const double* tile, std::size_t ldt) {
            for (std::size_t r = 0; r < tm; ++r) {
              for (std::size_t c = 0; c < tn; ++c) {
                const double v = tile[r * ldt + c];
                upper[(i0 + r) * ids.size() + (j0 + c)] = v;
                upper[(j0 + c) * ids.size() + (i0 + r)] = v;
              }
            }
          });
      expect_bit_identical(upper, dense);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, KernelEquivalence,
                         ::testing::Values(MetricKind::L2, MetricKind::L1,
                                           MetricKind::Linf),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(KernelEquivalenceArgmax, MatchesScalarIncludingTies) {
  const auto levels = simd_levels_available();
  if (levels.empty()) GTEST_SKIP() << "no SIMD kernels on this host";
  const KernelTable* scalar = simd::kernels_for(IsaLevel::Scalar);

  Rng rng(99);
  std::vector<std::vector<double>> cases;
  cases.push_back({3.0});
  cases.push_back({1.0, 5.0, 5.0, 2.0});              // tie: first wins
  cases.push_back(std::vector<double>(64, 7.25));     // all equal
  cases.push_back({kInfDist, 1.0, kInfDist});         // infinities
  for (const std::size_t n : {5u, 8u, 9u, 16u, 17u, 100u, 1000u}) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.uniform(0.0, 10.0);
    // Plant a duplicated maximum somewhere in the middle and end.
    const double mx = 11.0;
    v[n / 3] = mx;
    v[n - 1] = mx;
    cases.push_back(std::move(v));
  }

  for (const auto& values : cases) {
    const std::size_t want = scalar->argmax(values.data(), values.size());
    for (const IsaLevel level : levels) {
      const KernelTable* table = simd::kernels_for(level);
      SCOPED_TRACE(std::string(table->name) + " n=" +
                   std::to_string(values.size()));
      EXPECT_EQ(table->argmax(values.data(), values.size()), want);
    }
  }
}

TEST(KernelEquivalenceOracle, ForcedScalarOracleMatchesActiveBitForBit) {
  // Oracle-level A/B: the same scans through force_kernels(scalar) and
  // through the process-default table must agree bitwise. (When the
  // process default *is* scalar — KC_FORCE_SCALAR or a scalar-only
  // host — this degenerates to a self-check, which is fine.)
  Rng rng(7);
  PointSet ps(777, 3);
  for (index_t i = 0; i < 777; ++i) {
    for (auto& c : ps.mutable_point(i)) c = rng.uniform(0.0, 100.0);
  }
  const auto ids = ps.all_indices();
  const std::vector<index_t> centers{5, 99, 311, 640, 12};

  for (const auto kind : {MetricKind::L2, MetricKind::L1, MetricKind::Linf}) {
    DistanceOracle active(ps, kind);
    DistanceOracle forced(ps, kind);
    forced.force_kernels(simd::kernels_for(IsaLevel::Scalar));

    std::vector<double> a(ids.size(), kInfDist);
    std::vector<double> b(ids.size(), kInfDist);
    active.update_nearest(ids, 3, a);
    forced.update_nearest(ids, 3, b);
    active.update_nearest_multi(ids, centers, a);
    forced.update_nearest_multi(ids, centers, b);
    expect_bit_identical(a, b);

    EXPECT_EQ(active.pairwise_comparable(centers),
              forced.pairwise_comparable(centers));
  }
}

TEST(KernelDispatch, ActiveLevelIsCompiledAndSupported) {
  const IsaLevel level = simd::active_level();
  EXPECT_TRUE(simd::isa_compiled(level));
  EXPECT_TRUE(simd::isa_supported(level));
  EXPECT_EQ(simd::active_kernels().name, to_string(level));
  if (simd::force_scalar_requested()) {
    EXPECT_EQ(level, IsaLevel::Scalar);
  }
}

TEST(KernelDispatch, ContiguousRunDetection) {
  const std::vector<index_t> iota{4, 5, 6, 7};
  const std::vector<index_t> hole{4, 5, 7, 8};
  const std::vector<index_t> rev{7, 6, 5, 4};
  EXPECT_TRUE(simd::is_contiguous_run(iota.data(), iota.size()));
  EXPECT_TRUE(simd::is_contiguous_run(iota.data(), 1));
  EXPECT_TRUE(simd::is_contiguous_run(nullptr, 0));
  EXPECT_FALSE(simd::is_contiguous_run(hole.data(), hole.size()));
  EXPECT_FALSE(simd::is_contiguous_run(rev.data(), rev.size()));
}

}  // namespace
}  // namespace kc
