// Tests for the external-memory disjoint-union extension (§3.2's
// beyond-scope remark, implemented in core/disjoint_union.*).
#include <gtest/gtest.h>

#include "core/disjoint_union.hpp"
#include "test_util.hpp"

namespace kc {
namespace {

TEST(DisjointUnion, SingleInstanceMatchesPlainMrgStructure) {
  const PointSet ps = test::small_gaussian_instance(5, 200, 1);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(10);
  DisjointUnionOptions options;
  options.instances = 1;
  const auto result = mrg_disjoint_union(oracle, all, 5, cluster, options);
  ASSERT_EQ(result.chunk_results.size(), 1u);
  EXPECT_EQ(result.centers.size(), 5u);
  // One 2-round chunk + union pass: guarantee 2*(1+2) = 6.
  EXPECT_EQ(result.guaranteed_factor, 6);
}

TEST(DisjointUnion, ChunksPartitionTheInput) {
  const PointSet ps = test::small_gaussian_instance(4, 250, 2);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(5);
  DisjointUnionOptions options;
  options.instances = 4;
  const auto result = mrg_disjoint_union(oracle, all, 4, cluster, options);
  EXPECT_EQ(result.chunk_results.size(), 4u);
  // Every chunk contributed k centers to the union round.
  EXPECT_EQ(result.union_trace.rounds()[0].items_in, 4u * 4u);
  EXPECT_EQ(result.centers.size(), 4u);
  EXPECT_TRUE(test::valid_center_set(result.centers, ps.size()));
}

TEST(DisjointUnion, HandlesMoreInstancesThanPoints) {
  const PointSet ps{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(2);
  DisjointUnionOptions options;
  options.instances = 10;  // clamped to n
  const auto result = mrg_disjoint_union(oracle, all, 2, cluster, options);
  EXPECT_EQ(result.centers.size(), 2u);
}

TEST(DisjointUnion, RejectsInvalidArguments) {
  const PointSet ps{{0.0, 0.0}};
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(2);
  EXPECT_THROW((void)mrg_disjoint_union(oracle, all, 0, cluster),
               std::invalid_argument);
  EXPECT_THROW((void)mrg_disjoint_union(oracle, {}, 1, cluster),
               std::invalid_argument);
  DisjointUnionOptions bad;
  bad.instances = 0;
  EXPECT_THROW((void)mrg_disjoint_union(oracle, all, 1, cluster, bad),
               std::invalid_argument);
}

TEST(DisjointUnion, DeterministicGivenSeed) {
  const PointSet ps = test::small_gaussian_instance(5, 100, 3);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(5);
  DisjointUnionOptions options;
  options.instances = 3;
  options.mrg.seed = 17;
  const auto a = mrg_disjoint_union(oracle, all, 5, cluster, options);
  const auto b = mrg_disjoint_union(oracle, all, 5, cluster, options);
  EXPECT_EQ(a.centers, b.centers);
}

class DisjointUnionApproximation
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointUnionApproximation, WithinSixTimesPlantedOptimum) {
  Rng rng(GetParam());
  const auto inst = data::make_planted(5, 41, 1.0, 12.0, 2, rng);
  const DistanceOracle oracle(inst.points);
  const auto all = inst.points.all_indices();
  const mr::SimCluster cluster(5);
  DisjointUnionOptions options;
  options.instances = 3;
  options.mrg.seed = GetParam();
  options.mrg.partition = mr::PartitionStrategy::Shuffled;
  const auto result = mrg_disjoint_union(oracle, all, 5, cluster, options);
  EXPECT_EQ(result.guaranteed_factor, 6);
  EXPECT_LE(test::value_of(oracle, all, result.centers),
            6.0 * inst.opt_radius + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointUnionApproximation,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(DisjointUnion, QualityComparableToSingleJobInPractice) {
  // The worst case loosens to 6*OPT but measured quality stays near
  // the one-job MRG result on clustered data.
  const PointSet ps = test::small_gaussian_instance(8, 1000, 4);
  const DistanceOracle oracle(ps);
  const auto all = ps.all_indices();
  const mr::SimCluster cluster(8);
  DisjointUnionOptions options;
  options.instances = 4;
  const auto split = mrg_disjoint_union(oracle, all, 8, cluster, options);
  const auto whole = mrg(oracle, all, 8, cluster, {});
  const double v_split = test::value_of(oracle, all, split.centers);
  const double v_whole = test::value_of(oracle, all, whole.centers);
  EXPECT_LE(v_split, 2.0 * v_whole + 1e-9);
}

}  // namespace
}  // namespace kc
