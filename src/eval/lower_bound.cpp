#include "eval/lower_bound.hpp"

#include "algo/gonzalez.hpp"

namespace kc::eval {

double gonzalez_lower_bound(const DistanceOracle& oracle,
                            std::span<const index_t> pts, std::size_t k) {
  const GonzalezResult r = gonzalez(oracle, pts, k);
  return oracle.to_reported(r.radius_comparable) / 2.0;
}

double ratio_upper_bound(const DistanceOracle& oracle,
                         std::span<const index_t> pts, std::size_t k,
                         double value) {
  const double lb = gonzalez_lower_bound(oracle, pts, k);
  if (lb <= 0.0) return value <= 0.0 ? 1.0 : kInfDist;
  return value / lb;
}

}  // namespace kc::eval
