// Solution evaluation: the paper's "solution value" is the covering
// radius of the returned centers over the *entire* input, computed
// offline (it is not charged to any algorithm's runtime, matching the
// paper's methodology of reporting quality separately from timing).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/distance.hpp"

namespace kc::eval {

struct Evaluation {
  double radius_comparable = 0.0;
  double radius = 0.0;       ///< reported metric value (the table cell)
  index_t witness = 0;       ///< a point attaining the radius
};

/// Max over `pts` of the distance to the nearest of `centers`.
/// OpenMP-parallel across points when built with OpenMP and
/// `parallel` is true.
[[nodiscard]] Evaluation covering_radius(const DistanceOracle& oracle,
                                         std::span<const index_t> pts,
                                         std::span<const index_t> centers,
                                         bool parallel = true);

/// assignment[i] = index into `centers` of the center nearest pts[i].
[[nodiscard]] std::vector<std::uint32_t> assign_clusters(
    const DistanceOracle& oracle, std::span<const index_t> pts,
    std::span<const index_t> centers, bool parallel = true);

struct ClusterStats {
  std::vector<std::size_t> sizes;       ///< points per center
  std::vector<double> radii;            ///< per-cluster covering radius
  double max_radius = 0.0;              ///< == covering radius
  double mean_radius = 0.0;             ///< average of per-cluster radii
  std::size_t largest_cluster = 0;
  std::size_t smallest_cluster = 0;
};

/// Per-cluster breakdown of a solution (reported-scale radii).
[[nodiscard]] ClusterStats cluster_stats(const DistanceOracle& oracle,
                                         std::span<const index_t> pts,
                                         std::span<const index_t> centers);

}  // namespace kc::eval
