// Solution evaluation: the paper's "solution value" is the covering
// radius of the returned centers over the *entire* input, computed
// offline (it is not charged to any algorithm's runtime, matching the
// paper's methodology of reporting quality separately from timing).
//
// Offline does not mean free: a service evaluating solutions for
// untrusted requests must be able to stop a runaway evaluation. Every
// function here therefore honours a ChunkContext bound onto the oracle
// (DistanceOracle::bind_context) exactly like the solve-path kernels —
// the scans run in gate chunks of ~exec::kGateEvals pair evaluations,
// polling the cancellation token and charging the budget per chunk,
// and throw CancelledError / BudgetExceededError within one chunk of a
// stop condition. With no bound (or unarmed) context the behaviour is
// unchanged: unbounded, uncharged offline evaluation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/distance.hpp"

namespace kc::eval {

struct Evaluation {
  double radius_comparable = 0.0;
  double radius = 0.0;       ///< reported metric value (the table cell)
  index_t witness = 0;       ///< a point attaining the radius
};

/// Max over `pts` of the distance to the nearest of `centers`.
/// OpenMP-parallel across points when built with OpenMP, `parallel` is
/// true and no executor is bound (a bound executor already shards the
/// bulk kernels). An armed context keeps the OpenMP split: a stop
/// condition tripping inside one chunk is parked and rethrown on the
/// calling thread after the region.
[[nodiscard]] Evaluation covering_radius(const DistanceOracle& oracle,
                                         std::span<const index_t> pts,
                                         std::span<const index_t> centers,
                                         bool parallel = true);

/// assignment[i] = index into `centers` of the center nearest pts[i].
[[nodiscard]] std::vector<std::uint32_t> assign_clusters(
    const DistanceOracle& oracle, std::span<const index_t> pts,
    std::span<const index_t> centers, bool parallel = true);

struct ClusterStats {
  std::vector<std::size_t> sizes;       ///< points per center
  std::vector<double> radii;            ///< per-cluster covering radius
  double max_radius = 0.0;              ///< == covering radius
  double mean_radius = 0.0;             ///< average of per-cluster radii
  std::size_t largest_cluster = 0;
  /// Size of the smallest cluster that owns at least one point. A
  /// center can own zero points (duplicate centers, or a center
  /// shadowed by an equidistant earlier one); those clusters are
  /// reported in `empty_clusters` and excluded here, so the field
  /// never degenerates to 0 just because a degenerate input produced
  /// a redundant center.
  std::size_t smallest_cluster = 0;
  std::size_t empty_clusters = 0;  ///< centers owning no point
};

/// Per-cluster breakdown of a solution (reported-scale radii).
[[nodiscard]] ClusterStats cluster_stats(const DistanceOracle& oracle,
                                         std::span<const index_t> pts,
                                         std::span<const index_t> centers);

}  // namespace kc::eval
