// Lower bounds on the optimal k-center radius, used to report
// approximation-ratio *upper bounds* without knowing OPT.
#pragma once

#include <span>

#include "geom/distance.hpp"

namespace kc::eval {

/// Gonzalez lower bound: run GON for k centers; its covering radius r_k
/// certifies k+1 points that are pairwise >= r_k apart (the k centers
/// plus the farthest witness), so any k-clustering co-locates two of
/// them and OPT >= r_k / 2. Returned in the reported (true-metric)
/// scale. Costs one O(kn) GON run.
[[nodiscard]] double gonzalez_lower_bound(const DistanceOracle& oracle,
                                          std::span<const index_t> pts,
                                          std::size_t k);

/// Upper bound on the approximation ratio of a solution with reported
/// radius `value`: value / gonzalez_lower_bound. A ratio <= 2 certifies
/// the solution is within twice of optimal regardless of OPT.
[[nodiscard]] double ratio_upper_bound(const DistanceOracle& oracle,
                                       std::span<const index_t> pts,
                                       std::size_t k, double value);

}  // namespace kc::eval
