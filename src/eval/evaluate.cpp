#include "eval/evaluate.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "exec/chunk_context.hpp"

namespace kc::eval {

namespace {

/// The oracle's bound stop-condition context, or nullptr when
/// evaluation should run ungated (no context, or an inert one).
[[nodiscard]] const exec::ChunkContext* gate_of(
    const DistanceOracle& oracle) noexcept {
  const exec::ChunkContext* ctx = oracle.context();
  return ctx != nullptr && ctx->armed() ? ctx : nullptr;
}

/// Points per gate chunk for a scan doing `evals_per_item` pair
/// evaluations per point.
[[nodiscard]] std::size_t gate_items(std::size_t evals_per_item) noexcept {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             exec::kGateEvals /
             std::max<std::uint64_t>(evals_per_item, 1)));
}

/// Folds best[i] = min(best[i], comparable(pts[i], nearest center)) via
/// the bulk update_nearest_multi kernels, so evaluation scans get the
/// SIMD tables, the contiguous fast path, center blocking, and (when
/// the oracle has a bound executor) sharding — instead of scalar
/// per-pair calls. The caller initializes best (e.g. to kInfDist).
/// When no executor is bound and `parallel` is set, the scan is chunked
/// across OpenMP threads; chunks write disjoint slices with the same
/// per-point fold, so the values stay bit-identical to the sequential
/// pass. With an armed context each sub-scan is gated by the oracle as
/// usual; a stop condition must not throw out of the parallel region,
/// so the chunk that trips it parks the exception, the remaining
/// chunks see the flag and skip, and the caller's thread rethrows
/// after the region — evaluation stays OpenMP-parallel *and*
/// cancellable/budgeted.
void nearest_comparable_bulk(const DistanceOracle& oracle,
                             std::span<const index_t> pts,
                             std::span<const index_t> centers,
                             std::span<double> best, bool parallel) {
#ifdef KC_HAVE_OPENMP
  if (parallel && oracle.executor() == nullptr) {
    constexpr std::size_t kChunk = 4096;
    const auto nchunks =
        static_cast<std::int64_t>((pts.size() + kChunk - 1) / kChunk);
    std::atomic<bool> stopped{false};
    std::exception_ptr error;
    std::mutex error_mutex;
#pragma omp parallel for schedule(static)
    for (std::int64_t b = 0; b < nchunks; ++b) {
      // Relaxed: best-effort early exit; a chunk that misses the flag
      // merely does redundant work, and the exception itself is
      // published under error_mutex.
      if (stopped.load(std::memory_order_relaxed)) continue;
      const std::size_t lo = static_cast<std::size_t>(b) * kChunk;
      const std::size_t len = std::min(kChunk, pts.size() - lo);
      try {
        oracle.update_nearest_multi(pts.subspan(lo, len), centers,
                                    best.subspan(lo, len));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        // Relaxed: the flag only short-circuits remaining chunks; the
        // omp barrier at loop end orders everything before the rethrow.
        stopped.store(true, std::memory_order_relaxed);
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
#else
  (void)parallel;
#endif
  oracle.update_nearest_multi(pts, centers, best);
}

}  // namespace

Evaluation covering_radius(const DistanceOracle& oracle,
                           std::span<const index_t> pts,
                           std::span<const index_t> centers, bool parallel) {
  if (pts.empty()) throw std::invalid_argument("covering_radius: empty points");
  if (centers.empty()) {
    throw std::invalid_argument("covering_radius: empty centers");
  }

  std::vector<double> best(pts.size(), kInfDist);
  nearest_comparable_bulk(oracle, pts, centers, best, parallel);
  const std::size_t best_pos = argmax(best);

  Evaluation out;
  out.radius_comparable = best[best_pos];
  out.radius = oracle.to_reported(best[best_pos]);
  out.witness = pts[best_pos];
  return out;
}

std::vector<std::uint32_t> assign_clusters(const DistanceOracle& oracle,
                                           std::span<const index_t> pts,
                                           std::span<const index_t> centers,
                                           bool parallel) {
  if (centers.empty()) {
    throw std::invalid_argument("assign_clusters: empty centers");
  }
  std::vector<std::uint32_t> assignment(pts.size(), 0);

  if (const exec::ChunkContext* ctx = gate_of(oracle)) {
    // Gated sequential pass: charge one gate's worth of assignments
    // (|centers| pair evaluations each) before computing them.
    const std::size_t gate = gate_items(centers.size());
    for (std::size_t lo = 0; lo < pts.size(); lo += gate) {
      const std::size_t hi = std::min(pts.size(), lo + gate);
      const exec::StopReason reason = ctx->charge(
          static_cast<std::uint64_t>(hi - lo) * centers.size());
      if (reason != exec::StopReason::None) {
        exec::ChunkContext::raise(reason, "assign_clusters");
      }
      for (std::size_t i = lo; i < hi; ++i) {
        assignment[i] =
            static_cast<std::uint32_t>(oracle.nearest_center(pts[i], centers));
      }
    }
    return assignment;
  }

#ifdef KC_HAVE_OPENMP
#pragma omp parallel for if (parallel)
#else
  (void)parallel;
#endif
  for (std::size_t i = 0; i < pts.size(); ++i) {
    assignment[i] =
        static_cast<std::uint32_t>(oracle.nearest_center(pts[i], centers));
  }
  return assignment;
}

ClusterStats cluster_stats(const DistanceOracle& oracle,
                           std::span<const index_t> pts,
                           std::span<const index_t> centers) {
  if (centers.empty()) {
    throw std::invalid_argument("cluster_stats: empty centers");
  }
  const auto assignment = assign_clusters(oracle, pts, centers);

  ClusterStats stats;
  stats.sizes.assign(centers.size(), 0);
  std::vector<double> radii_comp(centers.size(), 0.0);
  const exec::ChunkContext* ctx = gate_of(oracle);
  const std::size_t gate = ctx != nullptr ? gate_items(1) : pts.size();
  for (std::size_t lo = 0; lo < pts.size(); lo += gate) {
    const std::size_t hi = std::min(pts.size(), lo + gate);
    if (ctx != nullptr) {
      const exec::StopReason reason =
          ctx->charge(static_cast<std::uint64_t>(hi - lo));
      if (reason != exec::StopReason::None) {
        exec::ChunkContext::raise(reason, "cluster_stats");
      }
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t c = assignment[i];
      ++stats.sizes[c];
      const double d = oracle.comparable(pts[i], centers[c]);
      if (d > radii_comp[c]) radii_comp[c] = d;
    }
  }

  stats.radii.resize(centers.size());
  double sum = 0.0;
  stats.largest_cluster = 0;
  stats.smallest_cluster = 0;
  std::size_t smallest_nonempty = pts.size() + 1;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    stats.radii[c] = oracle.to_reported(radii_comp[c]);
    sum += stats.radii[c];
    if (stats.radii[c] > stats.max_radius) stats.max_radius = stats.radii[c];
    if (stats.sizes[c] > stats.largest_cluster) {
      stats.largest_cluster = stats.sizes[c];
    }
    if (stats.sizes[c] == 0) {
      ++stats.empty_clusters;
    } else if (stats.sizes[c] < smallest_nonempty) {
      smallest_nonempty = stats.sizes[c];
    }
  }
  if (smallest_nonempty <= pts.size()) stats.smallest_cluster = smallest_nonempty;
  stats.mean_radius = sum / static_cast<double>(centers.size());
  return stats;
}

}  // namespace kc::eval
