#include "eval/evaluate.hpp"

#include <stdexcept>

namespace kc::eval {

Evaluation covering_radius(const DistanceOracle& oracle,
                           std::span<const index_t> pts,
                           std::span<const index_t> centers, bool parallel) {
  if (pts.empty()) throw std::invalid_argument("covering_radius: empty points");
  if (centers.empty()) {
    throw std::invalid_argument("covering_radius: empty centers");
  }

  double best = -1.0;
  std::size_t best_pos = 0;

#ifdef KC_HAVE_OPENMP
  if (parallel) {
#pragma omp parallel
    {
      double local_best = -1.0;
      std::size_t local_pos = 0;
#pragma omp for nowait
      for (std::size_t i = 0; i < pts.size(); ++i) {
        const double d = oracle.nearest_comparable(pts[i], centers);
        if (d > local_best) {
          local_best = d;
          local_pos = i;
        }
      }
#pragma omp critical
      {
        if (local_best > best) {
          best = local_best;
          best_pos = local_pos;
        }
      }
    }
  } else
#else
  (void)parallel;
#endif
  {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const double d = oracle.nearest_comparable(pts[i], centers);
      if (d > best) {
        best = d;
        best_pos = i;
      }
    }
  }

  Evaluation out;
  out.radius_comparable = best;
  out.radius = oracle.to_reported(best);
  out.witness = pts[best_pos];
  return out;
}

std::vector<std::uint32_t> assign_clusters(const DistanceOracle& oracle,
                                           std::span<const index_t> pts,
                                           std::span<const index_t> centers,
                                           bool parallel) {
  if (centers.empty()) {
    throw std::invalid_argument("assign_clusters: empty centers");
  }
  std::vector<std::uint32_t> assignment(pts.size(), 0);

#ifdef KC_HAVE_OPENMP
#pragma omp parallel for if (parallel)
#else
  (void)parallel;
#endif
  for (std::size_t i = 0; i < pts.size(); ++i) {
    assignment[i] =
        static_cast<std::uint32_t>(oracle.nearest_center(pts[i], centers));
  }
  return assignment;
}

ClusterStats cluster_stats(const DistanceOracle& oracle,
                           std::span<const index_t> pts,
                           std::span<const index_t> centers) {
  const auto assignment = assign_clusters(oracle, pts, centers);

  ClusterStats stats;
  stats.sizes.assign(centers.size(), 0);
  std::vector<double> radii_comp(centers.size(), 0.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::uint32_t c = assignment[i];
    ++stats.sizes[c];
    const double d = oracle.comparable(pts[i], centers[c]);
    if (d > radii_comp[c]) radii_comp[c] = d;
  }

  stats.radii.resize(centers.size());
  double sum = 0.0;
  stats.largest_cluster = 0;
  stats.smallest_cluster = pts.size();
  for (std::size_t c = 0; c < centers.size(); ++c) {
    stats.radii[c] = oracle.to_reported(radii_comp[c]);
    sum += stats.radii[c];
    if (stats.radii[c] > stats.max_radius) stats.max_radius = stats.radii[c];
    if (stats.sizes[c] > stats.largest_cluster) {
      stats.largest_cluster = stats.sizes[c];
    }
    if (stats.sizes[c] < stats.smallest_cluster) {
      stats.smallest_cluster = stats.sizes[c];
    }
  }
  stats.mean_radius = sum / static_cast<double>(centers.size());
  return stats;
}

}  // namespace kc::eval
