#include "eval/evaluate.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "exec/chunk_context.hpp"

namespace kc::eval {

namespace {

/// The oracle's bound stop-condition context, or nullptr when
/// evaluation should run ungated (no context, or an inert one).
[[nodiscard]] const exec::ChunkContext* gate_of(
    const DistanceOracle& oracle) noexcept {
  const exec::ChunkContext* ctx = oracle.context();
  return ctx != nullptr && ctx->armed() ? ctx : nullptr;
}

/// Folds best[i] = min(best[i], comparable(pts[i], nearest center)) via
/// the bulk update_nearest_multi kernels, so evaluation scans get the
/// SIMD tables, the contiguous fast path, center blocking, and (when
/// the oracle has a bound executor) sharding — instead of scalar
/// per-pair calls. The caller initializes best (e.g. to kInfDist).
/// When no executor is bound and `parallel` is set, the scan is chunked
/// across OpenMP threads; chunks write disjoint slices with the same
/// per-point fold, so the values stay bit-identical to the sequential
/// pass. With an armed context each sub-scan is gated by the oracle as
/// usual; a stop condition must not throw out of the parallel region,
/// so the chunk that trips it parks the exception, the remaining
/// chunks see the flag and skip, and the caller's thread rethrows
/// after the region — evaluation stays OpenMP-parallel *and*
/// cancellable/budgeted.
void nearest_comparable_bulk(const DistanceOracle& oracle,
                             std::span<const index_t> pts,
                             std::span<const index_t> centers,
                             std::span<double> best, bool parallel) {
#ifdef KC_HAVE_OPENMP
  if (parallel && oracle.executor() == nullptr) {
    constexpr std::size_t kChunk = 4096;
    const auto nchunks =
        static_cast<std::int64_t>((pts.size() + kChunk - 1) / kChunk);
    std::atomic<bool> stopped{false};
    std::exception_ptr error;
    std::mutex error_mutex;
#pragma omp parallel for schedule(static)
    for (std::int64_t b = 0; b < nchunks; ++b) {
      // Relaxed: best-effort early exit; a chunk that misses the flag
      // merely does redundant work, and the exception itself is
      // published under error_mutex.
      if (stopped.load(std::memory_order_relaxed)) continue;
      const std::size_t lo = static_cast<std::size_t>(b) * kChunk;
      const std::size_t len = std::min(kChunk, pts.size() - lo);
      try {
        oracle.update_nearest_multi(pts.subspan(lo, len), centers,
                                    best.subspan(lo, len));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        // Relaxed: the flag only short-circuits remaining chunks; the
        // omp barrier at loop end orders everything before the rethrow.
        stopped.store(true, std::memory_order_relaxed);
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
#else
  (void)parallel;
#endif
  oracle.update_nearest_multi(pts, centers, best);
}

}  // namespace

Evaluation covering_radius(const DistanceOracle& oracle,
                           std::span<const index_t> pts,
                           std::span<const index_t> centers, bool parallel) {
  if (pts.empty()) throw std::invalid_argument("covering_radius: empty points");
  if (centers.empty()) {
    throw std::invalid_argument("covering_radius: empty centers");
  }

  std::vector<double> best(pts.size(), kInfDist);
  nearest_comparable_bulk(oracle, pts, centers, best, parallel);
  const std::size_t best_pos = argmax(best);

  Evaluation out;
  out.radius_comparable = best[best_pos];
  out.radius = oracle.to_reported(best[best_pos]);
  out.witness = pts[best_pos];
  return out;
}

std::vector<std::uint32_t> assign_clusters(const DistanceOracle& oracle,
                                           std::span<const index_t> pts,
                                           std::span<const index_t> centers,
                                           bool parallel) {
  if (centers.empty()) {
    throw std::invalid_argument("assign_clusters: empty centers");
  }
  std::vector<std::uint32_t> assignment(pts.size(), 0);
  if (pts.empty()) return assignment;

  // Streams point-rows x center-columns tiles out of the tiled pairwise
  // engine and folds a per-row first-wins strict-< argmin. Center tiles
  // arrive in ascending order, so the fold makes the same decisions as
  // the old per-point nearest_center loop — on bit-identical distances
  // (the tile kernel's contract) — without a scalar pair call per
  // (point, center).
  std::vector<double> best(pts.size(), kInfDist);
  const auto fold_from = [&assignment, &best](std::size_t base) {
    return [&assignment, &best, base](std::size_t i0, std::size_t j0,
                                      std::size_t tm, std::size_t tn,
                                      const double* tile, std::size_t ldt) {
      for (std::size_t r = 0; r < tm; ++r) {
        const std::size_t i = base + i0 + r;
        const double* row = tile + r * ldt;
        for (std::size_t c = 0; c < tn; ++c) {
          if (row[c] < best[i]) {
            best[i] = row[c];
            assignment[i] = static_cast<std::uint32_t>(j0 + c);
          }
        }
      }
    };
  };

#ifdef KC_HAVE_OPENMP
  if (parallel && gate_of(oracle) == nullptr) {
    // Ungated parallel pass: chunks stream independent tile rectangles
    // into disjoint assignment slices with the same per-row fold, so
    // the labels stay bit-identical to the sequential pass.
    constexpr std::size_t kChunk = 4096;
    const auto nchunks =
        static_cast<std::int64_t>((pts.size() + kChunk - 1) / kChunk);
#pragma omp parallel for schedule(static)
    for (std::int64_t b = 0; b < nchunks; ++b) {
      const std::size_t lo = static_cast<std::size_t>(b) * kChunk;
      const std::size_t len = std::min(kChunk, pts.size() - lo);
      oracle.pairwise_tiles(pts.subspan(lo, len), centers, fold_from(lo),
                            "assign_clusters");
    }
    return assignment;
  }
#else
  (void)parallel;
#endif
  // One stream covers both the gated case (the engine charges the
  // budget in gate batches under the same "assign_clusters" label as
  // before) and the sequential ungated case.
  oracle.pairwise_tiles(pts, centers, fold_from(0), "assign_clusters");
  return assignment;
}

ClusterStats cluster_stats(const DistanceOracle& oracle,
                           std::span<const index_t> pts,
                           std::span<const index_t> centers) {
  if (centers.empty()) {
    throw std::invalid_argument("cluster_stats: empty centers");
  }
  const auto assignment = assign_clusters(oracle, pts, centers);

  ClusterStats stats;
  stats.sizes.assign(centers.size(), 0);
  for (const std::uint32_t c : assignment) ++stats.sizes[c];

  // Bucket the member points per cluster (counting sort), then stream
  // each cluster's center-to-members row through the tiled engine and
  // fold the max. Exactly one pair evaluation per point — the same
  // total the old per-point loop charged — and the max fold is
  // order-independent over NaN-free distances, so the radii stay
  // bit-identical. Gating (budget/cancel, label "cluster_stats") is
  // handled by the engine.
  std::vector<std::size_t> offset(centers.size() + 1, 0);
  for (std::size_t c = 0; c < centers.size(); ++c) {
    offset[c + 1] = offset[c] + stats.sizes[c];
  }
  std::vector<index_t> members(pts.size());
  {
    std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      members[cursor[assignment[i]]++] = pts[i];
    }
  }
  std::vector<double> radii_comp(centers.size(), 0.0);
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const std::size_t sz = offset[c + 1] - offset[c];
    if (sz == 0) continue;
    const index_t cid[1] = {centers[c]};
    double rmax = 0.0;
    oracle.pairwise_tiles(
        {cid, 1}, std::span<const index_t>(members).subspan(offset[c], sz),
        [&rmax](std::size_t, std::size_t, std::size_t, std::size_t tn,
                const double* tile, std::size_t) {
          for (std::size_t j = 0; j < tn; ++j) {
            if (tile[j] > rmax) rmax = tile[j];
          }
        },
        "cluster_stats");
    radii_comp[c] = rmax;
  }

  stats.radii.resize(centers.size());
  double sum = 0.0;
  stats.largest_cluster = 0;
  stats.smallest_cluster = 0;
  std::size_t smallest_nonempty = pts.size() + 1;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    stats.radii[c] = oracle.to_reported(radii_comp[c]);
    sum += stats.radii[c];
    if (stats.radii[c] > stats.max_radius) stats.max_radius = stats.radii[c];
    if (stats.sizes[c] > stats.largest_cluster) {
      stats.largest_cluster = stats.sizes[c];
    }
    if (stats.sizes[c] == 0) {
      ++stats.empty_clusters;
    } else if (stats.sizes[c] < smallest_nonempty) {
      smallest_nonempty = stats.sizes[c];
    }
  }
  if (smallest_nonempty <= pts.size()) stats.smallest_cluster = smallest_nonempty;
  stats.mean_radius = sum / static_cast<double>(centers.size());
  return stats;
}

}  // namespace kc::eval
