#include "eval/evaluate.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace kc::eval {

namespace {

/// Folds best[i] = min(best[i], comparable(pts[i], nearest center)) via
/// the bulk update_nearest_multi kernels, so evaluation scans get the
/// SIMD tables, the contiguous fast path, center blocking, and (when
/// the oracle has a bound executor) sharding — instead of scalar
/// per-pair calls. The caller initializes best (e.g. to kInfDist).
/// When no executor is bound and `parallel` is set, the scan is chunked
/// across OpenMP threads; chunks write disjoint slices with the same
/// per-point fold, so the values stay bit-identical to the sequential
/// pass.
void nearest_comparable_bulk(const DistanceOracle& oracle,
                             std::span<const index_t> pts,
                             std::span<const index_t> centers,
                             std::span<double> best, bool parallel) {
#ifdef KC_HAVE_OPENMP
  if (parallel && oracle.executor() == nullptr) {
    constexpr std::size_t kChunk = 4096;
    const auto nchunks =
        static_cast<std::int64_t>((pts.size() + kChunk - 1) / kChunk);
#pragma omp parallel for schedule(static)
    for (std::int64_t b = 0; b < nchunks; ++b) {
      const std::size_t lo = static_cast<std::size_t>(b) * kChunk;
      const std::size_t len = std::min(kChunk, pts.size() - lo);
      oracle.update_nearest_multi(pts.subspan(lo, len), centers,
                                  best.subspan(lo, len));
    }
    return;
  }
#else
  (void)parallel;
#endif
  oracle.update_nearest_multi(pts, centers, best);
}

}  // namespace

Evaluation covering_radius(const DistanceOracle& oracle,
                           std::span<const index_t> pts,
                           std::span<const index_t> centers, bool parallel) {
  if (pts.empty()) throw std::invalid_argument("covering_radius: empty points");
  if (centers.empty()) {
    throw std::invalid_argument("covering_radius: empty centers");
  }

  std::vector<double> best(pts.size(), kInfDist);
  nearest_comparable_bulk(oracle, pts, centers, best, parallel);
  const std::size_t best_pos = argmax(best);

  Evaluation out;
  out.radius_comparable = best[best_pos];
  out.radius = oracle.to_reported(best[best_pos]);
  out.witness = pts[best_pos];
  return out;
}

std::vector<std::uint32_t> assign_clusters(const DistanceOracle& oracle,
                                           std::span<const index_t> pts,
                                           std::span<const index_t> centers,
                                           bool parallel) {
  if (centers.empty()) {
    throw std::invalid_argument("assign_clusters: empty centers");
  }
  std::vector<std::uint32_t> assignment(pts.size(), 0);

#ifdef KC_HAVE_OPENMP
#pragma omp parallel for if (parallel)
#else
  (void)parallel;
#endif
  for (std::size_t i = 0; i < pts.size(); ++i) {
    assignment[i] =
        static_cast<std::uint32_t>(oracle.nearest_center(pts[i], centers));
  }
  return assignment;
}

ClusterStats cluster_stats(const DistanceOracle& oracle,
                           std::span<const index_t> pts,
                           std::span<const index_t> centers) {
  const auto assignment = assign_clusters(oracle, pts, centers);

  ClusterStats stats;
  stats.sizes.assign(centers.size(), 0);
  std::vector<double> radii_comp(centers.size(), 0.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::uint32_t c = assignment[i];
    ++stats.sizes[c];
    const double d = oracle.comparable(pts[i], centers[c]);
    if (d > radii_comp[c]) radii_comp[c] = d;
  }

  stats.radii.resize(centers.size());
  double sum = 0.0;
  stats.largest_cluster = 0;
  stats.smallest_cluster = pts.size();
  for (std::size_t c = 0; c < centers.size(); ++c) {
    stats.radii[c] = oracle.to_reported(radii_comp[c]);
    sum += stats.radii[c];
    if (stats.radii[c] > stats.max_radius) stats.max_radius = stats.radii[c];
    if (stats.sizes[c] > stats.largest_cluster) {
      stats.largest_cluster = stats.sizes[c];
    }
    if (stats.sizes[c] < stats.smallest_cluster) {
      stats.smallest_cluster = stats.sizes[c];
    }
  }
  stats.mean_radius = sum / static_cast<double>(centers.size());
  return stats;
}

}  // namespace kc::eval
