// Chunk-granular stop conditions for long scans.
//
// A ChunkContext bundles the two reasons a running solve may have to
// stop mid-scan — a cooperative CancellationToken and a shared atomic
// distance-evaluation budget — so the bulk distance kernels can check
// them between chunks of a single scan. Before this existed, budgets
// and cancellation were only consulted at MapReduce round boundaries;
// one round with a 10M-point-pair scan would run to completion before
// noticing either. The facade (api::Solver) binds a context onto the
// DistanceOracle; the oracle's gated scans then charge the budget and
// poll the token every ~kGateEvals pair evaluations, on every backend
// (the gating is part of the scan loop, not of the fan-out, so even a
// purely sequential scan stops within one gate chunk).
//
// The budget is an *enforcement* mechanism, deliberately separate from
// the thread-local work counters (geom/counters.hpp): counters remain
// charged in bulk on the calling thread before fan-out so per-machine
// attribution stays bit-identical across backends, while the budget is
// decremented chunk by chunk by whichever thread executes the chunk.
// The two agree exactly for scans that complete; an aborted scan has
// consumed() well short of the counters' bulk charge — which is the
// point.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "exec/cancellation.hpp"

namespace kc::exec {

/// Pair evaluations between consecutive context checks inside a gated
/// scan. Small enough that a cancel/budget stop lands promptly (a gate
/// chunk is ~0.1 ms of kernel work), large enough that the per-gate
/// atomic traffic vanishes next to the O(gate * dim) scan work.
inline constexpr std::uint64_t kGateEvals = std::uint64_t{1} << 16;

/// Shared atomic countdown of distance evaluations. One budget can
/// serve a single solve (api::Solver builds one from
/// SolveRequest::max_dist_evals) or be shared across many solves (a
/// service handing one global budget to every request it admits).
class EvalBudget {
 public:
  explicit EvalBudget(std::uint64_t limit) noexcept
      : limit_(limit), remaining_(limit) {}

  /// Atomically deducts `evals` if that much budget remains. Returns
  /// false — deducting nothing — when it does not; the budget is then
  /// exhausted for every future charge of more than the remainder.
  [[nodiscard]] bool try_charge(std::uint64_t evals) noexcept {
    // Relaxed throughout: the counter is a pure quota — no other data
    // is published through it, and the CAS already makes each deduction
    // atomic; cross-thread ordering of unrelated writes is irrelevant.
    std::uint64_t current = remaining_.load(std::memory_order_relaxed);
    do {
      if (current < evals) return false;
    } while (!remaining_.compare_exchange_weak(
        current, current - evals, std::memory_order_relaxed));  // see above
    return true;
  }

  /// Returns previously charged evaluations to the budget. The service
  /// layer reserves a request's worst-case budget from its tenant's
  /// budget at admission and refunds the unused remainder here once the
  /// request settles; crediting more than was charged is a caller bug
  /// (consumed() would underflow) and is clamped.
  void credit(std::uint64_t evals) noexcept {
    // Relaxed: same pure-quota argument as try_charge above.
    std::uint64_t current = remaining_.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
      next = std::min(limit_, current + evals);
    } while (!remaining_.compare_exchange_weak(
        current, next, std::memory_order_relaxed));  // see above
  }

  [[nodiscard]] std::uint64_t limit() const noexcept { return limit_; }
  [[nodiscard]] std::uint64_t remaining() const noexcept {
    // Relaxed: monitoring read; callers tolerate a stale snapshot.
    return remaining_.load(std::memory_order_relaxed);
  }
  /// Evaluations successfully charged so far.
  [[nodiscard]] std::uint64_t consumed() const noexcept {
    return limit_ - remaining();
  }

 private:
  std::uint64_t limit_;
  std::atomic<std::uint64_t> remaining_;
};

/// Why a gated scan stopped early (None = it should keep going).
enum class StopReason : int {
  None = 0,
  Cancelled = 1,
  BudgetExhausted = 2,
};

/// The stop conditions one solve threads through its scans. Cheap to
/// copy; an all-defaults context is inert (armed() == false) and the
/// oracle skips gating entirely.
struct ChunkContext {
  CancellationToken cancel;
  std::shared_ptr<EvalBudget> budget;  ///< null = unlimited

  [[nodiscard]] bool armed() const noexcept {
    return cancel.armed() || budget != nullptr;
  }

  /// Poll without charging. Budget exhaustion only surfaces from
  /// charge(): a check between scans must not fail a run that will do
  /// no further work.
  [[nodiscard]] StopReason check() const noexcept {
    return cancel.cancelled() ? StopReason::Cancelled : StopReason::None;
  }

  /// Poll and charge `evals` against the budget. Cancellation is
  /// checked first (a cancelled job should not consume budget); on a
  /// stop nothing is charged, so consumed() reflects only work that
  /// actually ran.
  [[nodiscard]] StopReason charge(std::uint64_t evals) const noexcept {
    if (cancel.cancelled()) return StopReason::Cancelled;
    if (budget != nullptr && !budget->try_charge(evals))
      return StopReason::BudgetExhausted;
    return StopReason::None;
  }

  /// Throws the error matching `reason` (CancelledError /
  /// BudgetExceededError), labelled with the scan that stopped.
  [[noreturn]] static void raise(StopReason reason, std::string_view where) {
    if (reason == StopReason::Cancelled) {
      throw CancelledError(std::string(where) + ": cancelled mid-scan");
    }
    throw BudgetExceededError(std::string(where) +
                              ": distance-evaluation budget exhausted");
  }
};

}  // namespace kc::exec
