// Per-thread CPU-time clock for the simulated-time metric.
//
// The paper's "processing time of a simulated machine" is the work the
// machine performed, not how long the host took to get around to it.
// Wall-clock charging conflates the two as soon as tasks contend for
// cores (a parallel backend oversubscribing the host would *inflate*
// simulated time) or a task blocks (a sleeping task would be charged
// for sleeping). CLOCK_THREAD_CPUTIME_ID measures exactly the CPU time
// the calling thread consumed, which is invariant under scheduling —
// the fidelity the simulated metric needs under parallel backends.
//
// The difference of two readings is only meaningful on one thread;
// the SimCluster guarantees that by reading around each task, which
// the execution backends run entirely on a single thread.
#pragma once

#include <chrono>
#include <ctime>

namespace kc::exec {

/// Seconds of CPU time the calling thread has consumed. Monotone per
/// thread; differences across threads are meaningless.
[[nodiscard]] inline double thread_cpu_seconds() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  // Fallback for platforms without per-thread CPU clocks: wall time.
  // (Not process CPU time — that would charge every concurrent
  // thread's work to each task, which is *worse* than the wall clock
  // this facility replaced.)
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace kc::exec
