#include "exec/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>

#ifdef __linux__
#include <sched.h>
#endif

namespace kc::exec {

namespace {

/// First line of a sysfs file, or nullopt when unreadable.
[[nodiscard]] std::optional<std::string> read_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  return line;
}

/// Parses the kernel's cpu-list format ("0-3,8,10-11") into ascending
/// ids. Malformed input yields an empty vector.
[[nodiscard]] std::vector<int> parse_cpu_list(std::string_view text) {
  std::vector<int> ids;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    int lo = 0;
    int hi = 0;
    const std::size_t dash = item.find('-');
    try {
      if (dash == std::string_view::npos) {
        lo = hi = std::stoi(std::string(item));
      } else {
        lo = std::stoi(std::string(item.substr(0, dash)));
        hi = std::stoi(std::string(item.substr(dash + 1)));
      }
    } catch (...) {
      return {};
    }
    if (lo < 0 || hi < lo || hi - lo > (1 << 20)) return {};
    for (int id = lo; id <= hi; ++id) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// A safe fallback shape: hardware_concurrency() anonymous cpus on one
/// node, marked restricted so no affinity syscalls are ever issued.
[[nodiscard]] Topology fallback_topology() {
  Topology topo;
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  topo.cpus.reserve(hc);
  for (unsigned id = 0; id < hc; ++id) {
    topo.cpus.push_back({static_cast<int>(id), 0});
  }
  topo.nodes = 1;
  topo.cores = static_cast<int>(hc);
  topo.hw_threads = static_cast<int>(hc);
  topo.restricted = true;
  return topo;
}

}  // namespace

Topology probe_topology(const ProbeOptions& opts) {
  const std::string cpu_root = opts.sysfs_root + "/cpu";
  const auto online = read_line(cpu_root + "/online");
  std::vector<int> ids = online ? parse_cpu_list(*online) : std::vector<int>{};
  if (ids.empty()) return fallback_topology();

  Topology topo;
  topo.restricted = false;

  // cpu -> NUMA node, from each node's cpulist. Sparse node numbering
  // is fine; cpus not claimed by any node directory stay on node 0
  // (non-NUMA kernels have no node directories at all).
  std::vector<std::pair<int, int>> node_of;  // (cpu id, node)
  {
    std::error_code ec;
    std::filesystem::directory_iterator it(opts.sysfs_root + "/node", ec);
    if (!ec) {
      for (const auto& entry : it) {
        const std::string name = entry.path().filename().string();
        if (name.size() < 5 || name.compare(0, 4, "node") != 0) continue;
        int node = -1;
        try {
          node = std::stoi(name.substr(4));
        } catch (...) {
          continue;
        }
        const auto list = read_line(entry.path().string() + "/cpulist");
        if (!list) continue;
        for (const int cpu : parse_cpu_list(*list)) {
          node_of.emplace_back(cpu, node);
        }
      }
    }
  }
  std::sort(node_of.begin(), node_of.end());

  // Intersect with the process affinity mask: a container cpuset (or
  // taskset) narrows the usable set, and a host we cannot fully use is
  // a host we must not re-pin.
  if (opts.affinity.has_value()) {
    std::vector<int> usable;
    usable.reserve(ids.size());
    for (const int id : ids) {
      if (std::find(opts.affinity->begin(), opts.affinity->end(), id) !=
          opts.affinity->end()) {
        usable.push_back(id);
      }
    }
    if (usable.size() < ids.size()) topo.restricted = true;
    if (!usable.empty()) ids = std::move(usable);
  } else {
#ifdef __linux__
    cpu_set_t mask;
    CPU_ZERO(&mask);
    if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
      std::vector<int> usable;
      usable.reserve(ids.size());
      for (const int id : ids) {
        if (id < CPU_SETSIZE && CPU_ISSET(id, &mask)) usable.push_back(id);
      }
      if (usable.size() < ids.size()) topo.restricted = true;
      if (!usable.empty()) ids = std::move(usable);
    } else {
      topo.restricted = true;
    }
#else
    topo.restricted = true;
#endif
  }

  std::set<int> nodes;
  std::set<std::pair<int, int>> cores;  // (package, core id)
  topo.cpus.reserve(ids.size());
  for (const int id : ids) {
    const auto at = std::lower_bound(
        node_of.begin(), node_of.end(), std::pair<int, int>{id, -1});
    const int node = at != node_of.end() && at->first == id ? at->second : 0;
    topo.cpus.push_back({id, node});
    nodes.insert(node);

    const std::string base = cpu_root + "/cpu" + std::to_string(id) +
                             "/topology/";
    const auto pkg = read_line(base + "physical_package_id");
    const auto core = read_line(base + "core_id");
    try {
      if (pkg && core) {
        cores.emplace(std::stoi(*pkg), std::stoi(*core));
      } else {
        cores.emplace(0, id);  // no topology dir: count every thread
      }
    } catch (...) {
      cores.emplace(0, id);
    }
  }
  topo.nodes = static_cast<int>(nodes.size());
  topo.cores = static_cast<int>(cores.size());
  topo.hw_threads = static_cast<int>(topo.cpus.size());
  return topo;
}

std::string_view to_string(PinMode mode) noexcept {
  switch (mode) {
    case PinMode::Off: return "off";
    case PinMode::Core: return "core";
    case PinMode::Node: return "node";
  }
  return "?";
}

std::optional<PinMode> parse_pin_mode(std::string_view token) noexcept {
  if (token == "off") return PinMode::Off;
  if (token == "core") return PinMode::Core;
  if (token == "node") return PinMode::Node;
  return std::nullopt;
}

PinMode env_pin_mode() noexcept {
  static const PinMode mode = [] {
    const char* value = std::getenv("KC_PIN");
    if (value == nullptr) return PinMode::Off;
    return parse_pin_mode(value).value_or(PinMode::Off);
  }();
  return mode;
}

const Topology& topology() noexcept {
  static const Topology topo = probe_topology(ProbeOptions{});
  return topo;
}

bool pin_hardware_available() noexcept {
  const Topology& topo = topology();
  return !topo.restricted && topo.nodes >= 2;
}

}  // namespace kc::exec
