#include "exec/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "fault/fault.hpp"

#ifdef __linux__
#include <sched.h>
#endif

namespace kc::exec {

namespace {

/// Participant slots: deques for non-worker threads (a main thread
/// driving a solve, a test thread submitting concurrently). A thread
/// that cannot get one still works correctly through the injector
/// queue, just without a private deque.
constexpr int kParticipantSlots = 16;

/// The scheduler this thread currently submits to, and its slot index.
/// Workers set it for their lifetime (depth 0); external threads hold
/// it while any of their TaskGroups is alive — `depth` counts those
/// groups, so the participant slot returns to the free list only when
/// the thread's last group dies, in whatever order the groups are
/// destroyed.
struct ThreadRef {
  Scheduler* scheduler = nullptr;
  int slot = -1;
  int depth = 0;
};
thread_local ThreadRef t_ref;

}  // namespace

// ------------------------------------------------------------- TaskGroup

TaskGroup::TaskGroup(Scheduler& scheduler) : scheduler_(&scheduler) {
  {
    const compat::LockGuard lock(scheduler.drain_mutex_);
    ++scheduler.live_groups_;
  }
  // Empty groups are born completed so wait() on one returns at once.
  // (Locked although the group is not yet shared: `completed` is
  // guarded state and the annotations hold everywhere, not just where
  // contention is possible.)
  {
    const compat::LockGuard lock(core_.mutex);
    core_.completed = true;
  }
  lease_slot_ = scheduler.lease_slot_for_this_thread(lease_owned_);
}

TaskGroup::~TaskGroup() {
  // Tasks may still be running (wait() threw, or was never called):
  // block until the group is quiescent, discarding any unobserved
  // error, so no task can outlive its group state.
  scheduler_->wait_for_group(core_, lease_slot_);
  if (lease_owned_) scheduler_->release_slot(lease_slot_);
  {
    const compat::LockGuard lock(scheduler_->drain_mutex_);
    if (--scheduler_->live_groups_ == 0) scheduler_->drained_.notify_all();
  }
}

void TaskGroup::submit(std::function<void()> task) {
  scheduler_->acquire_nodes(1, lease_slot_, scratch_);
  detail::TaskNode* node = scratch_.back();
  scratch_.clear();
  // Relaxed: the node is still private here; submit_node's seq_cst
  // deque publication is what makes it (and this field) visible.
  node->group.store(&core_, std::memory_order_relaxed);
  node->owned = std::move(task);
  core_.pending.fetch_add(1, std::memory_order_seq_cst);
  {
    const compat::LockGuard lock(core_.mutex);
    core_.completed = false;
  }
  scheduler_->submit_node(node, lease_slot_);
  scheduler_->notify_work();
}

void TaskGroup::submit_chunks(
    std::size_t n, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0 || chunks == 0) return;
  scheduler_->acquire_nodes(chunks, lease_slot_, scratch_);
  // All chunks are counted before any is published, so the group
  // cannot transiently look complete mid-submission.
  core_.pending.fetch_add(chunks, std::memory_order_seq_cst);
  {
    const compat::LockGuard lock(core_.mutex);
    core_.completed = false;
  }
  // Locality placement: with pinning engaged, chunks go to worker
  // inboxes so contiguous point ranges land on (and stay near) the
  // same worker's deque; stealing rebalances from there if needed.
  const bool place = scheduler_->pin_engaged_ && chunks > 1;
  for (std::size_t c = 0; c < chunks; ++c) {
    detail::TaskNode* node = scratch_[c];
    // Relaxed: node is private until submit_node publishes it.
    node->group.store(&core_, std::memory_order_relaxed);
    node->range = &body;
    const auto [lo, hi] = chunk_bounds(n, chunks, c);
    node->lo = lo;
    node->hi = hi;
    if (place) {
      scheduler_->submit_node_to(node,
                                 scheduler_->chunk_target_slot(c, chunks));
    } else {
      scheduler_->submit_node(node, lease_slot_);
    }
  }
  scratch_.clear();
  scheduler_->notify_work();
}

void TaskGroup::submit_all(std::span<const std::function<void()>> tasks) {
  if (tasks.empty()) return;
  scheduler_->acquire_nodes(tasks.size(), lease_slot_, scratch_);
  core_.pending.fetch_add(tasks.size(), std::memory_order_seq_cst);
  {
    const compat::LockGuard lock(core_.mutex);
    core_.completed = false;
  }
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    detail::TaskNode* node = scratch_[t];
    // Relaxed: node is private until submit_node publishes it.
    node->group.store(&core_, std::memory_order_relaxed);
    node->borrowed = &tasks[t];
    scheduler_->submit_node(node, lease_slot_);
  }
  scratch_.clear();
  scheduler_->notify_work();
}

void TaskGroup::wait() {
  scheduler_->wait_for_group(core_, lease_slot_);
  std::exception_ptr error;
  {
    const compat::LockGuard lock(core_.mutex);
    error = core_.error;
    core_.error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

// ------------------------------------------------------------- Scheduler

Scheduler::Scheduler(int threads, PinMode pin) {
  int total = threads > 0 ? threads
                          : static_cast<int>(std::thread::hardware_concurrency());
  total = std::max(total, 1);
  concurrency_ = total;
  worker_slots_ = total - 1;
  slots_.reserve(static_cast<std::size_t>(worker_slots_ + kParticipantSlots));
  for (int s = 0; s < worker_slots_ + kParticipantSlots; ++s) {
    slots_.push_back(std::make_unique<Slot>());
  }
  // Placement tables must be complete before any worker spawns: the
  // workers read them (without synchronization — they are immutable
  // from here on) in worker_loop and find_any_work.
  pin_ = pin;
  pin_engaged_ = pin != PinMode::Off && worker_slots_ > 0;
  slot_node_.assign(slots_.size(), 0);
  if (pin_engaged_) {
    const Topology& topo = topology();
    // Affinity syscalls only help (and are only safe to issue) when we
    // can see a whole multi-node machine; a restricted or single-node
    // host keeps the placement logic but lets the kernel place threads.
    pin_syscalls_ = pin_hardware_available();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      slot_node_[s] = topo.cpus[s % topo.cpus.size()].node;
    }
    // Near-first steal sweeps: same-node victims (in rotation order
    // from self), then the rest. Order affects only who runs a task.
    steal_order_.resize(slots_.size());
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      auto& order = steal_order_[s];
      order.reserve(slots_.size() - 1);
      for (std::size_t i = 1; i < slots_.size(); ++i) {
        const std::size_t victim = (s + i) % slots_.size();
        if (slot_node_[victim] == slot_node_[s]) order.push_back(victim);
      }
      for (std::size_t i = 1; i < slots_.size(); ++i) {
        const std::size_t victim = (s + i) % slots_.size();
        if (slot_node_[victim] != slot_node_[s]) order.push_back(victim);
      }
    }
  }
  {
    // No worker exists yet, but the free list is guarded state — keep
    // the annotation honest rather than special-case construction.
    const compat::LockGuard lock(lease_mutex_);
    free_participant_slots_.reserve(kParticipantSlots);
    for (int s = worker_slots_ + kParticipantSlots - 1; s >= worker_slots_;
         --s) {
      free_participant_slots_.push_back(s);
    }
  }
  threads_.reserve(static_cast<std::size_t>(worker_slots_));
  for (int s = 0; s < worker_slots_; ++s) {
    threads_.emplace_back([this, s] { worker_loop(s); });
  }
}

Scheduler::~Scheduler() {
  // Graceful drain: every live TaskGroup completes (its waiter gets
  // results and exceptions as usual) before the workers stop, so a
  // destructor racing an in-flight job joins cleanly instead of
  // tearing the queues down under it.
  {
    compat::MutexLock lock(drain_mutex_);
    while (live_groups_ != 0) drained_.wait(lock);
  }
  stop_.store(true, std::memory_order_seq_cst);
  {
    const compat::LockGuard lock(idle_mutex_);
  }
  idle_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

namespace {
/// Per-slot free-node cache bound: beyond this, released nodes go back
/// to the global pool so a submit-heavy thread can reuse them.
constexpr std::size_t kNodeCacheMax = 1024;
}  // namespace

void Scheduler::acquire_nodes(std::size_t count, int slot,
                              std::vector<detail::TaskNode*>& out) {
  out.clear();
  out.reserve(count);
  if (slot >= 0) {
    auto& cache = slots_[static_cast<std::size_t>(slot)]->node_cache;
    while (!cache.empty() && out.size() < count) {
      out.push_back(cache.back());
      cache.pop_back();
    }
  }
  if (out.size() == count) return;
  const compat::LockGuard lock(pool_mutex_);
  while (!free_nodes_.empty() && out.size() < count) {
    out.push_back(free_nodes_.back());
    free_nodes_.pop_back();
  }
  while (out.size() < count) {
    arena_.push_back(std::make_unique<detail::TaskNode>());
    out.push_back(arena_.back().get());
  }
}

void Scheduler::release_node(detail::TaskNode* node, int slot) noexcept {
  node->range = nullptr;
  node->borrowed = nullptr;
  node->lo = node->hi = 0;
  node->owned = nullptr;
  // node->group is left as-is: stale deque peeks may still read it
  // (atomically); they compare the pointer value only and the claim
  // CAS rejects any element no longer in its deque window.
  if (slot >= 0) {
    auto& cache = slots_[static_cast<std::size_t>(slot)]->node_cache;
    if (cache.size() < kNodeCacheMax) {
      cache.push_back(node);
      return;
    }
  }
  const compat::LockGuard lock(pool_mutex_);
  free_nodes_.push_back(node);
}

void Scheduler::run_chunks(std::size_t n, std::size_t chunks,
                           const RangeBody& body) {
  if (n == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, n);
  if (chunks == 1 || workers() == 0) {
    body(0, n);
    return;
  }
  TaskGroup group(*this);
  group.submit_chunks(n, chunks, body);
  group.wait();
}

void Scheduler::run_tasks(std::span<const Task> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1 || workers() == 0) {
    std::exception_ptr error;
    for (const Task& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  TaskGroup group(*this);
  group.submit_all(tasks);
  group.wait();
}

Scheduler::Stats Scheduler::stats() const noexcept {
  // Relaxed throughout: monitoring counters; the sum is an unsnapshot
  // approximation by design and feeds no control decisions.
  Stats out;
  for (const auto& slot : slots_) {
    out.executed += slot->executed.load(std::memory_order_relaxed);  // monitor
    out.stolen += slot->stolen.load(std::memory_order_relaxed);      // monitor
  }
  out.executed += slotless_executed_.load(std::memory_order_relaxed);  // monitor
  out.stolen += slotless_stolen_.load(std::memory_order_relaxed);     // monitor
  out.injected = injected_.load(std::memory_order_relaxed);           // monitor
  return out;
}

int Scheduler::lease_slot_for_this_thread(bool& ref_taken) {
  ref_taken = false;
  if (t_ref.scheduler == this) {
    // Worker thread (depth stays 0, the slot is permanent) or a thread
    // with live groups already: share the slot, bump the refcount.
    if (t_ref.depth > 0) {
      ++t_ref.depth;
      ref_taken = true;
    }
    return t_ref.slot;
  }
  if (t_ref.scheduler != nullptr) return -1;  // busy with another pool
  const compat::LockGuard lock(lease_mutex_);
  if (free_participant_slots_.empty()) return -1;
  const int slot = free_participant_slots_.back();
  free_participant_slots_.pop_back();
  t_ref = {this, slot, 1};
  ref_taken = true;
  return slot;
}

void Scheduler::release_slot(int slot) {
  // Drop one group's reference; the slot frees only with the last one,
  // so sibling groups destroyed in any order never strand or double-
  // lease a deque.
  if (t_ref.scheduler != this || t_ref.depth == 0) return;  // worker slot
  if (--t_ref.depth > 0) return;
  t_ref = {};
  const compat::LockGuard lock(lease_mutex_);
  free_participant_slots_.push_back(slot);
}

/// Publishes one node; callers notify_work() once per batch.
void Scheduler::submit_node(detail::TaskNode* node, int slot) {
  if (slot < 0 || !slots_[static_cast<std::size_t>(slot)]->deque.push(node)) {
    {
      const compat::LockGuard lock(injector_mutex_);
      injector_.push_back(node);
    }
    // Relaxed: monitoring counter; the node was published under
    // injector_mutex_ just above.
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Scheduler::submit_node_to(detail::TaskNode* node, int target) {
  Slot& slot = *slots_[static_cast<std::size_t>(target)];
  const compat::LockGuard lock(slot.inbox_mutex);
  slot.inbox.push_back(node);
  // Relaxed: the inbox mutex publishes the node; the hint is advisory,
  // and holding the mutex for the store orders it against the drain's
  // clear so a posted node can never be left hinted-empty.
  slot.inbox_hint.store(true, std::memory_order_relaxed);
}

void Scheduler::drain_inbox(int self) {
  Slot& slot = *slots_[static_cast<std::size_t>(self)];
  // Relaxed: advisory hint — a post we miss here is re-signalled by the
  // submitter's notify_work, which re-runs this scan.
  if (!slot.inbox_hint.load(std::memory_order_relaxed)) return;
  std::vector<detail::TaskNode*> taken;
  {
    const compat::LockGuard lock(slot.inbox_mutex);
    taken.swap(slot.inbox);
    // Relaxed: cleared under the same mutex every post holds, so this
    // can never overwrite a hint for a node we did not just take.
    slot.inbox_hint.store(false, std::memory_order_relaxed);
  }
  // Owner push: these land in our own deque (or overflow to the
  // injector), where the normal pop/steal protocol takes over.
  for (detail::TaskNode* node : taken) submit_node(node, self);
}

detail::TaskNode* Scheduler::take_inboxed(detail::GroupCore* group) {
  for (auto& entry : slots_) {
    Slot& slot = *entry;
    // Relaxed: advisory hint; the mutex below publishes the contents.
    if (!slot.inbox_hint.load(std::memory_order_relaxed)) continue;
    const compat::LockGuard lock(slot.inbox_mutex);
    for (auto it = slot.inbox.begin(); it != slot.inbox.end(); ++it) {
      // Relaxed: pointer-value comparison only; the node was published
      // under inbox_mutex, which we hold.
      if (group == nullptr ||
          (*it)->group.load(std::memory_order_relaxed) == group) {
        detail::TaskNode* node = *it;
        slot.inbox.erase(it);
        if (slot.inbox.empty()) {
          // Relaxed: cleared under the posting mutex (see drain_inbox).
          slot.inbox_hint.store(false, std::memory_order_relaxed);
        }
        return node;
      }
    }
  }
  return nullptr;
}

int Scheduler::chunk_target_slot(std::size_t c,
                                 std::size_t chunks) const noexcept {
  // c * w / chunks is monotone in c, so consecutive chunks (contiguous
  // point ranges) collapse onto the same worker slot.
  const auto w = static_cast<std::size_t>(worker_slots_);
  return static_cast<int>(c * w / chunks);
}

void Scheduler::notify_work() {
  work_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (idle_workers_.load(std::memory_order_seq_cst) > 0) {
    {
      const compat::LockGuard lock(idle_mutex_);
    }
    idle_cv_.notify_all();
  }
}

detail::TaskNode* Scheduler::take_injected(detail::GroupCore* group) {
  const compat::LockGuard lock(injector_mutex_);
  if (group == nullptr) {
    if (injector_.empty()) return nullptr;
    detail::TaskNode* node = injector_.front();
    injector_.pop_front();
    return node;
  }
  for (auto it = injector_.begin(); it != injector_.end(); ++it) {
    // Relaxed: pointer-value comparison only; the node's contents were
    // published under injector_mutex_, which we hold.
    if ((*it)->group.load(std::memory_order_relaxed) == group) {
      detail::TaskNode* node = *it;
      injector_.erase(it);
      return node;
    }
  }
  return nullptr;
}

detail::TaskNode* Scheduler::find_any_work(int self) {
  using Claim = WorkDeque<detail::TaskNode*>::Claim;
  detail::TaskNode* node = nullptr;
  if (self >= 0 && pin_engaged_) drain_inbox(self);
  if (self >= 0 &&
      slots_[static_cast<std::size_t>(self)]->deque.pop(node) == Claim::Ok) {
    return node;
  }
  if ((node = take_injected(nullptr)) != nullptr) return node;
  if (self >= 0 && pin_engaged_) {
    // Near-first sweep: victims on our node before remote ones, so
    // stolen chunks keep reading memory our node already touched.
    for (const std::size_t victim : steal_order_[static_cast<std::size_t>(self)]) {
      if (slots_[victim]->deque.steal(node) == Claim::Ok) {
        // Relaxed: monitoring counters (stats()) only.
        slots_[static_cast<std::size_t>(self)]->stolen.fetch_add(
            1, std::memory_order_relaxed);
        return node;
      }
    }
    // Last resort: raid a busy peer's undrained inbox rather than
    // idle — placement is a hint, starvation is not.
    return take_inboxed(nullptr);
  }
  const std::size_t n = slots_.size();
  const std::size_t start =
      self >= 0 ? static_cast<std::size_t>(self) + 1
                // Relaxed: round-robin cursor; any interleaving of the
                // increments yields a valid victim rotation.
                : steal_rr_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t victim = (start + i) % n;
    if (self >= 0 && victim == static_cast<std::size_t>(self)) continue;
    if (slots_[victim]->deque.steal(node) == Claim::Ok) {
      if (self >= 0) {
        // Relaxed: monitoring counters (stats()), nothing is ordered
        // against them.
        slots_[static_cast<std::size_t>(self)]->stolen.fetch_add(
            1, std::memory_order_relaxed);
      } else {
        slotless_stolen_.fetch_add(1, std::memory_order_relaxed);  // monitor
      }
      return node;
    }
  }
  return nullptr;
}

detail::TaskNode* Scheduler::find_group_work(detail::GroupCore& group,
                                             int self, bool dig) {
  using Claim = WorkDeque<detail::TaskNode*>::Claim;
  const auto is_ours = [&group](detail::TaskNode* candidate) {
    // Relaxed: pointer-value comparison only; the deque claim protocol
    // re-validates the element before it is executed.
    return candidate->group.load(std::memory_order_relaxed) == &group;
  };
  detail::TaskNode* node = nullptr;
  if (self >= 0) {
    auto& own = slots_[static_cast<std::size_t>(self)]->deque;
    for (;;) {
      // Our group's tasks are the most recent pushes, so they sit at
      // the bottom; the first foreign task normally marks the end of
      // them.
      const Claim claim = own.pop_if(is_ours, node);
      if (claim == Claim::Ok) return node;
      if (claim != Claim::Skipped || !dig) break;
      // Digging (after a fruitless timeout): non-LIFO submit/wait
      // interleavings can bury our task between another group's tasks
      // in our own deque, where neither pop_if (bottom) nor steal_if
      // (top) can reach it and — with no idle worker — nobody ever
      // would. Relocate the foreign bottom task to the injector (it
      // stays claimable by everyone; executing it here would corrupt
      // the other group's attribution) until ours surfaces.
      if (own.pop(node) == Claim::Ok) {
        if (is_ours(node)) return node;  // raced a thief; ours surfaced
        {
          const compat::LockGuard lock(injector_mutex_);
          injector_.push_back(node);
        }
        // Relaxed: monitoring counter; publication was under the lock.
        injected_.fetch_add(1, std::memory_order_relaxed);
        notify_work();
      }
    }
  }
  if ((node = take_injected(&group)) != nullptr) return node;
  // Placed work may still sit in a busy or sleeping worker's inbox,
  // unreachable through any deque — extract it directly.
  if (pin_engaged_ && (node = take_inboxed(&group)) != nullptr) return node;
  // The sweep includes the waiter's own deque: one of our tasks can be
  // buried beneath a newer group's task at the bottom (pop_if stopped
  // at it), and with no idle worker around nobody else would ever dig
  // it out — stealing it from the top is the only way to reach it.
  const std::size_t n = slots_.size();
  for (std::size_t victim = 0; victim < n; ++victim) {
    if (slots_[victim]->deque.steal_if(is_ours, node) == Claim::Ok) {
      const bool from_self =
          self >= 0 && victim == static_cast<std::size_t>(self);
      if (!from_self) {
        if (self >= 0) {
          // Relaxed: monitoring counters (stats()) only.
          slots_[static_cast<std::size_t>(self)]->stolen.fetch_add(
              1, std::memory_order_relaxed);
        } else {
          slotless_stolen_.fetch_add(1, std::memory_order_relaxed);  // monitor
        }
      }
      return node;
    }
  }
  return nullptr;
}

void Scheduler::flush_completions(CompletionBatch& batch) noexcept {
  detail::GroupCore* group = batch.group;
  const std::size_t count = batch.count;
  batch.group = nullptr;
  batch.count = 0;
  if (group == nullptr || count == 0) return;
  if (group->pending.fetch_sub(count, std::memory_order_seq_cst) == count) {
    // Publish completion under the mutex so a waiter can never observe
    // "complete", destroy the group, and leave this thread notifying a
    // dead condition variable. Re-check pending under the lock: the
    // owner may have submitted again between our fetch_sub and here,
    // and a stale completed=true would let its wait() return with that
    // new task still running.
    const compat::LockGuard lock(group->mutex);
    if (group->pending.load(std::memory_order_seq_cst) == 0) {
      group->completed = true;
      group->done.notify_all();
    }
  }
}

void Scheduler::execute(detail::TaskNode* node, int slot,
                        CompletionBatch& batch) {
  // Relaxed: the claim that delivered `node` (seq_cst deque CAS or
  // injector_mutex_) happened-before this read and carries the field.
  detail::GroupCore* group = node->group.load(std::memory_order_relaxed);
  if (batch.group != group) flush_completions(batch);
  try {
    fault::point("exec.task.run");
    node->run();
  } catch (...) {
    const compat::LockGuard lock(group->mutex);
    if (!group->error) group->error = std::current_exception();
  }
  if (slot >= 0) {
    // Relaxed: monitoring counters (stats()) only.
    slots_[static_cast<std::size_t>(slot)]->executed.fetch_add(
        1, std::memory_order_relaxed);
  } else {
    slotless_executed_.fetch_add(1, std::memory_order_relaxed);  // monitor
  }
  release_node(node, slot);
  batch.group = group;
  ++batch.count;
}

void Scheduler::wait_for_group(detail::GroupCore& group, int slot) {
  using namespace std::chrono_literals;
  CompletionBatch batch;
  bool dig = false;  // unbury own-deque tasks only after a fruitless wait
  while (group.pending.load(std::memory_order_seq_cst) != 0) {
    detail::TaskNode* node = find_group_work(group, slot, dig);
    if (node != nullptr) {
      dig = false;
      execute(node, slot, batch);
      continue;
    }
    // No immediately claimable task: publish our tally first — it may
    // be the one that completes the group.
    flush_completions(batch);
    if (group.pending.load(std::memory_order_seq_cst) == 0) break;
    // Everything left is claimed and running elsewhere — or hiding
    // behind a claim race, or buried in our own deque. The timeout
    // re-scans (with digging armed), bounding both without
    // busy-spinning.
    compat::MutexLock lock(group.mutex);
    if (group.completed) break;
    group.done.wait_for(lock, 200us);
    dig = true;
  }
  flush_completions(batch);
  compat::MutexLock lock(group.mutex);
  while (!group.completed) group.done.wait(lock);
}

void Scheduler::worker_loop(int slot) {
  using namespace std::chrono_literals;
  t_ref = {this, slot};
#ifdef __linux__
  if (pin_syscalls_) {
    // Best-effort affinity: Core pins this worker to one hardware
    // thread, Node to its node's whole thread set. Failure is ignored
    // — affinity affects placement only, never results.
    const Topology& topo = topology();
    const Topology::Cpu& home =
        topo.cpus[static_cast<std::size_t>(slot) % topo.cpus.size()];
    cpu_set_t set;
    CPU_ZERO(&set);
    if (pin_ == PinMode::Core) {
      if (home.id >= 0 && home.id < CPU_SETSIZE) CPU_SET(home.id, &set);
    } else {
      for (const Topology::Cpu& cpu : topo.cpus) {
        if (cpu.node == home.node && cpu.id >= 0 && cpu.id < CPU_SETSIZE) {
          CPU_SET(cpu.id, &set);
        }
      }
    }
    if (CPU_COUNT(&set) > 0) (void)sched_setaffinity(0, sizeof(set), &set);
  }
#endif
  CompletionBatch batch;
  auto backoff = 1ms;
  for (;;) {
    detail::TaskNode* node = find_any_work(slot);
    if (node != nullptr) {
      backoff = 1ms;
      execute(node, slot, batch);
      continue;
    }
    // Deque exhausted: publish the tally before anyone waits on it.
    flush_completions(batch);
    if (stop_.load(std::memory_order_seq_cst)) break;
    // Idle protocol: read the epoch, re-scan, then sleep only if no
    // submission bumped the epoch meanwhile (the seq_cst epoch/idle
    // pair makes a lost wakeup impossible; the timeout is a backstop,
    // backed off exponentially so a long-idle pool costs ~1 wakeup/s
    // per worker instead of a steady poll).
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_seq_cst);
    node = find_any_work(slot);
    if (node != nullptr) {
      backoff = 1ms;
      execute(node, slot, batch);
      continue;
    }
    idle_workers_.fetch_add(1, std::memory_order_seq_cst);
    {
      compat::MutexLock lock(idle_mutex_);
      if (work_epoch_.load(std::memory_order_seq_cst) == epoch &&
          !stop_.load(std::memory_order_seq_cst)) {
        idle_cv_.wait_for(lock, backoff);
        backoff = std::min(backoff * 2, std::chrono::milliseconds(1000));
      }
    }
    idle_workers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  t_ref = {};
}

}  // namespace kc::exec
