#include "exec/thread_pool.hpp"

#include <algorithm>

namespace kc::exec {

namespace {

// True while this thread executes pool work: set permanently on worker
// threads and scoped around run_chunks on submitter threads. A nested
// run_chunks from such a thread must run inline — the pool is (or may
// be) occupied by the job this thread is part of, and waiting on it
// from inside would deadlock.
thread_local bool t_pool_busy = false;

struct BusyScope {
  bool previous = t_pool_busy;
  BusyScope() noexcept { t_pool_busy = true; }
  ~BusyScope() { t_pool_busy = previous; }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  int total = threads > 0 ? threads
                          : static_cast<int>(std::thread::hardware_concurrency());
  total = std::max(total, 1);
  concurrency_ = total;
  workers_.reserve(static_cast<std::size_t>(total - 1));
  for (int i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::busy_on_this_thread() noexcept { return t_pool_busy; }

void ThreadPool::run_chunks(std::size_t n, std::size_t chunks,
                            const RangeBody& body) {
  if (n == 0) return;
  chunks = std::clamp<std::size_t>(chunks, 1, n);
  if (chunks == 1 || workers_.empty() || t_pool_busy) {
    body(0, n);
    return;
  }

  const BusyScope busy;
  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);

  auto job = std::make_shared<Job>();
  job->n = n;
  job->chunks = chunks;
  job->body = body;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
  }
  wake_.notify_all();

  // The submitter is a full participant: with every worker busy
  // elsewhere it still executes the entire job itself.
  execute_chunks(*job);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock,
               [&] { return job->completed.load(std::memory_order_acquire) ==
                            job->chunks; });
    job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::execute_chunks(Job& job) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) return;
    try {
      const auto [lo, hi] = chunk_bounds(job.n, job.chunks, c);
      job.body(lo, hi);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.chunks) {
      // Lock before notifying so the submitter cannot miss the wakeup
      // between its predicate check and its wait.
      const std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  t_pool_busy = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ ||
               (job_ != nullptr &&
                job_->next.load(std::memory_order_relaxed) < job_->chunks);
      });
      if (stop_) return;
      job = job_;  // shared ownership: the job outlives job_.reset()
    }
    execute_chunks(*job);
  }
}

}  // namespace kc::exec
