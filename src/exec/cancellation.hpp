// Cooperative cancellation primitives, shared by every layer that can
// stop a run early: the algorithm loops check a CancellationToken at
// round boundaries (core/hooks.hpp re-exports it for them), and the
// chunk-gated distance kernels (exec/chunk_context.hpp) check the same
// token between chunks of a single scan, so even one huge scan stops
// within one chunk of a request.
//
// The types live at the bottom of the layer stack (exec/) because the
// execution machinery itself consults them; core/hooks.hpp includes
// this header so existing callers keep spelling kc::CancellationToken.
#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>

namespace kc {

/// Shared handle asking a running solve to stop at the next check
/// point (a round boundary, or a chunk boundary inside a gated scan).
/// Copies share one flag, so the caller keeps a copy, hands another to
/// the options struct, and flips it from any thread (a progress
/// callback, a signal handler thread, a service front-end).
/// A default-constructed token is inert: it can never report
/// cancellation, so options structs embed one at zero cost.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// An armed token whose request_cancel() is observable.
  [[nodiscard]] static CancellationToken make() {
    CancellationToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  // Relaxed on both sides: the flag carries no payload — observers act
  // on the bool alone (stop looping and throw), so no acquire/release
  // pairing is needed and a slightly-stale read only delays the stop.
  void request_cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_ != nullptr &&
           flag_->load(std::memory_order_relaxed);  // see note above
  }
  /// True when this token shares a real flag (false for the inert
  /// default-constructed token).
  [[nodiscard]] bool armed() const noexcept { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Thrown when a cancelled token is observed: by the algorithm loops
/// at round boundaries and by the gated kernels between chunks. The
/// api layer maps it to api::Error kind Cancelled; direct callers of
/// mrg()/eim() may catch it as-is.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an EvalBudget (exec/chunk_context.hpp) runs dry inside
/// a gated scan. The api layer maps it to api::Error kind
/// BudgetExceeded.
class BudgetExceededError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace kc
