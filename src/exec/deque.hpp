// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005), the
// per-worker queue of the scheduler.
//
// One owner thread pushes and pops at the bottom (LIFO, so nested
// submissions run hot in cache); any number of thieves steal from the
// top (FIFO, so they take the oldest — largest-granularity — work).
// The element type must be trivially copyable and lock-free-atomic
// sized; the scheduler stores TaskNode pointers.
//
// Memory ordering: every access to the top/bottom indices is seq_cst.
// The classic formulation saves a fence or two with standalone
// atomic_thread_fence, but ThreadSanitizer does not model standalone
// fences and would report false races through them; seq_cst index
// operations keep the CI TSan leg meaningful, and on x86 cost one
// locked op per pop — noise next to the chunk bodies this schedules.
//
// Capacity is fixed (a power of two). push() reports failure instead
// of growing; the scheduler falls back to its injector queue, so a
// full deque degrades throughput, never correctness.
//
// Two conditional operations extend the textbook interface:
//   pop_if / steal_if  evaluate a predicate on the candidate element
//                      *before* removing it, so a thread that must only
//                      execute one TaskGroup's work (a group waiter —
//                      anything else would corrupt that task's CPU-time
//                      and work attribution) can skip foreign tasks
//                      without dequeuing them.
// Reading the element before the claim is safe: slots are only written
// by the owner's push, and an element still present in the deque always
// points at live memory (a task's storage outlives its group, and a
// task leaves the deque before it can finish).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace kc::exec {

template <typename T>
class WorkDeque {
 public:
  enum class Claim { Ok, Empty, Lost, Skipped };

  /// Capacity is rounded up to a power of two (the index mask depends
  /// on it; a non-pow2 mask would alias slots and lose elements).
  explicit WorkDeque(std::size_t capacity = 4096)
      : mask_(static_cast<std::int64_t>(std::bit_ceil(capacity)) - 1),
        buffer_(std::make_unique<std::atomic<T>[]>(std::bit_ceil(capacity))) {}

  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner only. False when the deque is full.
  [[nodiscard]] bool push(T item) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    const std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (b - t > mask_) return false;
    // Relaxed slot write: the seq_cst store to bottom_ below is the
    // publication point; thieves read the slot only after observing it.
    buffer_[b & mask_].store(item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. LIFO; Empty when nothing is left (a concurrent thief
  /// may win the race for the last element).
  [[nodiscard]] Claim pop(T& out) noexcept {
    return pop_if([](T) { return true; }, out);
  }

  /// Owner only. Peeks the bottom element and leaves it in place
  /// (Claim::Skipped) when `pred` rejects it.
  template <typename Pred>
  [[nodiscard]] Claim pop_if(Pred&& pred, T& out) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst) - 1;
    {
      // Peek before publishing the decremented bottom: if the element
      // is foreign we must not have claimed it even transiently.
      const std::int64_t t = top_.load(std::memory_order_seq_cst);
      if (t > b) return Claim::Empty;
      // Relaxed slot read: only the owner writes this slot, and its
      // own program order suffices; thieves never touch index b here.
      const T candidate = buffer_[b & mask_].load(std::memory_order_relaxed);
      if (!pred(candidate)) return Claim::Skipped;
    }
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // a thief emptied the deque since the peek
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return Claim::Empty;
    }
    // Relaxed: owner-written slot, owner-read (see peek above).
    out = buffer_[b & mask_].load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via top.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return won ? Claim::Ok : Claim::Empty;
    }
    return Claim::Ok;
  }

  /// Thief. FIFO; Lost means a race was lost and a retry may succeed.
  [[nodiscard]] Claim steal(T& out) noexcept {
    return steal_if([](T) { return true; }, out);
  }

  /// Thief. Peeks the top element and leaves it (Claim::Skipped) when
  /// `pred` rejects it.
  template <typename Pred>
  [[nodiscard]] Claim steal_if(Pred&& pred, T& out) noexcept {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return Claim::Empty;
    // Relaxed slot read: publication happened-before via the seq_cst
    // bottom_ load above (Chase-Lev); the CAS on top_ then validates
    // that the slot was not recycled under us before `out` is used.
    const T candidate = buffer_[t & mask_].load(std::memory_order_relaxed);
    if (!pred(candidate)) return Claim::Skipped;
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return Claim::Lost;
    }
    out = candidate;
    return Claim::Ok;
  }

  /// Racy size hint (exact only for the owner with no thieves active).
  [[nodiscard]] std::size_t size_hint() const noexcept {
    const std::int64_t d = bottom_.load(std::memory_order_relaxed) -
                           top_.load(std::memory_order_relaxed);
    return d > 0 ? static_cast<std::size_t>(d) : 0;
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::int64_t mask_;
  std::unique_ptr<std::atomic<T>[]> buffer_;
};

}  // namespace kc::exec
