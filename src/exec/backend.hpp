// Pluggable execution backends.
//
// Everything in this library that fans work out — the simulated
// MapReduce cluster running one round's reducer tasks, and the sharded
// distance kernels splitting one scan across host cores — goes through
// the ExecutionBackend interface. Three implementations exist:
//
//   SequentialBackend  one task at a time on the calling thread; the
//                      paper's methodology (§7.1) and the default.
//   OpenMPBackend      OpenMP parallel loops; only constructible when
//                      the build defines KC_HAVE_OPENMP (requesting it
//                      otherwise throws — no silent degrade).
//   ThreadPoolBackend  persistent workers behind the work-stealing
//                      scheduler (exec/scheduler.hpp): per-worker
//                      deques, TaskGroup isolation, so independent
//                      jobs interleave and fan-out pays no thread
//                      spawn cost per round.
//
// The backend only decides *where* closures run. All simulated
// metrics — centers, radii, round counts, per-machine distance-eval
// counts — are bit-identical across backends: tasks carry their own
// deterministic RNG streams, distance-eval counting stays on the
// thread that owns the task, and sharded kernels partition ranges
// deterministically with an order-independent (min) fold.
//
// Exception semantics, uniform across backends: every task of a batch
// is attempted (an OpenMP loop cannot break early, so the others match
// it) and the first exception thrown is rethrown to the caller after
// the batch completes.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "exec/scheduler.hpp"

namespace kc::exec {

enum class BackendKind {
  Sequential,  ///< faithful to the paper: one task at a time
  OpenMP,      ///< OpenMP host threads (requires KC_HAVE_OPENMP)
  ThreadPool,  ///< persistent std::thread workers + shared work queue
};

[[nodiscard]] std::string_view to_string(BackendKind kind) noexcept;

/// Parses "seq"/"sequential", "omp"/"openmp", "pool"/"threadpool"
/// (the --exec flag vocabulary). Returns nullopt on anything else.
[[nodiscard]] std::optional<BackendKind> parse_backend(
    std::string_view token) noexcept;

/// True when this build can construct the backend (OpenMP is the only
/// kind that can be compiled out).
[[nodiscard]] bool backend_available(BackendKind kind) noexcept;

class ExecutionBackend {
 public:
  using Task = std::function<void()>;
  using RangeBody = std::function<void(std::size_t, std::size_t)>;

  virtual ~ExecutionBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const noexcept = 0;

  /// The *effective* backend name, reported into RoundStats/JobTrace.
  [[nodiscard]] std::string_view name() const noexcept {
    return to_string(kind());
  }

  /// Host threads this backend can occupy (1 for Sequential).
  [[nodiscard]] virtual int concurrency() const noexcept = 0;

  /// Runs every task to completion, possibly concurrently. Each task
  /// executes entirely on one thread, so thread-local work counters
  /// sampled inside the task attribute its work correctly. Rethrows
  /// the first task exception after all tasks have been attempted.
  virtual void run_tasks(std::span<const Task> tasks) = 0;

  /// Data parallelism inside one task: cuts [0, n) into at most
  /// ceil(n / grain) chunks (capped at concurrency()) and runs
  /// body(lo, hi) for each, possibly concurrently. The chunk partition
  /// is deterministic. Blocks until complete.
  virtual void parallel_for(std::size_t n, std::size_t grain,
                            const RangeBody& body) = 0;
};

/// §7.1: simulate the machines one at a time.
class SequentialBackend final : public ExecutionBackend {
 public:
  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::Sequential;
  }
  [[nodiscard]] int concurrency() const noexcept override { return 1; }
  void run_tasks(std::span<const Task> tasks) override;
  void parallel_for(std::size_t n, std::size_t grain,
                    const RangeBody& body) override;
};

/// OpenMP host threads. Throws std::runtime_error from the constructor
/// when the build lacks OpenMP: an unavailable backend must never be
/// silently substituted.
class OpenMPBackend final : public ExecutionBackend {
 public:
  /// `threads <= 0` uses the OpenMP default (omp_get_max_threads).
  explicit OpenMPBackend(int threads = 0);
  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::OpenMP;
  }
  [[nodiscard]] int concurrency() const noexcept override { return threads_; }
  void run_tasks(std::span<const Task> tasks) override;
  void parallel_for(std::size_t n, std::size_t grain,
                    const RangeBody& body) override;

 private:
  int threads_ = 1;
};

/// Persistent workers behind the work-stealing scheduler.
class ThreadPoolBackend final : public ExecutionBackend {
 public:
  /// `threads <= 0` uses std::thread::hardware_concurrency(). `pin`
  /// engages topology-aware placement (see Scheduler) — byte-identical
  /// results, potentially better memory locality.
  explicit ThreadPoolBackend(int threads = 0, PinMode pin = PinMode::Off)
      : scheduler_(threads, pin) {}
  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::ThreadPool;
  }
  [[nodiscard]] int concurrency() const noexcept override {
    return scheduler_.concurrency();
  }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
  void run_tasks(std::span<const Task> tasks) override;
  void parallel_for(std::size_t n, std::size_t grain,
                    const RangeBody& body) override;

 private:
  Scheduler scheduler_;
};

/// Factory for the --exec flag: builds the requested backend or throws
/// std::runtime_error when this build cannot provide it. `pin` applies
/// to the thread pool only (the other backends have no persistent
/// workers to place); nullopt defers to the KC_PIN environment
/// variable.
[[nodiscard]] std::shared_ptr<ExecutionBackend> make_backend(
    BackendKind kind, int threads = 0,
    std::optional<PinMode> pin = std::nullopt);

}  // namespace kc::exec
