// Persistent worker-thread pool for the execution backends.
//
// The pool is created once (per ThreadPoolBackend, typically once per
// experiment sweep) and reused for every MapReduce round and every
// sharded distance scan, so task fan-out never pays std::thread spawn
// cost per round. Work is published as a single "job" at a time: a
// range [0, n) cut into `chunks` near-equal pieces that workers (and
// the submitting thread, which participates) claim with an atomic
// ticket. Claiming is dynamic, so skewed chunk costs balance the way
// `schedule(dynamic)` would.
//
// Reentrancy: a thread that is already executing pool work (a worker,
// or a submitter inside run_chunks) runs nested submissions inline on
// its own thread. This keeps the two-level scheme deadlock-free: when
// a round's reducer tasks occupy the pool, their sharded distance
// scans degrade to sequential; when a round has a single task (the
// final Gonzalez round), the task runs on the submitting thread and
// its distance scans fan out across the idle workers.
//
// Exceptions thrown by chunk bodies are captured; every chunk is still
// attempted (matching OpenMP semantics, where a parallel loop cannot
// break early) and the first captured exception is rethrown to the
// submitter once the job completes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace kc::exec {

/// Bounds [lo, hi) of chunk `c` when [0, n) is cut into `chunks`
/// near-equal pieces (the first n % chunks pieces get one extra item).
/// The partition is deterministic: it depends only on (n, chunks, c).
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> chunk_bounds(
    std::size_t n, std::size_t chunks, std::size_t c) noexcept {
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t lo = c * base + (c < extra ? c : extra);
  return {lo, lo + base + (c < extra ? 1 : 0)};
}

class ThreadPool {
 public:
  using RangeBody = std::function<void(std::size_t, std::size_t)>;

  /// A pool with total concurrency `threads` (the submitting thread
  /// counts as one, so `threads - 1` workers are spawned). `threads <= 0`
  /// uses std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency: spawned workers + the submitting thread.
  [[nodiscard]] int concurrency() const noexcept { return concurrency_; }
  [[nodiscard]] int workers() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// True when the calling thread is currently executing pool work (a
  /// worker thread, or a thread inside run_chunks). Nested run_chunks
  /// calls from such threads execute inline.
  [[nodiscard]] static bool busy_on_this_thread() noexcept;

  /// Cuts [0, n) into `chunks` pieces (clamped to [1, n]) and runs
  /// `body(lo, hi)` for each, distributing pieces dynamically across
  /// the pool. Blocks until every chunk has run; rethrows the first
  /// exception any chunk threw. The chunk partition is deterministic;
  /// only the thread assignment varies between runs.
  void run_chunks(std::size_t n, std::size_t chunks, const RangeBody& body);

 private:
  struct Job {
    std::size_t n = 0;
    std::size_t chunks = 0;
    RangeBody body;
    std::atomic<std::size_t> next{0};       ///< ticket of the next unclaimed chunk
    std::atomic<std::size_t> completed{0};  ///< chunks fully executed
    std::exception_ptr error;               ///< first failure; guarded by mutex_
  };

  void worker_loop();
  void execute_chunks(Job& job);

  int concurrency_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;                ///< guards job_, stop_, Job::error
  std::condition_variable wake_;    ///< workers wait here for a job
  std::condition_variable done_;    ///< submitter waits here for completion
  std::shared_ptr<Job> job_;        ///< the job in flight, if any
  bool stop_ = false;
  std::mutex submit_mutex_;         ///< serializes concurrent submitters
};

}  // namespace kc::exec
