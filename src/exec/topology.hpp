// Host CPU topology probe and worker-pinning policy.
//
// The scheduler's workers are interchangeable by design — placement
// decides only *where* a task runs, never what it computes — but on
// multi-socket hosts where a task runs decides which memory controller
// its point rows stream through. This header provides the two inputs
// the scheduler needs to make locality-aware placement decisions:
//
//   Topology   a one-shot, hwloc-free probe of
//              /sys/devices/system/{cpu,node}, intersected with the
//              process affinity mask, degrading gracefully (one node,
//              `restricted` set) in containers and on non-Linux hosts;
//   PinMode    the worker-pinning policy, from the KC_PIN environment
//              variable (off | core | node, read once) or an explicit
//              ExecSpec knob.
//
// Pinning is strictly a placement hint: pinned and unpinned runs are
// byte-identical, and on restricted or single-node hosts the scheduler
// engages the placement logic without issuing any affinity syscalls.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kc::exec {

/// Worker-pinning policy for the thread-pool scheduler.
enum class PinMode {
  Off,   ///< no placement preferences (the default)
  Core,  ///< pin each worker to one hardware thread
  Node,  ///< pin each worker to one NUMA node's thread set
};

[[nodiscard]] std::string_view to_string(PinMode mode) noexcept;

/// Parses "off", "core", "node" (the KC_PIN vocabulary). Returns
/// nullopt on anything else.
[[nodiscard]] std::optional<PinMode> parse_pin_mode(
    std::string_view token) noexcept;

/// The KC_PIN environment variable, read once per process; Off when
/// unset or unparseable.
[[nodiscard]] PinMode env_pin_mode() noexcept;

/// What the host looks like to this process. Probed once (see
/// topology()); every field falls back to a safe single-node shape
/// when sysfs is absent or unreadable.
struct Topology {
  /// One hardware thread available to this process.
  struct Cpu {
    int id = 0;    ///< kernel cpu number (cpuN in sysfs)
    int node = 0;  ///< NUMA node the cpu belongs to
  };

  /// Available hardware threads (online ∩ process affinity mask),
  /// ascending by id. Never empty.
  std::vector<Cpu> cpus;

  int nodes = 1;       ///< distinct NUMA nodes among `cpus`
  int cores = 1;       ///< distinct physical cores among `cpus`
  int hw_threads = 1;  ///< cpus.size()

  /// True when the probe could not see the full machine: the affinity
  /// mask excludes online cpus (container cpuset), or sysfs was
  /// unreadable. A restricted host never gets affinity syscalls —
  /// the kernel (or the container runtime) already placed us.
  bool restricted = false;
};

/// Inputs of one probe, exposed so tests can point the parser at a
/// synthetic sysfs tree and a fabricated affinity mask instead of the
/// live host. Production code never constructs one: topology() probes
/// with the defaults below.
struct ProbeOptions {
  /// Root holding the `cpu/` and `node/` hierarchies.
  std::string sysfs_root = "/sys/devices/system";

  /// When set, stands in for the process affinity mask: the cpu ids
  /// this process may run on. When unset the real mask is read via
  /// sched_getaffinity (Linux) or treated as unknowable (elsewhere).
  std::optional<std::vector<int>> affinity;
};

/// One uncached probe of `opts.sysfs_root`. The seam behind
/// topology(); deterministic given a fixed tree and affinity.
[[nodiscard]] Topology probe_topology(const ProbeOptions& opts);

/// The process-wide topology, probed on first use and cached.
[[nodiscard]] const Topology& topology() noexcept;

/// True when affinity syscalls are worth issuing: the probe saw the
/// whole machine (not `restricted`) and it spans more than one NUMA
/// node. This is the scheduler's pin_hardware() policy, exposed so
/// bench reports can brand themselves untrusted when pinning was
/// requested but can only engage the software placement half.
[[nodiscard]] bool pin_hardware_available() noexcept;

}  // namespace kc::exec
