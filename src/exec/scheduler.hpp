// Work-stealing task scheduler: the execution core behind the
// ThreadPool backend.
//
// The previous pool ran one "job" at a time off a single global atomic
// ticket: concurrent submitters serialized on a mutex, and a nested
// submission from inside pool work always degraded to sequential. This
// scheduler replaces that with per-worker Chase–Lev deques
// (exec/deque.hpp) and a TaskGroup handle:
//
//   - every submission belongs to a TaskGroup; independent groups (two
//     Solvers on different threads, overlapping MapReduce rounds)
//     interleave across the workers instead of queueing behind each
//     other;
//   - a thread waiting on its group *helps*, executing that group's
//     remaining tasks — and only that group's: executing a foreign
//     task inside a reducer task's measurement window would corrupt
//     per-task CPU-time and distance-eval attribution (the simulated-
//     cluster metrics), so waiters use the deques' predicate claims to
//     skip foreign work;
//   - workers with an empty deque steal the oldest task of any group,
//     so a nested scan fanned out by one reducer is picked up by
//     whoever is idle;
//   - exceptions are captured per group and the first one is rethrown
//     to that group's waiter; every task of the group is still
//     attempted (OpenMP-matching semantics — a parallel loop cannot
//     break early), and other groups are unaffected.
//
// Determinism contract, unchanged from the old pool: the scheduler
// decides only *where* a task runs, never what it computes. Chunk
// partitions are deterministic (chunk_bounds); each task executes
// entirely on one thread, so thread-local counters sampled around it
// attribute its work exactly.
//
// Destruction is graceful: the destructor waits for every live
// TaskGroup to complete (their waiters receive results and exceptions
// as usual), then joins the workers — destroying the scheduler while a
// job is in flight no longer races the worker shutdown.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "compat/thread_safety.hpp"
#include "exec/deque.hpp"
#include "exec/topology.hpp"

namespace kc::exec {

class Scheduler;
class TaskGroup;

/// Bounds [lo, hi) of chunk `c` when [0, n) is cut into `chunks`
/// near-equal pieces (the first n % chunks pieces get one extra item).
/// The partition is deterministic: it depends only on (n, chunks, c).
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> chunk_bounds(
    std::size_t n, std::size_t chunks, std::size_t c) noexcept {
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t lo = c * base + (c < extra ? c : extra);
  return {lo, lo + base + (c < extra ? 1 : 0)};
}

namespace detail {

/// Shared completion/error state of one TaskGroup. Lives in the
/// TaskGroup handle; tasks hold raw pointers, which stay valid because
/// wait-for-completion always precedes handle destruction.
struct GroupCore {
  std::atomic<std::size_t> pending{0};  ///< submitted, not yet finished
  compat::Mutex mutex;                  ///< guards completed/error/cv
  compat::CondVar done;
  /// pending hit 0 (cleared by submit)
  bool completed KC_GUARDED_BY(mutex) = false;
  /// first task failure of the group
  std::exception_ptr error KC_GUARDED_BY(mutex);
};

/// One schedulable unit: either a [lo, hi) chunk of a borrowed range
/// body, a borrowed task closure, or an owned task closure.
///
/// Nodes are allocated from a per-scheduler recycling arena, never
/// freed before the scheduler dies: a racing deque peek may read a
/// node that was already executed and recycled, which is harmless —
/// the peek only loads `group` (atomically, hence the atomic member)
/// to compare pointer values, and the deque's claim CAS rejects any
/// element that has left its window — but would be a use-after-free
/// if node storage were owned by the (transient) groups.
struct TaskNode {
  std::atomic<GroupCore*> group{nullptr};
  const std::function<void(std::size_t, std::size_t)>* range = nullptr;
  std::size_t lo = 0;
  std::size_t hi = 0;
  const std::function<void()>* borrowed = nullptr;
  std::function<void()> owned;

  void run() {
    if (range != nullptr) {
      (*range)(lo, hi);
    } else if (borrowed != nullptr) {
      (*borrowed)();
    } else {
      owned();
    }
  }
};

}  // namespace detail

/// A batch of tasks scheduled together: submit any number of tasks,
/// then wait() once — it executes the group's remaining tasks on the
/// calling thread alongside the workers and rethrows the first task
/// exception. Use one TaskGroup per logical job; groups submitted from
/// different threads run interleaved.
///
/// A TaskGroup is single-threaded on the submitting side (submit/wait
/// from the thread that created it) and must not outlive its
/// Scheduler. The destructor waits for completion (discarding any
/// unobserved error), so a group can never leak running tasks.
class TaskGroup {
 public:
  explicit TaskGroup(Scheduler& scheduler);
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules one task. The closure is moved into the group.
  void submit(std::function<void()> task);

  /// Schedules `chunks` tasks covering [0, n) via chunk_bounds.
  /// `body` is borrowed: it must stay alive until wait() returns.
  void submit_chunks(std::size_t n, std::size_t chunks,
                     const std::function<void(std::size_t, std::size_t)>& body);

  /// Schedules every task of `tasks` by reference (the span's backing
  /// storage must stay alive until wait() returns).
  void submit_all(std::span<const std::function<void()>> tasks);

  /// Blocks until every submitted task has finished, helping to
  /// execute the group's own tasks meanwhile. Rethrows the first
  /// exception any task of this group threw. May be called repeatedly
  /// (submit more, wait again).
  void wait();

 private:
  friend class Scheduler;

  Scheduler* scheduler_;
  detail::GroupCore core_;
  std::vector<detail::TaskNode*> scratch_;  ///< batch-submit staging
  int lease_slot_ = -1;      ///< participant slot held, if any
  bool lease_owned_ = false; ///< holds one refcount on that slot's lease
};

class Scheduler {
 public:
  using Task = std::function<void()>;
  using RangeBody = std::function<void(std::size_t, std::size_t)>;

  /// Total concurrency `threads` (the submitting thread counts as one,
  /// so `threads - 1` workers are spawned). `threads <= 0` uses
  /// std::thread::hardware_concurrency().
  ///
  /// `pin` engages topology-aware placement (exec/topology.hpp): chunk
  /// batches are distributed to workers as contiguous ranges via
  /// per-slot inboxes, idle workers steal from same-node victims
  /// first, and — only on an unrestricted multi-node host — each
  /// worker is pinned to one hardware thread (Core) or one node's
  /// thread set (Node). Placement may change timing, never bytes:
  /// every task still computes exactly what it would under Off.
  explicit Scheduler(int threads = 0, PinMode pin = PinMode::Off);

  /// Waits for every live TaskGroup to complete — their waiters still
  /// receive results and exceptions — then joins the workers. Never
  /// throws; task exceptions always belong to their group.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Total concurrency: spawned workers + the submitting thread.
  [[nodiscard]] int concurrency() const noexcept { return concurrency_; }
  [[nodiscard]] int workers() const noexcept {
    return static_cast<int>(threads_.size());
  }

  /// The pinning policy this scheduler was built with.
  [[nodiscard]] PinMode pin_mode() const noexcept { return pin_; }
  /// True when placement logic (inbox distribution, near-first steal)
  /// is active: pin requested and workers exist.
  [[nodiscard]] bool pin_engaged() const noexcept { return pin_engaged_; }
  /// True when workers actually issued affinity syscalls — requires an
  /// unrestricted multi-node host on top of pin_engaged(). When a pin
  /// was requested but this is false, report the run as placement-
  /// untrusted: the kernel was free to migrate workers.
  [[nodiscard]] bool pin_hardware() const noexcept { return pin_syscalls_; }

  /// Cuts [0, n) into `chunks` pieces (clamped to [1, n]) and runs
  /// `body(lo, hi)` for each across the pool; blocks until done and
  /// rethrows the first chunk exception. The partition is
  /// deterministic; only the thread assignment varies between runs.
  void run_chunks(std::size_t n, std::size_t chunks, const RangeBody& body);

  /// Runs every task to completion (each entirely on one thread),
  /// blocking until done; rethrows the first task exception after all
  /// tasks have been attempted.
  void run_tasks(std::span<const Task> tasks);

  /// Scheduling counters, aggregated over all workers and participant
  /// slots since construction. Monotone; taken with relaxed loads.
  struct Stats {
    std::uint64_t executed = 0;  ///< tasks run to completion
    std::uint64_t stolen = 0;    ///< tasks claimed from a foreign deque
    std::uint64_t injected = 0;  ///< tasks routed through the overflow queue
  };
  [[nodiscard]] Stats stats() const noexcept;

 private:
  friend class TaskGroup;

  struct Slot {
    WorkDeque<detail::TaskNode*> deque;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    /// Free-node cache, touched only by the thread currently owning
    /// the slot (a worker, or the participant lease holder — the lease
    /// mutex orders successive holders), so acquire/release of task
    /// nodes stays off the global pool mutex in steady state.
    std::vector<detail::TaskNode*> node_cache;
    /// Locality inbox: Chase–Lev pushes are owner-only, so a submitter
    /// placing a chunk on *this* slot parks the node here and the
    /// owning worker drains it into its deque. Group waiters may also
    /// extract their own group's nodes directly (take_inboxed).
    compat::Mutex inbox_mutex;
    std::vector<detail::TaskNode*> inbox KC_GUARDED_BY(inbox_mutex);
    /// Cheap maybe-nonempty hint so the hot find_any_work path skips
    /// the inbox mutex when nothing was posted.
    std::atomic<bool> inbox_hint{false};
  };

  /// Deferred group-completion tally: a run of same-group tasks
  /// executed back-to-back by one thread decrements the group's
  /// `pending` once, when the run ends (the thread switches groups,
  /// finds no immediate work, or is about to sleep) — not once per
  /// task. Decrements are only ever *delayed*, so `pending` always
  /// over-approximates outstanding work and a group can never look
  /// complete while one of its tasks still runs; every code path that
  /// stops executing tasks flushes first, so completion is published
  /// promptly. This halves the seq_cst atomic traffic of a chunk
  /// dispatch (see BENCH_exec.json dispatch_ns_per_chunk_*).
  struct CompletionBatch {
    detail::GroupCore* group = nullptr;
    std::size_t count = 0;
  };
  void flush_completions(CompletionBatch& batch) noexcept;

  void worker_loop(int slot);
  void execute(detail::TaskNode* node, int slot, CompletionBatch& batch);
  [[nodiscard]] detail::TaskNode* find_any_work(int self);
  [[nodiscard]] detail::TaskNode* find_group_work(detail::GroupCore& group,
                                                  int self, bool dig = false);
  [[nodiscard]] detail::TaskNode* take_injected(detail::GroupCore* group)
      KC_EXCLUDES(injector_mutex_);
  void acquire_nodes(std::size_t count, int slot,
                     std::vector<detail::TaskNode*>& out)
      KC_EXCLUDES(pool_mutex_);
  void release_node(detail::TaskNode* node, int slot) noexcept
      KC_EXCLUDES(pool_mutex_);
  void submit_node(detail::TaskNode* node, int slot)
      KC_EXCLUDES(injector_mutex_);
  /// Parks a node in `target`'s inbox (locality placement; any thread
  /// may call it for any slot).
  void submit_node_to(detail::TaskNode* node, int target);
  /// Moves everything from `self`'s inbox into its deque (owner only).
  void drain_inbox(int self);
  /// Extracts one node of `group` from any slot's inbox, so a waiter
  /// can reach placed work whose target worker is busy or asleep.
  [[nodiscard]] detail::TaskNode* take_inboxed(detail::GroupCore* group);
  /// Worker slot that chunk `c` of `chunks` should land on when
  /// placement is engaged: contiguous chunk ranges map to the same
  /// worker, in slot order.
  [[nodiscard]] int chunk_target_slot(std::size_t c,
                                      std::size_t chunks) const noexcept;
  void notify_work() KC_EXCLUDES(idle_mutex_);
  void wait_for_group(detail::GroupCore& group, int slot);

  // TaskGroup lease management (participant slots for non-worker
  // submitters; refcounted per thread so sibling groups share one
  // slot and may be destroyed in any order).
  [[nodiscard]] int lease_slot_for_this_thread(bool& ref_taken)
      KC_EXCLUDES(lease_mutex_);
  void release_slot(int slot) KC_EXCLUDES(lease_mutex_);

  int concurrency_ = 1;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Slot>> slots_;  ///< workers + participants
  int worker_slots_ = 0;

  // Topology-aware placement (immutable after construction).
  PinMode pin_ = PinMode::Off;
  bool pin_engaged_ = false;   ///< placement logic active
  bool pin_syscalls_ = false;  ///< workers issue affinity syscalls
  std::vector<int> slot_node_;  ///< NUMA node label per slot
  /// Per-slot steal sweep, same-node victims first (built only when
  /// placement is engaged).
  std::vector<std::vector<std::size_t>> steal_order_;
  std::atomic<std::uint64_t> slotless_executed_{0};
  std::atomic<std::uint64_t> slotless_stolen_{0};
  std::atomic<std::size_t> steal_rr_{0};  ///< slotless steal-sweep offset

  compat::Mutex pool_mutex_;  ///< guards the node arena and free list
  std::vector<std::unique_ptr<detail::TaskNode>> arena_
      KC_GUARDED_BY(pool_mutex_);
  std::vector<detail::TaskNode*> free_nodes_ KC_GUARDED_BY(pool_mutex_);

  compat::Mutex injector_mutex_;
  std::deque<detail::TaskNode*> injector_ KC_GUARDED_BY(injector_mutex_);
  std::atomic<std::uint64_t> injected_{0};

  compat::Mutex idle_mutex_;
  compat::CondVar idle_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<int> idle_workers_{0};
  std::atomic<bool> stop_{false};

  compat::Mutex lease_mutex_;
  std::vector<int> free_participant_slots_ KC_GUARDED_BY(lease_mutex_);

  compat::Mutex drain_mutex_;
  compat::CondVar drained_;
  int live_groups_ KC_GUARDED_BY(drain_mutex_) = 0;
};

}  // namespace kc::exec
