#include "exec/backend.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <stdexcept>

#include "fault/fault.hpp"

#ifdef KC_HAVE_OPENMP
#include <omp.h>
#endif

namespace kc::exec {

namespace {

/// Chunk count for a range of n items with at least `grain` items per
/// chunk, capped by the backend's concurrency.
[[nodiscard]] std::size_t chunk_count(std::size_t n, std::size_t grain,
                                      int concurrency) noexcept {
  const std::size_t by_grain = n / std::max<std::size_t>(grain, 1);
  return std::clamp<std::size_t>(by_grain, 1,
                                 static_cast<std::size_t>(concurrency));
}

}  // namespace

std::string_view to_string(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::Sequential: return "sequential";
    case BackendKind::OpenMP: return "openmp";
    case BackendKind::ThreadPool: return "threadpool";
  }
  return "?";
}

std::optional<BackendKind> parse_backend(std::string_view token) noexcept {
  if (token == "seq" || token == "sequential") return BackendKind::Sequential;
  if (token == "omp" || token == "openmp") return BackendKind::OpenMP;
  if (token == "pool" || token == "threadpool") return BackendKind::ThreadPool;
  return std::nullopt;
}

bool backend_available(BackendKind kind) noexcept {
#ifndef KC_HAVE_OPENMP
  if (kind == BackendKind::OpenMP) return false;
#endif
  (void)kind;
  return true;
}

// ------------------------------------------------------------- Sequential

void SequentialBackend::run_tasks(std::span<const Task> tasks) {
  std::exception_ptr error;
  for (const Task& task : tasks) {
    try {
      fault::point("exec.task.run");
      task();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

void SequentialBackend::parallel_for(std::size_t n, std::size_t /*grain*/,
                                     const RangeBody& body) {
  if (n != 0) body(0, n);
}

// ----------------------------------------------------------------- OpenMP

OpenMPBackend::OpenMPBackend(int threads) {
#ifdef KC_HAVE_OPENMP
  threads_ = threads > 0 ? threads : omp_get_max_threads();
#else
  (void)threads;
  throw std::runtime_error(
      "exec: OpenMP backend requested but this build has no OpenMP "
      "(rebuild with -DKC_ENABLE_OPENMP=ON, or use --exec=pool)");
#endif
}

void OpenMPBackend::run_tasks(std::span<const Task> tasks) {
#ifdef KC_HAVE_OPENMP
  std::exception_ptr error;
  // Signed induction variable: OpenMP loop-canonical form predates
  // unsigned support in several implementations.
  const auto count = static_cast<std::int64_t>(tasks.size());
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads_)
  for (std::int64_t t = 0; t < count; ++t) {
    try {
      fault::point("exec.task.run");
      tasks[static_cast<std::size_t>(t)]();
    } catch (...) {
      // Exceptions must not escape a parallel region (UB); capture the
      // first and rethrow below.
#pragma omp critical(kc_exec_openmp_error)
      {
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
#else
  (void)tasks;
#endif
}

void OpenMPBackend::parallel_for(std::size_t n, std::size_t grain,
                                 const RangeBody& body) {
#ifdef KC_HAVE_OPENMP
  if (n == 0) return;
  const std::size_t chunks = chunk_count(n, grain, threads_);
  if (chunks <= 1 || omp_in_parallel() != 0) {
    // Nested regions would run with a team of one anyway; skip the
    // region setup and keep the work (and its counters) on this thread.
    body(0, n);
    return;
  }
  std::exception_ptr error;
  const auto count = static_cast<std::int64_t>(chunks);
#pragma omp parallel for schedule(static) num_threads(threads_)
  for (std::int64_t c = 0; c < count; ++c) {
    try {
      const auto [lo, hi] =
          chunk_bounds(n, chunks, static_cast<std::size_t>(c));
      body(lo, hi);
    } catch (...) {
#pragma omp critical(kc_exec_openmp_error)
      {
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
#else
  (void)grain;
  if (n != 0) body(0, n);
#endif
}

// ------------------------------------------------------------- ThreadPool

void ThreadPoolBackend::run_tasks(std::span<const Task> tasks) {
  // Single-reducer rounds (the final Gonzalez round) run on the
  // submitting thread so their sharded distance scans can fan out
  // across the idle workers; run_tasks handles that inline itself.
  scheduler_.run_tasks(tasks);
}

void ThreadPoolBackend::parallel_for(std::size_t n, std::size_t grain,
                                     const RangeBody& body) {
  if (n == 0) return;
  scheduler_.run_chunks(n, chunk_count(n, grain, scheduler_.concurrency()),
                        body);
}

// ---------------------------------------------------------------- factory

std::shared_ptr<ExecutionBackend> make_backend(BackendKind kind, int threads,
                                               std::optional<PinMode> pin) {
  switch (kind) {
    case BackendKind::Sequential:
      return std::make_shared<SequentialBackend>();
    case BackendKind::OpenMP:
      return std::make_shared<OpenMPBackend>(threads);
    case BackendKind::ThreadPool:
      return std::make_shared<ThreadPoolBackend>(threads,
                                                 pin.value_or(env_pin_mode()));
  }
  throw std::invalid_argument("exec: unknown backend kind");
}

}  // namespace kc::exec
