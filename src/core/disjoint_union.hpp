// Disjoint-union MRG: the external-memory extension the paper sketches
// and leaves open ("We could also exploit external memory, for example
// by running multiple instances of our MapReduce algorithm and using a
// k-center algorithm on the disjoint union of the solutions; such
// cases are beyond the scope of this paper", §3.2).
//
// When n exceeds the cluster's total RAM (n > m*c), the input is split
// into `instances` disjoint chunks that each fit; MRG runs on every
// chunk independently (sequentially, as the chunks would be streamed
// from external storage), and one final sequential run clusters the
// union of the per-chunk solutions.
//
// Approximation: by Lemma 1 of the paper, GON on *any* subset of V is
// within 2*OPT(V), so a 2-round chunk run covers its chunk within
// 4*OPT(V); the final pass over the union adds 2*OPT(V) by the
// triangle inequality — a 6-approximation when every chunk ran in two
// rounds, and 2(i+2) in general where i is the largest chunk round
// count. The ablation bench and tests confirm the measured quality is
// far better, mirroring the multi-round story.
#pragma once

#include <vector>

#include "core/mrg.hpp"

namespace kc {

struct DisjointUnionOptions {
  /// How many sequential MRG instances to run (each gets ~n/instances
  /// points, which must fit the cluster: ceil(n/instances/m) <= c).
  std::size_t instances = 2;
  /// Options forwarded to every chunk's MRG run (seed is offset per
  /// chunk) and whose final_algo also runs the union round. The
  /// progress/cancel hooks flow into each chunk; progress events are
  /// relabelled "mrg-du" and carry *job-cumulative* dist_evals (so a
  /// global budget holds across chunks), while their round numbers
  /// stay chunk-local.
  MrgOptions mrg;
};

struct DisjointUnionResult : KCenterResult {
  /// Worst-case factor actually incurred: 2 * (max chunk rounds + 2).
  int guaranteed_factor = 0;
  /// Per-chunk traces, in chunk order, plus the union round appended
  /// to the last trace's view via union_trace.
  std::vector<MrgResult> chunk_results;
  mr::JobTrace union_trace;
};

/// Runs `instances` MRG jobs over disjoint chunks of `pts` and a final
/// sequential pass over the union of their centers.
///
/// Preconditions: k >= 1, pts non-empty, instances >= 1.
[[nodiscard]] DisjointUnionResult mrg_disjoint_union(
    const DistanceOracle& oracle, std::span<const index_t> pts, std::size_t k,
    const mr::SimCluster& cluster, const DisjointUnionOptions& options = {});

}  // namespace kc
