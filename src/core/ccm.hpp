// CCM: grid-coreset parallel k-center in the style of Coy, Czumaj &
// Mishra, "On Parallel k-Center Clustering" (arXiv:2304.05883).
//
// Where MRG compresses by running GON per machine every round, CCM
// compresses *geometrically* in a constant number of rounds:
//
//   round 1 (ccm-estimate): partition V across the m reducers; each
//     runs GON with k centers on its part and emits those centers plus
//     its local covering radius r_i. r_hat = max_i r_i is a constant-
//     factor over-estimate of OPT (each part is covered by k of its
//     own points within r_i, and a part's k-center optimum is at most
//     twice the whole input's).
//   round 2 (ccm-grid): each reducer snaps its part to an axis-aligned
//     grid of width w ~ eps * r_hat / (2 * norm(d)) and emits one
//     representative point per non-empty cell — a coreset: every input
//     point has a representative within eps * r_hat / 2. No distance
//     evaluations are spent; the compression is pure coordinate
//     arithmetic, which is what makes the round communication-light.
//     A reducer whose part needs more cells than the per-machine cap
//     doubles w locally until the representatives fit.
//   round 3 (ccm-final): one reducer runs the sequential subroutine on
//     the union of representatives; the returned centers are within
//     2 * OPT + O(eps) * r_hat of optimal for the whole input.
//
// Degenerate inputs are handled without distance work: when r_hat == 0
// every machine's part is duplicates of its local centers, so the
// round-1 centers already form an exact coreset and the grid round is
// skipped.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algo/gonzalez.hpp"
#include "algo/result.hpp"
#include "core/driver.hpp"
#include "core/hooks.hpp"
#include "geom/distance.hpp"
#include "mapreduce/cluster.hpp"
#include "mapreduce/partition.hpp"

namespace kc {

struct CcmOptions {
  /// Grid resolution: cell width w = epsilon * r_hat / (2 * norm(d)).
  /// Smaller epsilon = larger coreset = better solution. Must be in
  /// (0, 1].
  double epsilon = 0.5;

  /// Per-machine cap on emitted grid representatives; a machine
  /// needing more doubles its cell width until it fits. 0 derives
  /// max(64, 8 * k) — enough cells that the coreset loses little at
  /// the default epsilon while the final round stays tiny.
  std::size_t max_coreset_per_machine = 0;

  /// How the mapper splits V across machines (round 1 and 2 use the
  /// same parts, so each point is snapped exactly once).
  mr::PartitionStrategy partition = mr::PartitionStrategy::Block;

  /// Sequential subroutine for the final round.
  SeqAlgo final_algo = SeqAlgo::Gonzalez;

  /// GON seeding inside reducers and the final round.
  GonzalezOptions::FirstCenter first_center =
      GonzalezOptions::FirstCenter::FirstPoint;
  std::uint64_t seed = 1;

  /// Cooperative hooks (core/hooks.hpp): `progress` fires after each
  /// round; a cancelled token stops at the next round boundary.
  ProgressFn progress;
  CancellationToken cancel;
};

struct CcmResult : KCenterResult {
  /// Effective grid width in reported scale (0 when the grid round was
  /// skipped because r_hat == 0).
  double grid_width = 0.0;
  std::size_t coreset_size = 0;  ///< representatives the final round saw
  mr::JobTrace trace;
};

/// Runs CCM on `pts` with the given simulated cluster.
///
/// Preconditions: k >= 1, pts non-empty, 0 < epsilon <= 1 (throws
/// std::invalid_argument otherwise).
[[nodiscard]] CcmResult ccm(const DistanceOracle& oracle,
                            std::span<const index_t> pts, std::size_t k,
                            const mr::SimCluster& cluster,
                            const CcmOptions& options = {});

}  // namespace kc
