// Cooperative progress and cancellation hooks for the multi-round
// algorithm loops (MRG reduce rounds, EIM main-loop iterations).
//
// Both hooks are cooperative: the loops consult them only at round
// boundaries, on the thread driving the job, never mid-round and never
// from a reducer task. A solve therefore stops within one round of a
// cancellation request — the granularity the simulated-cluster model
// makes meaningful, since a round is the unit of work the paper's
// metrics account.
//
// The types live in core (not api/) so the algorithm loops can carry
// them in their options structs without depending on the facade; the
// facade (api/solver.hpp) installs request-level hooks into the options
// and maps CancelledError to its typed error taxonomy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string_view>

namespace kc {

/// Shared handle asking a running solve to stop at the next round
/// boundary. Copies share one flag, so the caller keeps a copy, hands
/// another to the options struct, and flips it from any thread (a
/// progress callback, a signal handler thread, a service front-end).
/// A default-constructed token is inert: it can never report
/// cancellation, so options structs embed one at zero cost.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// An armed token whose request_cancel() is observable.
  [[nodiscard]] static CancellationToken make() {
    CancellationToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  void request_cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }
  /// True when this token shares a real flag (false for the inert
  /// default-constructed token).
  [[nodiscard]] bool armed() const noexcept { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Thrown by the algorithm loops when their token reports cancellation.
/// The api layer maps it to api::Error kind Cancelled; direct callers
/// of mrg()/eim() may catch it as-is.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One progress tick, emitted after each MRG reduce round / EIM
/// iteration and carrying enough state for a caller to display
/// progress or enforce a work budget.
struct ProgressEvent {
  std::string_view algorithm;    ///< "mrg" or "eim"
  std::string_view phase;        ///< round label, e.g. "mrg-reduce"
  int round = 0;                 ///< reduce rounds / iterations completed
  std::size_t active_items = 0;  ///< |S| (MRG) or |R| (EIM) after the tick
  std::uint64_t dist_evals = 0;  ///< cumulative distance evaluations so far
};

/// Called between rounds on the thread driving the job. Exceptions
/// thrown from the callback propagate out of the algorithm and abort
/// the run (the facade's budget enforcement relies on exactly this).
using ProgressFn = std::function<void(const ProgressEvent&)>;

}  // namespace kc
