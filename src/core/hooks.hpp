// Cooperative progress and cancellation hooks for the multi-round
// algorithm loops (MRG reduce rounds, EIM main-loop iterations).
//
// The loops consult the hooks at round boundaries, on the thread
// driving the job; in addition, when the facade binds a ChunkContext
// onto the DistanceOracle (exec/chunk_context.hpp), the same
// CancellationToken is polled between chunks *inside* the bulk
// distance scans, so even a single huge round stops within one chunk
// of a cancellation request or budget exhaustion.
//
// CancellationToken / CancelledError / BudgetExceededError live in
// exec/cancellation.hpp (the execution machinery consults them); this
// header re-exports them so the algorithm loops and their options
// structs keep spelling kc::CancellationToken without depending on the
// facade.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

#include "exec/cancellation.hpp"

namespace kc {

/// One progress tick, emitted after each MRG reduce round / EIM
/// iteration and carrying enough state for a caller to display
/// progress or track a work budget.
struct ProgressEvent {
  std::string_view algorithm;    ///< "mrg" or "eim"
  std::string_view phase;        ///< round label, e.g. "mrg-reduce"
  int round = 0;                 ///< reduce rounds / iterations completed
  std::size_t active_items = 0;  ///< |S| (MRG) or |R| (EIM) after the tick
  std::uint64_t dist_evals = 0;  ///< cumulative distance evaluations so far
};

/// Called between rounds on the thread driving the job. Exceptions
/// thrown from the callback propagate out of the algorithm and abort
/// the run.
using ProgressFn = std::function<void(const ProgressEvent&)>;

}  // namespace kc
