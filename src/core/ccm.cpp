#include "core/ccm.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

#include "geom/spatial_index.hpp"
#include "rng/rng.hpp"

namespace kc {

namespace {

void check_cancelled(const CcmOptions& options, const char* where) {
  if (options.cancel.cancelled()) {
    throw CancelledError(std::string("ccm: cancelled before ") + where);
  }
}

/// Dimension normalizer of the snapping bound: a point moves by at
/// most w/2 per coordinate, i.e. by at most w/2 * norm(d) in the
/// metric, so w = eps * r_hat / norm(d) keeps the move within
/// eps * r_hat / 2.
[[nodiscard]] double metric_norm(MetricKind kind, std::size_t dim) noexcept {
  switch (kind) {
    case MetricKind::L2: return std::sqrt(static_cast<double>(dim));
    case MetricKind::L1: return static_cast<double>(dim);
    case MetricKind::Linf: return 1.0;
  }
  return 1.0;
}

/// One representative point (the part's first, deterministically) per
/// non-empty grid cell of width `w`; doubles `w` until at most `cap`
/// cells are occupied. Spends no distance evaluations.
[[nodiscard]] std::vector<index_t> grid_representatives(
    const PointSet& points, std::span<const index_t> part, double w,
    std::size_t cap, double* effective_w) {
  std::vector<index_t> reps;
  for (;;) {
    reps.clear();
    // Exact cell keys (no hash collisions): deterministic across
    // backends and platforms.
    std::map<std::vector<std::int64_t>, index_t> cells;
    std::vector<std::int64_t> key(points.dim());
    bool overflow = false;
    for (const index_t id : part) {
      // Shared snapping helper (geom/spatial_index.hpp): the coreset
      // grid and the pruning index cannot drift apart. It clamps before
      // the cast so a coordinate huge relative to w (tiny r_hat under
      // far-flung outliers) saturates instead of overflowing.
      grid_cell_key(points[id], w, key);
      if (cells.try_emplace(key, id).second) {
        reps.push_back(id);
        if (reps.size() > cap) {
          overflow = true;
          break;
        }
      }
    }
    if (!overflow) break;
    w *= 2.0;  // halve the resolution until the part fits the cap
  }
  *effective_w = w;
  return reps;
}

}  // namespace

CcmResult ccm(const DistanceOracle& oracle, std::span<const index_t> pts,
              std::size_t k, const mr::SimCluster& cluster,
              const CcmOptions& options) {
  if (pts.empty()) throw std::invalid_argument("ccm: empty point subset");
  if (k == 0) throw std::invalid_argument("ccm: k must be at least 1");
  if (!(options.epsilon > 0.0) || options.epsilon > 1.0) {
    throw std::invalid_argument("ccm: epsilon must be in (0, 1]");
  }

  const std::size_t cap = options.max_coreset_per_machine != 0
                              ? options.max_coreset_per_machine
                              : std::max<std::size_t>(64, 8 * k);
  const bool randomize = options.first_center ==
                         GonzalezOptions::FirstCenter::Random;

  CcmResult result;
  Rng rng(options.seed);
  const auto parts = mr::partition_items(pts, cluster.machines(),
                                         options.partition, &rng);
  for (const auto& part : parts) {
    cluster.check_capacity(part.size(), "ccm-estimate");
  }

  // ---- Round 1: local GON per machine -> local centers + radius.
  check_cancelled(options, "ccm-estimate");
  std::vector<std::vector<index_t>> local_centers(parts.size());
  std::vector<double> local_radius(parts.size(), 0.0);
  auto& estimate_round = cluster.run_indexed_round_retrying(
      "ccm-estimate", static_cast<int>(parts.size()),
      [&](int machine) {
        const auto& part = parts[static_cast<std::size_t>(machine)];
        const std::uint64_t machine_seed =
            Rng(options.seed).split(static_cast<std::uint64_t>(machine))();
        KCenterResult local = run_sequential(SeqAlgo::Gonzalez, oracle, part,
                                             k, machine_seed, randomize);
        local_radius[static_cast<std::size_t>(machine)] =
            local.radius_comparable;
        local_centers[static_cast<std::size_t>(machine)] =
            std::move(local.centers);
      },
      result.trace);
  double r_hat_comparable = 0.0;
  std::size_t local_total = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    r_hat_comparable = std::max(r_hat_comparable, local_radius[i]);
    local_total += local_centers[i].size();
  }
  estimate_round.items_in = pts.size();
  estimate_round.items_out = local_total;
  estimate_round.shuffle_items = pts.size();
  if (options.progress) {
    options.progress({"ccm", "ccm-estimate", 1, local_total,
                      result.trace.total_dist_evals()});
  }

  // ---- Round 2: grid-snap each part into a coreset. Skipped when
  // r_hat == 0 (every part is duplicates of its local centers, which
  // therefore already form an exact coreset).
  std::vector<index_t> coreset;
  if (r_hat_comparable > 0.0) {
    check_cancelled(options, "ccm-grid");
    const double r_hat = oracle.to_reported(r_hat_comparable);
    const double width =
        options.epsilon * r_hat / (2.0 * metric_norm(oracle.kind(), oracle.dim()));
    std::vector<std::vector<index_t>> emitted(parts.size());
    std::vector<double> widths(parts.size(), width);
    auto& grid_round = cluster.run_indexed_round_retrying(
        "ccm-grid", static_cast<int>(parts.size()),
        [&](int machine) {
          const std::size_t i = static_cast<std::size_t>(machine);
          emitted[i] = grid_representatives(oracle.points(), parts[i], width,
                                            cap, &widths[i]);
        },
        result.trace);
    std::size_t emitted_total = 0;
    for (const auto& e : emitted) emitted_total += e.size();
    coreset.reserve(emitted_total);
    for (const auto& e : emitted) {
      coreset.insert(coreset.end(), e.begin(), e.end());
    }
    result.grid_width = *std::max_element(widths.begin(), widths.end());
    grid_round.items_in = pts.size();
    grid_round.items_out = emitted_total;
    grid_round.shuffle_items = emitted_total;
    if (options.progress) {
      options.progress({"ccm", "ccm-grid", 2, emitted_total,
                        result.trace.total_dist_evals()});
    }
  } else {
    coreset.reserve(local_total);
    for (const auto& centers : local_centers) {
      coreset.insert(coreset.end(), centers.begin(), centers.end());
    }
  }
  result.coreset_size = coreset.size();

  // ---- Round 3: one reducer solves the coreset sequentially.
  check_cancelled(options, "ccm-final");
  cluster.check_capacity(coreset.size(), "ccm-final");
  KCenterResult final_result;
  auto& final_round = cluster.run_indexed_round_retrying(
      "ccm-final", 1,
      [&](int) {
        final_result =
            run_sequential(options.final_algo, oracle, coreset, k,
                           Rng(options.seed).split(~0ull)(), randomize);
      },
      result.trace);
  final_round.items_in = coreset.size();
  final_round.items_out = final_result.centers.size();
  final_round.shuffle_items = coreset.size();
  if (options.progress) {
    options.progress({"ccm", "ccm-final", 3, final_result.centers.size(),
                      result.trace.total_dist_evals()});
  }

  result.centers = std::move(final_result.centers);
  result.radius_comparable = final_result.radius_comparable;
  return result;
}

}  // namespace kc
