// Dispatch over the sequential k-center subroutines.
//
// Both MRG and EIM are parameterized by which sequential algorithm runs
// on the per-machine subsets / the final sample. The paper fixes GON
// ("For all parallel implementations, GON is the subprocedure for
// selecting the final centers", §7.1) and raises HS as future work;
// bench_ablation_inner_algo explores the swap.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "algo/result.hpp"
#include "geom/distance.hpp"

namespace kc {

enum class SeqAlgo {
  Gonzalez,        ///< GON: greedy farthest-point, 2-approx, O(kN)
  HochbaumShmoys,  ///< HS: threshold binary search, 2-approx, O(N^2 log N)
};

[[nodiscard]] std::string_view to_string(SeqAlgo algo) noexcept;

/// Runs the chosen sequential algorithm on `pts`. `seed` feeds GON's
/// random first-center pick when `randomize_seed` is true; HS is
/// deterministic.
[[nodiscard]] KCenterResult run_sequential(SeqAlgo algo,
                                           const DistanceOracle& oracle,
                                           std::span<const index_t> pts,
                                           std::size_t k,
                                           std::uint64_t seed = 1,
                                           bool randomize_seed = false);

}  // namespace kc
