#include "core/disjoint_union.hpp"

#include <stdexcept>

#include "core/driver.hpp"

namespace kc {

DisjointUnionResult mrg_disjoint_union(const DistanceOracle& oracle,
                                       std::span<const index_t> pts,
                                       std::size_t k,
                                       const mr::SimCluster& cluster,
                                       const DisjointUnionOptions& options) {
  if (pts.empty()) {
    throw std::invalid_argument("mrg_disjoint_union: empty point subset");
  }
  if (k == 0) {
    throw std::invalid_argument("mrg_disjoint_union: k must be at least 1");
  }
  if (options.instances == 0) {
    throw std::invalid_argument(
        "mrg_disjoint_union: instances must be at least 1");
  }

  const std::size_t instances = std::min(options.instances, pts.size());
  DisjointUnionResult result;
  result.chunk_results.reserve(instances);

  // Contiguous chunks model the external-memory stream: each chunk is
  // paged in, clustered, and only its k centers are retained.
  std::vector<index_t> union_centers;
  union_centers.reserve(instances * k);
  int max_chunk_rounds = 0;
  const std::size_t base = pts.size() / instances;
  const std::size_t extra = pts.size() % instances;
  std::size_t pos = 0;
  std::uint64_t evals_before_chunk = 0;  // completed chunks' total evals
  for (std::size_t chunk = 0; chunk < instances; ++chunk) {
    const std::size_t len = base + (chunk < extra ? 1 : 0);
    if (len == 0) continue;
    MrgOptions chunk_options = options.mrg;
    chunk_options.seed = options.mrg.seed + chunk * 7919;
    if (options.mrg.progress) {
      // Progress events must report job-wide work, not chunk-local:
      // budget enforcement hangs off dist_evals, so a per-chunk count
      // would let a whole run slip under a global cap one chunk at a
      // time. Rounds stay chunk-local (each instance restarts its
      // while loop); the label says which job this really is.
      chunk_options.progress = [&options,
                               evals_before_chunk](const ProgressEvent& event) {
        ProgressEvent global = event;
        global.algorithm = "mrg-du";
        global.dist_evals = evals_before_chunk + event.dist_evals;
        options.mrg.progress(global);
      };
    }
    MrgResult chunk_result =
        mrg(oracle, pts.subspan(pos, len), k, cluster, chunk_options);
    pos += len;
    evals_before_chunk += chunk_result.trace.total_dist_evals();
    max_chunk_rounds =
        std::max(max_chunk_rounds, chunk_result.reduce_rounds);
    union_centers.insert(union_centers.end(), chunk_result.centers.begin(),
                         chunk_result.centers.end());
    result.chunk_results.push_back(std::move(chunk_result));
  }

  // Final sequential pass over the union of chunk solutions.
  KCenterResult final_result;
  auto& union_round = cluster.run_indexed_round_retrying(
      "union-final", 1,
      [&](int) {
        final_result = run_sequential(options.mrg.final_algo, oracle,
                                      union_centers, k,
                                      options.mrg.seed ^ 0x5bd1e995u);
      },
      result.union_trace);
  union_round.items_in = union_centers.size();
  union_round.items_out = final_result.centers.size();
  union_round.shuffle_items = union_centers.size();

  result.centers = std::move(final_result.centers);
  result.radius_comparable = final_result.radius_comparable;
  result.guaranteed_factor = 2 * (max_chunk_rounds + 2);
  return result;
}

}  // namespace kc
