// EIM: the parameterized iterative-sampling MapReduce algorithm
// (Algorithm 2 "EIM-MapReduce-Sample" + Algorithm 3 "Select" of the
// paper; a generalization of Ene, Im & Moseley, KDD 2011).
//
// Each iteration of the main loop is three MapReduce rounds:
//   1. sample: every point of R joins S with prob 9k n^eps log(n)/|R|
//      and H with prob 4 n^eps log(n)/|R|;
//   2. select: one machine computes d(x, S) for x in H, sorts H by that
//      distance (farthest first) and takes the pivot v at position
//      phi*log(n) (the paper's new knob; Ene et al. fix phi = 8);
//   3. prune: every x in R with d(x, S) <= d(v, S) leaves R.
// The loop runs while |R| > (4/eps) k n^eps log n, after which one final
// round runs a sequential algorithm on C = S [union] R.
//
// Termination fixes from §4.1 are implemented: the pruning comparison
// is `<=` (the original `<` can stall on ties), and sampled points are
// always removed from R. With phi in its provable range the combined
// procedure is a 10-approximation "with sufficient probability" (§6);
// smaller phi trades the guarantee for fewer iterations.
//
// When n is already below the loop threshold (k too large relative to
// n), no sampling happens and the whole input goes to one machine —
// exactly the collapse onto GON the paper observes in Figures 3b/4b.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "algo/result.hpp"
#include "core/driver.hpp"
#include "core/hooks.hpp"
#include "geom/distance.hpp"
#include "mapreduce/cluster.hpp"

namespace kc {

/// Base of the log(n) appearing in EIM's threshold, sample rates and
/// pivot rank. The paper (like Ene et al.) writes an unbased "log";
/// the choice rescales constants only. Ten reproduces the paper's
/// observed sampling/no-sampling switchovers best (see DESIGN.md).
enum class LogBase { E, Two, Ten };

[[nodiscard]] std::string_view to_string(LogBase base) noexcept;
[[nodiscard]] double log_with_base(double x, LogBase base) noexcept;

struct EimOptions {
  double epsilon = 0.1;  ///< the paper confirms Ene et al.'s 0.1 (§7.2)
  double phi = 8.0;      ///< pivot rank multiplier; 8 = original scheme
  LogBase log_base = LogBase::Ten;

  /// Sequential subroutine for the final clean-up round (GON in §7.1).
  SeqAlgo final_algo = SeqAlgo::Gonzalez;

  /// §4.1 termination fixes. Both default on (the paper's version);
  /// turning them off reproduces Ene et al.'s original scheme, which
  /// can stall on distance ties (prune keeps every point whose
  /// distance *equals* the pivot's) and on sampled points re-entering
  /// R. Only disable for the regression demonstration — runs may then
  /// exhaust max_iterations and throw.
  bool tie_breaking_removal = true;  ///< prune with <= (fix 1) vs <
  bool remove_sampled = true;        ///< sampled points always leave R (fix 2)

  std::uint64_t seed = 1;
  int max_iterations = 100;  ///< safety valve; theory: O(1/eps) w.h.p.

  /// Cooperative hooks (core/hooks.hpp). `progress` fires after every
  /// main-loop iteration (three MapReduce rounds); a cancelled `cancel`
  /// token stops the run at the next iteration boundary (before the
  /// final clean-up round included) by throwing CancelledError. Both
  /// default inert. (Solves driven through api::Solver additionally
  /// observe the token *inside* the bulk distance scans —
  /// chunk-granular, via the oracle's ChunkContext.)
  ProgressFn progress;
  CancellationToken cancel;
};

struct EimResult : KCenterResult {
  int iterations = 0;   ///< main-loop iterations (3 MapReduce rounds each)
  bool sampled = false; ///< false => degenerated to sequential on all of V
  std::size_t final_sample_size = 0;  ///< |C| = |S| + |R| at loop exit
  mr::JobTrace trace;
};

/// The loop threshold (4/eps) * k * n^eps * log n. Exposed so tests and
/// benches can predict the sampling/no-sampling regime.
[[nodiscard]] double eim_loop_threshold(std::size_t n, std::size_t k,
                                        const EimOptions& options);

/// Runs EIM on `pts` with the given simulated cluster.
///
/// Preconditions: k >= 1, pts non-empty, 0 < epsilon < 1, phi > 0.
///
/// radius_comparable is the covering radius over the final sample C;
/// use eval::covering_radius for the paper's whole-input solution value.
[[nodiscard]] EimResult eim(const DistanceOracle& oracle,
                            std::span<const index_t> pts, std::size_t k,
                            const mr::SimCluster& cluster,
                            const EimOptions& options = {});

}  // namespace kc
