// Umbrella header: the public API of the parallel k-center library.
//
//   #include "core/kcenter.hpp"
//
//   kc::Rng rng(7);
//   kc::PointSet data = kc::data::generate_gau(100'000, 25, 2, 100.0, 0.1, rng);
//   kc::DistanceOracle oracle(data);
//   kc::mr::SimCluster cluster(/*machines=*/50);
//   auto centers = kc::mrg(oracle, data.all_indices(), /*k=*/25, cluster);
//   auto value = kc::eval::covering_radius(oracle, data.all_indices(),
//                                          centers.centers).radius;
//
// See README.md for the architecture overview and DESIGN.md for the
// paper-reproduction inventory.
#pragma once

#include "algo/brute_force.hpp"
#include "algo/gonzalez.hpp"
#include "algo/hochbaum_shmoys.hpp"
#include "algo/result.hpp"
#include "core/disjoint_union.hpp"
#include "core/driver.hpp"
#include "core/eim.hpp"
#include "core/mrg.hpp"
#include "data/generators.hpp"
#include "data/loader.hpp"
#include "data/planted.hpp"
#include "data/surrogates.hpp"
#include "eval/evaluate.hpp"
#include "eval/lower_bound.hpp"
#include "exec/backend.hpp"
#include "exec/thread_pool.hpp"
#include "geom/counters.hpp"
#include "geom/distance.hpp"
#include "geom/parallel.hpp"
#include "geom/point_set.hpp"
#include "mapreduce/cluster.hpp"
#include "mapreduce/partition.hpp"
#include "mapreduce/round_stats.hpp"
#include "mapreduce/trace.hpp"
#include "rng/rng.hpp"
