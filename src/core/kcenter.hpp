// Umbrella header: the public API of the parallel k-center library.
//
//   #include "core/kcenter.hpp"
//
//   kc::Rng rng(7);
//   kc::PointSet data = kc::data::generate_gau(100'000, 25, 2, 100.0, 0.1, rng);
//
//   kc::api::SolveRequest request;
//   request.points = &data;
//   request.k = 25;
//   request.algorithm = "mrg";       // any kc::api::registry() name
//   kc::api::Solver solver;
//   kc::api::SolveReport report = solver.solve(request);
//   // report.centers, report.value (covering radius over all points),
//   // report.guarantee, report.trace, report.sim_seconds, ...
//
// The facade (src/api/) validates the request, dispatches through the
// string-keyed algorithm registry, and returns one unified report;
// invalid requests, unavailable backends, exhausted budgets and fired
// cancellation tokens surface as kc::api::Error with a typed kind. The
// underlying free functions — kc::gonzalez, kc::hochbaum_shmoys,
// kc::mrg, kc::eim, kc::brute_force_opt — remain public and are what
// the registry's built-in runners call; use them directly when you
// already hold a DistanceOracle/SimCluster and want no intermediary.
//
// See README.md for the architecture overview and DESIGN.md for the
// paper-reproduction inventory.
#pragma once

#include "algo/brute_force.hpp"
#include "algo/gonzalez.hpp"
#include "algo/hochbaum_shmoys.hpp"
#include "algo/result.hpp"
#include "api/error.hpp"
#include "api/registry.hpp"
#include "api/report.hpp"
#include "api/request.hpp"
#include "api/solver.hpp"
#include "core/ccm.hpp"
#include "core/disjoint_union.hpp"
#include "core/driver.hpp"
#include "core/eim.hpp"
#include "core/hooks.hpp"
#include "core/mrg.hpp"
#include "data/generators.hpp"
#include "data/loader.hpp"
#include "data/planted.hpp"
#include "data/surrogates.hpp"
#include "eval/evaluate.hpp"
#include "eval/lower_bound.hpp"
#include "exec/backend.hpp"
#include "exec/cancellation.hpp"
#include "exec/chunk_context.hpp"
#include "exec/cpu_clock.hpp"
#include "exec/scheduler.hpp"
#include "geom/counters.hpp"
#include "geom/distance.hpp"
#include "geom/parallel.hpp"
#include "geom/point_set.hpp"
#include "mapreduce/cluster.hpp"
#include "mapreduce/partition.hpp"
#include "mapreduce/round_stats.hpp"
#include "mapreduce/trace.hpp"
#include "rng/rng.hpp"
