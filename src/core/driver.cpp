#include "core/driver.hpp"

#include <stdexcept>

#include "algo/gonzalez.hpp"
#include "algo/hochbaum_shmoys.hpp"

namespace kc {

std::string_view to_string(SeqAlgo algo) noexcept {
  switch (algo) {
    case SeqAlgo::Gonzalez: return "GON";
    case SeqAlgo::HochbaumShmoys: return "HS";
  }
  return "?";
}

KCenterResult run_sequential(SeqAlgo algo, const DistanceOracle& oracle,
                             std::span<const index_t> pts, std::size_t k,
                             std::uint64_t seed, bool randomize_seed) {
  switch (algo) {
    case SeqAlgo::Gonzalez: {
      GonzalezOptions options;
      options.first = randomize_seed ? GonzalezOptions::FirstCenter::Random
                                     : GonzalezOptions::FirstCenter::FirstPoint;
      options.seed = seed;
      GonzalezResult r = gonzalez(oracle, pts, k, options);
      return {std::move(r.centers), r.radius_comparable};
    }
    case SeqAlgo::HochbaumShmoys:
      return hochbaum_shmoys(oracle, pts, k);
  }
  throw std::logic_error("run_sequential: unknown algorithm");
}

}  // namespace kc
