#include "core/mrg.hpp"

#include <stdexcept>
#include <string>

#include "rng/rng.hpp"

namespace kc {

namespace {

[[nodiscard]] std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

void check_cancelled(const MrgOptions& options, int rounds_done) {
  if (options.cancel.cancelled()) {
    throw CancelledError("mrg: cancelled after " + std::to_string(rounds_done) +
                         " reduce round(s)");
  }
}

}  // namespace

MrgResult mrg(const DistanceOracle& oracle, std::span<const index_t> pts,
              std::size_t k, const mr::SimCluster& cluster,
              const MrgOptions& options) {
  if (pts.empty()) throw std::invalid_argument("mrg: empty point subset");
  if (k == 0) throw std::invalid_argument("mrg: k must be at least 1");

  const std::size_t n = pts.size();
  const std::size_t m = static_cast<std::size_t>(cluster.machines());
  const std::size_t capacity =
      options.capacity != 0 ? options.capacity
                            : std::max(ceil_div(n, m), k * m);

  if (ceil_div(n, m) > capacity) {
    throw std::length_error(
        "mrg: input does not fit the cluster (ceil(n/m) = " +
        std::to_string(ceil_div(n, m)) + " > capacity " +
        std::to_string(capacity) + ")");
  }

  MrgResult result;
  Rng rng(options.seed);

  std::vector<index_t> sample(pts.begin(), pts.end());

  while (sample.size() > capacity) {
    check_cancelled(options, result.reduce_rounds);
    if (result.reduce_rounds >= options.max_rounds) {
      throw std::runtime_error("mrg: exceeded max_rounds without converging");
    }

    // First round: all m machines (Algorithm 1 line 3). Later rounds:
    // just enough machines to respect capacity, which maximizes the
    // per-round reduction (the multi-round analysis in §3.3 uses
    // m' = ceil(k*m/c) likewise).
    const bool first_round = (result.reduce_rounds == 0);
    const std::size_t machines_this_round =
        first_round ? m : std::min(m, ceil_div(sample.size(), capacity));

    // Progress requires strictly fewer output centers than input points.
    if (k * machines_this_round >= sample.size()) {
      throw std::runtime_error(
          "mrg: cannot reduce sample of " + std::to_string(sample.size()) +
          " points with k=" + std::to_string(k) + " on " +
          std::to_string(machines_this_round) +
          " machines; k is too large for capacity " + std::to_string(capacity));
    }

    // Machine failure: a round that loses machines is re-run entirely
    // on the survivors (re-partitioned — the lost machines' shares must
    // land somewhere). Attempt 0 is byte-identical to the pre-fault
    // code path: same partition, same rng draws, same seeds.
    std::size_t machines_now = machines_this_round;
    std::vector<std::vector<index_t>> emitted;
    mr::RoundStats* round = nullptr;
    for (int attempt = 0; round == nullptr; ++attempt) {
      if (attempt >= mr::kMaxRoundAttempts) {
        throw std::runtime_error(
            "mrg: round 'mrg-reduce' failed " +
            std::to_string(mr::kMaxRoundAttempts) + " attempts (machine loss)");
      }
      // Explicit assignments address the original machine count, so a
      // retry on fewer survivors falls back to Block.
      const mr::PartitionStrategy strategy =
          ((first_round && attempt == 0) ||
           options.partition != mr::PartitionStrategy::Explicit)
              ? options.partition
              : mr::PartitionStrategy::Block;
      std::span<const int> assignment;
      if (strategy == mr::PartitionStrategy::Explicit) {
        if (!options.explicit_assignment ||
            options.explicit_assignment->size() != sample.size()) {
          throw std::invalid_argument(
              "mrg: Explicit partition requires one machine id per input "
              "point");
        }
        assignment = *options.explicit_assignment;
      }

      const auto parts =
          mr::partition_items(sample, static_cast<int>(machines_now), strategy,
                              &rng, assignment);
      if (attempt == 0) {
        // Capacity is advisory; a retry deliberately overloads the
        // survivors rather than failing the job.
        for (const auto& part : parts) {
          cluster.check_capacity(part.size(), "mrg-reduce");
        }
      }

      // Reducers: k centers from each part via the inner algorithm.
      emitted.assign(parts.size(), {});
      try {
        round = &cluster.run_indexed_round(
            "mrg-reduce", static_cast<int>(parts.size()),
            [&](int machine) {
              const auto& part = parts[static_cast<std::size_t>(machine)];
              const std::uint64_t machine_seed =
                  Rng(options.seed)
                      .split(static_cast<std::uint64_t>(machine))();
              KCenterResult local = run_sequential(
                  options.inner, oracle, part, k, machine_seed,
                  options.first_center == GonzalezOptions::FirstCenter::Random);
              emitted[static_cast<std::size_t>(machine)] =
                  std::move(local.centers);
            },
            result.trace);
      } catch (const mr::MachineFailure& failure) {
        machines_now = std::min(
            machines_now, static_cast<std::size_t>(failure.survivors()));
      }
    }

    std::size_t emitted_total = 0;
    for (const auto& e : emitted) emitted_total += e.size();

    round->items_in = sample.size();
    round->items_out = emitted_total;
    // The paper does not charge data movement (§7.1); we still record
    // the records that crossed machines for completeness.
    round->shuffle_items = sample.size();

    sample.clear();
    sample.reserve(emitted_total);
    for (const auto& e : emitted) {
      sample.insert(sample.end(), e.begin(), e.end());
    }
    ++result.reduce_rounds;
    if (options.progress) {
      options.progress({"mrg", "mrg-reduce", result.reduce_rounds,
                        sample.size(), result.trace.total_dist_evals()});
    }
  }

  // Final round: the mapper sends all of S to a single reducer, which
  // runs the sequential algorithm to pick the k result centers.
  check_cancelled(options, result.reduce_rounds);
  cluster.check_capacity(sample.size(), "mrg-final");
  KCenterResult final_result;
  mr::RoundStats* final_round = nullptr;
  for (int attempt = 0; final_round == nullptr; ++attempt) {
    if (attempt >= mr::kMaxRoundAttempts) {
      throw std::runtime_error(
          "mrg: round 'mrg-final' failed " +
          std::to_string(mr::kMaxRoundAttempts) + " attempts (machine loss)");
    }
    try {
      final_round = &cluster.run_indexed_round(
          "mrg-final", 1,
          [&](int) {
            final_result = run_sequential(
                options.final_algo, oracle, sample, k,
                Rng(options.seed).split(~0ull)(),
                options.first_center == GonzalezOptions::FirstCenter::Random);
          },
          result.trace);
    } catch (const mr::MachineFailure&) {
      // One reducer; the retry simply runs it again.
    }
  }
  final_round->items_in = sample.size();
  final_round->items_out = final_result.centers.size();
  final_round->shuffle_items = sample.size();

  result.centers = std::move(final_result.centers);
  result.radius_comparable = final_result.radius_comparable;
  return result;
}

}  // namespace kc
