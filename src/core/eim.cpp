#include "core/eim.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "rng/rng.hpp"

namespace kc {

std::string_view to_string(LogBase base) noexcept {
  switch (base) {
    case LogBase::E: return "ln";
    case LogBase::Two: return "log2";
    case LogBase::Ten: return "log10";
  }
  return "?";
}

double log_with_base(double x, LogBase base) noexcept {
  switch (base) {
    case LogBase::E: return std::log(x);
    case LogBase::Two: return std::log2(x);
    case LogBase::Ten: return std::log10(x);
  }
  return std::log(x);
}

double eim_loop_threshold(std::size_t n, std::size_t k,
                          const EimOptions& options) {
  const double dn = static_cast<double>(n);
  return (4.0 / options.epsilon) * static_cast<double>(k) *
         std::pow(dn, options.epsilon) * log_with_base(dn, options.log_base);
}

namespace {

struct Chunk {
  std::size_t lo;
  std::size_t hi;
};

void check_cancelled(const EimOptions& options, int iterations_done) {
  if (options.cancel.cancelled()) {
    throw CancelledError("eim: cancelled after " +
                         std::to_string(iterations_done) + " iteration(s)");
  }
}

/// Runs one logical round, re-running it on the survivors whenever the
/// cluster loses machines (mr::MachineFailure). `attempt` receives the
/// machine count to use and must rebuild its chunking/output buffers —
/// round bodies are written to be idempotent (min-folds, buffers
/// reassigned per attempt), so a re-run over already-touched state is
/// safe. Attempt 0 with the full machine count is byte-identical to
/// the pre-fault code path.
mr::RoundStats& run_round_with_retry(
    std::string_view name, std::size_t machines,
    const std::function<mr::RoundStats&(std::size_t)>& attempt) {
  std::size_t machines_now = machines;
  for (int a = 0; a < mr::kMaxRoundAttempts; ++a) {
    try {
      return attempt(machines_now);
    } catch (const mr::MachineFailure& failure) {
      machines_now = std::min(machines_now,
                              static_cast<std::size_t>(failure.survivors()));
    }
  }
  throw std::runtime_error("eim: round '" + std::string(name) + "' failed " +
                           std::to_string(mr::kMaxRoundAttempts) +
                           " attempts (machine loss)");
}

/// Splits [0, n) into at most `machines` near-equal contiguous ranges.
[[nodiscard]] std::vector<Chunk> make_chunks(std::size_t n,
                                             std::size_t machines) {
  const std::size_t parts = std::max<std::size_t>(1, std::min(machines, n));
  std::vector<Chunk> chunks;
  chunks.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t pos = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    chunks.push_back({pos, pos + len});
    pos += len;
  }
  return chunks;
}

}  // namespace

EimResult eim(const DistanceOracle& oracle, std::span<const index_t> pts,
              std::size_t k, const mr::SimCluster& cluster,
              const EimOptions& options) {
  if (pts.empty()) throw std::invalid_argument("eim: empty point subset");
  if (k == 0) throw std::invalid_argument("eim: k must be at least 1");
  if (!(options.epsilon > 0.0) || !(options.epsilon < 1.0)) {
    throw std::invalid_argument("eim: epsilon must be in (0, 1)");
  }
  if (!(options.phi > 0.0)) {
    throw std::invalid_argument("eim: phi must be positive");
  }

  const std::size_t n = pts.size();
  const double dn = static_cast<double>(n);
  const double n_eps = std::pow(dn, options.epsilon);
  const double log_n = log_with_base(dn, options.log_base);
  const double loop_threshold = eim_loop_threshold(n, k, options);
  const std::size_t m = static_cast<std::size_t>(cluster.machines());

  EimResult result;
  Rng rng(options.seed);

  // Degenerate regime (Figures 3b and 4b): the while-loop condition
  // |R| > (4/eps) k n^eps log n never holds, so the whole input goes to
  // one machine and the procedure *is* the sequential algorithm. A
  // non-positive threshold (n = 1 makes log n = 0) degenerates too:
  // the sampling probabilities would all be zero.
  if (static_cast<double>(n) <= loop_threshold || loop_threshold <= 0.0) {
    check_cancelled(options, 0);
    KCenterResult final_result;
    auto& round = run_round_with_retry(
        "eim-final(degenerate)", 1, [&](std::size_t) -> mr::RoundStats& {
          return cluster.run_indexed_round(
              "eim-final(degenerate)", 1,
              [&](int) {
                final_result = run_sequential(options.final_algo, oracle, pts,
                                              k, rng.split(0)());
              },
              result.trace);
        });
    round.items_in = n;
    round.items_out = final_result.centers.size();
    round.shuffle_items = n;
    result.centers = std::move(final_result.centers);
    result.radius_comparable = final_result.radius_comparable;
    result.sampled = false;
    result.final_sample_size = n;
    return result;
  }

  // Local positions into `pts`; dist_to_sample[p] = comparable d(pts[p], S).
  std::vector<index_t> r_set(n);
  std::iota(r_set.begin(), r_set.end(), index_t{0});
  std::vector<double> dist_to_sample(n, kInfDist);
  std::vector<std::uint8_t> in_sample(n, 0);

  std::vector<index_t> sample_global;  // S, as global point ids

  while (static_cast<double>(r_set.size()) > loop_threshold) {
    check_cancelled(options, result.iterations);
    if (result.iterations >= options.max_iterations) {
      throw std::runtime_error("eim: exceeded max_iterations; |R| = " +
                               std::to_string(r_set.size()));
    }
    ++result.iterations;

    const double r_size = static_cast<double>(r_set.size());
    const double p_sample = std::min(1.0, 9.0 * k * n_eps * log_n / r_size);
    const double p_pivot = std::min(1.0, 4.0 * n_eps * log_n / r_size);

    // ---- Round 1 (Algorithm 2, lines 3-4): per-machine Bernoulli
    // sampling of the new S members and the pivot-candidate set H.
    std::vector<Chunk> chunks;
    std::vector<std::vector<index_t>> sampled_parts;
    std::vector<std::vector<index_t>> pivot_parts;
    auto& sample_round = run_round_with_retry(
        "eim-sample", m, [&](std::size_t machines_now) -> mr::RoundStats& {
          chunks = make_chunks(r_set.size(), machines_now);
          sampled_parts.assign(chunks.size(), {});
          pivot_parts.assign(chunks.size(), {});
          return cluster.run_indexed_round(
              "eim-sample", static_cast<int>(chunks.size()),
              [&](int machine) {
                const auto [lo, hi] =
                    chunks[static_cast<std::size_t>(machine)];
                Rng machine_rng =
                    Rng(options.seed)
                        .split((static_cast<std::uint64_t>(result.iterations)
                                << 32) |
                               static_cast<std::uint64_t>(machine));
                auto& sampled =
                    sampled_parts[static_cast<std::size_t>(machine)];
                auto& pivots = pivot_parts[static_cast<std::size_t>(machine)];
                for (std::size_t i = lo; i < hi; ++i) {
                  const index_t p = r_set[i];
                  if (machine_rng.bernoulli(p_sample)) sampled.push_back(p);
                  if (machine_rng.bernoulli(p_pivot)) pivots.push_back(p);
                }
              },
              result.trace);
        });

    std::vector<index_t> delta_positions;  // new S members (local positions)
    std::vector<index_t> pivot_positions;  // H (local positions)
    for (const auto& part : sampled_parts) {
      delta_positions.insert(delta_positions.end(), part.begin(), part.end());
    }
    for (const auto& part : pivot_parts) {
      pivot_positions.insert(pivot_positions.end(), part.begin(), part.end());
    }
    sample_round.items_in = r_set.size();
    sample_round.items_out = delta_positions.size() + pivot_positions.size();

    std::vector<index_t> delta_global;
    delta_global.reserve(delta_positions.size());
    for (const index_t p : delta_positions) {
      in_sample[p] = 1;
      delta_global.push_back(pts[p]);
    }
    sample_global.insert(sample_global.end(), delta_global.begin(),
                         delta_global.end());

    // ---- Round 2 (lines 5-6): one machine receives H and S and picks
    // the pivot v = the phi*log(n)-th farthest point of H from S.
    // d(x, S) is maintained incrementally: only the distances to the
    // *new* sample members are computed, and update_nearest_multi
    // folds them in center-blocked groups of simd::kCenterBlock per
    // streaming pass over H.
    double removal_threshold = -kInfDist;
    auto& select_round = run_round_with_retry(
        "eim-select", 1, [&](std::size_t) -> mr::RoundStats& {
          return cluster.run_indexed_round(
              "eim-select", 1,
              [&](int) {
                if (pivot_positions.empty()) return;
                std::vector<index_t> h_global(pivot_positions.size());
                std::vector<double> h_best(pivot_positions.size());
                for (std::size_t i = 0; i < pivot_positions.size(); ++i) {
                  h_global[i] = pts[pivot_positions[i]];
                  h_best[i] = dist_to_sample[pivot_positions[i]];
                }
                oracle.update_nearest_multi(h_global, delta_global, h_best);
                for (std::size_t i = 0; i < pivot_positions.size(); ++i) {
                  dist_to_sample[pivot_positions[i]] = h_best[i];
                }
                std::sort(h_best.begin(), h_best.end(), std::greater<>());
                const auto rank = static_cast<std::size_t>(
                    std::max<long long>(1, std::llround(options.phi * log_n)));
                removal_threshold = h_best[std::min(rank, h_best.size()) - 1];
              },
              result.trace);
        });
    select_round.items_in = pivot_positions.size() + sample_global.size();
    select_round.items_out = 1;
    select_round.shuffle_items = pivot_positions.size() + sample_global.size();

    // ---- Round 3 (lines 7-9): every machine updates d(x, S) for its
    // share of R against the new sample members and drops the points
    // that are now represented at least as well as the pivot. Sampled
    // points always leave R (the §4.1 termination fix); the `<=`
    // comparison removes distance ties (the other §4.1 fix).
    std::vector<std::vector<index_t>> survivor_parts;
    auto& prune_round = run_round_with_retry(
        "eim-prune", chunks.size(),
        [&](std::size_t machines_now) -> mr::RoundStats& {
          // A retry re-chunks R over the survivors; the per-point
          // min-fold of dist_to_sample is idempotent, so chunks that
          // already ran just fold in no-ops.
          if (machines_now != chunks.size()) {
            chunks = make_chunks(r_set.size(), machines_now);
          }
          survivor_parts.assign(chunks.size(), {});
          return cluster.run_indexed_round(
              "eim-prune", static_cast<int>(chunks.size()),
              [&](int machine) {
                const auto [lo, hi] =
                    chunks[static_cast<std::size_t>(machine)];
                const std::size_t len = hi - lo;
                std::vector<index_t> chunk_global(len);
                std::vector<double> chunk_best(len);
                for (std::size_t i = 0; i < len; ++i) {
                  chunk_global[i] = pts[r_set[lo + i]];
                  chunk_best[i] = dist_to_sample[r_set[lo + i]];
                }
                oracle.update_nearest_multi(chunk_global, delta_global,
                                            chunk_best);
                auto& survivors =
                    survivor_parts[static_cast<std::size_t>(machine)];
                for (std::size_t i = 0; i < len; ++i) {
                  const index_t p = r_set[lo + i];
                  dist_to_sample[p] = chunk_best[i];
                  const bool pruned = options.tie_breaking_removal
                                          ? chunk_best[i] <= removal_threshold
                                          : chunk_best[i] < removal_threshold;
                  if (pruned || (options.remove_sampled && in_sample[p])) {
                    continue;
                  }
                  survivors.push_back(p);
                }
              },
              result.trace);
        });

    std::vector<index_t> next_r;
    for (const auto& part : survivor_parts) {
      next_r.insert(next_r.end(), part.begin(), part.end());
    }
    prune_round.items_in = r_set.size();
    prune_round.items_out = next_r.size();
    prune_round.shuffle_items =
        r_set.size() + chunks.size() * delta_global.size();

    // With |R| above the loop threshold the no-progress probability is
    // astronomically small (it requires an empty S *and* H draw); the
    // iteration simply retries and max_iterations bounds pathology.
    r_set = std::move(next_r);
    if (options.progress) {
      options.progress({"eim", "eim-prune", result.iterations, r_set.size(),
                        result.trace.total_dist_evals()});
    }
  }

  // Output C = S [union] R, then the final clean-up round (one machine).
  check_cancelled(options, result.iterations);
  std::vector<index_t> final_set = sample_global;
  final_set.reserve(sample_global.size() + r_set.size());
  for (const index_t p : r_set) final_set.push_back(pts[p]);

  KCenterResult final_result;
  auto& final_round = run_round_with_retry(
      "eim-final", 1, [&](std::size_t) -> mr::RoundStats& {
        return cluster.run_indexed_round(
            "eim-final", 1,
            [&](int) {
              final_result = run_sequential(options.final_algo, oracle,
                                            final_set, k, rng.split(~0ull)());
            },
            result.trace);
      });
  final_round.items_in = final_set.size();
  final_round.items_out = final_result.centers.size();
  final_round.shuffle_items = final_set.size();

  result.centers = std::move(final_result.centers);
  result.radius_comparable = final_result.radius_comparable;
  result.sampled = true;
  result.final_sample_size = final_set.size();
  return result;
}

}  // namespace kc
