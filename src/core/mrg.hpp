// MRG: multi-round MapReduce Gonzalez (Algorithm 1 of the paper; the
// paper's primary contribution together with the parameterized EIM).
//
//   S <- V
//   while |S| > c:
//     partition S across the reducers (|part| <= ceil(|S|/machines))
//     each reducer runs GON on its part and emits k centers
//     S <- union of the emitted centers
//   one reducer runs GON on S and returns the k final centers
//
// With n/m <= c and k*m <= c the loop body executes once and the whole
// job is two MapReduce rounds and a 4-approximation (Lemma 2). Each
// additional round adds 2 to the factor (Lemma 3); the machine count
// needed after i rounds obeys Inequality (1). Progress requires k < c:
// each round maps |S| points to at most k per machine.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "algo/gonzalez.hpp"
#include "algo/result.hpp"
#include "core/driver.hpp"
#include "core/hooks.hpp"
#include "geom/distance.hpp"
#include "mapreduce/cluster.hpp"
#include "mapreduce/partition.hpp"

namespace kc {

struct MrgOptions {
  /// Per-machine capacity c in points. 0 derives the smallest capacity
  /// that admits a 2-round run: max(ceil(n/m), k*m) (Lemma 2's premise).
  /// Set explicitly (smaller) to force multi-round behaviour.
  std::size_t capacity = 0;

  /// How the mapper splits S each round ("arbitrarily" in the paper).
  mr::PartitionStrategy partition = mr::PartitionStrategy::Block;

  /// First-round machine assignment for PartitionStrategy::Explicit
  /// (one machine id per input point; adversarial-tightness tests).
  /// Later rounds fall back to Block.
  std::optional<std::vector<int>> explicit_assignment;

  /// Sequential subroutine per reducer and for the final round.
  SeqAlgo inner = SeqAlgo::Gonzalez;
  SeqAlgo final_algo = SeqAlgo::Gonzalez;

  /// GON seeding inside reducers. FirstPoint is deterministic; Random
  /// draws per-machine streams from `seed`.
  GonzalezOptions::FirstCenter first_center =
      GonzalezOptions::FirstCenter::FirstPoint;
  std::uint64_t seed = 1;

  /// Safety valve on the while loop (the theory needs at most
  /// O(log_{c/k} m) rounds; anything near this limit is a bug).
  int max_rounds = 64;

  /// Cooperative hooks (core/hooks.hpp). `progress` fires after every
  /// reduce round; a cancelled `cancel` token stops the run at the next
  /// round boundary (before the final round included) by throwing
  /// CancelledError. Both default inert. (Solves driven through
  /// api::Solver additionally observe the token *inside* the bulk
  /// distance scans — chunk-granular, via the oracle's ChunkContext.)
  ProgressFn progress;
  CancellationToken cancel;
};

struct MrgResult : KCenterResult {
  /// Iterations of the while loop (so MapReduce rounds = reduce_rounds + 1).
  int reduce_rounds = 0;
  /// Approximation factor guaranteed for this run: 2*(reduce_rounds + 1).
  [[nodiscard]] int guaranteed_factor() const noexcept {
    return 2 * (reduce_rounds + 1);
  }
  mr::JobTrace trace;
};

/// Runs MRG on `pts` with the given simulated cluster.
///
/// Preconditions: k >= 1, pts non-empty. Throws std::length_error if the
/// input cannot fit the cluster (ceil(n/m) > c) and std::runtime_error
/// if no round can reduce |S| (k too large relative to c).
///
/// The returned radius_comparable is the covering radius of the final
/// centers over the final-round sample S only; use eval::covering_radius
/// for the whole-input solution value (the paper's reported metric).
[[nodiscard]] MrgResult mrg(const DistanceOracle& oracle,
                            std::span<const index_t> pts, std::size_t k,
                            const mr::SimCluster& cluster,
                            const MrgOptions& options = {});

}  // namespace kc
