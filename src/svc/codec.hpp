// Wire codec of the batch solve service: JSON-lines request and report
// records.
//
// One request per line:
//
//   {"id": 7, "tenant": "acme", "algorithm": "mrg", "k": 4,
//    "points": [[0.0, 1.5], [2.0, 3.0]], "metric": "L2", "seed": 3,
//    "machines": 16, "max_dist_evals": 100000, "deadline_ms": 250,
//    "options": {"capacity": 64}}
//
// Only "k" and "points" are required. The schema is *strict*: every
// unknown key, wrong type, out-of-range value, ragged point row, or
// malformed option is rejected with api::Error kind BadRequest — the
// same taxonomy the Solver uses — so a service front-end maps every
// way a request can be wrong to one status vocabulary and untrusted
// input can never reach the kernels unvalidated. Execution placement
// is deliberately *not* on the wire: requests say how wide a simulated
// cluster they want ("machines"), never which host backend to spawn.
//
// One report per line, in the same taxonomy:
//
//   {"id": 7, "tenant": "acme", "status": "ok", "algorithm": "mrg",
//    "k": 4, "centers": [...], "value": 12.5, ...}
//   {"id": 8, "tenant": "acme", "status": "bad-request",
//    "error": "k must be at least 1"}
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "api/report.hpp"
#include "api/request.hpp"
#include "geom/point_set.hpp"

namespace kc::svc {

/// Abuse bounds applied while *parsing*, before any point storage is
/// sized: a malformed or hostile line must be rejected by arithmetic
/// on the declared sizes, never by attempting the allocation.
struct CodecLimits {
  std::size_t max_line_bytes = std::size_t{16} << 20;  ///< 16 MiB
  std::size_t max_points = 2'000'000;
  std::size_t max_dim = 256;
  std::size_t max_machines = 4096;
  /// Tenant names key per-tenant service state, so their size is
  /// bounded like everything else attacker-chosen.
  std::size_t max_tenant_bytes = 256;
};

/// One decoded request record: the owned point data plus the
/// api::SolveRequest referencing it. `request.points` always points at
/// this instance's own `points` — the move operations re-aim it, so a
/// WireRequest stays self-contained through queue hand-offs. Copying
/// is deleted (it would duplicate the point storage; nothing needs it).
struct WireRequest {
  std::uint64_t id = 0;
  std::string tenant = "default";
  PointSet points;
  api::SolveRequest request;
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline
  /// Per-request evaluation cap from the wire (0 = none). Mirrored
  /// into request.max_dist_evals; the service additionally uses it to
  /// reserve tenant budget at admission.
  std::uint64_t max_dist_evals = 0;

  WireRequest() = default;
  WireRequest(const WireRequest&) = delete;
  WireRequest& operator=(const WireRequest&) = delete;
  WireRequest(WireRequest&& other) noexcept { *this = std::move(other); }
  WireRequest& operator=(WireRequest&& other) noexcept {
    id = other.id;
    tenant = std::move(other.tenant);
    points = std::move(other.points);
    request = std::move(other.request);
    deadline_ms = other.deadline_ms;
    max_dist_evals = other.max_dist_evals;
    request.points = &points;
    return *this;
  }
};

/// Parses one JSON-lines request record. Throws api::Error (kind
/// BadRequest) on every malformed input; never crashes on hostile
/// bytes (fuzzed in svc_test.cpp). The returned WireRequest is
/// self-contained: request.points is wired to the owned PointSet.
[[nodiscard]] WireRequest parse_request(std::string_view line,
                                        const CodecLimits& limits = {});

/// Which report fields to emit.
struct ReportStyle {
  /// Omit machine- and load-dependent fields (timings, host backend,
  /// kernel ISA) so two runs of one request file diff clean across
  /// hosts — the CI smoke leg and the determinism tests rely on it.
  bool stable = false;
};

/// Serializes a successful solve as one JSON line (no newline).
[[nodiscard]] std::string write_report(std::uint64_t id,
                                       std::string_view tenant,
                                       const api::SolveReport& report,
                                       const ReportStyle& style = {});

/// Serializes a failed request as one JSON line (no newline).
/// `status` is an api::ErrorKind string or a service-level status
/// ("deadline-exceeded", "overloaded", "internal-error",
/// "shutting-down"). `attempts` > 0 records how many solve attempts
/// ran before the failure (emitted only then, so pure admission
/// rejections keep their historic shape); `degraded` marks a request
/// that ran under a degraded policy.
[[nodiscard]] std::string write_error(std::uint64_t id,
                                      std::string_view tenant,
                                      std::string_view status,
                                      std::string_view message,
                                      int attempts = 0,
                                      bool degraded = false);

}  // namespace kc::svc
