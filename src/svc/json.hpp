// Minimal JSON for the batch solve service: a small recursive-descent
// parser and string escaping for the writer side.
//
// The service's wire format is JSON-lines (one request or report object
// per line), parsed from *untrusted* input, so the parser is written
// for robustness rather than speed or feature count: strict grammar, a
// hard nesting-depth limit, no exceptions other than JsonError, and no
// recursion on attacker-controlled depth beyond that limit. Numbers
// are doubles (the service schema has no integer wider than 2^53);
// \uXXXX escapes decode to UTF-8, surrogate pairs included. There is
// deliberately no DOM mutation API — the codec (svc/codec.hpp) walks
// the parsed value once and converts it into typed request structs.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kc::svc {

/// Parse failure: malformed text, depth/size abuse, trailing garbage.
/// The codec maps it to api::Error kind BadRequest.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at byte " + std::to_string(offset) +
                           ")"),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

struct Json {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  /// Key order preserved (reports round-trip stably); duplicate keys
  /// are a parse error — an attacker must not be able to smuggle a
  /// second value past a validator that read the first.
  std::vector<std::pair<std::string, Json>> object;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::Number; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type == Type::Object; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Parses exactly one JSON value spanning all of `text` (leading and
  /// trailing whitespace allowed, anything else throws JsonError).
  /// `max_depth` bounds array/object nesting.
  [[nodiscard]] static Json parse(std::string_view text,
                                  std::size_t max_depth = 64);
};

[[nodiscard]] std::string_view to_string(Json::Type type) noexcept;

/// Escapes `raw` for embedding inside a JSON string literal (quotes
/// not included): ", \, control characters.
[[nodiscard]] std::string json_escape(std::string_view raw);

/// Formats a double as a JSON number that round-trips (%.17g), mapping
/// non-finite values to null (JSON has no inf/nan).
[[nodiscard]] std::string json_number(double value);

}  // namespace kc::svc
