// The batch solve service: untrusted JSON-lines requests in, one
// report line per request out, with per-tenant budgets, deadlines and
// bounded admission between them.
//
//   producers                ServiceLoop                 shared pool
//   ---------                -----------                 -----------
//   stdin reader --\                                  +-> worker
//   socket conn  ---+--> submit() --> BoundedQueue -->|   worker
//   socket conn  --/    (parse,           |           |   worker
//                        admit,           v           +-> ...
//                        reserve     run(): one exec::TaskGroup per
//                        tenant      request, <= max_in_flight live;
//                        budget,     each group's single task drives
//                        arm         Solver::solve on the shared
//                        deadline)   scheduler, so a request's reducer
//                                    fan-out and sharded scans are
//                                    stealable work for every worker.
//
// Admission is where untrusted turns into bounded: the codec rejects
// malformed records (api::Error taxonomy), the tenant's EvalBudget is
// *reserved* for the request's cap (refunded pro rata when it
// settles — concurrent requests of one tenant can never oversubscribe
// it), the deadline watcher arms a cancellation token that the gated
// kernels observe within one chunk, and the queue bound backpressures
// producers (or answers "overloaded" in non-blocking mode). Every
// admitted request runs with budgeted_eval, so offline evaluation is
// charged like solve work and no request can burn unbudgeted CPU.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/solver.hpp"
#include "compat/thread_safety.hpp"
#include "exec/backend.hpp"
#include "exec/chunk_context.hpp"
#include "svc/codec.hpp"
#include "svc/queue.hpp"

namespace kc::svc {

/// Retry of *transient internal* failures (injected faults, escaped
/// non-taxonomy exceptions). Client errors (bad-request), budget
/// exhaustion, cancellation and deadlines are terminal — retrying
/// them could never succeed.
struct RetryPolicy {
  int max_attempts = 1;  ///< total attempts per request (1 = no retry)
  /// Exponential backoff between attempts: base * factor^(attempt-1),
  /// capped, plus seeded jitter in [0, base). Purely wall-clock —
  /// never part of the report bytes, so retries keep replays
  /// byte-identical.
  std::uint64_t backoff_base_ms = 1;
  double backoff_factor = 2.0;
  std::uint64_t backoff_max_ms = 50;
  std::uint64_t jitter_seed = 0x5eedf00dull;
  /// Retry attempts (beyond each request's first) a tenant may consume
  /// over the service lifetime; 0 = unlimited. A tenant at its budget
  /// fails fast instead of retrying.
  std::uint64_t tenant_retry_budget = 0;
};

/// Graceful degradation above a queue high-watermark: shed load by
/// making requests cheaper *before* shedding them as "overloaded".
/// Configurable per tenant (ServiceConfig::tenant_degrade) on top of
/// the service-wide default.
struct DegradePolicy {
  /// Queue fill fraction (size/capacity) at which degradation engages;
  /// anything > 1.0 disables it (the default: degradation changes
  /// results, so it is strictly opt-in).
  double high_watermark = 2.0;
  /// Shrink factor applied to the request's evaluation cap (where one
  /// exists) while degraded.
  double budget_factor = 0.5;
  /// Reroute the expensive multi-round algorithms (mrg, eim, mrg-du)
  /// to the cheaper single-pass ccm coreset path while degraded.
  bool use_coreset = true;
  /// Force spatial pruning on while degraded.
  bool force_prune = true;

  [[nodiscard]] bool enabled() const noexcept {
    return high_watermark <= 1.0;
  }
};

struct ServiceConfig {
  /// Execution substrate for every request (ThreadPool = concurrent
  /// requests on one work-stealing scheduler; Sequential = one at a
  /// time, for deterministic replays and differential testing).
  exec::BackendKind backend = exec::BackendKind::ThreadPool;
  int threads = 0;  ///< pool width; 0 = hardware concurrency

  std::size_t queue_capacity = 256;  ///< admission queue bound
  int max_in_flight = 4;             ///< concurrently executing requests

  /// Distance-evaluation budget per tenant (0 = unlimited). Requests
  /// reserve from it at admission and refund the unspent remainder.
  std::uint64_t tenant_budget = 0;
  /// Default per-request evaluation cap when the request names none
  /// (0 = uncapped; a capless request under a limited tenant budget
  /// draws on the shared tenant odometer directly instead of
  /// reserving, so concurrent capless requests never starve each
  /// other at admission).
  std::uint64_t request_budget = 0;
  /// Default deadline for requests that name none (0 = none).
  std::uint64_t default_deadline_ms = 0;

  /// Gate the offline value evaluation with the request budget
  /// (SolveRequest::budgeted_eval). On by default: this is the
  /// untrusted-request front-end.
  bool budgeted_eval = true;

  /// Bound on distinct tenants (each holds an EvalBudget entry for the
  /// service's lifetime); a request naming a new tenant beyond it is
  /// refused "overloaded", so attacker-minted tenant names cannot grow
  /// the tenant table without bound. Only meaningful with a tenant
  /// budget configured.
  std::size_t max_tenants = 4096;

  CodecLimits limits;
  ReportStyle style;

  RetryPolicy retry;
  /// Service-wide degradation ladder; disabled by default.
  DegradePolicy degrade;
  /// Per-tenant overrides of `degrade` (missing tenants use the
  /// service-wide policy).
  std::map<std::string, DegradePolicy, std::less<>> tenant_degrade;

  /// Watchdog: cancel a request whose budget odometer made no progress
  /// for this many milliseconds (settled "internal-error" with
  /// diagnostics). 0 disables. Only requests with a budget odometer
  /// are watchable — an unbudgeted request exposes no progress signal.
  std::uint64_t watchdog_ms = 0;

  /// Fault-injection plan armed for this service's lifetime (see
  /// fault/fault.hpp for the grammar; empty = none). Process-global:
  /// meant for one-service processes and tests, the constructor arms
  /// it and the destructor disarms.
  std::string fault_plan;
};

/// Writes one finished report line (no trailing newline). Called from
/// the ServiceLoop consumer thread; serialize externally if several
/// sinks share a stream.
using EmitFn = std::function<void(const std::string&)>;

class ServiceLoop {
 public:
  /// `backend` overrides config.backend/threads when non-null (so
  /// tests and benches can share one pool across services).
  explicit ServiceLoop(const ServiceConfig& config,
                       std::shared_ptr<exec::ExecutionBackend> backend =
                           nullptr);
  ~ServiceLoop();
  ServiceLoop(const ServiceLoop&) = delete;
  ServiceLoop& operator=(const ServiceLoop&) = delete;

  /// Parses and admits one request line (thread-safe; producers may
  /// call concurrently). Returns nullopt when the request was admitted
  /// (its report will reach `emit` from the consumer); otherwise the
  /// ready-to-write rejection line (malformed request, tenant budget
  /// exhausted, queue full in non-blocking mode, service closed).
  /// `cancel`, when armed, becomes the request's cancellation token —
  /// a connection handler passes one per request and fires them on
  /// disconnect; an unarmed token is replaced by a service-owned one
  /// so deadlines and cancel_all() always have a handle.
  [[nodiscard]] std::optional<std::string> submit(
      std::string_view line, EmitFn emit, bool blocking = true,
      CancellationToken cancel = {})
      KC_EXCLUDES(state_mutex_, deadline_mutex_);

  /// Ends admission: submit() refuses, run() returns once the queue
  /// and the in-flight window drain.
  void close();

  /// Fires every admitted-but-unfinished request's token (shutdown /
  /// global disconnect). Does not close admission by itself.
  void cancel_all() KC_EXCLUDES(state_mutex_);

  /// Consumer loop: executes admitted requests until close() and the
  /// backlog drains. Call from exactly one thread.
  void run() KC_EXCLUDES(state_mutex_, deadline_mutex_, watchdog_mutex_);

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;   ///< refused at submit()
    std::uint64_t completed = 0;  ///< reports with status "ok"
    std::uint64_t failed = 0;     ///< reports with any error status
    std::uint64_t retries = 0;    ///< solve attempts beyond each first
    std::uint64_t degraded = 0;   ///< requests admitted degraded
    std::uint64_t watchdog_fired = 0;  ///< requests the watchdog killed
  };
  [[nodiscard]] Stats stats() const KC_EXCLUDES(state_mutex_);

  /// Armed deadline-watcher entries (tests assert none leak after a
  /// drain).
  [[nodiscard]] std::size_t deadline_entries() const
      KC_EXCLUDES(deadline_mutex_);
  /// Requests currently tracked by the watchdog (tests assert none
  /// leak after a drain).
  [[nodiscard]] std::size_t watchdog_entries() const
      KC_EXCLUDES(watchdog_mutex_);

  [[nodiscard]] const std::shared_ptr<exec::ExecutionBackend>& backend()
      const noexcept {
    return backend_;
  }

  /// The tenant's budget odometer (null when tenant_budget == 0 or the
  /// tenant has not been seen yet).
  [[nodiscard]] std::shared_ptr<exec::EvalBudget> tenant_budget(
      std::string_view tenant) const KC_EXCLUDES(state_mutex_);

 private:
  struct Admitted {
    WireRequest wire;
    EmitFn emit;
    std::string line;  ///< finished report, written by the solve task
    std::shared_ptr<exec::EvalBudget> budget;         ///< per-request
    std::shared_ptr<exec::EvalBudget> tenant_budget;  ///< reservation source
    std::uint64_t reserved = 0;
    std::shared_ptr<std::atomic<bool>> deadline_fired;
    /// Watcher-map key of this request's deadline entry (valid when
    /// deadline_fired is non-null); settle() erases the entry so the
    /// watcher does not retain tokens of settled requests for up to
    /// the full deadline horizon.
    std::chrono::steady_clock::time_point deadline_at;
    std::uint64_t serial = 0;  ///< active-token registry key
    bool degraded = false;     ///< ran under the degradation ladder
    /// Set by the watchdog when it cancelled this request (maps the
    /// resulting Cancelled to "internal-error" with diagnostics).
    std::shared_ptr<std::atomic<bool>> watchdog_fired;
  };

  void execute(Admitted& item)
      KC_EXCLUDES(state_mutex_, watchdog_mutex_);
  void settle(Admitted& item) KC_EXCLUDES(state_mutex_, deadline_mutex_);
  /// One solve attempt; returns true on success, sets
  /// `status`/`message` and `retryable` otherwise.
  bool attempt_solve(Admitted& item, int attempt, std::string& status,
                     std::string& message, bool& retryable);
  /// Consumes one unit of the tenant's retry budget; false when
  /// exhausted.
  bool take_retry_token(const std::string& tenant) KC_EXCLUDES(state_mutex_);
  void watchdog_register(Admitted& item) KC_EXCLUDES(watchdog_mutex_);
  void watchdog_unregister(std::uint64_t serial) KC_EXCLUDES(watchdog_mutex_);
  void watchdog_loop() KC_EXCLUDES(watchdog_mutex_, state_mutex_);
  void arm_deadline(std::chrono::steady_clock::time_point when,
                    CancellationToken token,
                    std::shared_ptr<std::atomic<bool>> fired)
      KC_EXCLUDES(deadline_mutex_);
  /// Removes the watcher entry identified by (when, fired), if still
  /// armed; called from settle() and from the admission rollback so no
  /// path retains a dead request's token for its deadline horizon.
  void retire_deadline(std::chrono::steady_clock::time_point when,
                       const std::shared_ptr<std::atomic<bool>>& fired)
      KC_EXCLUDES(deadline_mutex_);
  void deadline_loop() KC_EXCLUDES(deadline_mutex_);

  ServiceConfig config_;
  std::shared_ptr<exec::ExecutionBackend> backend_;
  BoundedQueue<std::unique_ptr<Admitted>> queue_;

  /// Set by close() and cancel_all(): submit() settles "shutting-down"
  /// without touching the queue.
  std::atomic<bool> shutting_down_{false};
  /// True when this instance armed config_.fault_plan (disarmed in the
  /// destructor).
  bool armed_fault_plan_ = false;

  mutable compat::Mutex state_mutex_;
  std::map<std::string, std::shared_ptr<exec::EvalBudget>, std::less<>>
      tenants_ KC_GUARDED_BY(state_mutex_);
  /// Retry tokens each tenant has consumed (only grown when a
  /// tenant_retry_budget is configured).
  std::map<std::string, std::uint64_t, std::less<>> tenant_retries_
      KC_GUARDED_BY(state_mutex_);
  std::map<std::uint64_t, CancellationToken> active_tokens_
      KC_GUARDED_BY(state_mutex_);
  std::uint64_t next_serial_ KC_GUARDED_BY(state_mutex_) = 0;
  Stats stats_ KC_GUARDED_BY(state_mutex_);

  struct DeadlineEntry {
    CancellationToken token;
    std::shared_ptr<std::atomic<bool>> fired;
  };
  mutable compat::Mutex deadline_mutex_;
  compat::CondVar deadline_cv_;
  std::multimap<std::chrono::steady_clock::time_point, DeadlineEntry>
      deadlines_ KC_GUARDED_BY(deadline_mutex_);
  bool deadline_stop_ KC_GUARDED_BY(deadline_mutex_) = false;
  // Started/joined only by the owning thread in run(); never touched
  // by the workers it watches. Expiring: PR14 should fold the two
  // helper threads into a lifecycle struct with its own discipline.
  // kc-lint: allow(guarded-by, until=PR14) owner-thread-only lifecycle handle
  std::thread deadline_thread_;

  /// Watchdog state: one entry per executing attempt, keyed by the
  /// request serial. Progress = the budget odometer moving.
  struct WatchdogEntry {
    std::shared_ptr<exec::EvalBudget> budget;
    CancellationToken token;
    std::shared_ptr<std::atomic<bool>> fired;
    std::uint64_t last_consumed = 0;
    std::chrono::steady_clock::time_point last_progress;
  };
  mutable compat::Mutex watchdog_mutex_;
  compat::CondVar watchdog_cv_;
  std::map<std::uint64_t, WatchdogEntry> watchdog_
      KC_GUARDED_BY(watchdog_mutex_);
  bool watchdog_stop_ KC_GUARDED_BY(watchdog_mutex_) = false;
  // Started/joined only by the owning thread in run(); never touched
  // by the workers it watches. Expiring: PR14 should fold the two
  // helper threads into a lifecycle struct with its own discipline.
  // kc-lint: allow(guarded-by, until=PR14) owner-thread-only lifecycle handle
  std::thread watchdog_thread_;
};

}  // namespace kc::svc
