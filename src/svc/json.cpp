#include "svc/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace kc::svc {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  [[nodiscard]] Json run() {
    skip_ws();
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message, pos_);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() noexcept {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] Json parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("nesting too deep");
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        Json value;
        value.type = Json::Type::String;
        value.string = parse_string();
        return value;
      }
      case 't': return parse_literal("true", [](Json& v) {
        v.type = Json::Type::Bool;
        v.boolean = true;
      });
      case 'f': return parse_literal("false", [](Json& v) {
        v.type = Json::Type::Bool;
        v.boolean = false;
      });
      case 'n': return parse_literal("null", [](Json& v) {
        v.type = Json::Type::Null;
      });
      default: return parse_number();
    }
  }

  template <typename Fill>
  [[nodiscard]] Json parse_literal(std::string_view word, Fill fill) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
    Json value;
    fill(value);
    return value;
  }

  [[nodiscard]] Json parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_digits = digits();
    if (int_digits == 0) fail("invalid number");
    // JSON forbids leading zeros ("01"), which strtod would accept.
    if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      fail("leading zero in number");
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    // The token is bounded and syntax-checked; strtod just converts.
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) fail("number out of range");
    Json out;
    out.type = Json::Type::Number;
    out.number = value;
    return out;
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out.push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  [[nodiscard]] unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) fail("truncated \\u escape");
      const char c = peek();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
      ++pos_;
    }
    return value;
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) fail("truncated escape");
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: the low half must follow immediately.
            if (at_end() || peek() != '\\') fail("unpaired surrogate");
            ++pos_;
            if (at_end() || peek() != 'u') fail("unpaired surrogate");
            ++pos_;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid surrogate pair");
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  [[nodiscard]] Json parse_array(std::size_t depth) {
    expect('[');
    Json out;
    out.type = Json::Type::Array;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      out.array.push_back(parse_value(depth + 1));
      skip_ws();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  [[nodiscard]] Json parse_object(std::size_t depth) {
    expect('{');
    Json out;
    out.type = Json::Type::Object;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return out;
    }
    // O(log N) duplicate detection: a linear Json::find per key would
    // make a many-key hostile object quadratic — CPU exhaustion inside
    // the very parser that exists to reject hostile input.
    std::set<std::string, std::less<>> seen;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      if (!seen.insert(key).second) {
        fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      skip_ws();
      out.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

std::string_view to_string(Json::Type type) noexcept {
  switch (type) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "bool";
    case Json::Type::Number: return "number";
    case Json::Type::String: return "string";
    case Json::Type::Array: return "array";
    case Json::Type::Object: return "object";
  }
  return "?";
}

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace kc::svc
