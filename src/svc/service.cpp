#include "svc/service.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "api/error.hpp"

namespace kc::svc {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] exec::Scheduler* scheduler_of(exec::ExecutionBackend* backend) {
  if (backend != nullptr && backend->kind() == exec::BackendKind::ThreadPool) {
    return &static_cast<exec::ThreadPoolBackend*>(backend)->scheduler();
  }
  return nullptr;
}

}  // namespace

ServiceLoop::ServiceLoop(const ServiceConfig& config,
                         std::shared_ptr<exec::ExecutionBackend> backend)
    : config_(config),
      backend_(backend != nullptr
                   ? std::move(backend)
                   : exec::make_backend(config.backend, config.threads)),
      queue_(config.queue_capacity) {
  config_.max_in_flight = std::max(config_.max_in_flight, 1);
  deadline_thread_ = std::thread([this] { deadline_loop(); });
}

ServiceLoop::~ServiceLoop() {
  queue_.close();
  {
    const std::lock_guard<std::mutex> lock(deadline_mutex_);
    deadline_stop_ = true;
  }
  deadline_cv_.notify_all();
  deadline_thread_.join();
}

void ServiceLoop::close() { queue_.close(); }

void ServiceLoop::cancel_all() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  for (auto& [serial, token] : active_tokens_) token.request_cancel();
}

ServiceLoop::Stats ServiceLoop::stats() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

std::shared_ptr<exec::EvalBudget> ServiceLoop::tenant_budget(
    std::string_view tenant) const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second : nullptr;
}

void ServiceLoop::arm_deadline(Clock::time_point when,
                               CancellationToken token,
                               std::shared_ptr<std::atomic<bool>> fired) {
  {
    const std::lock_guard<std::mutex> lock(deadline_mutex_);
    deadlines_.emplace(when, DeadlineEntry{std::move(token), std::move(fired)});
  }
  deadline_cv_.notify_all();
}

void ServiceLoop::deadline_loop() {
  std::unique_lock<std::mutex> lock(deadline_mutex_);
  for (;;) {
    if (deadline_stop_) return;
    if (deadlines_.empty()) {
      deadline_cv_.wait(lock);
      continue;
    }
    const auto next = deadlines_.begin()->first;
    if (Clock::now() < next) {
      deadline_cv_.wait_until(lock, next);
      continue;
    }
    // Fire everything that is due. Firing the token of a request that
    // already settled is harmless: tokens are per-request.
    while (!deadlines_.empty() && deadlines_.begin()->first <= Clock::now()) {
      DeadlineEntry entry = std::move(deadlines_.begin()->second);
      deadlines_.erase(deadlines_.begin());
      entry.fired->store(true, std::memory_order_relaxed);
      entry.token.request_cancel();
    }
  }
}

std::optional<std::string> ServiceLoop::submit(std::string_view line,
                                               EmitFn emit, bool blocking,
                                               CancellationToken cancel) {
  const auto reject = [this](std::string report) {
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      ++stats_.rejected;
    }
    return report;
  };

  auto item = std::make_unique<Admitted>();
  try {
    item->wire = parse_request(line, config_.limits);
  } catch (const api::Error& e) {
    // The id/tenant of a malformed line are unknown; 0/"" marks that.
    return reject(write_error(0, "", api::to_string(e.kind()), e.what()));
  }
  item->emit = std::move(emit);

  // Every request gets an armed token: the deadline watcher and
  // cancel_all() need a handle even when the producer supplied none.
  if (!cancel.armed()) cancel = CancellationToken::make();
  item->wire.request.cancel = cancel;
  item->wire.request.budgeted_eval = config_.budgeted_eval;

  // Budget admission: reserve the request's cap from its tenant,
  // retrying around concurrent reservations; the unspent remainder is
  // refunded in settle().
  const std::uint64_t cap = item->wire.max_dist_evals != 0
                                ? item->wire.max_dist_evals
                                : config_.request_budget;
  if (config_.tenant_budget != 0) {
    std::shared_ptr<exec::EvalBudget> tenant;
    bool table_full = false;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      const auto it = tenants_.find(item->wire.tenant);
      if (it != tenants_.end()) {
        tenant = it->second;
      } else if (tenants_.size() >= config_.max_tenants) {
        // Refuse before inserting: attacker-minted tenant names must
        // not grow the table (each entry lives for the service's
        // lifetime). Rejected outside the lock — reject() takes it.
        table_full = true;
      } else {
        tenant = std::make_shared<exec::EvalBudget>(config_.tenant_budget);
        tenants_.emplace(item->wire.tenant, tenant);
      }
    }
    if (table_full) {
      return reject(write_error(item->wire.id, item->wire.tenant,
                                "overloaded", "tenant table is full"));
    }
    if (tenant->remaining() == 0) {
      return reject(write_error(
          item->wire.id, item->wire.tenant, "budget-exceeded",
          "tenant '" + item->wire.tenant + "' has no evaluation budget left"));
    }
    if (cap != 0) {
      // Capped request: reserve the cap (or what is left) up front so
      // concurrent requests of one tenant can never oversubscribe it;
      // settle() refunds whatever the run did not spend.
      std::uint64_t reserved = 0;
      for (;;) {
        const std::uint64_t remaining = tenant->remaining();
        reserved = std::min(cap, remaining);
        if (reserved == 0) {
          return reject(write_error(item->wire.id, item->wire.tenant,
                                    "budget-exceeded",
                                    "tenant '" + item->wire.tenant +
                                        "' has no evaluation budget left"));
        }
        if (tenant->try_charge(reserved)) break;
      }
      item->tenant_budget = std::move(tenant);
      item->reserved = reserved;
      item->budget = std::make_shared<exec::EvalBudget>(reserved);
    } else {
      // Capless request: charge the shared tenant odometer directly.
      // Reserving the whole remainder instead would make concurrent
      // capless requests of one tenant reject each other at admission
      // on a race, even when the tenant has plenty left.
      item->budget = std::move(tenant);
    }
  } else if (cap != 0) {
    item->budget = std::make_shared<exec::EvalBudget>(cap);
  }
  item->wire.request.budget = item->budget;

  const std::uint64_t deadline_ms = item->wire.deadline_ms != 0
                                        ? item->wire.deadline_ms
                                        : config_.default_deadline_ms;
  if (deadline_ms != 0) {
    item->deadline_fired = std::make_shared<std::atomic<bool>>(false);
    item->deadline_at = Clock::now() + std::chrono::milliseconds(deadline_ms);
    arm_deadline(item->deadline_at, cancel, item->deadline_fired);
  }

  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    item->serial = next_serial_++;
    active_tokens_.emplace(item->serial, cancel);
  }

  // Captured before push(): a blocking push consumes the unique_ptr
  // even on failure, so the rollback must not read through `item`.
  const std::uint64_t id = item->wire.id;
  const std::string tenant_name = item->wire.tenant;
  const std::uint64_t serial = item->serial;
  const std::shared_ptr<exec::EvalBudget> reserved_from = item->tenant_budget;
  const std::uint64_t reserved = item->reserved;
  const std::shared_ptr<std::atomic<bool>> deadline_fired =
      item->deadline_fired;
  const Clock::time_point deadline_at = item->deadline_at;
  const auto unadmit = [&] {
    retire_deadline(deadline_at, deadline_fired);
    const std::lock_guard<std::mutex> lock(state_mutex_);
    active_tokens_.erase(serial);
    if (reserved_from != nullptr) reserved_from->credit(reserved);
  };
  if (blocking) {
    if (!queue_.push(std::move(item))) {
      unadmit();
      return reject(write_error(id, tenant_name, "overloaded",
                                "service is no longer accepting requests"));
    }
  } else {
    if (!queue_.try_push(item)) {
      unadmit();
      return reject(write_error(id, tenant_name, "overloaded",
                                "admission queue is full"));
    }
  }
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    ++stats_.admitted;
  }
  return std::nullopt;
}

void ServiceLoop::execute(Admitted& item) {
  // The WireRequest rebinds its points pointer on move, but be
  // explicit: the solve below must read this instance's storage.
  item.wire.request.points = &item.wire.points;
  bool ok = false;
  try {
    api::Solver solver(backend_);
    const api::SolveReport report = solver.solve(item.wire.request);
    item.line =
        write_report(item.wire.id, item.wire.tenant, report, config_.style);
    ok = true;
  } catch (const api::Error& e) {
    std::string status(api::to_string(e.kind()));
    if (e.kind() == api::ErrorKind::Cancelled &&
        item.deadline_fired != nullptr &&
        item.deadline_fired->load(std::memory_order_relaxed)) {
      status = "deadline-exceeded";
    }
    item.line = write_error(item.wire.id, item.wire.tenant, status, e.what());
  } catch (const std::exception& e) {
    // A non-taxonomy escape is a bug worth a typed breadcrumb, not a
    // dead service.
    item.line =
        write_error(item.wire.id, item.wire.tenant, "internal-error", e.what());
  }
  const std::lock_guard<std::mutex> lock(state_mutex_);
  ++(ok ? stats_.completed : stats_.failed);
}

void ServiceLoop::retire_deadline(
    Clock::time_point when, const std::shared_ptr<std::atomic<bool>>& fired) {
  if (fired == nullptr) return;
  const std::lock_guard<std::mutex> lock(deadline_mutex_);
  const auto [lo, hi] = deadlines_.equal_range(when);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.fired == fired) {
      deadlines_.erase(it);
      break;
    }
  }
}

void ServiceLoop::settle(Admitted& item) {
  // Retire the watcher entry: a settled request's token must not be
  // retained (or fired) for the rest of its deadline horizon.
  retire_deadline(item.deadline_at, item.deadline_fired);
  const std::lock_guard<std::mutex> lock(state_mutex_);
  active_tokens_.erase(item.serial);
  if (item.tenant_budget != nullptr && item.budget != nullptr) {
    // Refund what the reservation did not spend; consumed() can never
    // exceed the reservation because the request budget was sized to it.
    item.tenant_budget->credit(item.reserved - item.budget->consumed());
  }
}

void ServiceLoop::run() {
  exec::Scheduler* scheduler = scheduler_of(backend_.get());

  struct InFlight {
    std::unique_ptr<exec::TaskGroup> group;
    std::unique_ptr<Admitted> item;
  };
  std::deque<InFlight> window;

  const auto finish_front = [&] {
    InFlight flight = std::move(window.front());
    window.pop_front();
    flight.group->wait();  // execute() never lets an exception escape
    settle(*flight.item);
    if (flight.item->emit) flight.item->emit(flight.item->line);
  };

  for (;;) {
    // Block on the queue only while nothing is in flight: with a
    // pending window, an idle consumer must retire the front request
    // (helping execute it on the scheduler) rather than sit in pop() —
    // otherwise a lone request's report would wait for the *next*
    // request to arrive, and on a worker-less pool nobody would run it
    // at all.
    std::optional<std::unique_ptr<Admitted>> popped;
    if (window.empty()) {
      popped = queue_.pop();
      if (!popped) break;  // closed and drained
    } else {
      popped = queue_.try_pop();
      if (!popped) {
        finish_front();
        continue;
      }
    }
    std::unique_ptr<Admitted> item = std::move(*popped);
    if (scheduler == nullptr) {
      // Sequential substrate: execute inline, one request at a time.
      execute(*item);
      settle(*item);
      if (item->emit) item->emit(item->line);
      continue;
    }
    while (static_cast<int>(window.size()) >= config_.max_in_flight) {
      finish_front();
    }
    InFlight flight;
    flight.item = std::move(item);
    flight.group = std::make_unique<exec::TaskGroup>(*scheduler);
    Admitted* raw = flight.item.get();
    // One TaskGroup per request: the group's single task drives the
    // whole solve; the solve's own fan-out (reducer rounds, sharded
    // scans) lands in nested groups on the same scheduler, stealable
    // by every worker. Reports are emitted in admission order.
    flight.group->submit([this, raw] { execute(*raw); });
    window.push_back(std::move(flight));
  }
  while (!window.empty()) finish_front();
}

}  // namespace kc::svc
