#include "svc/service.hpp"

#include <algorithm>
#include <deque>
#include <new>
#include <utility>

#include "api/error.hpp"
#include "fault/fault.hpp"
#include "rng/rng.hpp"

namespace kc::svc {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] exec::Scheduler* scheduler_of(exec::ExecutionBackend* backend) {
  if (backend != nullptr && backend->kind() == exec::BackendKind::ThreadPool) {
    return &static_cast<exec::ThreadPoolBackend*>(backend)->scheduler();
  }
  return nullptr;
}

/// Deterministic backoff before retry `attempt` (1-based count of
/// attempts already made): exponential in the attempt, capped, plus
/// seeded jitter keyed by (jitter_seed, request serial, attempt) — no
/// global RNG state, so concurrent retries never perturb each other.
[[nodiscard]] std::chrono::milliseconds backoff_delay(
    const RetryPolicy& retry, std::uint64_t serial, int attempt) noexcept {
  double delay = static_cast<double>(retry.backoff_base_ms);
  for (int i = 1; i < attempt; ++i) delay *= retry.backoff_factor;
  delay = std::min(delay, static_cast<double>(retry.backoff_max_ms));
  std::uint64_t state = retry.jitter_seed;
  state ^= splitmix64_next(state) + serial;
  state ^= splitmix64_next(state) + static_cast<std::uint64_t>(attempt);
  const std::uint64_t jitter_range = std::max<std::uint64_t>(
      1, retry.backoff_base_ms);
  const std::uint64_t jitter = splitmix64_next(state) % jitter_range;
  return std::chrono::milliseconds(static_cast<std::uint64_t>(delay) + jitter);
}

/// True for the multi-round algorithms the degradation ladder reroutes
/// to the cheaper coreset path.
[[nodiscard]] bool reroutable_to_coreset(std::string_view algo) noexcept {
  return algo == "mrg" || algo == "eim" || algo == "mrg-du" ||
         algo == "disjoint-union";
}

}  // namespace

ServiceLoop::ServiceLoop(const ServiceConfig& config,
                         std::shared_ptr<exec::ExecutionBackend> backend)
    : config_(config),
      backend_(backend != nullptr
                   ? std::move(backend)
                   : exec::make_backend(config.backend, config.threads)),
      queue_(config.queue_capacity) {
  config_.max_in_flight = std::max(config_.max_in_flight, 1);
  if (!config_.fault_plan.empty()) {
    fault::arm(fault::FaultPlan::parse(config_.fault_plan));
    armed_fault_plan_ = true;
  }
  deadline_thread_ = std::thread([this] { deadline_loop(); });
  if (config_.watchdog_ms != 0) {
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  }
}

ServiceLoop::~ServiceLoop() {
  queue_.close();
  {
    const compat::LockGuard lock(deadline_mutex_);
    deadline_stop_ = true;
  }
  deadline_cv_.notify_all();
  deadline_thread_.join();
  if (watchdog_thread_.joinable()) {
    {
      const compat::LockGuard lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_thread_.join();
  }
  if (armed_fault_plan_) fault::disarm();
}

void ServiceLoop::close() {
  // Relaxed: a pure go/no-go flag with no payload; queue_.close() has
  // its own mutex and is what workers actually synchronize on.
  shutting_down_.store(true, std::memory_order_relaxed);
  queue_.close();
}

void ServiceLoop::cancel_all() {
  // Relaxed: same go/no-go argument as close() above.
  shutting_down_.store(true, std::memory_order_relaxed);
  const compat::LockGuard lock(state_mutex_);
  for (auto& [serial, token] : active_tokens_) token.request_cancel();
}

ServiceLoop::Stats ServiceLoop::stats() const {
  const compat::LockGuard lock(state_mutex_);
  return stats_;
}

std::size_t ServiceLoop::deadline_entries() const {
  const compat::LockGuard lock(deadline_mutex_);
  return deadlines_.size();
}

std::size_t ServiceLoop::watchdog_entries() const {
  const compat::LockGuard lock(watchdog_mutex_);
  return watchdog_.size();
}

std::shared_ptr<exec::EvalBudget> ServiceLoop::tenant_budget(
    std::string_view tenant) const {
  const compat::LockGuard lock(state_mutex_);
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second : nullptr;
}

void ServiceLoop::arm_deadline(Clock::time_point when,
                               CancellationToken token,
                               std::shared_ptr<std::atomic<bool>> fired) {
  {
    const compat::LockGuard lock(deadline_mutex_);
    deadlines_.emplace(when, DeadlineEntry{std::move(token), std::move(fired)});
  }
  deadline_cv_.notify_all();
}

void ServiceLoop::deadline_loop() {
  compat::MutexLock lock(deadline_mutex_);
  for (;;) {
    if (deadline_stop_) return;
    if (deadlines_.empty()) {
      deadline_cv_.wait(lock);
      continue;
    }
    const auto next = deadlines_.begin()->first;
    if (Clock::now() < next) {
      deadline_cv_.wait_until(lock, next);
      continue;
    }
    // Fire everything that is due. Firing the token of a request that
    // already settled is harmless: tokens are per-request.
    while (!deadlines_.empty() && deadlines_.begin()->first <= Clock::now()) {
      DeadlineEntry entry = std::move(deadlines_.begin()->second);
      deadlines_.erase(deadlines_.begin());
      // Relaxed: the flag only biases the settle-path error message
      // (deadline vs generic cancel); both readers tolerate staleness.
      entry.fired->store(true, std::memory_order_relaxed);
      entry.token.request_cancel();
    }
  }
}

std::optional<std::string> ServiceLoop::submit(std::string_view line,
                                               EmitFn emit, bool blocking,
                                               CancellationToken cancel) {
  const auto reject = [this](std::string report) {
    {
      const compat::LockGuard lock(state_mutex_);
      ++stats_.rejected;
    }
    return report;
  };

  auto item = std::make_unique<Admitted>();
  try {
    item->wire = parse_request(line, config_.limits);
  } catch (const api::Error& e) {
    // The id/tenant of a malformed line are unknown; 0/"" marks that.
    return reject(write_error(0, "", api::to_string(e.kind()), e.what()));
  } catch (const std::bad_alloc&) {
    // Point storage of a *valid* line failed to materialize (real OOM
    // or the "codec.alloc" site): a server-side transient, not a
    // client error.
    return reject(
        write_error(0, "", "internal-error", "request allocation failed"));
  } catch (const fault::InjectedFault& e) {
    return reject(write_error(0, "", "internal-error", e.what()));
  }
  item->emit = std::move(emit);

  // A closed (or globally cancelled) service refuses with its own
  // typed status: producers distinguish "shed this one, try later"
  // (overloaded) from "stop sending" (shutting-down).
  if (shutting_down_.load(std::memory_order_relaxed)) {
    return reject(write_error(item->wire.id, item->wire.tenant,
                              "shutting-down",
                              "service is shutting down"));
  }

  // Degradation ladder: above the high-watermark, make the request
  // cheaper before the queue bound would shed it.
  const DegradePolicy* degrade = &config_.degrade;
  if (const auto it = config_.tenant_degrade.find(item->wire.tenant);
      it != config_.tenant_degrade.end()) {
    degrade = &it->second;
  }
  if (degrade->enabled()) {
    const double fill = static_cast<double>(queue_.size()) /
                        static_cast<double>(queue_.capacity());
    if (fill >= degrade->high_watermark) {
      item->degraded = true;
      if (degrade->use_coreset &&
          reroutable_to_coreset(item->wire.request.algorithm)) {
        item->wire.request.algorithm = "ccm";
        // The options variant must match the algorithm that runs.
        item->wire.request.options = {};
      }
      if (degrade->force_prune) item->wire.request.prune = PruneMode::On;
      const compat::LockGuard lock(state_mutex_);
      ++stats_.degraded;
    }
  }

  // Every request gets an armed token: the deadline watcher and
  // cancel_all() need a handle even when the producer supplied none.
  if (!cancel.armed()) cancel = CancellationToken::make();
  item->wire.request.cancel = cancel;
  item->wire.request.budgeted_eval = config_.budgeted_eval;

  // Budget admission: reserve the request's cap from its tenant,
  // retrying around concurrent reservations; the unspent remainder is
  // refunded in settle().
  std::uint64_t cap = item->wire.max_dist_evals != 0
                          ? item->wire.max_dist_evals
                          : config_.request_budget;
  if (item->degraded && cap != 0 && degrade->budget_factor < 1.0) {
    cap = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(cap) *
                                      degrade->budget_factor));
    // The wire cap doubles as the post-run counter check
    // (SolveRequest::max_dist_evals); keep them consistent.
    if (item->wire.max_dist_evals != 0) {
      item->wire.max_dist_evals = cap;
      item->wire.request.max_dist_evals = cap;
    }
  }
  if (config_.tenant_budget != 0) {
    std::shared_ptr<exec::EvalBudget> tenant;
    bool table_full = false;
    {
      const compat::LockGuard lock(state_mutex_);
      const auto it = tenants_.find(item->wire.tenant);
      if (it != tenants_.end()) {
        tenant = it->second;
      } else if (tenants_.size() >= config_.max_tenants) {
        // Refuse before inserting: attacker-minted tenant names must
        // not grow the table (each entry lives for the service's
        // lifetime). Rejected outside the lock — reject() takes it.
        table_full = true;
      } else {
        tenant = std::make_shared<exec::EvalBudget>(config_.tenant_budget);
        tenants_.emplace(item->wire.tenant, tenant);
      }
    }
    if (table_full) {
      return reject(write_error(item->wire.id, item->wire.tenant,
                                "overloaded", "tenant table is full"));
    }
    if (tenant->remaining() == 0) {
      return reject(write_error(
          item->wire.id, item->wire.tenant, "budget-exceeded",
          "tenant '" + item->wire.tenant + "' has no evaluation budget left"));
    }
    if (cap != 0) {
      // Capped request: reserve the cap (or what is left) up front so
      // concurrent requests of one tenant can never oversubscribe it;
      // settle() refunds whatever the run did not spend.
      std::uint64_t reserved = 0;
      for (;;) {
        const std::uint64_t remaining = tenant->remaining();
        reserved = std::min(cap, remaining);
        if (reserved == 0) {
          return reject(write_error(item->wire.id, item->wire.tenant,
                                    "budget-exceeded",
                                    "tenant '" + item->wire.tenant +
                                        "' has no evaluation budget left"));
        }
        if (tenant->try_charge(reserved)) break;
      }
      item->tenant_budget = std::move(tenant);
      item->reserved = reserved;
      item->budget = std::make_shared<exec::EvalBudget>(reserved);
    } else {
      // Capless request: charge the shared tenant odometer directly.
      // Reserving the whole remainder instead would make concurrent
      // capless requests of one tenant reject each other at admission
      // on a race, even when the tenant has plenty left.
      item->budget = std::move(tenant);
    }
  } else if (cap != 0) {
    item->budget = std::make_shared<exec::EvalBudget>(cap);
  }
  item->wire.request.budget = item->budget;

  const std::uint64_t deadline_ms = item->wire.deadline_ms != 0
                                        ? item->wire.deadline_ms
                                        : config_.default_deadline_ms;
  if (deadline_ms != 0) {
    item->deadline_fired = std::make_shared<std::atomic<bool>>(false);
    item->deadline_at = Clock::now() + std::chrono::milliseconds(deadline_ms);
    arm_deadline(item->deadline_at, cancel, item->deadline_fired);
  }

  {
    const compat::LockGuard lock(state_mutex_);
    item->serial = next_serial_++;
    active_tokens_.emplace(item->serial, cancel);
  }

  // Captured before push(): a blocking push consumes the unique_ptr
  // even on failure, so the rollback must not read through `item`.
  const std::uint64_t id = item->wire.id;
  const std::string tenant_name = item->wire.tenant;
  const std::uint64_t serial = item->serial;
  const std::shared_ptr<exec::EvalBudget> reserved_from = item->tenant_budget;
  const std::uint64_t reserved = item->reserved;
  const std::shared_ptr<std::atomic<bool>> deadline_fired =
      item->deadline_fired;
  const Clock::time_point deadline_at = item->deadline_at;
  const auto unadmit = [&] {
    retire_deadline(deadline_at, deadline_fired);
    const compat::LockGuard lock(state_mutex_);
    active_tokens_.erase(serial);
    if (reserved_from != nullptr) reserved_from->credit(reserved);
  };
  if (blocking) {
    if (!queue_.push(std::move(item))) {
      // push() only refuses a closed queue (it blocks through full), so
      // this is always a shutdown race: close() beat the waiter.
      unadmit();
      return reject(write_error(id, tenant_name, "shutting-down",
                                "service is shutting down"));
    }
  } else {
    if (!queue_.try_push(item)) {
      unadmit();
      if (queue_.closed()) {
        return reject(write_error(id, tenant_name, "shutting-down",
                                  "service is shutting down"));
      }
      return reject(write_error(id, tenant_name, "overloaded",
                                "admission queue is full"));
    }
  }
  {
    const compat::LockGuard lock(state_mutex_);
    ++stats_.admitted;
  }
  return std::nullopt;
}

bool ServiceLoop::attempt_solve(Admitted& item, int attempt,
                                std::string& status, std::string& message,
                                bool& retryable) {
  retryable = false;
  try {
    // The injected stand-in for "the service plane itself failed this
    // request" (a worker crash, a lost RPC): transient, so retryable.
    fault::point("svc.request.run");
    api::Solver solver(backend_);
    api::SolveReport report = solver.solve(item.wire.request);
    report.attempts = attempt;
    report.degraded = item.degraded;
    item.line =
        write_report(item.wire.id, item.wire.tenant, report, config_.style);
    return true;
  } catch (const api::Error& e) {
    // Taxonomy failures are terminal: a bad request stays bad, an
    // exhausted budget stays exhausted, a cancel stays cancelled.
    status = std::string(api::to_string(e.kind()));
    message = e.what();
    if (e.kind() == api::ErrorKind::Cancelled) {
      // Relaxed loads: the flags only pick the error label; the cancel
      // itself was delivered through the token (see deadline_loop).
      if (item.deadline_fired != nullptr &&
          item.deadline_fired->load(std::memory_order_relaxed)) {
        status = "deadline-exceeded";
      } else if (item.watchdog_fired != nullptr &&
                 // Relaxed: label-selection only, as above.
                 item.watchdog_fired->load(std::memory_order_relaxed)) {
        status = "internal-error";
        message = "watchdog: no budget progress for " +
                  std::to_string(config_.watchdog_ms) + " ms (" + message +
                  ")";
      }
    }
  } catch (const std::exception& e) {
    // A non-taxonomy escape — injected or a real bug — is a transient
    // internal failure worth a typed breadcrumb and a retry, never a
    // dead service.
    status = "internal-error";
    message = e.what();
    retryable = true;
  }
  return false;
}

bool ServiceLoop::take_retry_token(const std::string& tenant) {
  if (config_.retry.tenant_retry_budget == 0) return true;
  const compat::LockGuard lock(state_mutex_);
  std::uint64_t& used = tenant_retries_[tenant];
  if (used >= config_.retry.tenant_retry_budget) return false;
  ++used;
  return true;
}

void ServiceLoop::execute(Admitted& item) {
  // The WireRequest rebinds its points pointer on move, but be
  // explicit: the solve below must read this instance's storage.
  item.wire.request.points = &item.wire.points;
  const int max_attempts = std::max(1, config_.retry.max_attempts);
  watchdog_register(item);
  bool ok = false;
  int attempt = 0;
  for (;;) {
    ++attempt;
    std::string status;
    std::string message;
    bool retryable = false;
    ok = attempt_solve(item, attempt, status, message, retryable);
    if (ok) break;

    // Deadline + retry interplay: a fired deadline settles the request
    // as deadline-exceeded after the current attempt, whatever that
    // attempt's own failure was, and no further attempt starts.
    // Relaxed: label-selection flag only, as in execute() above.
    if (item.deadline_fired != nullptr &&
        item.deadline_fired->load(std::memory_order_relaxed)) {
      item.line = write_error(item.wire.id, item.wire.tenant,
                              "deadline-exceeded",
                              "deadline expired during attempt " +
                                  std::to_string(attempt) + ": " + message,
                              attempt, item.degraded);
      break;
    }
    const bool can_retry =
        retryable && attempt < max_attempts &&
        !item.wire.request.cancel.cancelled() &&
        take_retry_token(item.wire.tenant);
    if (!can_retry) {
      item.line = write_error(item.wire.id, item.wire.tenant, status, message,
                              attempt, item.degraded);
      break;
    }
    {
      const compat::LockGuard lock(state_mutex_);
      ++stats_.retries;
    }
    // Backoff, then check the deadline again: a backoff that crossed
    // it must not start another attempt.
    std::this_thread::sleep_for(
        backoff_delay(config_.retry, item.serial, attempt));
    // Relaxed: label-selection flag only, as in execute() above.
    if (item.deadline_fired != nullptr &&
        item.deadline_fired->load(std::memory_order_relaxed)) {
      item.line = write_error(item.wire.id, item.wire.tenant,
                              "deadline-exceeded",
                              "deadline expired during retry backoff after "
                              "attempt " +
                                  std::to_string(attempt) + ": " + message,
                              attempt, item.degraded);
      break;
    }
  }
  watchdog_unregister(item.serial);
  const compat::LockGuard lock(state_mutex_);
  ++(ok ? stats_.completed : stats_.failed);
}

void ServiceLoop::retire_deadline(
    Clock::time_point when, const std::shared_ptr<std::atomic<bool>>& fired) {
  if (fired == nullptr) return;
  const compat::LockGuard lock(deadline_mutex_);
  const auto [lo, hi] = deadlines_.equal_range(when);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.fired == fired) {
      deadlines_.erase(it);
      break;
    }
  }
}

void ServiceLoop::settle(Admitted& item) {
  // Retire the watcher entry: a settled request's token must not be
  // retained (or fired) for the rest of its deadline horizon.
  retire_deadline(item.deadline_at, item.deadline_fired);
  const compat::LockGuard lock(state_mutex_);
  active_tokens_.erase(item.serial);
  if (item.tenant_budget != nullptr && item.budget != nullptr) {
    // Refund what the reservation did not spend; consumed() can never
    // exceed the reservation because the request budget was sized to it.
    item.tenant_budget->credit(item.reserved - item.budget->consumed());
  }
}

void ServiceLoop::watchdog_register(Admitted& item) {
  // Only a request with a budget odometer exposes a progress signal.
  if (config_.watchdog_ms == 0 || item.budget == nullptr) return;
  item.watchdog_fired = std::make_shared<std::atomic<bool>>(false);
  WatchdogEntry entry;
  entry.budget = item.budget;
  entry.token = item.wire.request.cancel;
  entry.fired = item.watchdog_fired;
  entry.last_consumed = item.budget->consumed();
  entry.last_progress = Clock::now();
  {
    const compat::LockGuard lock(watchdog_mutex_);
    watchdog_.emplace(item.serial, std::move(entry));
  }
  watchdog_cv_.notify_all();
}

void ServiceLoop::watchdog_unregister(std::uint64_t serial) {
  if (config_.watchdog_ms == 0) return;
  const compat::LockGuard lock(watchdog_mutex_);
  watchdog_.erase(serial);
}

void ServiceLoop::watchdog_loop() {
  const auto horizon = std::chrono::milliseconds(config_.watchdog_ms);
  const auto tick =
      std::max(std::chrono::milliseconds(1),
               std::chrono::milliseconds(config_.watchdog_ms / 4));
  compat::MutexLock lock(watchdog_mutex_);
  for (;;) {
    if (watchdog_stop_) return;
    if (watchdog_.empty()) {
      watchdog_cv_.wait(lock);
      continue;
    }
    watchdog_cv_.wait_for(lock, tick);
    if (watchdog_stop_) return;
    const auto now = Clock::now();
    for (auto& [serial, entry] : watchdog_) {
      const std::uint64_t consumed = entry.budget->consumed();
      if (consumed != entry.last_consumed) {
        entry.last_consumed = consumed;
        entry.last_progress = now;
        continue;
      }
      // Relaxed flag: the only consequence of staleness is one extra
      // (idempotent) request_cancel on an already-settling request.
      if (now - entry.last_progress >= horizon &&
          !entry.fired->load(std::memory_order_relaxed)) {
        // Stuck: the odometer sat still for the whole horizon. Cancel
        // through the request's own token; execute() maps the
        // resulting Cancelled to "internal-error" with diagnostics
        // because `fired` is set first.
        entry.fired->store(true, std::memory_order_relaxed);
        entry.token.request_cancel();
        const compat::LockGuard state_lock(state_mutex_);
        ++stats_.watchdog_fired;
      }
    }
  }
}

void ServiceLoop::run() {
  exec::Scheduler* scheduler = scheduler_of(backend_.get());

  struct InFlight {
    std::unique_ptr<exec::TaskGroup> group;
    std::unique_ptr<Admitted> item;
  };
  std::deque<InFlight> window;

  const auto finish_front = [&] {
    InFlight flight = std::move(window.front());
    window.pop_front();
    // execute() never lets an exception escape, but the scheduler can
    // fail the group *before* execute() runs (the "exec.task.run" site
    // fires at the request's own group node, or a real spawn failure).
    // The exactly-one-report contract must hold on that path too.
    try {
      flight.group->wait();
    } catch (const std::exception& e) {
      if (flight.item->line.empty()) {
        flight.item->line =
            write_error(flight.item->wire.id, flight.item->wire.tenant,
                        "internal-error", e.what());
        const compat::LockGuard lock(state_mutex_);
        ++stats_.failed;
      }
    }
    settle(*flight.item);
    if (flight.item->emit) flight.item->emit(flight.item->line);
  };

  for (;;) {
    // Block on the queue only while nothing is in flight: with a
    // pending window, an idle consumer must retire the front request
    // (helping execute it on the scheduler) rather than sit in pop() —
    // otherwise a lone request's report would wait for the *next*
    // request to arrive, and on a worker-less pool nobody would run it
    // at all.
    std::optional<std::unique_ptr<Admitted>> popped;
    if (window.empty()) {
      popped = queue_.pop();
      if (!popped) break;  // closed and drained
    } else {
      popped = queue_.try_pop();
      if (!popped) {
        finish_front();
        continue;
      }
    }
    std::unique_ptr<Admitted> item = std::move(*popped);
    if (scheduler == nullptr) {
      // Sequential substrate: execute inline, one request at a time.
      execute(*item);
      settle(*item);
      if (item->emit) item->emit(item->line);
      continue;
    }
    while (static_cast<int>(window.size()) >= config_.max_in_flight) {
      finish_front();
    }
    InFlight flight;
    flight.item = std::move(item);
    flight.group = std::make_unique<exec::TaskGroup>(*scheduler);
    Admitted* raw = flight.item.get();
    // One TaskGroup per request: the group's single task drives the
    // whole solve; the solve's own fan-out (reducer rounds, sharded
    // scans) lands in nested groups on the same scheduler, stealable
    // by every worker. Reports are emitted in admission order.
    flight.group->submit([this, raw] { execute(*raw); });
    window.push_back(std::move(flight));
  }
  while (!window.empty()) finish_front();
}

}  // namespace kc::svc
