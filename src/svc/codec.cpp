#include "svc/codec.hpp"

// GCC 12 miscompiles the -Wrestrict bounds of short string-literal
// assignments inlined through libstdc++'s char_traits (GCC PR105329).
// False positive, suppressed for this TU only; Clang and later GCCs
// are unaffected.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "api/error.hpp"
#include "api/registry.hpp"
#include "fault/fault.hpp"
#include "svc/json.hpp"

namespace kc::svc {

namespace {

using api::Error;
using api::ErrorKind;

[[noreturn]] void bad(const std::string& message) {
  throw Error(ErrorKind::BadRequest, message);
}

/// `value` as a non-negative integer <= `max` (fits a double exactly).
[[nodiscard]] std::uint64_t as_uint(const Json& value, const char* field,
                                    std::uint64_t max) {
  if (!value.is_number()) {
    bad(std::string(field) + " must be a number, got " +
        std::string(to_string(value.type)));
  }
  const double n = value.number;
  if (!(n >= 0) || n > static_cast<double>(max) || n != std::floor(n)) {
    bad(std::string(field) + " must be an integer in [0, " +
        std::to_string(max) + "]");
  }
  return static_cast<std::uint64_t>(n);
}

[[nodiscard]] double as_double(const Json& value, const char* field) {
  if (!value.is_number()) {
    bad(std::string(field) + " must be a number, got " +
        std::string(to_string(value.type)));
  }
  return value.number;
}

[[nodiscard]] const std::string& as_string(const Json& value,
                                           const char* field) {
  if (!value.is_string()) {
    bad(std::string(field) + " must be a string, got " +
        std::string(to_string(value.type)));
  }
  return value.string;
}

[[nodiscard]] MetricKind parse_metric(const std::string& name) {
  if (name == "L2" || name == "l2") return MetricKind::L2;
  if (name == "L1" || name == "l1") return MetricKind::L1;
  if (name == "Linf" || name == "linf") return MetricKind::Linf;
  bad("metric must be one of L2, L1, Linf; got '" + name + "'");
}

[[nodiscard]] PointSet parse_points(const Json& value,
                                    const CodecLimits& limits) {
  if (!value.is_array()) {
    bad("points must be an array of coordinate rows");
  }
  if (value.array.empty()) bad("points must not be empty");
  if (value.array.size() > limits.max_points) {
    bad("points has " + std::to_string(value.array.size()) +
        " rows, limit is " + std::to_string(limits.max_points));
  }
  const Json& first = value.array.front();
  if (!first.is_array() || first.array.empty()) {
    bad("each point must be a non-empty array of numbers");
  }
  const std::size_t dim = first.array.size();
  if (dim > limits.max_dim) {
    bad("points are " + std::to_string(dim) + "-dimensional, limit is " +
        std::to_string(limits.max_dim));
  }
  // Validate every row before sizing the rows*dim storage: max_points
  // and max_dim individually admit a hostile line whose product would
  // be a multi-GiB allocation (2M one-number rows after one
  // 256-number row), so the n*dim buffer may only be created once the
  // line is known to really contain that many numbers — which the
  // line-length limit then bounds.
  for (std::size_t i = 0; i < value.array.size(); ++i) {
    const Json& row = value.array[i];
    if (!row.is_array() || row.array.size() != dim) {
      bad("points row " + std::to_string(i) + " must be an array of " +
          std::to_string(dim) + " numbers");
    }
    for (std::size_t c = 0; c < dim; ++c) {
      if (!row.array[c].is_number()) {
        bad("points row " + std::to_string(i) + " has a non-numeric entry");
      }
    }
  }
  // The one allocation a validated hostile line can still make large;
  // the injection site stands in for it failing (bad_alloc and the
  // injected fault take the same internal-error path in the service).
  fault::point("codec.alloc");
  PointSet points(value.array.size(), dim);
  for (std::size_t i = 0; i < value.array.size(); ++i) {
    const Json& row = value.array[i];
    const std::span<double> out = points.mutable_point(static_cast<index_t>(i));
    for (std::size_t c = 0; c < dim; ++c) out[c] = row.array[c].number;
  }
  return points;
}

/// Reads one option key shared by several algorithms; `consumed` marks
/// handled keys so the strict-schema sweep below can flag leftovers.
struct OptionReader {
  const Json& object;
  std::vector<bool> consumed;

  explicit OptionReader(const Json& options)
      : object(options), consumed(options.object.size(), false) {}

  [[nodiscard]] const Json* take(std::string_view key) {
    for (std::size_t i = 0; i < object.object.size(); ++i) {
      if (object.object[i].first == key) {
        consumed[i] = true;
        return &object.object[i].second;
      }
    }
    return nullptr;
  }

  void reject_unconsumed(const std::string& algorithm) const {
    for (std::size_t i = 0; i < object.object.size(); ++i) {
      if (!consumed[i]) {
        bad("options." + object.object[i].first +
            " is not an option of algorithm '" + algorithm + "'");
      }
    }
  }
};

[[nodiscard]] GonzalezOptions::FirstCenter parse_first_center(
    const Json& value) {
  const std::string& name = as_string(value, "options.first");
  if (name == "first-point") return GonzalezOptions::FirstCenter::FirstPoint;
  if (name == "random") return GonzalezOptions::FirstCenter::Random;
  bad("options.first must be 'first-point' or 'random'; got '" + name + "'");
}

[[nodiscard]] mr::PartitionStrategy parse_partition(const Json& value) {
  const std::string& name = as_string(value, "options.partition");
  if (name == "block") return mr::PartitionStrategy::Block;
  if (name == "round-robin") return mr::PartitionStrategy::RoundRobin;
  if (name == "shuffled") return mr::PartitionStrategy::Shuffled;
  bad("options.partition must be block, round-robin or shuffled; got '" +
      name + "'");
}

/// Builds the AlgoOptions variant for `algorithm` from the "options"
/// object. Only values a batch client legitimately tunes are on the
/// wire; everything else keeps the registry defaults.
[[nodiscard]] api::AlgoOptions parse_options(const std::string& algorithm,
                                             const Json& object) {
  if (!object.is_object()) bad("options must be an object");
  OptionReader reader(object);
  api::AlgoOptions out;
  if (algorithm == "gon") {
    GonzalezOptions options;
    if (const Json* v = reader.take("first")) {
      options.first = parse_first_center(*v);
    }
    out = options;
  } else if (algorithm == "hs") {
    HochbaumShmoysOptions options;
    if (const Json* v = reader.take("max_points")) {
      options.max_points = as_uint(*v, "options.max_points", 1u << 24);
    }
    out = options;
  } else if (algorithm == "brute") {
    api::BruteForceOptions options;
    if (const Json* v = reader.take("max_subsets")) {
      options.max_subsets = as_uint(*v, "options.max_subsets", ~std::uint64_t{0} >> 11);
    }
    out = options;
  } else if (algorithm == "mrg") {
    MrgOptions options;
    if (const Json* v = reader.take("capacity")) {
      options.capacity = as_uint(*v, "options.capacity", 1ull << 32);
    }
    if (const Json* v = reader.take("partition")) {
      options.partition = parse_partition(*v);
    }
    out = options;
  } else if (algorithm == "eim") {
    EimOptions options;
    if (const Json* v = reader.take("epsilon")) {
      options.epsilon = as_double(*v, "options.epsilon");
    }
    if (const Json* v = reader.take("phi")) {
      options.phi = as_double(*v, "options.phi");
    }
    out = options;
  } else if (algorithm == "mrg-du") {
    DisjointUnionOptions options;
    if (const Json* v = reader.take("instances")) {
      options.instances = as_uint(*v, "options.instances", 1u << 20);
    }
    if (const Json* v = reader.take("capacity")) {
      options.mrg.capacity = as_uint(*v, "options.capacity", 1ull << 32);
    }
    out = options;
  } else if (algorithm == "ccm") {
    CcmOptions options;
    if (const Json* v = reader.take("epsilon")) {
      options.epsilon = as_double(*v, "options.epsilon");
    }
    if (const Json* v = reader.take("max_coreset_per_machine")) {
      options.max_coreset_per_machine =
          as_uint(*v, "options.max_coreset_per_machine", 1u << 24);
    }
    out = options;
  } else {
    bad("algorithm '" + algorithm + "' accepts no options on the wire");
  }
  reader.reject_unconsumed(algorithm);
  return out;
}

}  // namespace

WireRequest parse_request(std::string_view line, const CodecLimits& limits) {
  if (line.size() > limits.max_line_bytes) {
    bad("request line of " + std::to_string(line.size()) +
        " bytes exceeds the " + std::to_string(limits.max_line_bytes) +
        "-byte limit");
  }
  Json root;
  try {
    root = Json::parse(line);
  } catch (const JsonError& e) {
    bad(std::string("malformed JSON: ") + e.what());
  }
  if (!root.is_object()) bad("request must be a JSON object");

  WireRequest wire;
  bool have_k = false;
  bool have_points = false;
  const Json* options_value = nullptr;

  for (const auto& [key, value] : root.object) {
    if (key == "id") {
      wire.id = as_uint(value, "id", std::uint64_t{1} << 53);
    } else if (key == "tenant") {
      wire.tenant = as_string(value, "tenant");
      if (wire.tenant.empty()) bad("tenant must be non-empty");
      if (wire.tenant.size() > limits.max_tenant_bytes) {
        bad("tenant name of " + std::to_string(wire.tenant.size()) +
            " bytes exceeds the " + std::to_string(limits.max_tenant_bytes) +
            "-byte limit");
      }
    } else if (key == "algorithm") {
      wire.request.algorithm = as_string(value, "algorithm");
    } else if (key == "k") {
      wire.request.k = as_uint(value, "k", std::uint64_t{1} << 32);
      have_k = true;
    } else if (key == "metric") {
      wire.request.metric = parse_metric(as_string(value, "metric"));
    } else if (key == "seed") {
      wire.request.seed = as_uint(value, "seed", std::uint64_t{1} << 53);
    } else if (key == "machines") {
      wire.request.exec.machines = static_cast<int>(
          as_uint(value, "machines", limits.max_machines));
    } else if (key == "points") {
      wire.points = parse_points(value, limits);
      have_points = true;
    } else if (key == "max_dist_evals") {
      wire.max_dist_evals =
          as_uint(value, "max_dist_evals", ~std::uint64_t{0} >> 1);
    } else if (key == "deadline_ms") {
      wire.deadline_ms = as_uint(value, "deadline_ms", 1000ull * 3600 * 24);
    } else if (key == "options") {
      options_value = &value;  // parsed after the algorithm name is known
    } else {
      bad("unknown request field '" + key + "'");
    }
  }

  if (!have_k) bad("request is missing required field 'k'");
  if (!have_points) bad("request is missing required field 'points'");

  // Resolve the algorithm now so option parsing knows its variant and
  // a typo'd name fails at the codec with the registry's name list.
  const api::AlgorithmInfo* info =
      api::registry().find(wire.request.algorithm);
  if (info == nullptr) {
    bad("unknown algorithm '" + wire.request.algorithm + "' (known: " +
        api::known_algorithms() + ")");
  }
  wire.request.algorithm = info->name;
  if (options_value != nullptr) {
    wire.request.options = parse_options(info->name, *options_value);
  }

  wire.request.points = &wire.points;
  wire.request.max_dist_evals = wire.max_dist_evals;
  return wire;
}

namespace {

void append_field(std::string& out, std::string_view key,
                  const std::string& value, bool* first) {
  out += *first ? "\"" : ", \"";
  *first = false;
  out += key;
  out += "\": ";
  out += value;
}

void append_string_field(std::string& out, std::string_view key,
                         std::string_view value, bool* first) {
  append_field(out, key, "\"" + json_escape(value) + "\"", first);
}

[[nodiscard]] std::string envelope_prefix(std::uint64_t id,
                                          std::string_view tenant,
                                          std::string_view status) {
  std::string out = "{";
  bool first = true;
  append_field(out, "id", std::to_string(id), &first);
  append_string_field(out, "tenant", tenant, &first);
  append_string_field(out, "status", status, &first);
  return out;
}

}  // namespace

std::string write_report(std::uint64_t id, std::string_view tenant,
                         const api::SolveReport& report,
                         const ReportStyle& style) {
  std::string out = envelope_prefix(id, tenant, "ok");
  bool first = false;
  append_string_field(out, "algorithm", report.algorithm, &first);
  std::string centers = "[";
  for (std::size_t i = 0; i < report.centers.size(); ++i) {
    if (i != 0) centers += ", ";
    centers += std::to_string(report.centers[i]);
  }
  centers += "]";
  append_field(out, "centers", centers, &first);
  append_field(out, "value", json_number(report.value), &first);
  append_field(out, "radius_comparable",
               json_number(report.radius_comparable), &first);
  append_string_field(out, "guarantee", report.guarantee, &first);
  append_field(out, "rounds", std::to_string(report.rounds), &first);
  append_field(out, "iterations", std::to_string(report.iterations), &first);
  append_field(out, "dist_evals", std::to_string(report.dist_evals), &first);
  append_field(out, "budget_consumed",
               std::to_string(report.budget_consumed), &first);
  append_field(out, "attempts", std::to_string(report.attempts), &first);
  if (report.degraded) append_field(out, "degraded", "true", &first);
  if (!style.stable) {
    append_field(out, "sim_seconds", json_number(report.sim_seconds), &first);
    append_field(out, "wall_seconds", json_number(report.wall_seconds),
                 &first);
    append_field(out, "cpu_seconds", json_number(report.cpu_seconds), &first);
    append_string_field(out, "backend", report.backend, &first);
    append_string_field(out, "kernel_isa", report.kernel_isa, &first);
  }
  out += "}";
  return out;
}

std::string write_error(std::uint64_t id, std::string_view tenant,
                        std::string_view status, std::string_view message,
                        int attempts, bool degraded) {
  std::string out = envelope_prefix(id, tenant, status);
  bool first = false;
  append_string_field(out, "error", message, &first);
  // Only emitted when the request actually ran: admission rejections
  // (bad-request, overloaded, shutting-down) keep their historic shape.
  if (attempts > 0) {
    append_field(out, "attempts", std::to_string(attempts), &first);
  }
  if (degraded) append_field(out, "degraded", "true", &first);
  out += "}";
  return out;
}

}  // namespace kc::svc
