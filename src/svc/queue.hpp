// Bounded multi-producer admission queue of the batch solve service.
//
// Producers (a stdin reader, one thread per socket connection) push
// admitted requests; the single ServiceLoop consumer pops them. The
// bound is the service's backpressure: push() blocks a producer while
// the queue is full (a batch replay throttles itself to the solver's
// pace), try_push() refuses instead (a network front-end answers
// "overloaded" rather than queueing unboundedly). close() wakes
// everyone; a closed queue accepts nothing and pop() drains what
// remains before reporting exhaustion.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "compat/thread_safety.hpp"

namespace kc::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  /// Blocks while full. Returns false only when the queue is (or
  /// becomes, while this call waits) closed — including a close() that
  /// races an in-flight waiter: every blocked producer wakes, refuses,
  /// and its by-value `item` is destroyed with the call. Callers that
  /// need the item back on refusal use try_push.
  bool push(T item) KC_EXCLUDES(mutex_) {
    compat::MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. On refusal (full or closed) returns false with
  /// `item` NOT moved from — the caller still owns the original value
  /// and may retry, reroute, or settle it. The move happens only after
  /// every refusal check has passed, so there is no path that both
  /// refuses and consumes.
  bool try_push(T& item) KC_EXCLUDES(mutex_) {
    {
      const compat::LockGuard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop: nullopt when currently empty.
  std::optional<T> try_pop() KC_EXCLUDES(mutex_) {
    compat::MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained (then nullopt).
  std::optional<T> pop() KC_EXCLUDES(mutex_) {
    compat::MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// No further pushes succeed; pending items remain poppable.
  void close() KC_EXCLUDES(mutex_) {
    {
      const compat::LockGuard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const KC_EXCLUDES(mutex_) {
    const compat::LockGuard lock(mutex_);
    return items_.size();
  }

  /// True once close() ran (pushes refuse; pop drains the remainder).
  [[nodiscard]] bool closed() const KC_EXCLUDES(mutex_) {
    const compat::LockGuard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable compat::Mutex mutex_;
  compat::CondVar not_full_;
  compat::CondVar not_empty_;
  std::deque<T> items_ KC_GUARDED_BY(mutex_);
  bool closed_ KC_GUARDED_BY(mutex_) = false;
};

}  // namespace kc::svc
