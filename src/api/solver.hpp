// The reusable solve facade: one stable seam through which every
// front-end (harness, CLI, examples, benches, a future service) runs a
// k-center algorithm.
//
//   kc::api::SolveRequest request;
//   request.points = &data;
//   request.k = 25;
//   request.algorithm = "mrg";
//   kc::api::Solver solver;
//   kc::api::SolveReport report = solver.solve(request);
//
// solve() validates the request (throwing api::Error with a typed
// kind), binds one persistent execution backend across calls, prepares
// the oracle/cluster, dispatches through the algorithm registry, and
// returns the unified SolveReport — including the offline-evaluated
// solution value and the effective backend/kernel ISA.
#pragma once

#include <memory>

#include "api/error.hpp"
#include "api/report.hpp"
#include "api/request.hpp"
#include "exec/backend.hpp"

namespace kc::api {

class Solver {
 public:
  /// A solver that builds its backend lazily from the first request's
  /// ExecSpec and reuses it for every subsequent request with the same
  /// kind/threads (so a thread pool's workers persist across calls).
  Solver() = default;

  /// Pins `backend` for every solve this instance performs; requests'
  /// ExecSpec kind/threads are ignored (a request-level
  /// ExecSpec::backend still takes precedence). Must be non-null.
  explicit Solver(std::shared_ptr<exec::ExecutionBackend> backend);

  /// Validates and runs one request. Throws api::Error:
  ///   BadRequest          missing/empty points, k == 0, unknown
  ///                       algorithm, mismatched options variant, or
  ///                       option values the algorithm rejects
  ///   UnsupportedBackend  this build cannot provide ExecSpec::kind
  ///   BudgetExceeded      the eval budget ran out (enforced at chunk
  ///                       granularity inside the bulk kernels — even
  ///                       one huge scan stops within ~kGateEvals pair
  ///                       evaluations — plus a counter check after
  ///                       the run for non-kernel evaluations)
  ///   Cancelled           the cancellation token fired (checked before
  ///                       dispatch, at every round boundary, and
  ///                       between chunks inside the bulk kernels)
  [[nodiscard]] SolveReport solve(const SolveRequest& request);

  /// The backend the last solve ran on — including a request-supplied
  /// ExecSpec::backend, which outranks a pinned one. Before the first
  /// solve: the pinned backend, or null on an unpinned solver.
  [[nodiscard]] const std::shared_ptr<exec::ExecutionBackend>& backend()
      const noexcept {
    return last_ != nullptr ? last_ : pinned_;
  }

 private:
  [[nodiscard]] std::shared_ptr<exec::ExecutionBackend> resolve_backend(
      const SolveRequest& request);

  std::shared_ptr<exec::ExecutionBackend> pinned_;  ///< from the ctor
  std::shared_ptr<exec::ExecutionBackend> cached_;  ///< lazily built
  std::shared_ptr<exec::ExecutionBackend> last_;    ///< last solve's backend
  exec::BackendKind cached_kind_ = exec::BackendKind::Sequential;
  int cached_threads_ = 0;
  std::optional<exec::PinMode> cached_pin_;
};

}  // namespace kc::api
