// SolveReport: the single result contract of the solve facade.
//
// One struct carries every field the divergent per-algorithm result
// subtypes (GonzalezResult, MrgResult, EimResult, ...) used to expose,
// plus the offline-evaluated solution value and the execution facts
// (effective backend, kernel ISA, timings) callers previously had to
// assemble by hand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point_set.hpp"
#include "mapreduce/trace.hpp"

namespace kc::api {

struct SolveReport {
  std::string algorithm;  ///< canonical registry name that ran

  // ---- The solution.
  std::vector<index_t> centers;
  /// Covering radius over the subset the final sequential solver saw,
  /// in comparable scale (squared distance for L2).
  double radius_comparable = 0.0;
  /// Covering radius over the *whole* input in reported scale — the
  /// paper's solution value, evaluated offline and not charged to the
  /// algorithm's work counters.
  double value = 0.0;
  /// Worst-case approximation factor guaranteed for this particular
  /// run, e.g. "2", "4", "10 (w.s.p.)".
  std::string guarantee;

  // ---- Round structure and work.
  int rounds = 0;      ///< MapReduce rounds executed (0 = sequential path)
  int iterations = 0;  ///< MRG reduce rounds / EIM main-loop iterations
  bool sampled = false;               ///< EIM: false = degenerated to GON
  std::size_t final_sample_size = 0;  ///< EIM: |C| at loop exit
  std::uint64_t dist_evals = 0;       ///< distance evaluations charged
  /// Point-pair evaluations the spatial-index pruning skipped (0 when
  /// pruning was off or never engaged). dist_evals + pairs_pruned is
  /// comparable to an unpruned run's dist_evals.
  std::uint64_t pairs_pruned = 0;
  /// Evaluations charged to the request's EvalBudget odometer during
  /// this solve (solve + offline evaluation when budgeted_eval is on).
  /// Exact for a budget private to the request; for a budget shared
  /// across concurrent solves it is the interleaved delta and only
  /// the budget's own consumed() is authoritative.
  std::uint64_t budget_consumed = 0;
  mr::JobTrace trace;                 ///< per-round detail (empty for GON/HS)

  // ---- Resilience facts (set by retrying front-ends, e.g. the
  // service loop; a direct Solver::solve leaves the defaults).
  /// Solve attempts this report took (1 = first try succeeded).
  int attempts = 1;
  /// True when the request ran under a degraded policy (shrunk budget,
  /// cheaper algorithm, forced pruning) because the service was above
  /// its queue high-watermark.
  bool degraded = false;

  // ---- Timings and execution facts.
  /// Simulated parallel time: sum over rounds of the max per-machine
  /// thread-CPU time (== wall for sequential algorithms).
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;  ///< host wall time of the algorithm run
  /// CPU time the solve consumed on its driving thread (excludes work
  /// the backends ran on workers; contention- and sleep-invariant).
  double cpu_seconds = 0.0;
  std::string backend;        ///< effective execution backend name
  std::string kernel_isa;     ///< effective SIMD kernel table (scalar/avx2/...)
};

}  // namespace kc::api
