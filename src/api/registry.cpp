#include "api/registry.hpp"

// GCC 12 miscompiles the -Wrestrict bounds of short string-literal
// assignments inlined through libstdc++'s char_traits (GCC PR105329):
// `report.guarantee = "2"` reports a possible overlap of ~2^63 bytes.
// False positive, suppressed for this TU only; Clang and later GCCs
// are unaffected.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "algo/brute_force.hpp"
#include "algo/gonzalez.hpp"
#include "algo/hochbaum_shmoys.hpp"
#include "core/ccm.hpp"
#include "core/disjoint_union.hpp"
#include "core/eim.hpp"
#include "core/mrg.hpp"

namespace kc::api {

void Registry::add(AlgorithmInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("registry: algorithm name must be non-empty");
  }
  if (!info.run) {
    throw std::invalid_argument("registry: algorithm '" + info.name +
                                "' has no runner");
  }
  for (const auto& existing : algos_) {
    auto clashes = [&existing](const std::string& key) {
      if (key == existing.name) return true;
      return std::find(existing.aliases.begin(), existing.aliases.end(),
                       key) != existing.aliases.end();
    };
    if (clashes(info.name)) {
      throw std::invalid_argument("registry: duplicate algorithm name '" +
                                  info.name + "'");
    }
    for (const auto& alias : info.aliases) {
      if (clashes(alias)) {
        throw std::invalid_argument("registry: duplicate algorithm alias '" +
                                    alias + "'");
      }
    }
  }
  algos_.push_back(std::move(info));
}

const AlgorithmInfo* Registry::find(
    std::string_view name_or_alias) const noexcept {
  for (const auto& algo : algos_) {
    if (algo.name == name_or_alias) return &algo;
    for (const auto& alias : algo.aliases) {
      if (alias == name_or_alias) return &algo;
    }
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(algos_.size());
  for (const auto& algo : algos_) out.push_back(algo.name);
  return out;
}

namespace {

/// The request's options alternative, or `fallback` when the variant
/// holds monostate (the Solver has already rejected mismatches).
template <typename T>
[[nodiscard]] T options_or(const SolveRequest& request, T fallback = {}) {
  if (const T* options = std::get_if<T>(&request.options)) return *options;
  return fallback;
}

/// GON defaults under the facade: random first center seeded by the
/// request, matching the experiment protocol (§7.1) and the legacy
/// harness/CLI paths. Pass explicit GonzalezOptions for FirstPoint.
[[nodiscard]] GonzalezOptions default_gonzalez() {
  GonzalezOptions options;
  options.first = GonzalezOptions::FirstCenter::Random;
  return options;
}

void run_gon(const SolveContext& ctx, SolveReport& report) {
  GonzalezOptions options = options_or(*ctx.request, default_gonzalez());
  options.seed = ctx.request->seed;
  GonzalezResult r = gonzalez(*ctx.oracle, ctx.points, ctx.request->k, options);
  report.centers = std::move(r.centers);
  report.radius_comparable = r.radius_comparable;
  report.guarantee = "2";
}

void run_hs(const SolveContext& ctx, SolveReport& report) {
  const HochbaumShmoysOptions options =
      options_or<HochbaumShmoysOptions>(*ctx.request);
  KCenterResult r =
      hochbaum_shmoys(*ctx.oracle, ctx.points, ctx.request->k, options);
  report.centers = std::move(r.centers);
  report.radius_comparable = r.radius_comparable;
  report.guarantee = "2";
}

void run_brute(const SolveContext& ctx, SolveReport& report) {
  const BruteForceOptions options = options_or<BruteForceOptions>(*ctx.request);
  KCenterResult r = brute_force_opt(*ctx.oracle, ctx.points, ctx.request->k,
                                    options.max_subsets);
  report.centers = std::move(r.centers);
  report.radius_comparable = r.radius_comparable;
  report.guarantee = "1 (exact)";
}

/// Installs the Solver-prepared hooks into a loop algorithm's options.
/// A request-level callback replaces a variant-embedded one; a request
/// without one leaves any variant-embedded callback in place.
template <typename Options>
void install_hooks(const SolveContext& ctx, Options& options) {
  if (ctx.progress) options.progress = ctx.progress;
  if (ctx.cancel.armed()) options.cancel = ctx.cancel;
}

void fill_from_trace(SolveReport& report, mr::JobTrace trace) {
  report.rounds = trace.num_rounds();
  report.dist_evals = trace.total_dist_evals();
  report.sim_seconds = trace.simulated_seconds();
  report.trace = std::move(trace);
}

void run_mrg(const SolveContext& ctx, SolveReport& report) {
  MrgOptions options = options_or<MrgOptions>(*ctx.request);
  options.seed = ctx.request->seed;
  install_hooks(ctx, options);
  MrgResult r =
      mrg(*ctx.oracle, ctx.points, ctx.request->k, *ctx.cluster, options);
  report.centers = std::move(r.centers);
  report.radius_comparable = r.radius_comparable;
  report.iterations = r.reduce_rounds;
  report.guarantee = std::to_string(r.guaranteed_factor());
  fill_from_trace(report, std::move(r.trace));
}

void run_eim(const SolveContext& ctx, SolveReport& report) {
  EimOptions options = options_or<EimOptions>(*ctx.request);
  options.seed = ctx.request->seed;
  install_hooks(ctx, options);
  EimResult r =
      eim(*ctx.oracle, ctx.points, ctx.request->k, *ctx.cluster, options);
  report.centers = std::move(r.centers);
  report.radius_comparable = r.radius_comparable;
  report.iterations = r.iterations;
  report.sampled = r.sampled;
  report.final_sample_size = r.final_sample_size;
  report.guarantee = r.sampled ? "10 (w.s.p.)" : "2";
  fill_from_trace(report, std::move(r.trace));
}

void run_mrg_du(const SolveContext& ctx, SolveReport& report) {
  DisjointUnionOptions options = options_or<DisjointUnionOptions>(*ctx.request);
  options.mrg.seed = ctx.request->seed;
  install_hooks(ctx, options.mrg);
  DisjointUnionResult r = mrg_disjoint_union(*ctx.oracle, ctx.points,
                                             ctx.request->k, *ctx.cluster,
                                             options);
  report.centers = std::move(r.centers);
  report.radius_comparable = r.radius_comparable;
  report.guarantee = std::to_string(r.guaranteed_factor);
  mr::JobTrace merged;
  for (const auto& chunk : r.chunk_results) {
    merged.append(chunk.trace);
    report.iterations = std::max(report.iterations, chunk.reduce_rounds);
  }
  merged.append(r.union_trace);
  fill_from_trace(report, std::move(merged));
}

void run_ccm(const SolveContext& ctx, SolveReport& report) {
  CcmOptions options = options_or<CcmOptions>(*ctx.request);
  options.seed = ctx.request->seed;
  install_hooks(ctx, options);
  CcmResult r =
      ccm(*ctx.oracle, ctx.points, ctx.request->k, *ctx.cluster, options);
  report.centers = std::move(r.centers);
  report.radius_comparable = r.radius_comparable;
  report.final_sample_size = r.coreset_size;
  report.guarantee = "2+eps (grid coreset)";
  fill_from_trace(report, std::move(r.trace));
}

void register_builtins(Registry& registry) {
  registry.add({"gon",
                {"gonzalez"},
                "Gonzalez greedy farthest-point traversal "
                "(sequential 2-approximation, O(kN))",
                /*uses_cluster=*/false,
                options_index_of<GonzalezOptions>(),
                run_gon});
  registry.add({"hs",
                {"hochbaum-shmoys"},
                "Hochbaum-Shmoys threshold search "
                "(sequential 2-approximation, O(N^2 log N))",
                /*uses_cluster=*/false,
                options_index_of<HochbaumShmoysOptions>(),
                run_hs});
  registry.add({"brute",
                {"brute-force", "opt"},
                "exact optimum by exhaustive center enumeration "
                "(tiny instances only)",
                /*uses_cluster=*/false,
                options_index_of<BruteForceOptions>(),
                run_brute});
  registry.add({"mrg",
                {},
                "multi-round MapReduce Gonzalez "
                "(Algorithm 1; 4-approximation in two rounds)",
                /*uses_cluster=*/true,
                options_index_of<MrgOptions>(),
                run_mrg});
  registry.add({"eim",
                {},
                "iterative-sampling MapReduce, parameterized Ene-Im-Moseley "
                "(Algorithms 2+3; 10-approximation w.s.p.)",
                /*uses_cluster=*/true,
                options_index_of<EimOptions>(),
                run_eim});
  registry.add({"mrg-du",
                {"disjoint-union"},
                "external-memory MRG: disjoint-chunk instances + union pass "
                "(2(i+2)-approximation, SS3.2)",
                /*uses_cluster=*/true,
                options_index_of<DisjointUnionOptions>(),
                run_mrg_du});
  // Registered through the same string-keyed seam as the paper's
  // algorithms: the harness, CLI, benches and the svc/ batch service
  // all pick it up with zero front-end changes.
  registry.add({"ccm",
                {"coy-czumaj-mishra", "grid-coreset"},
                "grid-coreset parallel k-center, Coy-Czumaj-Mishra style "
                "(3 rounds; 2+eps via per-machine grid snapping)",
                /*uses_cluster=*/true,
                options_index_of<CcmOptions>(),
                run_ccm});
}

}  // namespace

Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry;
    register_builtins(*r);
    return r;
  }();
  return *instance;
}

std::string known_algorithms() {
  std::string out;
  for (const auto& name : registry().names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace kc::api
