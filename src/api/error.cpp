#include "api/error.hpp"

namespace kc::api {

std::string_view to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::BadRequest: return "bad-request";
    case ErrorKind::UnsupportedBackend: return "unsupported-backend";
    case ErrorKind::BudgetExceeded: return "budget-exceeded";
    case ErrorKind::Cancelled: return "cancelled";
  }
  return "?";
}

}  // namespace kc::api
