// Typed error taxonomy of the solve facade.
//
// Everything Solver::solve rejects or aborts surfaces as one exception
// type, kc::api::Error, tagged with a machine-readable kind — replacing
// the assorted std::invalid_argument / std::length_error /
// std::runtime_error throws a caller of the free functions had to
// pattern-match. A service front-end maps kinds to status codes
// (BadRequest -> 400, UnsupportedBackend -> 501, BudgetExceeded -> 429,
// Cancelled -> 499) without parsing messages.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace kc::api {

enum class ErrorKind {
  BadRequest,          ///< invalid request: bad k, unknown algorithm,
                       ///< mismatched options variant, bad option values
  UnsupportedBackend,  ///< this build cannot provide the requested backend
  BudgetExceeded,      ///< the distance-evaluation budget ran out
  Cancelled,           ///< the request's cancellation token fired
};

[[nodiscard]] std::string_view to_string(ErrorKind kind) noexcept;

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

}  // namespace kc::api
