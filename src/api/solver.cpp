#include "api/solver.hpp"

#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/registry.hpp"
#include "eval/evaluate.hpp"
#include "exec/chunk_context.hpp"
#include "exec/cpu_clock.hpp"
#include "geom/counters.hpp"
#include "geom/kernels.hpp"
#include "geom/spatial_index.hpp"
#include "mapreduce/cluster.hpp"

namespace kc::api {

namespace {

using Clock = std::chrono::steady_clock;

/// All coordinates finite? A single NaN would reach the bulk kernels
/// and poison every comparison (argmax documents its input NaN-free),
/// so the facade refuses the request up front. O(n * dim) over raw
/// doubles — noise next to even one O(n * k) solve scan.
[[nodiscard]] bool all_finite(const PointSet& points) noexcept {
  for (const double c : points.raw()) {
    if (!std::isfinite(c)) return false;
  }
  return true;
}

/// Validates everything checkable before any work happens; returns the
/// registry entry the request names.
const AlgorithmInfo& validate(const SolveRequest& request) {
  if (request.points == nullptr) {
    throw Error(ErrorKind::BadRequest, "request has no point set");
  }
  if (request.points->size() == 0) {
    throw Error(ErrorKind::BadRequest, "point set is empty");
  }
  if (request.k == 0) {
    throw Error(ErrorKind::BadRequest, "k must be at least 1");
  }
  if (request.k > request.points->size()) {
    throw Error(ErrorKind::BadRequest,
                "k = " + std::to_string(request.k) + " exceeds the " +
                    std::to_string(request.points->size()) +
                    " points in the set");
  }
  if (!all_finite(*request.points)) {
    throw Error(ErrorKind::BadRequest,
                "point set contains non-finite coordinates");
  }
  const AlgorithmInfo* info = registry().find(request.algorithm);
  if (info == nullptr) {
    throw Error(ErrorKind::BadRequest,
                "unknown algorithm '" + request.algorithm + "' (known: " +
                    known_algorithms() + ")");
  }
  if (request.options.index() != 0 &&
      request.options.index() != info->options_index) {
    throw Error(ErrorKind::BadRequest,
                "options variant does not match algorithm '" + info->name +
                    "'");
  }
  if (request.exec.threads < 0) {
    throw Error(ErrorKind::BadRequest, "threads must be non-negative");
  }
  if (info->uses_cluster && request.exec.machines < 1) {
    throw Error(ErrorKind::BadRequest,
                "machines must be at least 1 for algorithm '" + info->name +
                    "'");
  }
  return *info;
}

}  // namespace

Solver::Solver(std::shared_ptr<exec::ExecutionBackend> backend)
    : pinned_(std::move(backend)) {
  if (pinned_ == nullptr) {
    throw Error(ErrorKind::BadRequest, "Solver: pinned backend must be non-null");
  }
}

std::shared_ptr<exec::ExecutionBackend> Solver::resolve_backend(
    const SolveRequest& request) {
  if (request.exec.backend != nullptr) return request.exec.backend;
  if (pinned_ != nullptr) return pinned_;
  if (cached_ != nullptr && cached_kind_ == request.exec.kind &&
      cached_threads_ == request.exec.threads &&
      cached_pin_ == request.exec.pin) {
    return cached_;
  }
  if (!exec::backend_available(request.exec.kind)) {
    throw Error(ErrorKind::UnsupportedBackend,
                "this build cannot provide backend '" +
                    std::string(exec::to_string(request.exec.kind)) + "'");
  }
  try {
    cached_ = exec::make_backend(request.exec.kind, request.exec.threads,
                                 request.exec.pin);
  } catch (const std::exception& e) {
    throw Error(ErrorKind::UnsupportedBackend, e.what());
  }
  cached_kind_ = request.exec.kind;
  cached_threads_ = request.exec.threads;
  cached_pin_ = request.exec.pin;
  return cached_;
}

SolveReport Solver::solve(const SolveRequest& request) {
  const AlgorithmInfo& info = validate(request);
  if (request.cancel.cancelled()) {
    throw Error(ErrorKind::Cancelled, "request cancelled before dispatch");
  }

  SolveContext context;
  context.request = &request;
  context.backend = resolve_backend(request);
  last_ = context.backend;
  context.progress = request.progress;
  context.cancel = request.cancel;

  // Budget enforcement lives in the chunk-gated kernels: the context
  // below carries the cancellation token and an eval budget, and the
  // oracle's bulk scans check both every ~exec::kGateEvals pair
  // evaluations — so a cancel or an exhausted budget stops even a
  // single huge round within one chunk, on every backend.
  exec::ChunkContext chunk_context;
  chunk_context.cancel = request.cancel;
  chunk_context.budget =
      request.budget != nullptr
          ? request.budget
          : (request.max_dist_evals > 0
                 ? std::make_shared<exec::EvalBudget>(request.max_dist_evals)
                 : nullptr);

  DistanceOracle oracle(*request.points, request.metric);
  oracle.bind_executor(context.backend.get());
  if (chunk_context.armed()) oracle.bind_context(&chunk_context);

  // Spatial pruning: build the grid index when the request wants it.
  // Auto only pays the index build where the grid can win (low
  // dimension, enough points that full scans dominate); On trusts the
  // caller. Either way the scans stay bit-identical — Off and
  // KC_FORCE_NO_PRUNE keep the exact pre-index path.
  std::optional<SpatialIndex> index;
  const bool build_index =
      request.prune != PruneMode::Off && !force_no_prune_requested() &&
      (request.prune == PruneMode::On ||
       (request.points->dim() <= kAutoPruneMaxDim &&
        request.points->size() >= kAutoPruneMinPoints));
  if (build_index) {
    index.emplace(*request.points);
    oracle.bind_index(&*index, request.prune);
  }
  context.oracle = &oracle;
  const std::vector<index_t> all = request.points->all_indices();
  context.points = all;

  std::optional<mr::SimCluster> cluster;
  if (info.uses_cluster) {
    cluster.emplace(request.exec.machines, /*capacity_items=*/0,
                    context.backend);
    // Machine-failure injection is keyed per request: same request
    // seed + same FaultPlan seed => the same machines die, on every
    // backend (see SimCluster::set_fault_scope).
    cluster->set_fault_scope(request.seed);
    context.cluster = &*cluster;
  }

  SolveReport report;
  report.algorithm = info.name;
  report.backend = std::string(context.backend->name());
  report.kernel_isa = std::string(simd::to_string(simd::active_level()));

  const std::uint64_t odometer_before =
      chunk_context.budget != nullptr ? chunk_context.budget->consumed() : 0;
  const WorkScope work;
  const auto start = Clock::now();
  const double cpu_start = exec::thread_cpu_seconds();
  try {
    info.run(context, report);
  } catch (const Error&) {
    throw;
  } catch (const BudgetExceededError& e) {
    throw Error(ErrorKind::BudgetExceeded, e.what());
  } catch (const CancelledError& e) {
    throw Error(ErrorKind::Cancelled, e.what());
  } catch (const std::invalid_argument& e) {
    throw Error(ErrorKind::BadRequest, e.what());
  } catch (const std::length_error& e) {
    throw Error(ErrorKind::BadRequest, e.what());
  }
  report.cpu_seconds = exec::thread_cpu_seconds() - cpu_start;
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Cluster algorithms take their counts and simulated time from the
  // trace (attributed per machine task, backend-invariant). Sequential
  // ones ran entirely on this thread, so the WorkScope covers them and
  // simulated time is wall time — sampled before the offline value
  // evaluation below, which is not charged to the algorithm.
  if (!info.uses_cluster) {
    const WorkCounters elapsed = work.elapsed();
    report.dist_evals = elapsed.distance_evals;
    report.pairs_pruned = elapsed.pruned_pairs;
    report.sim_seconds = report.wall_seconds;
  }
  if (request.max_dist_evals > 0 &&
      report.dist_evals > request.max_dist_evals) {
    throw Error(ErrorKind::BudgetExceeded,
                info.name + ": " + std::to_string(report.dist_evals) +
                    " distance evaluations exceed budget " +
                    std::to_string(request.max_dist_evals));
  }

  // Offline value evaluation. By default it must not consume budget
  // (it is not charged to the algorithm, and a solve that finished
  // within its budget must not be failed by free bookkeeping) — but it
  // must stay *cancellable*: the evaluation scans are O(n * k) over
  // the whole input, easily dwarfing a budget-truncated solve. With
  // budgeted_eval the request's full context (budget included) stays
  // in force, so no untrusted request can trigger unbudgeted
  // evaluation work; exhaustion mid-evaluation fails the request.
  if (report.centers.empty()) {
    // A runner breaking its contract on a validated request is a
    // server-side bug, not the client's: deliberately NOT an
    // api::Error, so front-ends surface it as an internal failure.
    throw std::logic_error(info.name + ": algorithm returned no centers");
  }
  exec::ChunkContext eval_context;
  eval_context.cancel = request.cancel;
  if (request.budgeted_eval) eval_context.budget = chunk_context.budget;
  oracle.bind_context(eval_context.armed() ? &eval_context : nullptr);
  try {
    report.value = eval::covering_radius(oracle, all, report.centers).radius;
  } catch (const BudgetExceededError& e) {
    throw Error(ErrorKind::BudgetExceeded, e.what());
  } catch (const CancelledError& e) {
    throw Error(ErrorKind::Cancelled, e.what());
  }
  if (chunk_context.budget != nullptr) {
    report.budget_consumed =
        chunk_context.budget->consumed() - odometer_before;
  }
  return report;
}

}  // namespace kc::api
