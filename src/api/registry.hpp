// The string-keyed algorithm registry behind the solve facade.
//
// Every algorithm the library can run — built-in or user-registered —
// lands here as an AlgorithmInfo: a canonical name, aliases, a one-line
// description (what --list-algos prints), which AlgoOptions alternative
// it accepts, and a runner closure. The Solver validates a request,
// prepares a SolveContext (bound oracle, resolved backend, simulated
// cluster) and dispatches to the runner; nothing else in the codebase
// switches on algorithm identity.
//
// The built-ins (gon, hs, brute, mrg, eim, mrg-du) self-register via
// their factory functions the first time registry() is called, so a
// static-library link can never drop them. New algorithms — e.g. the
// Coy–Czumaj–Mishra parallel scheme or an MPC variant — land by calling
// registry().add() at startup; every front-end (harness, CLI, benches,
// a future service) picks them up without modification.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/report.hpp"
#include "api/request.hpp"
#include "mapreduce/cluster.hpp"

namespace kc::api {

/// Everything a runner needs at dispatch time, prepared by the Solver:
/// the validated request, an oracle bound to the resolved backend, and
/// (for cluster algorithms) the simulated cluster.
struct SolveContext {
  const SolveRequest* request = nullptr;
  const DistanceOracle* oracle = nullptr;
  std::span<const index_t> points;  ///< all indices of the request's set
  std::shared_ptr<exec::ExecutionBackend> backend;
  const mr::SimCluster* cluster = nullptr;  ///< null for sequential algos

  /// Hooks the runner must install into the algorithm options: the
  /// request's cancellation token and progress callback (which takes
  /// precedence over a variant-embedded one). Null/inert when unused.
  /// Budget enforcement no longer rides the progress hook — it lives
  /// in the chunk-gated kernels via the ChunkContext the Solver binds
  /// onto the oracle.
  ProgressFn progress;
  CancellationToken cancel;
};

struct AlgorithmInfo {
  std::string name;                  ///< canonical registry key
  std::vector<std::string> aliases;  ///< accepted alternate spellings
  std::string description;           ///< one line, shown by --list-algos
  bool uses_cluster = false;         ///< needs a SimCluster (parallel family)

  /// The AlgoOptions alternative this algorithm accepts (via
  /// options_index_of<T>()); monostate is always accepted and means
  /// "defaults".
  std::size_t options_index = 0;

  /// Runs the algorithm and fills the algorithm-specific report fields:
  /// centers, radius_comparable, guarantee, rounds/iterations, trace.
  /// The Solver fills value, timings, dist_evals for sequential algos,
  /// backend and kernel_isa afterwards.
  std::function<void(const SolveContext&, SolveReport&)> run;
};

class Registry {
 public:
  /// Registers an algorithm. Throws std::invalid_argument on an empty
  /// name, a missing runner, or a name/alias collision.
  void add(AlgorithmInfo info);

  /// Looks up a canonical name or alias; nullptr when unknown.
  [[nodiscard]] const AlgorithmInfo* find(
      std::string_view name_or_alias) const noexcept;

  /// Canonical names, in registration order (built-ins first).
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] const std::vector<AlgorithmInfo>& algorithms() const noexcept {
    return algos_;
  }

 private:
  std::vector<AlgorithmInfo> algos_;
};

/// The process-wide registry, with the built-in algorithms registered
/// on first use. Not synchronized: register custom algorithms during
/// startup, before concurrent solves begin.
[[nodiscard]] Registry& registry();

/// Comma-joined canonical names of registry(), for error messages
/// ("unknown algorithm 'x' (known: gon, hs, ...)"); shared by the
/// Solver and the CLI so the two never drift apart.
[[nodiscard]] std::string known_algorithms();

}  // namespace kc::api
