// SolveRequest: the single request contract of the solve facade.
//
// One struct describes everything a k-center solve needs — the data,
// the metric, k, which algorithm (by registry name), that algorithm's
// options, where to execute, the seed, an optional work budget, and
// cooperative hooks. The Solver validates it (api/solver.hpp) and
// dispatches through the algorithm registry (api/registry.hpp), so new
// algorithms and new front-ends meet at this one seam.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>

#include "algo/gonzalez.hpp"
#include "algo/hochbaum_shmoys.hpp"
#include "core/ccm.hpp"
#include "core/disjoint_union.hpp"
#include "core/eim.hpp"
#include "core/hooks.hpp"
#include "core/mrg.hpp"
#include "exec/backend.hpp"
#include "exec/chunk_context.hpp"
#include "geom/distance.hpp"
#include "geom/point_set.hpp"

namespace kc::api {

/// Options for the exact brute-force reference solver
/// (algo/brute_force.hpp takes a bare limit; the facade wraps it so it
/// fits the options variant like every other algorithm).
struct BruteForceOptions {
  /// Refuse instances with more than this many center subsets.
  std::uint64_t max_subsets = 2'000'000;
};

/// Per-algorithm options carried by a SolveRequest. `monostate` means
/// "the registry entry's defaults". The Solver rejects (ErrorKind::
/// BadRequest) a request whose alternative does not match the named
/// algorithm, so an EIM request can never silently run with MRG knobs.
using AlgoOptions =
    std::variant<std::monostate, GonzalezOptions, HochbaumShmoysOptions,
                 BruteForceOptions, MrgOptions, EimOptions,
                 DisjointUnionOptions, CcmOptions>;

/// Index of option type T within AlgoOptions (registry entries record
/// which alternative they accept).
template <typename T>
[[nodiscard]] constexpr std::size_t options_index_of() noexcept {
  return AlgoOptions(std::in_place_type<T>).index();
}

/// Where and how wide a solve executes: the execution backend for both
/// the simulated cluster's reducer fan-out and the oracle's sharded
/// distance kernels, plus the simulated cluster width.
struct ExecSpec {
  exec::BackendKind kind = exec::BackendKind::Sequential;
  int threads = 0;  ///< 0 = backend default (hardware concurrency)

  /// Worker pinning for the thread-pool backend (exec/topology.hpp):
  /// nullopt defers to the KC_PIN environment variable. Pure placement
  /// — reports are byte-identical across off/core/node.
  std::optional<exec::PinMode> pin;

  /// When set, used directly and `kind`/`threads` are ignored — one
  /// persistent thread pool can serve many requests and Solvers.
  std::shared_ptr<exec::ExecutionBackend> backend;

  int machines = 50;  ///< simulated cluster width (paper fixes 50, §7.2)
};

struct SolveRequest {
  /// The data to cluster. Required; not owned — must outlive the solve.
  const PointSet* points = nullptr;
  MetricKind metric = MetricKind::L2;

  std::size_t k = 0;  ///< number of centers; required, >= 1

  /// Registry name or alias (see api::registry().names()).
  std::string algorithm = "mrg";

  /// Per-algorithm options; monostate = defaults. The `seed` below
  /// always overrides any seed field inside the variant, so repeated
  /// runs only vary the one knob the experiment protocol varies.
  AlgoOptions options;

  ExecSpec exec;
  std::uint64_t seed = 1;

  /// Spatial pruning of the bulk distance scans (geom/spatial_index.hpp).
  /// Auto builds a grid index and routes full scans through cell-pruned
  /// paths when the instance is likely to profit (low dimension, enough
  /// points — see Solver); On forces the index regardless; Off keeps the
  /// exact pre-index code path, as does the KC_FORCE_NO_PRUNE
  /// environment variable. Results are bit-identical either way; only
  /// dist_evals vs pairs_pruned shift.
  PruneMode prune = PruneMode::Auto;

  /// Optional distance-evaluation budget; 0 = unlimited. Enforced at
  /// chunk granularity inside the bulk distance kernels (the Solver
  /// builds an exec::EvalBudget and binds it, with the cancellation
  /// token, onto the oracle as a ChunkContext), so even one huge scan
  /// stops within ~exec::kGateEvals pair evaluations of exhaustion; a
  /// solve that exceeds it throws Error kind BudgetExceeded.
  std::uint64_t max_dist_evals = 0;

  /// Optional externally owned budget, e.g. one global odometer a
  /// service shares across every request it admits. When set it is
  /// used instead of max_dist_evals (which then only serves as the
  /// after-the-run counter check when non-zero), and the caller can
  /// read consumed() after the solve — including after an aborted one.
  std::shared_ptr<exec::EvalBudget> budget;

  /// Gate the offline value evaluation with the same budget as the
  /// solve. Off by default, matching the paper's methodology: the
  /// budget limits the *algorithm's* work and the reported value is
  /// evaluated for free afterwards. A service front-end handling
  /// untrusted requests turns it on so the post-solve evaluation scans
  /// (O(n * k) on the whole input) are charged against the request's
  /// budget too and no request can burn unbudgeted CPU after its solve
  /// completes — exhaustion mid-evaluation fails the request with
  /// BudgetExceeded. The cancellation token is honoured during the
  /// offline evaluation regardless of this flag.
  bool budgeted_eval = false;

  /// Cooperative hooks (core/hooks.hpp), installed into the algorithm
  /// loops by the Solver; the cancellation token is additionally
  /// polled between chunks inside the bulk kernels. A request-level
  /// progress callback takes precedence over one embedded in the
  /// options variant.
  ProgressFn progress;
  CancellationToken cancel;
};

}  // namespace kc::api
