#include "data/planted.hpp"

#include <cmath>
#include <stdexcept>

namespace kc::data {

PlantedInstance make_planted(std::size_t clusters,
                             std::size_t points_per_cluster, double radius,
                             double separation, std::size_t dim, Rng& rng) {
  if (clusters == 0) {
    throw std::invalid_argument("make_planted: clusters must be positive");
  }
  if (points_per_cluster < 3 || points_per_cluster % 2 == 0) {
    throw std::invalid_argument(
        "make_planted: points_per_cluster must be odd and >= 3");
  }
  if (!(radius > 0.0)) {
    throw std::invalid_argument("make_planted: radius must be positive");
  }
  if (!(separation > 4.0 * radius)) {
    throw std::invalid_argument(
        "make_planted: separation must exceed 4 * radius");
  }
  if (dim < 2) {
    throw std::invalid_argument("make_planted: dim must be at least 2");
  }

  PlantedInstance out;
  out.clusters = clusters;
  out.opt_radius = radius;
  out.points = PointSet(clusters * points_per_cluster, dim);
  out.optimal_centers.reserve(clusters);

  // Sites on a square-ish grid with spacing `separation`.
  const auto grid = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(clusters))));

  std::vector<double> site(dim, 0.0);
  std::vector<double> dir(dim, 0.0);
  index_t next = 0;
  for (std::size_t c = 0; c < clusters; ++c) {
    std::fill(site.begin(), site.end(), 0.0);
    site[0] = static_cast<double>(c % grid) * separation;
    site[1] = static_cast<double>(c / grid) * separation;

    // The site point itself is the planted optimal center.
    out.optimal_centers.push_back(next);
    auto sp = out.points.mutable_point(next++);
    std::copy(site.begin(), site.end(), sp.begin());

    // Antipodal satellite pairs at exact distance `radius`.
    for (std::size_t pair = 0; pair + 1 < points_per_cluster; pair += 2) {
      double norm = 0.0;
      do {
        norm = 0.0;
        for (auto& d : dir) {
          d = rng.gaussian();
          norm += d * d;
        }
        norm = std::sqrt(norm);
      } while (norm < 1e-12);

      auto a = out.points.mutable_point(next++);
      auto b = out.points.mutable_point(next++);
      for (std::size_t d = 0; d < dim; ++d) {
        const double offset = radius * dir[d] / norm;
        a[d] = site[d] + offset;
        b[d] = site[d] - offset;
      }
    }
  }
  return out;
}

}  // namespace kc::data
