// Planted instances with *exactly known* optimal radius, used by the
// approximation-factor property tests (GON <= 2*OPT, 2-round MRG
// <= 4*OPT, EIM <= 10*OPT w.h.p.) without needing brute force.
//
// Construction: k cluster sites on a coarse grid with pairwise
// separation >> radius. Each cluster contains its site point plus
// satellite points at *exact* metric distance `radius` from the site,
// placed in antipodal pairs. Then:
//   - choosing the k sites covers everything at `radius` (OPT <= r);
//   - any solution with radius < separation/2 - r must use one center
//     per cluster, and within a cluster any non-site center leaves
//     some antipodal satellite at distance > r (two antipodes are 2r
//     apart), so OPT >= r.
// Hence OPT == radius exactly.
#pragma once

#include <vector>

#include "geom/point_set.hpp"
#include "rng/rng.hpp"

namespace kc::data {

struct PlantedInstance {
  PointSet points;
  std::vector<index_t> optimal_centers;  ///< the k site points
  double opt_radius = 0.0;               ///< exact OPT, reported scale
  std::size_t clusters = 0;
};

/// Builds a planted instance with `clusters` clusters of
/// `points_per_cluster` points each (must be odd >= 3: the site plus
/// antipodal satellite pairs), exact optimum `radius`, and pairwise
/// site separation at least `separation` (must exceed 4 * radius).
/// `dim` >= 2. Satellite directions are random (antipodal pairs).
[[nodiscard]] PlantedInstance make_planted(std::size_t clusters,
                                           std::size_t points_per_cluster,
                                           double radius, double separation,
                                           std::size_t dim, Rng& rng);

}  // namespace kc::data
