// Synthetic data generators matching §7.3 of the paper.
//
//  UNIF  n points uniform in a d-dimensional cube.
//  GAU   k' cluster centers uniform in the cube; each point picks a
//        cluster uniformly at random and offsets from its center by an
//        isotropic Gaussian with sigma = 1/10 (absolute). Mimics the
//        data of Ene et al.
//  UNB   like GAU but ~half of all points land in one designated
//        cluster; the rest spread uniformly over the other clusters.
//
// Scale note: the paper's solution values (e.g. Table 2: 96.04 at k=2
// vs 0.961 at k=25=k') are only consistent with cluster centers spread
// over a side-~100 region with sigma = 0.1 in absolute units, so the
// cube side defaults to 100 (configurable).
#pragma once

#include <cstdint>
#include <string_view>

#include "geom/point_set.hpp"
#include "rng/rng.hpp"

namespace kc::data {

enum class SyntheticKind { Unif, Gau, Unb };

[[nodiscard]] std::string_view to_string(SyntheticKind kind) noexcept;

struct SyntheticSpec {
  SyntheticKind kind = SyntheticKind::Gau;
  std::size_t n = 100'000;
  std::size_t dim = 2;
  std::size_t inherent_clusters = 25;  ///< k' (ignored for UNIF)
  double side = 100.0;                 ///< bounding cube side length
  double sigma = 0.1;                  ///< Gaussian cluster spread (GAU/UNB)
  double unbalanced_fraction = 0.5;    ///< UNB: share in the big cluster
};

/// Generates a data set according to `spec`, consuming randomness from
/// `rng` (deterministic given the Rng state).
[[nodiscard]] PointSet generate(const SyntheticSpec& spec, Rng& rng);

/// Convenience wrappers used throughout tests and examples.
[[nodiscard]] PointSet generate_unif(std::size_t n, std::size_t dim,
                                     double side, Rng& rng);
[[nodiscard]] PointSet generate_gau(std::size_t n, std::size_t clusters,
                                    std::size_t dim, double side, double sigma,
                                    Rng& rng);
[[nodiscard]] PointSet generate_unb(std::size_t n, std::size_t clusters,
                                    std::size_t dim, double side, double sigma,
                                    double unbalanced_fraction, Rng& rng);

}  // namespace kc::data
