// Loading and saving point sets as delimited text.
//
// load_numeric_csv accepts the UCI files the paper uses (POKER HAND's
// comma-separated integers; KDD CUP's mixed records): non-numeric
// fields are dropped column-wise, so the Euclidean metric sees exactly
// the numeric attributes. Rows whose numeric arity differs from the
// first data row are rejected.
#pragma once

#include <optional>
#include <string>

#include "geom/point_set.hpp"

namespace kc::data {

struct CsvOptions {
  char delimiter = ',';
  std::size_t max_rows = 0;          ///< 0 = no limit
  bool drop_last_column = false;     ///< e.g. the POKER HAND class label
  std::optional<std::size_t> expect_dim;  ///< validate arity if set
};

/// Parses a delimited text file into a PointSet. Throws
/// std::runtime_error on I/O failure or inconsistent rows.
[[nodiscard]] PointSet load_numeric_csv(const std::string& path,
                                        const CsvOptions& options = {});

/// Writes a PointSet as delimited text (one point per line).
void save_csv(const PointSet& points, const std::string& path,
              char delimiter = ',');

}  // namespace kc::data
