#include "data/generators.hpp"

#include <stdexcept>
#include <vector>

namespace kc::data {

std::string_view to_string(SyntheticKind kind) noexcept {
  switch (kind) {
    case SyntheticKind::Unif: return "UNIF";
    case SyntheticKind::Gau: return "GAU";
    case SyntheticKind::Unb: return "UNB";
  }
  return "?";
}

namespace {

[[nodiscard]] PointSet make_cluster_centers(std::size_t clusters,
                                            std::size_t dim, double side,
                                            Rng& rng) {
  PointSet centers(clusters, dim);
  for (index_t c = 0; c < clusters; ++c) {
    auto p = centers.mutable_point(c);
    for (auto& coord : p) coord = rng.uniform(0.0, side);
  }
  return centers;
}

/// Emits one point at `center` plus isotropic Gaussian noise.
void emit_gaussian_point(PointSet& out, index_t i,
                         std::span<const double> center, double sigma,
                         Rng& rng) {
  auto p = out.mutable_point(i);
  for (std::size_t d = 0; d < p.size(); ++d) {
    p[d] = center[d] + rng.gaussian(0.0, sigma);
  }
}

}  // namespace

PointSet generate_unif(std::size_t n, std::size_t dim, double side, Rng& rng) {
  if (n == 0) throw std::invalid_argument("generate_unif: n must be positive");
  PointSet out(n, dim);
  for (index_t i = 0; i < n; ++i) {
    auto p = out.mutable_point(i);
    for (auto& coord : p) coord = rng.uniform(0.0, side);
  }
  return out;
}

PointSet generate_gau(std::size_t n, std::size_t clusters, std::size_t dim,
                      double side, double sigma, Rng& rng) {
  if (n == 0) throw std::invalid_argument("generate_gau: n must be positive");
  if (clusters == 0) {
    throw std::invalid_argument("generate_gau: clusters must be positive");
  }
  const PointSet centers = make_cluster_centers(clusters, dim, side, rng);
  PointSet out(n, dim);
  for (index_t i = 0; i < n; ++i) {
    const auto c = static_cast<index_t>(rng.uniform_int(clusters));
    emit_gaussian_point(out, i, centers[c], sigma, rng);
  }
  return out;
}

PointSet generate_unb(std::size_t n, std::size_t clusters, std::size_t dim,
                      double side, double sigma, double unbalanced_fraction,
                      Rng& rng) {
  if (n == 0) throw std::invalid_argument("generate_unb: n must be positive");
  if (clusters == 0) {
    throw std::invalid_argument("generate_unb: clusters must be positive");
  }
  if (unbalanced_fraction < 0.0 || unbalanced_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_unb: unbalanced_fraction must be in [0, 1]");
  }
  const PointSet centers = make_cluster_centers(clusters, dim, side, rng);
  PointSet out(n, dim);
  for (index_t i = 0; i < n; ++i) {
    index_t c = 0;  // the designated heavy cluster
    if (!rng.bernoulli(unbalanced_fraction)) {
      c = clusters > 1
              ? static_cast<index_t>(1 + rng.uniform_int(clusters - 1))
              : 0;
    }
    emit_gaussian_point(out, i, centers[c], sigma, rng);
  }
  return out;
}

PointSet generate(const SyntheticSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case SyntheticKind::Unif:
      return generate_unif(spec.n, spec.dim, spec.side, rng);
    case SyntheticKind::Gau:
      return generate_gau(spec.n, spec.inherent_clusters, spec.dim, spec.side,
                          spec.sigma, rng);
    case SyntheticKind::Unb:
      return generate_unb(spec.n, spec.inherent_clusters, spec.dim, spec.side,
                          spec.sigma, spec.unbalanced_fraction, rng);
  }
  throw std::logic_error("generate: unknown synthetic kind");
}

}  // namespace kc::data
