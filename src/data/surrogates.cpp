#include "data/surrogates.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace kc::data {

PointSet poker_hand_surrogate(std::size_t n, Rng& rng) {
  if (n == 0) {
    throw std::invalid_argument("poker_hand_surrogate: n must be positive");
  }
  PointSet out(n, kPokerHandDim);
  std::array<int, 52> deck{};
  for (int c = 0; c < 52; ++c) deck[c] = c;

  for (index_t i = 0; i < n; ++i) {
    // Partial Fisher-Yates: the first five entries become the hand.
    for (int j = 0; j < 5; ++j) {
      const int swap_with =
          j + static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(52 - j)));
      std::swap(deck[j], deck[swap_with]);
    }
    auto p = out.mutable_point(i);
    for (int j = 0; j < 5; ++j) {
      const int card = deck[j];
      p[2 * j] = static_cast<double>(card / 13 + 1);      // suit 1..4
      p[2 * j + 1] = static_cast<double>(card % 13 + 1);  // rank 1..13
    }
  }
  return out;
}

namespace {

// Feature indices mirroring the KDD numeric schema; only the ones a
// k-center metric reacts to get archetype-specific values, the rest
// stay near zero like the originals.
enum KddFeature : std::size_t {
  kDuration = 0,
  kSrcBytes = 1,
  kDstBytes = 2,
  kWrongFragment = 4,
  kHot = 6,
  kNumFailedLogins = 7,
  kLoggedIn = 8,
  kNumRoot = 12,
  kIsGuestLogin = 18,
  kCount = 19,
  kSrvCount = 20,
  kSerrorRate = 21,
  kSrvSerrorRate = 22,
  kRerrorRate = 23,
  kSrvRerrorRate = 24,
  kSameSrvRate = 25,
  kDiffSrvRate = 26,
  kDstHostCount = 28,
  kDstHostSrvCount = 29,
  kDstHostSameSrvRate = 30,
  kDstHostSerrorRate = 34,
  kDstHostRerrorRate = 36,
};

struct Archetype {
  const char* name;
  double weight;
  void (*fill)(std::span<double> f, Rng& rng);
};

void noise_rates(std::span<double> f, Rng& rng) {
  // Small jitter on a handful of secondary rate features so clusters
  // are not degenerate single points.
  f[27] = rng.uniform(0.0, 0.05);
  f[31] = rng.uniform(0.0, 0.05);
  f[32] = rng.uniform(0.0, 0.1);
  f[33] = rng.uniform(0.0, 0.05);
}

void fill_smurf(std::span<double> f, Rng& rng) {
  // ICMP echo flood: fixed-size payloads, saturated counts.
  f[kSrcBytes] = rng.uniform(520.0, 1032.0);
  f[kCount] = rng.uniform(450.0, 511.0);
  f[kSrvCount] = f[kCount];
  f[kSameSrvRate] = 1.0;
  f[kDstHostCount] = 255.0;
  f[kDstHostSrvCount] = 255.0;
  f[kDstHostSameSrvRate] = 1.0;
  noise_rates(f, rng);
}

void fill_neptune(std::span<double> f, Rng& rng) {
  // SYN flood: zero-byte connections, full serror rates.
  f[kCount] = rng.uniform(100.0, 300.0);
  f[kSrvCount] = rng.uniform(1.0, 20.0);
  f[kSerrorRate] = 1.0;
  f[kSrvSerrorRate] = 1.0;
  f[kSameSrvRate] = rng.uniform(0.0, 0.1);
  f[kDiffSrvRate] = rng.uniform(0.05, 0.09);
  f[kDstHostCount] = 255.0;
  f[kDstHostSerrorRate] = 1.0;
  noise_rates(f, rng);
}

void fill_normal_http(std::span<double> f, Rng& rng) {
  f[kDuration] = rng.uniform(0.0, 5.0);
  f[kSrcBytes] = rng.log_uniform(100.0, 5e3);
  f[kDstBytes] = rng.log_uniform(300.0, 4e4);
  f[kLoggedIn] = 1.0;
  f[kCount] = rng.uniform(1.0, 30.0);
  f[kSrvCount] = f[kCount];
  f[kSameSrvRate] = 1.0;
  f[kDstHostSrvCount] = rng.uniform(100.0, 255.0);
  f[kDstHostSameSrvRate] = 1.0;
  noise_rates(f, rng);
}

void fill_normal_smtp(std::span<double> f, Rng& rng) {
  f[kDuration] = rng.uniform(0.0, 10.0);
  f[kSrcBytes] = rng.log_uniform(300.0, 2e3);
  f[kDstBytes] = rng.log_uniform(300.0, 1e4);
  f[kLoggedIn] = 1.0;
  f[kCount] = rng.uniform(1.0, 10.0);
  f[kSameSrvRate] = 1.0;
  f[kDstHostSrvCount] = rng.uniform(20.0, 150.0);
  noise_rates(f, rng);
}

void fill_normal_ftp(std::span<double> f, Rng& rng) {
  // Data-channel transfers: occasionally large uploads.
  f[kDuration] = rng.uniform(0.0, 60.0);
  f[kSrcBytes] = rng.log_uniform(1e3, 5e6);
  f[kLoggedIn] = 1.0;
  f[kCount] = rng.uniform(1.0, 5.0);
  f[kSameSrvRate] = 1.0;
  noise_rates(f, rng);
}

void fill_normal_long(std::span<double> f, Rng& rng) {
  // Long interactive sessions (telnet/ssh-like).
  f[kDuration] = rng.log_uniform(10.0, 1e4);
  f[kSrcBytes] = rng.log_uniform(10.0, 1e4);
  f[kDstBytes] = rng.log_uniform(10.0, 1e5);
  f[kLoggedIn] = 1.0;
  noise_rates(f, rng);
}

void fill_back(std::span<double> f, Rng& rng) {
  // Apache buffer DoS: characteristic ~54KB requests.
  f[kSrcBytes] = rng.uniform(54000.0, 55000.0);
  f[kDstBytes] = rng.uniform(8000.0, 8600.0);
  f[kHot] = 2.0;
  f[kLoggedIn] = 1.0;
  noise_rates(f, rng);
}

void fill_satan(std::span<double> f, Rng& rng) {
  f[kCount] = rng.uniform(50.0, 400.0);
  f[kRerrorRate] = rng.uniform(0.8, 1.0);
  f[kSrvRerrorRate] = f[kRerrorRate];
  f[kDiffSrvRate] = rng.uniform(0.5, 1.0);
  f[kDstHostRerrorRate] = f[kRerrorRate];
  noise_rates(f, rng);
}

void fill_ipsweep(std::span<double> f, Rng& rng) {
  f[kSrcBytes] = rng.uniform(8.0, 20.0);
  f[kCount] = rng.uniform(1.0, 10.0);
  f[kDiffSrvRate] = 1.0;
  noise_rates(f, rng);
}

void fill_portsweep(std::span<double> f, Rng& rng) {
  f[kDuration] = rng.log_uniform(1.0, 2e3);
  f[kRerrorRate] = 1.0;
  f[kSrvRerrorRate] = 1.0;
  f[kDiffSrvRate] = 1.0;
  noise_rates(f, rng);
}

void fill_warezclient(std::span<double> f, Rng& rng) {
  f[kSrcBytes] = rng.log_uniform(1e3, 5e6);
  f[kDstBytes] = rng.log_uniform(100.0, 1e4);
  f[kIsGuestLogin] = 1.0;
  f[kHot] = rng.uniform(1.0, 30.0);
  f[kLoggedIn] = 1.0;
  noise_rates(f, rng);
}

void fill_teardrop(std::span<double> f, Rng& rng) {
  f[kSrcBytes] = 28.0;
  f[kWrongFragment] = 3.0;
  f[kCount] = rng.uniform(100.0, 250.0);
  noise_rates(f, rng);
}

void fill_pod(std::span<double> f, Rng& rng) {
  f[kSrcBytes] = 1480.0;
  f[kWrongFragment] = 1.0;
  noise_rates(f, rng);
}

void fill_guess_passwd(std::span<double> f, Rng& rng) {
  f[kDuration] = rng.uniform(1.0, 10.0);
  f[kSrcBytes] = rng.uniform(100.0, 200.0);
  f[kNumFailedLogins] = 5.0;
  noise_rates(f, rng);
}

void fill_buffer_overflow(std::span<double> f, Rng& rng) {
  f[kDuration] = rng.log_uniform(1.0, 300.0);
  f[kSrcBytes] = rng.log_uniform(100.0, 6e3);
  f[kLoggedIn] = 1.0;
  f[kNumRoot] = rng.uniform(1.0, 6.0);
  noise_rates(f, rng);
}

void fill_bulk_transfer(std::span<double> f, Rng& rng) {
  // The rare enormous flows (multi-hundred-MB ftp payloads; the real
  // file tops out around 1.4e9 src_bytes). These are the outliers that
  // stretch Figure 1's y-axis to 10^9 and starve uniform sampling.
  f[kDuration] = rng.log_uniform(10.0, 3e3);
  f[kSrcBytes] = rng.log_uniform(1e7, 1.4e9);
  f[kDstBytes] = rng.log_uniform(1e3, 1e6);
  f[kLoggedIn] = 1.0;
  noise_rates(f, rng);
}

constexpr std::array<Archetype, 16> kArchetypes{{
    {"smurf", 0.5676, fill_smurf},
    {"neptune", 0.2148, fill_neptune},
    {"normal_http", 0.1250, fill_normal_http},
    {"normal_smtp", 0.0400, fill_normal_smtp},
    {"normal_ftp", 0.0200, fill_normal_ftp},
    {"normal_long", 0.0100, fill_normal_long},
    {"back", 0.0045, fill_back},
    {"satan", 0.0032, fill_satan},
    {"ipsweep", 0.0025, fill_ipsweep},
    {"portsweep", 0.0021, fill_portsweep},
    {"warezclient", 0.0021, fill_warezclient},
    {"teardrop", 0.0020, fill_teardrop},
    {"pod", 0.0005, fill_pod},
    {"guess_passwd", 0.0002, fill_guess_passwd},
    {"buffer_overflow", 0.0002, fill_buffer_overflow},
    {"bulk_transfer", 0.0003, fill_bulk_transfer},
}};

}  // namespace

PointSet kdd_cup_surrogate(std::size_t n, Rng& rng) {
  if (n == 0) {
    throw std::invalid_argument("kdd_cup_surrogate: n must be positive");
  }
  std::array<double, kArchetypes.size()> weights{};
  for (std::size_t a = 0; a < kArchetypes.size(); ++a) {
    weights[a] = kArchetypes[a].weight;
  }

  PointSet out(n, kKddCupDim);
  for (index_t i = 0; i < n; ++i) {
    auto f = out.mutable_point(i);
    std::fill(f.begin(), f.end(), 0.0);
    const std::size_t a = rng.categorical(weights);
    kArchetypes[a].fill(f, rng);
  }

  // Guarantee at least one extreme flow so the small-k radius matches
  // the paper's 10^8..10^9 regime even at scaled-down n.
  if (n >= 16) {
    auto f = out.mutable_point(static_cast<index_t>(n / 2));
    std::fill(f.begin(), f.end(), 0.0);
    fill_bulk_transfer(f, rng);
    f[kSrcBytes] = 1.38e9;
  }
  return out;
}

}  // namespace kc::data
