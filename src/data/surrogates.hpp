// Surrogates for the two UCI data sets used in the paper's experiments.
//
// Neither file ships with this repository (offline build), so each has
// a synthetic stand-in that reproduces the geometric structure the
// k-center algorithms actually respond to; the genuine files can be
// substituted at runtime via data::load_numeric_csv and the benches'
// --poker-file / --kdd-file flags. The substitutions are documented in
// DESIGN.md §5.
//
// POKER HAND (training set: 25,010 rows, 10 integer attributes): five
// cards, each as (suit in 1..4, rank in 1..13), class label dropped.
// Hands are dealt (near) uniformly in the original, so drawing 25,010
// uniform 5-card hands from a 52-card deck reproduces the distance
// distribution (paper values span ~8.4 .. 19.4, Table 5).
//
// KDD CUP 1999 (10% subset: 494,021 rows; the 38 numeric attributes):
// dominated by a few enormous traffic archetypes (smurf ~57%, neptune
// ~21%, normal ~19%) plus a long tail of rare attack types, with
// heavy-tailed byte counters reaching ~1.4e9 — those outliers are what
// make Figure 1's solution values span 10^4..10^9 and what makes the
// instance hostile to sampling-based algorithms. The surrogate draws
// from a weighted mixture over such archetypes.
#pragma once

#include "geom/point_set.hpp"
#include "rng/rng.hpp"

namespace kc::data {

inline constexpr std::size_t kPokerHandRows = 25'010;
inline constexpr std::size_t kPokerHandDim = 10;

inline constexpr std::size_t kKddCupRows = 494'021;
inline constexpr std::size_t kKddCupDim = 38;

/// `n` uniformly random 5-card poker hands in the UCI encoding.
[[nodiscard]] PointSet poker_hand_surrogate(std::size_t n, Rng& rng);

/// `n` synthetic network-connection records over the 38 numeric
/// KDD attributes, drawn from the archetype mixture described above.
[[nodiscard]] PointSet kdd_cup_surrogate(std::size_t n, Rng& rng);

}  // namespace kc::data
