#include "data/loader.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace kc::data {

namespace {

/// Parses one delimited line, keeping numeric fields only. Returns the
/// column positions that were numeric (used to pin the schema).
void split_numeric(const std::string& line, char delimiter,
                   std::vector<double>& values,
                   std::vector<std::size_t>& numeric_columns) {
  values.clear();
  numeric_columns.clear();
  std::size_t column = 0;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t end = line.find(delimiter, start);
    if (end == std::string::npos) end = line.size();
    const std::string token = line.substr(start, end - start);
    if (!token.empty()) {
      char* parse_end = nullptr;
      const double value = std::strtod(token.c_str(), &parse_end);
      // Numeric iff the whole token (modulo trailing spaces/CR) parsed.
      bool fully_numeric = parse_end != token.c_str();
      if (fully_numeric) {
        for (const char* p = parse_end; *p != '\0'; ++p) {
          if (*p != ' ' && *p != '\t' && *p != '\r' && *p != '.') {
            fully_numeric = false;
            break;
          }
        }
      }
      if (fully_numeric) {
        values.push_back(value);
        numeric_columns.push_back(column);
      }
    }
    ++column;
    if (end == line.size()) break;
    start = end + 1;
  }
}

}  // namespace

PointSet load_numeric_csv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_numeric_csv: cannot open '" + path + "'");
  }

  std::vector<double> coords;
  std::vector<double> row;
  std::vector<std::size_t> row_columns;
  std::vector<std::size_t> schema;
  std::size_t rows = 0;
  std::size_t dim = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    split_numeric(line, options.delimiter, row, row_columns);
    if (row.empty()) continue;  // header or fully non-numeric line
    if (options.drop_last_column) {
      row.pop_back();
      row_columns.pop_back();
      if (row.empty()) continue;
    }
    if (rows == 0) {
      schema = row_columns;
      dim = row.size();
      if (options.expect_dim && dim != *options.expect_dim) {
        throw std::runtime_error(
            "load_numeric_csv: expected " +
            std::to_string(*options.expect_dim) + " numeric columns, found " +
            std::to_string(dim));
      }
    } else if (row_columns != schema) {
      throw std::runtime_error("load_numeric_csv: inconsistent row " +
                               std::to_string(rows + 1) + " in '" + path + "'");
    }
    coords.insert(coords.end(), row.begin(), row.end());
    ++rows;
    if (options.max_rows != 0 && rows >= options.max_rows) break;
  }
  if (rows == 0) {
    throw std::runtime_error("load_numeric_csv: no numeric rows in '" + path +
                             "'");
  }
  return PointSet(dim, coords);
}

void save_csv(const PointSet& points, const std::string& path,
              char delimiter) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_csv: cannot open '" + path + "'");
  }
  out.precision(17);
  for (index_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    for (std::size_t d = 0; d < p.size(); ++d) {
      if (d != 0) out << delimiter;
      out << p[d];
    }
    out << '\n';
  }
  if (!out) {
    throw std::runtime_error("save_csv: write failed for '" + path + "'");
  }
}

}  // namespace kc::data
