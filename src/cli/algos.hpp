// Registry-aware command-line helpers (--algo=, --list-algos).
//
// Kept separate from cli/args.hpp on purpose: Args is a leaf utility
// with no knowledge of the algorithm stack, while these two helpers
// resolve against kc::api::registry(). Binaries that expose an
// algorithm choice include this header; pure flag parsing stays
// dependency-free.
#pragma once

#include <cstdio>
#include <string>

#include "cli/args.hpp"

namespace kc::cli {

/// Consumes --algo= and resolves it against the algorithm registry
/// (canonical name or alias; see api::registry()). Returns the
/// *canonical* name, or `fallback` when the flag is absent (an empty
/// fallback means "no choice made"). Throws std::invalid_argument
/// listing the registered names on an unknown value.
[[nodiscard]] std::string algo_kind(Args& args,
                                    const std::string& fallback = "mrg");

/// When --list-algos was passed, prints every registered algorithm
/// (canonical name, aliases, one-line description) to `out` and returns
/// true; the caller should then exit 0. Returns false otherwise.
[[nodiscard]] bool list_algos(Args& args, std::FILE* out = stdout);

}  // namespace kc::cli
