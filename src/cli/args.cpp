#include "cli/args.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace kc::cli {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  for (const auto& [key, _] : values_) consumed_[key] = false;
}

bool Args::flag(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_[name] = true;
  return true;
}

std::optional<std::string> Args::str(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::int64_t Args::integer(const std::string& name, std::int64_t fallback) {
  const auto value = str(name);
  if (!value || value->empty()) return fallback;
  try {
    return std::stoll(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                *value + "'");
  }
}

std::size_t Args::size(const std::string& name, std::size_t fallback) {
  const std::int64_t v = integer(name, static_cast<std::int64_t>(fallback));
  if (v < 0) {
    throw std::invalid_argument("--" + name + " must be non-negative");
  }
  return static_cast<std::size_t>(v);
}

double Args::real(const std::string& name, double fallback) {
  const auto value = str(name);
  if (!value || value->empty()) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                *value + "'");
  }
}

std::vector<std::size_t> Args::size_list(const std::string& name,
                                         std::vector<std::size_t> fallback) {
  const auto value = str(name);
  if (!value || value->empty()) return fallback;
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= value->size()) {
    std::size_t end = value->find(',', start);
    if (end == std::string::npos) end = value->size();
    const std::string token = value->substr(start, end - start);
    if (!token.empty()) {
      try {
        out.push_back(static_cast<std::size_t>(std::stoull(token)));
      } catch (const std::exception&) {
        throw std::invalid_argument("--" + name + " expects integers, got '" +
                                    token + "'");
      }
    }
    if (end == value->size()) break;
    start = end + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument("--" + name + " expects a non-empty list");
  }
  return out;
}

exec::BackendKind exec_backend(Args& args, exec::BackendKind fallback) {
  const auto value = args.str("exec");
  if (!value || value->empty()) return fallback;
  const auto kind = exec::parse_backend(*value);
  if (!kind) {
    throw std::invalid_argument("--exec expects seq, openmp or pool, got '" +
                                *value + "'");
  }
  return *kind;
}

int exec_threads(Args& args, int fallback) {
  const auto threads =
      args.integer("threads", static_cast<std::int64_t>(fallback));
  if (threads < 0) {
    throw std::invalid_argument("--threads must be non-negative");
  }
  return static_cast<int>(threads);
}

std::shared_ptr<exec::ExecutionBackend> make_exec_backend(
    Args& args, exec::BackendKind fallback) {
  return exec::make_backend(exec_backend(args, fallback), exec_threads(args));
}

std::vector<std::string> Args::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, used] : consumed_) {
    if (!used) out.push_back(key);
  }
  return out;
}

void reject_unknown_flags(Args& args) {
  const auto leftover = args.unconsumed();
  if (leftover.empty()) return;
  std::fprintf(stderr, "%s: unknown flag(s):", args.program().c_str());
  for (const auto& flag : leftover) std::fprintf(stderr, " --%s", flag.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace kc::cli
