#include "cli/algos.hpp"

#include <stdexcept>

#include "api/registry.hpp"

namespace kc::cli {

std::string algo_kind(Args& args, const std::string& fallback) {
  const auto value = args.str("algo");
  const std::string requested = (value && !value->empty()) ? *value : fallback;
  if (requested.empty()) return requested;  // empty fallback = "no choice"
  const api::AlgorithmInfo* info = api::registry().find(requested);
  if (info == nullptr) {
    throw std::invalid_argument("--algo: unknown algorithm '" + requested +
                                "' (known: " + api::known_algorithms() + ")");
  }
  return info->name;
}

bool list_algos(Args& args, std::FILE* out) {
  if (!args.flag("list-algos")) return false;
  std::fprintf(out, "registered algorithms:\n");
  for (const auto& algo : api::registry().algorithms()) {
    std::string name = algo.name;
    for (const auto& alias : algo.aliases) name += ", " + alias;
    std::fprintf(out, "  %-28s %s\n", name.c_str(), algo.description.c_str());
  }
  return true;
}

}  // namespace kc::cli
