// Minimal command-line flag parsing for the bench and example binaries.
//
// Accepts `--key=value` and bare `--key` boolean flags. Unrecognized
// access patterns are the caller's concern; `unconsumed()` lists flags
// that were never queried so binaries can reject typos.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/backend.hpp"

namespace kc::cli {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True if `--name` (with or without value) was passed.
  [[nodiscard]] bool flag(const std::string& name);

  /// Value of `--name=value`, if present.
  [[nodiscard]] std::optional<std::string> str(const std::string& name);

  /// Typed getters with defaults. Throw std::invalid_argument on
  /// malformed numbers.
  [[nodiscard]] std::int64_t integer(const std::string& name,
                                     std::int64_t fallback);
  [[nodiscard]] std::size_t size(const std::string& name, std::size_t fallback);
  [[nodiscard]] double real(const std::string& name, double fallback);

  /// Comma-separated list of integers, e.g. --k=2,5,10.
  [[nodiscard]] std::vector<std::size_t> size_list(
      const std::string& name, std::vector<std::size_t> fallback);

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  /// Flags present on the command line that were never queried.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

  /// Positional (non --flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;  // "" for bare flags
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

/// Parses --exec={seq,sequential,omp,openmp,pool,threadpool}. Throws
/// std::invalid_argument on an unknown value.
[[nodiscard]] exec::BackendKind exec_backend(
    Args& args, exec::BackendKind fallback = exec::BackendKind::Sequential);

/// Parses --threads=N (0 = backend default / hardware concurrency).
[[nodiscard]] int exec_threads(Args& args, int fallback = 0);

/// Consumes --exec and --threads and builds the backend they describe.
/// Throws std::runtime_error when this build cannot provide it.
[[nodiscard]] std::shared_ptr<exec::ExecutionBackend> make_exec_backend(
    Args& args, exec::BackendKind fallback = exec::BackendKind::Sequential);

// The registry-aware helpers --algo= / --list-algos live in
// cli/algos.hpp so this header stays free of algorithm dependencies.

/// Uniform unknown-flag rejection: prints
///   <program>: unknown flag(s): --foo --bar
/// to stderr and exits(2) when any flag was never consumed. Every
/// binary calls this after consuming its own flags so typos never pass
/// silently.
void reject_unknown_flags(Args& args);

}  // namespace kc::cli
