// Exact k-center by exhaustive enumeration, for tiny instances.
//
// The paper's problem definition restricts centers to input points, so
// the optimum is min over the C(n, k) center subsets of the covering
// radius. Used by the property tests to verify approximation factors
// (GON <= 2*OPT, 2-round MRG <= 4*OPT, ...) against the true optimum,
// and by the adversarial-tightness experiment.
#pragma once

#include <span>

#include "algo/result.hpp"
#include "geom/distance.hpp"

namespace kc {

/// Exact optimum over all center subsets of size min(k, |pts|).
///
/// Throws std::length_error if C(|pts|, k) exceeds `max_subsets`.
/// Memory: O(|pts|) for k = 1 (the covering radii stream out of the
/// tiled pairwise engine; no distance matrix is materialized), O(n^2)
/// only for k >= 2 where the subset cap already bounds n to the small
/// regime.
[[nodiscard]] KCenterResult brute_force_opt(const DistanceOracle& oracle,
                                            std::span<const index_t> pts,
                                            std::size_t k,
                                            std::uint64_t max_subsets = 2'000'000);

}  // namespace kc
