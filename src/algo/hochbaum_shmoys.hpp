// HS: the Hochbaum-Shmoys 2-approximation for k-center (Mathematics of
// Operations Research, 1985).
//
// The optimal radius is always one of the O(n^2) pairwise distances.
// HS binary-searches that candidate set; for each candidate r it runs
// the threshold test: repeatedly pick an uncovered point as a center
// and cover everything within 2r of it. If at most k centers suffice,
// r is feasible. The smallest feasible candidate r* satisfies
// r* <= OPT, so the returned solution has radius <= 2*OPT.
//
// The paper's future-work section asks how MRG behaves with HS instead
// of GON as the sequential subroutine; bench_ablation_inner_algo
// answers that. HS materializes the pairwise distance list, so it is
// restricted to subsets of at most `max_points` points — which is fine:
// inside MRG it only ever sees n/m- or k*m-sized subsets.
#pragma once

#include <span>

#include "algo/result.hpp"
#include "geom/distance.hpp"

namespace kc {

struct HochbaumShmoysOptions {
  /// Refuse inputs larger than this (the candidate list is quadratic).
  std::size_t max_points = 8192;
};

/// Runs HS on the subset `pts`, selecting at most k centers.
///
/// Preconditions: k >= 1, pts non-empty, |pts| <= options.max_points.
[[nodiscard]] KCenterResult hochbaum_shmoys(
    const DistanceOracle& oracle, std::span<const index_t> pts, std::size_t k,
    const HochbaumShmoysOptions& options = {});

}  // namespace kc
