#include "algo/hochbaum_shmoys.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace kc {

namespace {

/// Threshold test: greedily 2r-cover `pts`. Returns the chosen centers
/// if at most k suffice, otherwise an empty vector. `cover_comp` is the
/// comparable-scale equivalent of distance 2r.
[[nodiscard]] std::vector<index_t> threshold_cover(
    const DistanceOracle& oracle, std::span<const index_t> pts, std::size_t k,
    double cover_comp) {
  std::vector<index_t> centers;
  std::vector<bool> covered(pts.size(), false);
  // Scratch for the per-center scan: the uncovered survivors' ids (the
  // tile's b side) and their positions in pts (to mark covered).
  std::vector<index_t> uncov_ids;
  std::vector<std::size_t> uncov_pos;
  std::size_t first_uncovered = 0;
  while (true) {
    while (first_uncovered < pts.size() && covered[first_uncovered]) {
      ++first_uncovered;
    }
    if (first_uncovered == pts.size()) return centers;  // all covered
    if (centers.size() == k) return {};                 // infeasible
    const index_t center = pts[first_uncovered];
    centers.push_back(center);
    covered[first_uncovered] = true;
    // Gather the uncovered survivors, then evaluate the new center
    // against exactly those points as one tiled 1 x u row — the same
    // pairs (and eval count) the old per-pair loop computed, through
    // the vectorized tile kernel. Ungated, like the per-pair
    // comparable() calls it replaces, which never consulted the bound
    // context.
    uncov_ids.clear();
    uncov_pos.clear();
    for (std::size_t i = first_uncovered + 1; i < pts.size(); ++i) {
      if (!covered[i]) {
        uncov_ids.push_back(pts[i]);
        uncov_pos.push_back(i);
      }
    }
    if (uncov_ids.empty()) continue;
    const index_t cid[1] = {center};
    oracle.pairwise_tiles(
        {cid, 1}, uncov_ids,
        [&](std::size_t, std::size_t j0, std::size_t, std::size_t tn,
            const double* tile, std::size_t) {
          for (std::size_t c = 0; c < tn; ++c) {
            if (tile[c] <= cover_comp) covered[uncov_pos[j0 + c]] = true;
          }
        },
        "threshold_cover", /*gated=*/false);
  }
}

}  // namespace

KCenterResult hochbaum_shmoys(const DistanceOracle& oracle,
                              std::span<const index_t> pts, std::size_t k,
                              const HochbaumShmoysOptions& options) {
  if (pts.empty()) {
    throw std::invalid_argument("hochbaum_shmoys: empty point subset");
  }
  if (k == 0) {
    throw std::invalid_argument("hochbaum_shmoys: k must be at least 1");
  }
  if (pts.size() > options.max_points) {
    throw std::length_error(
        "hochbaum_shmoys: subset too large for the quadratic candidate list");
  }

  if (pts.size() <= k) {
    KCenterResult all;
    all.centers.assign(pts.begin(), pts.end());
    all.radius_comparable = 0.0;
    return all;
  }

  // Candidate radii: all pairwise comparable distances, deduplicated.
  // Streamed out of the tiled pairwise engine (upper triangle only) so
  // the list is produced by the cache-blocked SIMD kernel without ever
  // materializing the n^2 matrix; the sort below makes the append order
  // irrelevant.
  std::vector<double> candidates;
  candidates.reserve(pts.size() * (pts.size() - 1) / 2);
  oracle.pairwise_upper_tiles(
      pts,
      [&](std::size_t, std::size_t, std::size_t tm, std::size_t tn,
          const double* tile, std::size_t ldt) {
        for (std::size_t r = 0; r < tm; ++r) {
          const double* row = tile + r * ldt;
          candidates.insert(candidates.end(), row, row + tn);
        }
      },
      "hs_candidates");
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const auto cover_threshold = [&](double r_comp) {
    // distance 2r in comparable scale (exactly 4*r_comp for L2).
    return oracle.from_reported(2.0 * oracle.to_reported(r_comp));
  };

  // Binary search the smallest feasible candidate.
  std::size_t lo = 0;
  std::size_t hi = candidates.size() - 1;  // max distance is always feasible
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (threshold_cover(oracle, pts, k, cover_threshold(candidates[mid]))
            .empty()) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }

  KCenterResult result;
  result.centers = threshold_cover(oracle, pts, k, cover_threshold(candidates[lo]));
  if (result.centers.empty()) {
    throw std::logic_error("hochbaum_shmoys: feasibility search failed");
  }

  // Report the solution's actual covering radius over pts (one
  // center-blocked pass instead of one sweep per center).
  std::vector<double> best(pts.size(), kInfDist);
  oracle.update_nearest_multi(pts, result.centers, best);
  result.radius_comparable = best[argmax(std::span<const double>(best))];
  return result;
}

}  // namespace kc
