#include "algo/brute_force.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

namespace kc {

namespace {

[[nodiscard]] std::uint64_t binomial_capped(std::uint64_t n, std::uint64_t k,
                                            std::uint64_t cap) noexcept {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // result * (n - k + i) / i stays integral at every step.
    if (result > cap * i / (n - k + i) + 1) return cap + 1;  // overflow guard
    result = result * (n - k + i) / i;
    if (result > cap) return cap + 1;
  }
  return result;
}

}  // namespace

KCenterResult brute_force_opt(const DistanceOracle& oracle,
                              std::span<const index_t> pts, std::size_t k,
                              std::uint64_t max_subsets) {
  if (pts.empty()) {
    throw std::invalid_argument("brute_force_opt: empty point subset");
  }
  if (k == 0) {
    throw std::invalid_argument("brute_force_opt: k must be at least 1");
  }
  const std::size_t n = pts.size();
  if (k >= n) {
    KCenterResult all;
    all.centers.assign(pts.begin(), pts.end());
    all.radius_comparable = 0.0;
    return all;
  }
  if (binomial_capped(n, k, max_subsets) > max_subsets) {
    throw std::length_error("brute_force_opt: too many center subsets");
  }

  if (k == 1) {
    // k = 1 is the one shape the subset cap admits at large n (C(n,1)
    // = n), where the old dense pairwise matrix meant an O(n^2)
    // allocation — 20 GB at n = 50k. Each pair is needed exactly twice
    // (once per endpoint's covering radius), so stream upper-triangle
    // tiles and fold a running per-candidate max instead: O(n) memory,
    // and the max fold is order-independent, so the result is
    // bit-identical to the matrix walk.
    std::vector<double> radius(n, 0.0);
    oracle.pairwise_upper_tiles(
        pts,
        [&](std::size_t i0, std::size_t j0, std::size_t tm, std::size_t tn,
            const double* tile, std::size_t ldt) {
          for (std::size_t r = 0; r < tm; ++r) {
            const double* row = tile + r * ldt;
            double rmax = radius[i0 + r];
            for (std::size_t c = 0; c < tn; ++c) {
              const double v = row[c];
              if (v > rmax) rmax = v;
              if (v > radius[j0 + c]) radius[j0 + c] = v;
            }
            radius[i0 + r] = rmax;
          }
        },
        "brute_force_opt");
    // First-wins argmin matches the lexicographic subset enumeration.
    std::size_t best_c = 0;
    for (std::size_t c = 1; c < n; ++c) {
      if (radius[c] < radius[best_c]) best_c = c;
    }
    KCenterResult one;
    one.centers.push_back(pts[best_c]);
    one.radius_comparable = radius[best_c];
    return one;
  }

  // k >= 2: the subset cap bounds n to the small regime (C(n,2) <=
  // max_subsets already forces n ~ sqrt(max_subsets)), so the dense
  // matrix the enumeration rereads per subset stays genuinely small.
  // Built through the tiled engine via the pairwise_comparable adapter.
  const std::vector<double> dist = oracle.pairwise_comparable(pts);

  std::vector<std::size_t> comb(k);
  for (std::size_t i = 0; i < k; ++i) comb[i] = i;

  KCenterResult best;
  best.radius_comparable = std::numeric_limits<double>::infinity();

  while (true) {
    // Covering radius of this center subset, with early abandon once it
    // exceeds the best radius found so far.
    double radius = 0.0;
    for (std::size_t p = 0; p < n && radius < best.radius_comparable; ++p) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const std::size_t c : comb) {
        const double d = dist[p * n + c];
        if (d < nearest) nearest = d;
      }
      if (nearest > radius) radius = nearest;
    }
    if (radius < best.radius_comparable) {
      best.radius_comparable = radius;
      best.centers.clear();
      for (const std::size_t c : comb) best.centers.push_back(pts[c]);
    }

    // Advance to the next k-combination in lexicographic order.
    std::size_t i = k;
    while (i > 0 && comb[i - 1] == n - k + (i - 1)) --i;
    if (i == 0) break;
    ++comb[i - 1];
    for (std::size_t j = i; j < k; ++j) comb[j] = comb[j - 1] + 1;
  }
  return best;
}

}  // namespace kc
