// GON: Gonzalez's greedy 2-approximation for k-center (Gonzalez 1985,
// "Clustering to minimize the maximum intercluster distance").
//
// Chooses an arbitrary first center, then repeatedly promotes the point
// farthest from the chosen centers until k centers exist. The triangle
// inequality makes the result a 2-approximation; the run time is
// O(k * N) pair evaluations via the classic incremental
// nearest-center-distance array.
//
// This is the paper's sequential baseline and the inner subroutine of
// both MRG (per-machine and final rounds) and EIM (final clean-up).
#pragma once

#include <cstdint>
#include <span>

#include "algo/result.hpp"
#include "geom/distance.hpp"

namespace kc {

struct GonzalezOptions {
  /// How the arbitrary first center is chosen. The approximation
  /// guarantee holds for any choice; the paper notes the *seeding*
  /// affects which of the 2-approximate solutions is found.
  enum class FirstCenter { FirstPoint, Random };
  FirstCenter first = FirstCenter::FirstPoint;
  std::uint64_t seed = 1;  ///< used only when first == Random
};

/// GON output. greedy_radii_comparable[i] is the comparable distance at
/// which the (i+1)-th center was selected: greedy_radii[0] = 0 for the
/// arbitrary first pick, and the sequence is non-increasing from index 1
/// (a classic Gonzalez invariant, exercised by the tests). The covering
/// radius of the k-center solution equals the distance of the point
/// that *would have been* center k+1, returned in radius_comparable.
struct GonzalezResult : KCenterResult {
  std::vector<double> greedy_radii_comparable;
};

/// Runs GON on the subset `pts` (global ids into the oracle's point
/// set), selecting min(k, |pts|) centers.
///
/// Preconditions: k >= 1, pts non-empty.
[[nodiscard]] GonzalezResult gonzalez(const DistanceOracle& oracle,
                                      std::span<const index_t> pts,
                                      std::size_t k,
                                      const GonzalezOptions& options = {});

}  // namespace kc
