// Common result types for k-center solvers.
#pragma once

#include <vector>

#include "geom/point_set.hpp"

namespace kc {

/// A k-center solution: chosen centers (global point ids, a subset of
/// the input as in the paper's problem definition) plus the covering
/// radius *over the subset the solver was run on*, in comparable scale
/// (squared distance for L2). Use DistanceOracle::to_reported for the
/// human-facing value, or eval::covering_radius to re-evaluate over a
/// different point set.
struct KCenterResult {
  std::vector<index_t> centers;
  double radius_comparable = 0.0;
};

}  // namespace kc
