#include "algo/gonzalez.hpp"

#include <stdexcept>

#include "rng/rng.hpp"

namespace kc {

GonzalezResult gonzalez(const DistanceOracle& oracle,
                        std::span<const index_t> pts, std::size_t k,
                        const GonzalezOptions& options) {
  if (pts.empty()) throw std::invalid_argument("gonzalez: empty point subset");
  if (k == 0) throw std::invalid_argument("gonzalez: k must be at least 1");

  const std::size_t n = pts.size();
  const std::size_t centers_wanted = std::min(k, n);

  GonzalezResult result;
  result.centers.reserve(centers_wanted);
  result.greedy_radii_comparable.reserve(centers_wanted);

  std::size_t first_pos = 0;
  if (options.first == GonzalezOptions::FirstCenter::Random) {
    Rng rng(options.seed);
    first_pos = static_cast<std::size_t>(rng.uniform_int(n));
  }

  // best[i] = comparable distance from pts[i] to the nearest chosen
  // center so far. Each new center costs one update_nearest sweep, for
  // the O(k*N) total the paper cites in §5.1. The sweep and the argmax
  // both run on the SIMD kernel engine; top-level callers pass
  // all_indices(), so the sweep takes the contiguous fast path and
  // streams PointSet rows without the ids gather.
  std::vector<double> best(n, kInfDist);

  index_t current = pts[first_pos];
  result.centers.push_back(current);
  result.greedy_radii_comparable.push_back(0.0);

  for (std::size_t step = 1; step <= centers_wanted; ++step) {
    oracle.update_nearest(pts, current, best);
    if (step == centers_wanted) break;
    const std::size_t far_pos = argmax(best);
    result.greedy_radii_comparable.push_back(best[far_pos]);
    current = pts[far_pos];
    result.centers.push_back(current);
  }

  result.radius_comparable = best[argmax(std::span<const double>(best))];
  return result;
}

}  // namespace kc
