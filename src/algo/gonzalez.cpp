#include "algo/gonzalez.hpp"

#include <optional>
#include <stdexcept>

#include "geom/spatial_index.hpp"
#include "rng/rng.hpp"

namespace kc {

GonzalezResult gonzalez(const DistanceOracle& oracle,
                        std::span<const index_t> pts, std::size_t k,
                        const GonzalezOptions& options) {
  if (pts.empty()) throw std::invalid_argument("gonzalez: empty point subset");
  if (k == 0) throw std::invalid_argument("gonzalez: k must be at least 1");

  const std::size_t n = pts.size();
  const std::size_t centers_wanted = std::min(k, n);

  GonzalezResult result;
  result.centers.reserve(centers_wanted);
  result.greedy_radii_comparable.reserve(centers_wanted);

  std::size_t first_pos = 0;
  if (options.first == GonzalezOptions::FirstCenter::Random) {
    Rng rng(options.seed);
    first_pos = static_cast<std::size_t>(rng.uniform_int(n));
  }

  // best[i] = comparable distance from pts[i] to the nearest chosen
  // center so far. Each new center costs one update_nearest sweep, for
  // the O(k*N) total the paper cites in §5.1. The sweep and the argmax
  // both run on the SIMD kernel engine; top-level callers pass
  // all_indices(), so the sweep takes the contiguous fast path and
  // streams PointSet rows without the ids gather.
  //
  // Gonzalez is exactly the shape PruneCache exists for: k sweeps over
  // one best[] array that only ever tightens, so per-cell bounds from
  // sweep t keep pruning sweep t+1 without an O(n) re-derivation. The
  // cache lives and dies with best[] right here, per its contract. When
  // the oracle's index covers the full subset we go one step further
  // and keep best[] in *cell order* (the oracle's ordered scans), so
  // pruned sweeps fold kernels into contiguous slices with no per-cell
  // gather/scatter. The values are bit-identical either way; only the
  // argmax needs care, because the unpruned argmax breaks value ties on
  // the smallest id and the permuted scan order would break them on
  // grid position instead.
  std::vector<double> best(n, kInfDist);
  const bool full_range =
      n == oracle.points().size() && pts.front() == 0 &&
      simd::is_contiguous_run(pts.data(), pts.size());
  const bool ordered = full_range && oracle.ordered_scans_available();
  std::optional<PruneCache> cache;
  if (oracle.pruning_enabled() && oracle.spatial_index() != nullptr) {
    cache.emplace(*oracle.spatial_index());
  }
  PruneCache* cptr = cache ? &*cache : nullptr;
  const std::span<const index_t> order =
      ordered ? oracle.spatial_index()->order() : std::span<const index_t>{};

  // The far point for the next center, given the first-of-ties argmax
  // position: in the ordered domain ties must still resolve to the
  // smallest point id, exactly like the id-order argmax. The tie sweep
  // is a vectorizable equality count first, so the common no-tie case
  // costs one extra streaming pass only.
  const auto far_point = [&](std::size_t pos) -> index_t {
    if (!ordered) return pts[pos];
    const double v = best[pos];
    index_t id = order[pos];
    std::size_t ties = 0;
    for (std::size_t j = pos + 1; j < n; ++j) {
      ties += best[j] == v ? 1 : 0;
    }
    if (ties > 0) {
      for (std::size_t j = pos + 1; j < n; ++j) {
        if (best[j] == v && order[j] < id) id = order[j];
      }
    }
    return id;
  };

  index_t current = pts[first_pos];
  result.centers.push_back(current);
  result.greedy_radii_comparable.push_back(0.0);

  for (std::size_t step = 1; step <= centers_wanted; ++step) {
    if (ordered) {
      oracle.update_nearest_ordered(current, best, cptr);
    } else {
      oracle.update_nearest(pts, current, best, cptr);
    }
    if (step == centers_wanted) break;
    const std::size_t far_pos = argmax(best);
    result.greedy_radii_comparable.push_back(best[far_pos]);
    current = far_point(far_pos);
    result.centers.push_back(current);
  }

  result.radius_comparable = best[argmax(std::span<const double>(best))];
  return result;
}

}  // namespace kc
