#include "fault/fault.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>

#include "compat/thread_safety.hpp"
#include "rng/rng.hpp"

namespace kc::fault {

namespace detail {

/// An armed site: its plan plus live counters. Counters are mutable
/// atomics so hits from any thread stay race-free.
struct ArmedSite {
  SitePlan plan;
  std::uint64_t site_hash = 0;  ///< splitmix64 of the site name bytes
  mutable std::atomic<std::uint64_t> hits{0};
  mutable std::atomic<std::uint64_t> fires{0};
};

struct ArmedState {
  std::uint64_t seed = 1;
  // Sites are few (a plan names a handful); linear scan by name beats a
  // map for both the lookup cost and the locality of the slow path.
  std::vector<std::unique_ptr<ArmedSite>> sites;

  [[nodiscard]] const ArmedSite* find(std::string_view site) const noexcept {
    for (const auto& s : sites) {
      if (s->plan.site == site) return s.get();
    }
    return nullptr;
  }
};

std::atomic<const ArmedState*> g_active{nullptr};

namespace {

// Armed states are kept alive until process exit: a hit thread may use
// a stale g_active pointer for a moment after disarm()/arm(), and an
// immortal pointee turns that race into a benign "old plan answered"
// instead of a use-after-free. Plans are tiny and re-armed rarely
// (tests, process start), so the leak is bounded and deliberate. The
// registry itself is heap-allocated and never freed for the same
// reason: a hit during static destruction must not touch a destroyed
// mutex.
struct Registry {
  compat::Mutex mutex;  ///< serializes arm()/disarm() publications
  std::vector<std::unique_ptr<const ArmedState>> states
      KC_GUARDED_BY(mutex);
};
Registry& registry() {
  static auto* instance = new Registry();
  return *instance;
}

[[nodiscard]] std::uint64_t hash_site_name(std::string_view site) noexcept {
  std::uint64_t h = 0x6b636661756c7421ull;  // "kcfault!"
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h = splitmix64_next(h);
  }
  return h;
}

/// Seeded hash decision in [0, 1): depends only on (seed, site, x).
[[nodiscard]] double u01(std::uint64_t seed, std::uint64_t site_hash,
                         std::uint64_t x) noexcept {
  std::uint64_t state = seed ^ site_hash;
  state ^= splitmix64_next(state) + x;
  const std::uint64_t bits = splitmix64_next(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

Outcome hit_slow(const ArmedState* state, std::string_view site, bool keyed,
                 std::uint64_t key) noexcept {
  const ArmedSite* armed = state->find(site);
  if (armed == nullptr) return {};
  const SitePlan& plan = armed->plan;

  // Keyed probability hits are decided from the key alone and do not
  // advance the counter: the outcome for a given key must not depend
  // on how many other hits raced ahead of this one.
  bool fire = false;
  if (keyed && plan.p > 0.0) {
    fire = u01(state->seed, armed->site_hash, key) < plan.p;
  } else {
    // Relaxed: a pure hit counter — each thread gets a unique n from
    // the atomic RMW; no other data is published through it.
    const std::uint64_t n =
        armed->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (plan.nth != 0 && n == plan.nth) fire = true;
    if (!fire && plan.every != 0 && n % plan.every == 0) fire = true;
    if (!fire && plan.p > 0.0) {
      fire = u01(state->seed, armed->site_hash, n) < plan.p;
    }
  }
  if (!fire) return {};

  // times= caps total fires; the cap check must be atomic with the
  // fire accounting or concurrent hits could both fire past it.
  // Relaxed CAS loop: the cap is enforced by the RMW's atomicity
  // alone; no payload rides on the counter.
  std::uint64_t fired = armed->fires.load(std::memory_order_relaxed);
  do {
    if (fired >= plan.times) return {};
  } while (!armed->fires.compare_exchange_weak(
      fired, fired + 1, std::memory_order_relaxed));  // see above

  if (plan.stall_ms > 0) return {Action::Stall, plan.stall_ms};
  return {Action::Fail, 0};
}

void point_slow(const ArmedState* state, std::string_view site,
                std::uint64_t* key) {
  const Outcome outcome = key != nullptr ? hit_slow(state, site, true, *key)
                                         : hit_slow(state, site, false, 0);
  switch (outcome.action) {
    case Action::None:
      return;
    case Action::Stall:
      std::this_thread::sleep_for(std::chrono::milliseconds(outcome.stall_ms));
      return;
    case Action::Fail:
      throw InjectedFault(site);
  }
}

}  // namespace detail

void arm(const FaultPlan& plan) {
  if (plan.empty()) {
    disarm();
    return;
  }
  auto state = std::make_unique<detail::ArmedState>();
  state->seed = plan.seed;
  for (const SitePlan& site : plan.sites) {
    auto armed = std::make_unique<detail::ArmedSite>();
    armed->plan = site;
    armed->site_hash = detail::hash_site_name(site.site);
    state->sites.push_back(std::move(armed));
  }
  detail::Registry& reg = detail::registry();
  const compat::LockGuard lock(reg.mutex);
  reg.states.push_back(std::move(state));
  // Release: a hit thread that sees the new pointer must also see the
  // fully-built ArmedState it points at.
  detail::g_active.store(reg.states.back().get(), std::memory_order_release);
}

void disarm() noexcept {
  // Release for symmetry with arm(); nullptr carries no payload, and
  // in-flight hits may finish against the old (immortal) plan anyway.
  detail::g_active.store(nullptr, std::memory_order_release);
}

SiteStats stats(std::string_view site) noexcept {
  // Acquire pairs with arm()'s release so the ArmedState this pointer
  // targets is fully visible before find() walks it.
  const detail::ArmedState* state =
      detail::g_active.load(std::memory_order_acquire);
  if (state == nullptr) return {};
  const detail::ArmedSite* armed = state->find(site);
  if (armed == nullptr) return {};
  // Relaxed: monitoring snapshot of the counters.
  return {armed->hits.load(std::memory_order_relaxed),
          armed->fires.load(std::memory_order_relaxed)};
}

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void bad_spec(std::string_view what, std::string_view token) {
  throw std::invalid_argument("FaultPlan: " + std::string(what) + " in '" +
                              std::string(token) + "'");
}

[[nodiscard]] std::uint64_t parse_u64(std::string_view value,
                                      std::string_view token) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad_spec("expected an unsigned integer", token);
  }
  return out;
}

[[nodiscard]] double parse_prob(std::string_view value,
                                std::string_view token) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size() || out < 0.0 ||
      out > 1.0) {
    bad_spec("expected a probability in [0, 1]", token);
  }
  return out;
}

/// Splits "key=value"; returns false when '=' is absent.
[[nodiscard]] bool split_kv(std::string_view token, std::string_view& key,
                            std::string_view& value) noexcept {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) return false;
  key = trim(token.substr(0, eq));
  value = trim(token.substr(eq + 1));
  return true;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = std::min(spec.find(';', pos), spec.size());
    const std::string_view clause = trim(spec.substr(pos, semi - pos));
    pos = semi + 1;
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    if (colon == std::string_view::npos) {
      // A bare clause must be the plan-level seed.
      std::string_view key, value;
      if (!split_kv(clause, key, value) || key != "seed") {
        bad_spec("expected 'seed=N' or 'site:trigger,...'", clause);
      }
      plan.seed = parse_u64(value, clause);
      continue;
    }

    SitePlan site;
    site.site = std::string(trim(clause.substr(0, colon)));
    if (site.site.empty()) bad_spec("empty site name", clause);

    std::string_view triggers = clause.substr(colon + 1);
    bool any_trigger = false;
    std::size_t tpos = 0;
    while (tpos <= triggers.size()) {
      const std::size_t comma =
          std::min(triggers.find(',', tpos), triggers.size());
      const std::string_view token = trim(triggers.substr(tpos, comma - tpos));
      tpos = comma + 1;
      if (token.empty()) continue;
      std::string_view key, value;
      if (!split_kv(token, key, value)) bad_spec("expected key=value", token);
      if (key == "nth") {
        site.nth = parse_u64(value, token);
        if (site.nth == 0) bad_spec("nth must be >= 1", token);
        any_trigger = true;
      } else if (key == "every") {
        site.every = parse_u64(value, token);
        if (site.every == 0) bad_spec("every must be >= 1", token);
        any_trigger = true;
      } else if (key == "p") {
        site.p = parse_prob(value, token);
        any_trigger = true;
      } else if (key == "times") {
        site.times = parse_u64(value, token);
      } else if (key == "stall_ms") {
        site.stall_ms = static_cast<std::uint32_t>(parse_u64(value, token));
      } else {
        bad_spec("unknown trigger (want nth/every/p/times/stall_ms)", token);
      }
    }
    if (!any_trigger) bad_spec("site needs nth=, every=, or p=", clause);
    for (const SitePlan& existing : plan.sites) {
      if (existing.site == site.site) bad_spec("duplicate site", clause);
    }
    plan.sites.push_back(std::move(site));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (const SitePlan& site : sites) {
    out << ";" << site.site << ":";
    bool first = true;
    const auto sep = [&]() -> std::ostringstream& {
      if (!first) out << ",";
      first = false;
      return out;
    };
    if (site.nth != 0) sep() << "nth=" << site.nth;
    if (site.every != 0) sep() << "every=" << site.every;
    if (site.p > 0.0) sep() << "p=" << site.p;
    if (site.times != ~std::uint64_t{0}) sep() << "times=" << site.times;
    if (site.stall_ms != 0) sep() << "stall_ms=" << site.stall_ms;
  }
  return out.str();
}

FaultPlan plan_from_env() {
  const char* spec = std::getenv("KC_FAULT_PLAN");
  if (spec == nullptr) return {};
  return FaultPlan::parse(spec);
}

}  // namespace kc::fault
