// Deterministic fault injection: named sites, armed by a seeded plan.
//
// Production code marks the places where the outside world can fail —
// a task execution, a reducer machine, a socket write, an allocation —
// with a *named injection site*:
//
//   kc::fault::point("exec.task.run");          // throws InjectedFault
//                                               // (or stalls) when armed
//   if (kc::fault::fires("sim.machine", key))   // key-seeded decision
//     ...treat this simulated machine as lost...
//
// Whether a site fires is decided by the armed FaultPlan, parsed from a
// compact spec (the KC_FAULT_PLAN environment variable, a
// --fault-plan flag, or ServiceConfig::fault_plan):
//
//   seed=42; exec.task.run:p=0.01; svc.request.run:nth=3,times=1;
//   sim.machine:p=0.05; svc.emit.short:p=0.5; codec.alloc:every=100
//
// Triggers per site (at least one required):
//   nth=N       fire on exactly the Nth hit of the site (1-based)
//   every=N     fire on every Nth hit
//   p=X         fire with probability X per hit, decided by a seeded
//               hash — not a stateful RNG — so a decision depends only
//               on (plan seed, site, hit index / caller key), never on
//               thread interleaving
//   times=N     cap: at most N fires at this site (default unlimited)
//   stall_ms=N  firing stalls the caller N ms instead of failing it
//               (watchdog fuel; point() sleeps, fires() reports None)
//
// Determinism contract. Counter triggers (nth/every, and p over the
// hit index) consume one global per-site hit counter: with a serial
// execution order the fire sequence is exactly reproducible. Keyed
// hits — fires(site, key) / point(site, key) — decide p-triggers from
// the caller-supplied key alone, so they are reproducible under *any*
// thread interleaving; the simulated cluster keys machine loss by
// (request seed, round ordinal, machine index) for exactly that
// reason: same FaultPlan seed => the same machines are lost => byte-
// identical reports on every backend.
//
// Overhead when disarmed: every site boils down to one acquire atomic
// load (free on x86) and a predictable branch (the pointer is null). No site
// sits inside a kernel inner loop; the hottest placements are per
// scheduled task and per codec record, far off the ns/pair scan paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace kc::fault {

/// Thrown by point() when its site fires with a fail action. Derives
/// from std::runtime_error: everything upstream treats it exactly like
/// the real transient failure it stands in for (a service front-end
/// maps it to "internal-error" and may retry).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(std::string_view site)
      : std::runtime_error("injected fault at '" + std::string(site) + "'"),
        site_(site) {}
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

/// What a fired site does to its caller.
enum class Action : std::uint8_t {
  None = 0,  ///< not fired (or site not in the plan)
  Fail,      ///< the caller should fail (point() throws InjectedFault)
  Stall,     ///< the caller should stall stall_ms (point() sleeps)
};

struct Outcome {
  Action action = Action::None;
  std::uint32_t stall_ms = 0;
};

/// One site's triggers within a plan.
struct SitePlan {
  std::string site;
  std::uint64_t nth = 0;    ///< fire on exactly this hit (0 = off)
  std::uint64_t every = 0;  ///< fire on every Nth hit (0 = off)
  double p = 0.0;           ///< seeded per-hit probability
  std::uint64_t times = ~std::uint64_t{0};  ///< max fires
  std::uint32_t stall_ms = 0;  ///< action: stall instead of fail
};

/// A parsed, seedable injection plan. Value type; arm() publishes it.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<SitePlan> sites;

  [[nodiscard]] bool empty() const noexcept { return sites.empty(); }

  /// Parses the spec grammar documented above. Throws
  /// std::invalid_argument naming the offending token. An empty (or
  /// all-whitespace) spec parses to an empty plan.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// Canonical round-trippable spelling of this plan.
  [[nodiscard]] std::string to_string() const;
};

namespace detail {

struct ArmedState;  // registry internals (fault.cpp)

/// The armed plan, or null. Acquire load on the hot path (pairs with
/// arm()'s release): a hit that races an arm()/disarm() may use either
/// state, which is fine — plans target steady-state runs, not the
/// arming instant. The pointee is immortal (arena-kept until process
/// exit), so a stale pointer is never dangling.
extern std::atomic<const ArmedState*> g_active;

[[nodiscard]] Outcome hit_slow(const ArmedState* state, std::string_view site,
                               bool keyed, std::uint64_t key) noexcept;
void point_slow(const ArmedState* state, std::string_view site,
                std::uint64_t* key);

}  // namespace detail

/// True while a plan is armed (one relaxed load).
[[nodiscard]] inline bool armed() noexcept {
  // Relaxed is sound *here*: the pointer is tested, never
  // dereferenced, and callers only use the bool as a hint.
  return detail::g_active.load(std::memory_order_relaxed) != nullptr;
}

/// Registers one hit of `site` and reports what the plan wants done.
/// Free when disarmed. Counter-sequenced: p-decisions hash the site's
/// global hit index.
[[nodiscard]] inline Outcome hit(std::string_view site) noexcept {
  // Acquire pairs with arm()'s release store: hit_slow dereferences
  // the pointer, so the ArmedState's fields must be visible first.
  // (Free on x86; on weaker machines a plain load could see the
  // pointer before the pointee.)
  const detail::ArmedState* state =
      detail::g_active.load(std::memory_order_acquire);
  if (state == nullptr) return {};
  return detail::hit_slow(state, site, /*keyed=*/false, 0);
}

/// Keyed hit: p-decisions hash (seed, site, key) instead of the hit
/// counter, so the outcome for a given key is interleaving-independent.
/// nth/every triggers still consume the global counter.
[[nodiscard]] inline Outcome hit(std::string_view site,
                                 std::uint64_t key) noexcept {
  // Acquire: see the note on hit(site) above.
  const detail::ArmedState* state =
      detail::g_active.load(std::memory_order_acquire);
  if (state == nullptr) return {};
  return detail::hit_slow(state, site, /*keyed=*/true, key);
}

/// Convenience hit for "lose or keep" decisions: true only for a fail
/// fire (a stall site never reports true here).
[[nodiscard]] inline bool fires(std::string_view site,
                                std::uint64_t key) noexcept {
  return hit(site, key).action == Action::Fail;
}

/// The standard injection site: throws InjectedFault on a fail fire,
/// sleeps on a stall fire, does nothing otherwise (and nothing at all
/// beyond one uncontended load when disarmed).
inline void point(std::string_view site) {
  // Acquire: see the note on hit(site) above.
  const detail::ArmedState* state =
      detail::g_active.load(std::memory_order_acquire);
  if (state == nullptr) return;
  detail::point_slow(state, site, nullptr);
}
inline void point(std::string_view site, std::uint64_t key) {
  // Acquire: see the note on hit(site) above.
  const detail::ArmedState* state =
      detail::g_active.load(std::memory_order_acquire);
  if (state == nullptr) return;
  detail::point_slow(state, site, &key);
}

/// Publishes `plan` as the process-wide armed plan (replacing any
/// previous one; per-site counters start at zero). An empty plan
/// disarms. Thread-safe against hits; arm/disarm themselves are
/// serialized internally.
void arm(const FaultPlan& plan);

/// Disarms injection; every site is free again.
void disarm() noexcept;

/// Per-site counters of the currently armed plan (zeros when the site
/// is unknown or nothing is armed) — for tests and diagnostics.
struct SiteStats {
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};
[[nodiscard]] SiteStats stats(std::string_view site) noexcept;

/// RAII arming for scoped use (a test, a ServiceLoop with a configured
/// plan): arms on construction, disarms on destruction. Nesting is not
/// tracked — the destructor disarms whatever is armed.
class ScopedPlan {
 public:
  explicit ScopedPlan(const FaultPlan& plan) { arm(plan); }
  explicit ScopedPlan(std::string_view spec) { arm(FaultPlan::parse(spec)); }
  ~ScopedPlan() { disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

/// The plan named by the KC_FAULT_PLAN environment variable (empty
/// plan when unset or blank). Throws std::invalid_argument on a
/// malformed spec, like parse().
[[nodiscard]] FaultPlan plan_from_env();

}  // namespace kc::fault
