// Clang Thread Safety Analysis, portably.
//
// The concurrent core (svc/queue, svc/service, exec/scheduler,
// fault/fault) declares its lock discipline with the KC_* attribute
// macros below: every mutex-guarded member says which mutex guards it
// (KC_GUARDED_BY), every locking function says what it acquires,
// requires or must not hold (KC_ACQUIRE / KC_REQUIRES / KC_EXCLUDES).
// Under Clang, `-Wthread-safety -Werror=thread-safety` (the
// KC_THREAD_SAFETY CMake option, on by default for Clang and enforced
// in CI) turns those declarations into compile errors on any access
// to a guarded member without its mutex and on any unlock-without-
// lock / double-lock path — races the test matrix would only catch on
// the interleavings a TSan run happens to explore. Under every other
// compiler the macros expand to nothing and the wrappers below inline
// to their std counterparts, so the annotations are zero-cost and the
// build stays portable.
//
// std::mutex itself carries no capability attributes in libstdc++, so
// the analysis cannot track it. The Mutex / LockGuard / MutexLock /
// CondVar wrappers are the canonical fix (the mutex.h pattern from the
// Clang docs): Mutex is the annotated capability over a std::mutex,
// LockGuard and MutexLock are annotated scoped acquisitions over
// std::lock_guard / std::unique_lock semantics, and CondVar adapts
// std::condition_variable to MutexLock. Condition-variable predicate
// waits are written as explicit while loops in annotated code — a
// predicate lambda is analyzed as its own function and would not see
// the capability held by the enclosing wait.
//
// KC_NO_THREAD_SAFETY_ANALYSIS is a last-resort escape hatch; per the
// repo's lint contract every use must carry a written reason on the
// same declaration (and there are currently none in the tree).
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__) && (!defined(SWIG))
#define KC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define KC_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a type to be a lockable capability (argument = the name
/// the diagnostics use, e.g. "mutex").
#define KC_CAPABILITY(x) KC_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime holds a capability.
#define KC_SCOPED_CAPABILITY KC_THREAD_ANNOTATION(scoped_lockable)

/// Member `x` may only be read/written while holding the named mutex.
#define KC_GUARDED_BY(x) KC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is guarded.
#define KC_PT_GUARDED_BY(x) KC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (held on return, not on entry).
#define KC_ACQUIRE(...) KC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define KC_RELEASE(...) KC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `res`.
#define KC_TRY_ACQUIRE(res, ...) \
  KC_THREAD_ANNOTATION(try_acquire_capability(res, __VA_ARGS__))

/// Caller must hold the capability across the call.
#define KC_REQUIRES(...) KC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function takes it itself —
/// calling with it held would self-deadlock a non-recursive mutex).
#define KC_EXCLUDES(...) KC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define KC_RETURN_CAPABILITY(x) KC_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the capability is held (for code reachable
/// only under a lock the analysis cannot see).
#define KC_ASSERT_CAPABILITY(x) KC_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use
/// must state a reason on the same declaration; the determinism lint
/// (tools/kc_lint.py) rejects bare uses.
#define KC_NO_THREAD_SAFETY_ANALYSIS \
  KC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace kc::compat {

/// std::mutex as an annotated capability. Same size, same codegen —
/// every method inlines to the std::mutex call.
class KC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() KC_ACQUIRE() { mu_.lock(); }
  void unlock() KC_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() KC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// std::lock_guard over a Mutex: acquire on construction, release on
/// destruction, nothing in between.
class KC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) KC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() KC_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over a Mutex: supports mid-scope unlock/relock and
/// condition-variable waits. The destructor releases only if held
/// (std::unique_lock semantics); the analysis models a scoped
/// capability's destructor the same way, so an early unlock() does not
/// double-release.
class KC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KC_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() KC_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() KC_ACQUIRE() { lock_.lock(); }
  void unlock() KC_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable adapted to MutexLock. No predicate
/// overloads on purpose: annotated callers loop explicitly, so the
/// guarded reads in the predicate sit in the function the analysis
/// checks, not in a lambda it cannot associate with the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& when) {
    return cv_.wait_until(lock.lock_, when);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kc::compat
