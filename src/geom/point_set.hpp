// Dense point-set storage.
//
// The paper's experiments compute Euclidean distances "as required from
// the locations of the points" (§7.2) rather than materializing the
// complete distance matrix, which would be Theta(n^2). PointSet stores
// points row-major (point-major) so a single pair evaluation touches
// `dim` contiguous doubles, and the storage is 64-byte aligned so the
// SIMD kernels' contiguous-range fast path (geom/kernels.hpp) streams
// rows from cache-line boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <span>
#include <string>
#include <vector>

namespace kc {

/// Index of a point within a PointSet. 32 bits covers the paper's
/// largest instance (KDD CUP 1999: 4.9e5 points; full set 4e6) with
/// room to spare, and halves the memory traffic of index arrays.
using index_t = std::uint32_t;

/// Minimal over-aligned allocator: coordinate storage starts on a cache
/// line so the SIMD kernels' contiguous row streams begin aligned.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) &&
                (Alignment & (Alignment - 1)) == 0);
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// 64-byte-aligned coordinate storage (one x86 cache line / one AVX-512
/// register).
using CoordStorage = std::vector<double, AlignedAllocator<double, 64>>;

class PointSet {
 public:
  PointSet() = default;

  /// Creates an uninitialized set of `n` points in `dim` dimensions.
  PointSet(std::size_t n, std::size_t dim);

  /// Creates a set from explicit row-major coordinates (one copy, into
  /// the aligned storage). `coords.size()` must be a multiple of `dim`.
  PointSet(std::size_t dim, std::span<const double> coords);

  /// Convenience constructor for tests: each inner list is one point.
  PointSet(std::initializer_list<std::initializer_list<double>> points);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Coordinates of point i (span of length dim()).
  [[nodiscard]] std::span<const double> operator[](index_t i) const noexcept {
    return {coords_.data() + static_cast<std::size_t>(i) * dim_, dim_};
  }
  [[nodiscard]] std::span<double> mutable_point(index_t i) noexcept {
    return {coords_.data() + static_cast<std::size_t>(i) * dim_, dim_};
  }

  /// Raw pointer to point i's first coordinate (hot-loop accessor).
  [[nodiscard]] const double* data(index_t i) const noexcept {
    return coords_.data() + static_cast<std::size_t>(i) * dim_;
  }

  [[nodiscard]] std::span<const double> raw() const noexcept { return coords_; }

  /// Appends one point; `p.size()` must equal dim() (or set dim if empty).
  void push_back(std::span<const double> p);

  /// Gathers a subset into a new PointSet (used by tests and examples;
  /// the algorithms themselves work on index spans without copying).
  [[nodiscard]] PointSet subset(std::span<const index_t> ids) const;

  /// All indices [0, n): the identity subset the top-level algorithms run on.
  [[nodiscard]] std::vector<index_t> all_indices() const;

  /// Approximate memory footprint in bytes.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return coords_.size() * sizeof(double);
  }

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  CoordStorage coords_;
};

}  // namespace kc
