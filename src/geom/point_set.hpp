// Dense point-set storage.
//
// The paper's experiments compute Euclidean distances "as required from
// the locations of the points" (§7.2) rather than materializing the
// complete distance matrix, which would be Theta(n^2). PointSet stores
// points row-major (point-major) so a single pair evaluation touches
// `dim` contiguous doubles, which is what the blocked kernels in
// distance.hpp want.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace kc {

/// Index of a point within a PointSet. 32 bits covers the paper's
/// largest instance (KDD CUP 1999: 4.9e5 points; full set 4e6) with
/// room to spare, and halves the memory traffic of index arrays.
using index_t = std::uint32_t;

class PointSet {
 public:
  PointSet() = default;

  /// Creates an uninitialized set of `n` points in `dim` dimensions.
  PointSet(std::size_t n, std::size_t dim);

  /// Creates a set from explicit row-major coordinates.
  /// `coords.size()` must be a multiple of `dim`.
  PointSet(std::size_t dim, std::vector<double> coords);

  /// Convenience constructor for tests: each inner list is one point.
  PointSet(std::initializer_list<std::initializer_list<double>> points);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Coordinates of point i (span of length dim()).
  [[nodiscard]] std::span<const double> operator[](index_t i) const noexcept {
    return {coords_.data() + static_cast<std::size_t>(i) * dim_, dim_};
  }
  [[nodiscard]] std::span<double> mutable_point(index_t i) noexcept {
    return {coords_.data() + static_cast<std::size_t>(i) * dim_, dim_};
  }

  /// Raw pointer to point i's first coordinate (hot-loop accessor).
  [[nodiscard]] const double* data(index_t i) const noexcept {
    return coords_.data() + static_cast<std::size_t>(i) * dim_;
  }

  [[nodiscard]] std::span<const double> raw() const noexcept { return coords_; }

  /// Appends one point; `p.size()` must equal dim() (or set dim if empty).
  void push_back(std::span<const double> p);

  /// Gathers a subset into a new PointSet (used by tests and examples;
  /// the algorithms themselves work on index spans without copying).
  [[nodiscard]] PointSet subset(std::span<const index_t> ids) const;

  /// All indices [0, n): the identity subset the top-level algorithms run on.
  [[nodiscard]] std::vector<index_t> all_indices() const;

  /// Approximate memory footprint in bytes.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return coords_.size() * sizeof(double);
  }

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> coords_;
};

}  // namespace kc
