// Metrics and bulk distance kernels.
//
// Everything in this library compares distances far more often than it
// reports them, so kernels operate on a *comparable* value: a number
// that is order-isomorphic to the true metric but cheaper to compute.
// For Euclidean (the paper's metric, §7.2) the comparable value is the
// squared distance, which avoids a sqrt per pair; `to_reported`
// converts back when a human-facing value (a table cell) is needed.
// L1 and Linf use the true distance as their comparable value.
//
// The hot loops dispatch on the metric once per kernel call, then run
// through the SIMD kernel engine (geom/kernels.hpp): runtime-selected
// scalar/AVX2/AVX-512 tables with small-dimension specializations,
// contiguous-range fast paths, and center-blocked multi scans; all
// algorithm code stays non-templated and ISA-agnostic.
#pragma once

#include <functional>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "geom/counters.hpp"
#include "geom/kernels.hpp"
#include "geom/point_set.hpp"

namespace kc::exec {
class ExecutionBackend;
struct ChunkContext;
}  // namespace kc::exec

namespace kc {

class SpatialIndex;
class PruneCache;

/// Default minimum scan length before a bulk kernel shards across an
/// execution backend; below this the fan-out overhead dominates the
/// O(n * dim) work of the scan itself.
inline constexpr std::size_t kShardMinItems = std::size_t{1} << 14;

/// Whether the oracle may route full scans through a bound spatial
/// index's cell-pruned path (geom/spatial_index.hpp).
enum class PruneMode {
  Off,   ///< never prune; the exact pre-index code path
  Auto,  ///< prune when an index is bound (the facade only builds one
         ///< when its auto heuristic holds, so Auto defers to that)
  On,    ///< prune whenever an index is bound
};

[[nodiscard]] std::string_view to_string(PruneMode mode) noexcept;

enum class MetricKind {
  L2,    ///< Euclidean; comparable value = squared distance
  L1,    ///< Manhattan
  Linf,  ///< Chebyshev
};

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

/// Sentinel "no center assigned yet" comparable distance.
inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// A view over a PointSet with a chosen metric. Cheap to copy; does not
/// own the points. Thread-safe: methods only read the point set and
/// bump thread-local work counters.
///
/// Optionally binds an execution backend (bind_executor) so the bulk
/// kernels — update_nearest / update_nearest_multi — shard large scans
/// across host cores. Sharding never changes results or counter
/// attribution: chunks are deterministic, the per-element min-fold is
/// order-independent, and the full eval count is charged to the
/// calling thread before fan-out.
///
/// Optionally binds a ChunkContext (bind_context) carrying a
/// CancellationToken and a shared distance-eval budget. The bulk
/// kernels then execute in gate chunks of ~exec::kGateEvals pair
/// evaluations — on every backend, including a purely sequential
/// scan — checking the token and charging the budget per chunk, and
/// throw CancelledError / BudgetExceededError within one chunk of a
/// stop condition. Gating never changes results: chunks write disjoint
/// output slices with the same order-independent fold. On an aborted
/// scan the thread-local counters (bulk-charged up front) over-report;
/// the context's budget odometer reflects the work that actually ran
/// to within one gate chunk (pairwise_comparable pre-buys credit in
/// gate-sized batches, so an abort may leave < kGateEvals charged but
/// unexecuted). Completed scans charge exactly their eval count.
class DistanceOracle {
 public:
  explicit DistanceOracle(const PointSet& points,
                          MetricKind kind = MetricKind::L2) noexcept
      : points_(&points), kind_(kind) {}

  [[nodiscard]] const PointSet& points() const noexcept { return *points_; }
  [[nodiscard]] MetricKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t dim() const noexcept { return points_->dim(); }

  /// Binds (or, with nullptr, unbinds) the backend used to shard bulk
  /// scans of at least `min_items` elements. The oracle does not own
  /// the backend; the caller keeps it alive.
  void bind_executor(exec::ExecutionBackend* backend,
                     std::size_t min_items = kShardMinItems) noexcept {
    exec_ = backend;
    shard_min_ = min_items > 0 ? min_items : kShardMinItems;
  }
  [[nodiscard]] exec::ExecutionBackend* executor() const noexcept {
    return exec_;
  }

  /// Binds (or, with nullptr, unbinds) the stop-condition context the
  /// bulk kernels check between gate chunks. The oracle does not own
  /// the context; the caller keeps it alive across the scans. An
  /// unarmed context (no token, no budget) is ignored.
  void bind_context(const exec::ChunkContext* context) noexcept {
    ctx_ = context;
  }
  [[nodiscard]] const exec::ChunkContext* context() const noexcept {
    return ctx_;
  }

  /// Binds (or, with nullptr, unbinds) a spatial index built over this
  /// oracle's PointSet. With an index bound and `mode` not Off, the
  /// bulk kernels route full-range scans (ids == all point indices)
  /// through cell-pruned scans that skip whole grid cells the triangle
  /// inequality proves irrelevant — bit-identical results, with the
  /// skipped pairs charged to counters as pruned_pairs instead of
  /// distance_evals. Partial-range scans, a mismatched index, or the
  /// KC_FORCE_NO_PRUNE environment variable fall back to the exact
  /// unpruned path. The oracle does not own the index.
  void bind_index(const SpatialIndex* index,
                  PruneMode mode = PruneMode::Auto) noexcept {
    index_ = index;
    prune_mode_ = mode;
  }
  [[nodiscard]] const SpatialIndex* spatial_index() const noexcept {
    return index_;
  }
  [[nodiscard]] PruneMode prune_mode() const noexcept { return prune_mode_; }

  /// True when the next full-range scan would take the pruned path
  /// (index bound, mode permits, env does not veto).
  [[nodiscard]] bool pruning_enabled() const noexcept;

  /// Overrides the kernel table used by this oracle (nullptr restores
  /// the process-wide selection). Test/bench seam for A/B-ing SIMD
  /// levels inside one process; the KC_FORCE_SCALAR environment
  /// variable is the whole-process equivalent.
  void force_kernels(const simd::KernelTable* table) noexcept {
    kernels_ = table != nullptr ? table : &simd::active_kernels();
  }
  [[nodiscard]] const simd::KernelTable* kernels() const noexcept {
    return kernels_;
  }

  /// Comparable distance between points a and b.
  [[nodiscard]] double comparable(index_t a, index_t b) const noexcept;

  /// True metric distance between points a and b.
  [[nodiscard]] double distance(index_t a, index_t b) const noexcept {
    return to_reported(comparable(a, b));
  }

  /// Converts a comparable value to the true metric value.
  [[nodiscard]] double to_reported(double comp) const noexcept;

  /// Converts a true metric value to the comparable scale.
  [[nodiscard]] double from_reported(double dist) const noexcept;

  /// best[i] = min(best[i], comparable(ids[i], center)) for all i.
  /// This is the workhorse of Gonzalez's algorithm and of the EIM
  /// incremental d(x, S) maintenance. Returns nothing; work counters
  /// record ids.size() pair evaluations (with a pruned scan, evaluated
  /// plus pruned pairs sum to that). With a bound armed context, throws
  /// CancelledError / BudgetExceededError within one gate chunk of a
  /// stop condition.
  ///
  /// `cache` (optional) carries per-cell bounds across a sequence of
  /// pruned full-range scans that share one best array — see
  /// PruneCache's lifetime contract. Ignored on the unpruned path.
  void update_nearest(std::span<const index_t> ids, index_t center,
                      std::span<double> best,
                      PruneCache* cache = nullptr) const;

  /// best[i] = min over c in centers of comparable(ids[i], c), folded
  /// into the existing best[i]. Bit-identical to repeated
  /// update_nearest, but tiles centers in blocks of simd::kCenterBlock
  /// so each streaming pass over the points folds several centers per
  /// load of best/ids — ~4x less memory traffic for EIM's select-round
  /// batches. Context-gated like update_nearest, and takes the same
  /// cell-pruned path on full-range scans (within one call the cell
  /// bounds tighten block by block, so late center blocks prune against
  /// the early blocks' results even when best starts at kInfDist).
  void update_nearest_multi(std::span<const index_t> ids,
                            std::span<const index_t> centers,
                            std::span<double> best,
                            PruneCache* cache = nullptr) const;

  /// True when the cell-order scans below may be called: pruning is
  /// enabled and the bound index covers this oracle's point set.
  [[nodiscard]] bool ordered_scans_available() const noexcept;

  /// Cell-order ("ordered") variants of the two scans above, for hot
  /// loops that keep their whole best array for the full point set:
  /// element j of `best_ordered` belongs to point spatial_index()->
  /// order()[j], so every grid cell is a contiguous slice and the
  /// pruned scan folds kernels straight into it — no per-cell
  /// gather/scatter of best, which otherwise costs as much as the
  /// kernels themselves. The folded *values* are bit-identical to what
  /// update_nearest(all_indices(), ...) leaves at the permuted
  /// positions; counters and context gating behave identically. Callers
  /// must check ordered_scans_available() first (throws
  /// std::logic_error otherwise) and fall back to the id-domain scans —
  /// that is what keeps KC_FORCE_NO_PRUNE an exact-path switch.
  void update_nearest_ordered(index_t center, std::span<double> best_ordered,
                              PruneCache* cache = nullptr) const;
  void update_nearest_multi_ordered(std::span<const index_t> centers,
                                    std::span<double> best_ordered,
                                    PruneCache* cache = nullptr) const;

  /// Comparable distance from point `p` to the nearest of `centers`
  /// (kInfDist if centers is empty).
  [[nodiscard]] double nearest_comparable(
      index_t p, std::span<const index_t> centers) const noexcept;

  /// Index (into `centers`) of the nearest center to p; returns
  /// centers.size() if centers is empty.
  [[nodiscard]] std::size_t nearest_center(
      index_t p, std::span<const index_t> centers) const noexcept;

  /// Receives one dense tile of comparable distances from the tiled
  /// pairwise engine: `tile[r * ldt + c]` is the comparable distance
  /// between a-point `i0 + r` and b-point `j0 + c` (indices into the
  /// caller's id spans), for r < m, c < n. The pointer is only valid
  /// during the call — the engine reuses one cache-sized buffer for
  /// every tile, which is the point: consumers fold tiles into running
  /// results instead of materializing the full |a| x |b| matrix.
  using TileConsumer = std::function<void(
      std::size_t i0, std::size_t j0, std::size_t m, std::size_t n,
      const double* tile, std::size_t ldt)>;

  /// Streams the full |a_ids| x |b_ids| rectangle of comparable
  /// distances through `consume` in cache-blocked tiles computed by the
  /// active table's pairwise_tile kernel (bit-identical to per-pair
  /// scalar calls). Charges |a| * |b| evaluations to the calling
  /// thread's counters in bulk; with `gated` and an armed bound
  /// context, the budget is charged in ~kGateEvals batches ahead of the
  /// tiles they cover and a stop condition raises (labelled `where`)
  /// within one gate of tripping. `gated = false` skips context checks
  /// entirely — for call sites whose pre-tile code did per-pair
  /// comparable() calls, which never consulted the context.
  void pairwise_tiles(std::span<const index_t> a_ids,
                      std::span<const index_t> b_ids,
                      const TileConsumer& consume,
                      std::string_view where = "pairwise_tiles",
                      bool gated = true) const;

  /// Streams the strictly-upper-triangle pairs (i < j) of |ids|^2
  /// through `consume` as tiles: full m x n blocks right of the
  /// diagonal plus 1 x n row tiles inside diagonal blocks, covering
  /// each unordered pair exactly once — so exactly ids.size() *
  /// (ids.size() - 1) / 2 pair evaluations are computed, charged to
  /// counters in bulk and to an armed bound context's budget in
  /// ~kGateEvals batches (same gating contract as pairwise_tiles).
  void pairwise_upper_tiles(
      std::span<const index_t> ids, const TileConsumer& consume,
      std::string_view where = "pairwise_upper_tiles") const;

  /// Dense comparable distance matrix for a small subset (row-major,
  /// ids.size()^2 entries, zero diagonal). A thin adapter over
  /// pairwise_upper_tiles for callers that genuinely need the whole
  /// matrix resident; anything scanning it once should consume tiles
  /// instead and skip the n^2 allocation.
  [[nodiscard]] std::vector<double> pairwise_comparable(
      std::span<const index_t> ids) const;

 private:
  [[nodiscard]] std::size_t metric_index() const noexcept {
    return static_cast<std::size_t>(kind_);
  }

  /// True when this exact scan qualifies for the cell-pruned path:
  /// pruning enabled and `ids` is the full contiguous index range of
  /// the indexed PointSet (partial scans keep the unpruned path — the
  /// index's cell runs only tile the full set).
  [[nodiscard]] bool prune_applicable(
      std::span<const index_t> ids) const noexcept;

  /// The cell-pruned scan body shared by update_nearest (one-center
  /// span), update_nearest_multi and their ordered variants. With
  /// `ordered`, `best` is in index order and folded in place; otherwise
  /// it is in id order and staged per cell. Charges evaluated and
  /// pruned pairs to the calling thread's counters from what actually
  /// ran.
  void pruned_scan(std::span<const index_t> centers, std::span<double> best,
                   PruneCache* cache, bool ordered,
                   std::string_view where) const;

  const PointSet* points_;
  MetricKind kind_;
  exec::ExecutionBackend* exec_ = nullptr;        ///< not owned; may be null
  const exec::ChunkContext* ctx_ = nullptr;       ///< not owned; may be null
  const SpatialIndex* index_ = nullptr;           ///< not owned; may be null
  PruneMode prune_mode_ = PruneMode::Auto;
  std::size_t shard_min_ = kShardMinItems;
  /// Active kernel table; never null (defaults to the process-wide
  /// runtime-dispatched selection).
  const simd::KernelTable* kernels_ = &simd::active_kernels();
};

/// Position of the maximum element (first on ties); spans must be
/// non-empty and NaN-free (distance arrays always are). Vectorized via
/// the active kernel table.
[[nodiscard]] std::size_t argmax(std::span<const double> values) noexcept;

}  // namespace kc
