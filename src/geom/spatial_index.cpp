#include "geom/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

namespace kc {

std::int64_t grid_coord(double x, double w) noexcept {
  return static_cast<std::int64_t>(
      std::clamp(std::floor(x / w), -kGridCoordClamp, kGridCoordClamp));
}

void grid_cell_key(std::span<const double> p, double w,
                   std::span<std::int64_t> key) noexcept {
  for (std::size_t c = 0; c < p.size(); ++c) key[c] = grid_coord(p[c], w);
}

bool force_no_prune_requested() noexcept {
  static const bool forced = [] {
    const char* env = std::getenv("KC_FORCE_NO_PRUNE");
    return env != nullptr && std::string_view{env} != "0";
  }();
  return forced;
}

namespace {

/// Average points-per-occupied-cell the width tuner aims for. Low
/// enough that a cell is a meaningful prune unit, high enough that the
/// per-cell bound test, bound refresh, and kernel-call overhead
/// amortize over a cache-friendly contiguous run — measured on the
/// pruned-scan matrix, fine grids (occupancy ~30) lose more to those
/// fixed costs than the extra pruning wins.
constexpr std::size_t kTargetOccupancy = 1024;

/// Floor on average occupancy enforced by the doubling loop: more than
/// n / kMinOccupancy occupied cells means cells are too fine to pay for
/// their bound tests, so the width doubles until they merge.
constexpr std::size_t kMinOccupancy = 16;

/// Linf data radius seen from the first point — one uncounted scalar
/// pass, the same probe shape GON's first round performs. Any metric
/// would do for tuning a cell width; Linf is the cheapest and matches
/// the grid's axis-aligned geometry.
double probe_radius(const PointSet& pts) noexcept {
  const std::size_t n = pts.size();
  const std::size_t dim = pts.dim();
  const double* origin = pts.data(0);
  const double* row = pts.raw().data();
  double r = 0.0;
  for (std::size_t i = 0; i < n; ++i, row += dim) {
    double d = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      const double g = std::fabs(row[c] - origin[c]);
      if (g > d) d = g;
    }
    if (d > r) r = d;
  }
  return r;
}

}  // namespace

SpatialIndex::SpatialIndex(const PointSet& points)
    : points_(&points), dim_(points.dim()) {
  const std::size_t n = points.size();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), index_t{0});
  cell_of_.assign(n, 0);
  if (n == 0 || dim_ == 0) {
    cell_begin_ = {0, n};
    if (n > 0) {
      rows_.assign(points.raw().begin(), points.raw().end());
    }
    return;
  }

  // Initial width: carve the probe diameter so a uniform spread lands
  // near kTargetOccupancy points per cell. Degenerate spreads (all
  // points equal) collapse to one cell at unit width.
  const double radius = probe_radius(points);
  double width = 1.0;
  if (radius > 0.0) {
    const double target_cells =
        std::max(1.0, static_cast<double>(n) /
                          static_cast<double>(kTargetOccupancy));
    const double per_axis = std::clamp(
        std::ceil(std::pow(target_cells, 1.0 / static_cast<double>(dim_))),
        1.0, 4096.0);
    width = 2.0 * radius / per_axis;
  }

  std::vector<std::int64_t> keys(n * dim_);
  const std::size_t cell_cap = std::max<std::size_t>(1, n / kMinOccupancy);
  const auto regrid = [&](double w) -> std::size_t {
    for (std::size_t i = 0; i < n; ++i) {
      grid_cell_key(points[static_cast<index_t>(i)], w,
                    {keys.data() + i * dim_, dim_});
    }
    std::sort(order_.begin(), order_.end(), [&](index_t a, index_t b) {
      const std::int64_t* ka = keys.data() + std::size_t{a} * dim_;
      const std::int64_t* kb = keys.data() + std::size_t{b} * dim_;
      for (std::size_t c = 0; c < dim_; ++c) {
        if (ka[c] != kb[c]) return ka[c] < kb[c];
      }
      return a < b;  // ascending ids within a cell, for determinism
    });
    std::size_t occupied = 1;
    for (std::size_t j = 1; j < n; ++j) {
      const std::int64_t* ka = keys.data() + std::size_t{order_[j - 1]} * dim_;
      const std::int64_t* kb = keys.data() + std::size_t{order_[j]} * dim_;
      if (!std::equal(ka, ka + dim_, kb)) ++occupied;
    }
    return occupied;
  };

  // Coarsen first: too many occupied cells means the bound tests cannot
  // amortize, so double until they merge under the cap.
  std::size_t occupied = regrid(width);
  int attempts = 0;
  while (occupied > cell_cap && attempts++ < 200) {
    width *= 2.0;
    occupied = regrid(width);
  }
  // Then refine: the initial width assumes a uniform spread, so tightly
  // clustered data (the paper's GAU shapes) lands orders of magnitude
  // too coarse — whole clusters collapse into single cells and the
  // bounds prune nothing inside them. Halve while the halving actually
  // splits cells (duplicate-heavy data stops making progress) and the
  // count stays under the cap.
  while (attempts++ < 200 && occupied * kTargetOccupancy < n) {
    const double half = width / 2.0;
    if (!(half > 0.0) || !std::isfinite(half)) break;
    const std::size_t split = regrid(half);
    if (split > cell_cap || split <= occupied) {
      occupied = regrid(width);  // re-derive keys/order for the kept width
      break;
    }
    width = half;
    occupied = split;
  }
  width_ = width;

  // Group the sorted order into cells, copy rows into the permuted
  // 64B-aligned layout, and take exact member bounding boxes.
  cell_begin_.clear();
  cell_begin_.reserve(occupied + 1);
  rows_.resize(n * dim_);
  bbox_.assign(2 * occupied * dim_, 0.0);
  std::size_t cell = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const index_t id = order_[j];
    const double* src = points.data(id);
    double* lo = bbox_.data() + 2 * cell * dim_;
    double* hi = lo + dim_;
    const bool opens_cell =
        j == 0 ||
        !std::equal(keys.data() + std::size_t{order_[j - 1]} * dim_,
                    keys.data() + std::size_t{order_[j - 1]} * dim_ + dim_,
                    keys.data() + std::size_t{id} * dim_);
    if (opens_cell) {
      if (j != 0) ++cell;
      lo = bbox_.data() + 2 * cell * dim_;
      hi = lo + dim_;
      cell_begin_.push_back(j);
      std::copy(src, src + dim_, lo);
      std::copy(src, src + dim_, hi);
    } else {
      for (std::size_t c = 0; c < dim_; ++c) {
        lo[c] = std::min(lo[c], src[c]);
        hi[c] = std::max(hi[c], src[c]);
      }
    }
    cell_of_[id] = static_cast<std::uint32_t>(cell);
    std::copy(src, src + dim_, rows_.data() + j * dim_);
  }
  cell_begin_.push_back(n);
}

double SpatialIndex::cell_mindist_comparable(MetricKind kind,
                                             const double* center,
                                             std::size_t c) const noexcept {
  const double* lo = cell_lo(c);
  const double* hi = cell_hi(c);
  // Per coordinate, the gap from the center to the box interval, folded
  // exactly like the scalar kernels fold their per-coordinate diffs
  // (sequential coordinate order, same square/abs/max shape). For any
  // member p, lo[d] <= p[d] <= hi[d], so the rounded gap is dominated
  // coordinate-wise by the kernel's rounded |p[d] - center[d]|, and the
  // identical monotone fold keeps the domination through rounding —
  // the returned bound never exceeds any member's kernel distance.
  switch (kind) {
    case MetricKind::L2: {
      double acc = 0.0;
      for (std::size_t d = 0; d < dim_; ++d) {
        const double g = center[d] < lo[d]   ? lo[d] - center[d]
                         : center[d] > hi[d] ? center[d] - hi[d]
                                             : 0.0;
        acc += g * g;
      }
      return acc;
    }
    case MetricKind::L1: {
      double acc = 0.0;
      for (std::size_t d = 0; d < dim_; ++d) {
        const double g = center[d] < lo[d]   ? lo[d] - center[d]
                         : center[d] > hi[d] ? center[d] - hi[d]
                                             : 0.0;
        acc += g;
      }
      return acc;
    }
    case MetricKind::Linf: {
      double acc = 0.0;
      for (std::size_t d = 0; d < dim_; ++d) {
        const double g = center[d] < lo[d]   ? lo[d] - center[d]
                         : center[d] > hi[d] ? center[d] - hi[d]
                                             : 0.0;
        if (g > acc) acc = g;
      }
      return acc;
    }
  }
  return 0.0;
}

}  // namespace kc
