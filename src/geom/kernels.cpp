// Runtime ISA dispatch for the kernel engine.
//
// The per-ISA tables live in their own translation units; this file
// decides, once per process, which one the oracle-facing entry points
// use. The decision order: KC_FORCE_SCALAR wins, then the widest
// compiled-in level the CPU supports, then scalar. KC_HAVE_AVX2_TU /
// KC_HAVE_AVX512_TU are defined by CMake exactly when the matching
// translation unit was compiled with its ISA flag, so the extern table
// references below never dangle.
#include "geom/kernels.hpp"

#include <cstdlib>

namespace kc::simd {

const KernelTable& scalar_kernel_table() noexcept;
#ifdef KC_HAVE_AVX2_TU
const KernelTable& avx2_kernel_table() noexcept;
#endif
#ifdef KC_HAVE_AVX512_TU
const KernelTable& avx512_kernel_table() noexcept;
#endif
#ifdef KC_HAVE_NEON_TU
const KernelTable& neon_kernel_table() noexcept;
#endif

std::string_view to_string(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::Scalar: return "scalar";
    case IsaLevel::Avx2: return "avx2";
    case IsaLevel::Avx512: return "avx512";
    case IsaLevel::Neon: return "neon";
  }
  return "?";
}

bool isa_compiled(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::Scalar:
      return true;
    case IsaLevel::Avx2:
#ifdef KC_HAVE_AVX2_TU
      return true;
#else
      return false;
#endif
    case IsaLevel::Avx512:
#ifdef KC_HAVE_AVX512_TU
      return true;
#else
      return false;
#endif
    case IsaLevel::Neon:
#ifdef KC_HAVE_NEON_TU
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool isa_supported(IsaLevel level) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  switch (level) {
    case IsaLevel::Scalar: return true;
    case IsaLevel::Avx2: return __builtin_cpu_supports("avx2") != 0;
    case IsaLevel::Avx512: return __builtin_cpu_supports("avx512f") != 0;
    case IsaLevel::Neon: return false;
  }
  return false;
#elif defined(__aarch64__)
  // AdvSIMD is part of the aarch64 baseline; no runtime probe needed.
  return level == IsaLevel::Scalar || level == IsaLevel::Neon;
#else
  return level == IsaLevel::Scalar;
#endif
}

const KernelTable* kernels_for(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::Scalar:
      return &scalar_kernel_table();
    case IsaLevel::Avx2:
#ifdef KC_HAVE_AVX2_TU
      return &avx2_kernel_table();
#else
      return nullptr;
#endif
    case IsaLevel::Avx512:
#ifdef KC_HAVE_AVX512_TU
      return &avx512_kernel_table();
#else
      return nullptr;
#endif
    case IsaLevel::Neon:
#ifdef KC_HAVE_NEON_TU
      return &neon_kernel_table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool force_scalar_requested() noexcept {
  static const bool forced = [] {
    const char* env = std::getenv("KC_FORCE_SCALAR");
    return env != nullptr && *env != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return forced;
}

IsaLevel active_level() noexcept {
  static const IsaLevel selected = [] {
    if (force_scalar_requested()) return IsaLevel::Scalar;
    for (const IsaLevel level :
         {IsaLevel::Avx512, IsaLevel::Avx2, IsaLevel::Neon}) {
      if (isa_compiled(level) && isa_supported(level)) return level;
    }
    return IsaLevel::Scalar;
  }();
  return selected;
}

const KernelTable& active_kernels() noexcept {
  return *kernels_for(active_level());
}

bool is_contiguous_run(const index_t* ids, std::size_t n) noexcept {
  if (n == 0) return true;
  const std::size_t first = ids[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (ids[i] != first + i) return false;
  }
  return true;
}

}  // namespace kc::simd
