// Shared SIMD kernel bodies, templated over a per-ISA vector
// abstraction. Included only by the per-ISA translation units
// (kernels_avx2.cpp, kernels_avx512.cpp); each supplies a Vec type:
//
//   static constexpr std::size_t kWidth;      // lanes per register
//   using reg;                                // the register type
//   reg zero(); reg set1(double);
//   reg loadu(const double*); void storeu(double*, reg);
//   reg add(reg, reg); reg sub(reg, reg); reg mul(reg, reg);
//   reg vmin(reg a, reg b);   // lane: a < b ? a : b (b on ties/NaN)
//   reg vmax(reg a, reg b);   // lane: a > b ? a : b (b on ties/NaN)
//   reg vabs(reg);            // clears the sign bit, like std::fabs
//   reg load_strided(const double* p, std::size_t stride);  // p[j*stride]
//   reg load_rows(const double* const* rows, std::size_t d); // rows[j][d]
//   void deinterleave2(const double* p, reg& x, reg& y);    // dim-2 rows
//   unsigned cmpeq_mask(reg, reg);  // lane-equality bitmask (lane 0 = bit 0)
//
// Bit-identity with the scalar loops is by construction: lanes are
// points, and each lane folds its coordinates in exactly the scalar
// order (a strict left-to-right accumulation; the leading 0 + x of the
// generic scalar fold is exact for the non-negative per-coordinate
// terms). vmin/vmax operand order reproduces the scalar strict-<
// comparisons' tie behavior. Ragged tails run the scalar reference
// loops — unless the Vec type provides masked-tail support (AVX-512's
// lane masks):
//
//   using Mask;                                   // e.g. __mmask8
//   Mask tail_mask(std::size_t r);                // low r lanes active
//   reg maskz_loadu(Mask, const double*);         // inactive lanes 0.0,
//                                                 //   no faulting reads
//   void mask_storeu(double*, Mask, reg);         // inactive lanes untouched
//   reg maskz_load_strided(const double* p, std::size_t stride,
//                          std::size_t r);        // p[j*stride], j < r
//   reg maskz_load_rows(const double* const* rows, std::size_t d,
//                       std::size_t r);           // rows[j][d],  j < r
//   void maskz_deinterleave2(const double* p, std::size_t r,
//                            reg& x, reg& y);     // first r dim-2 rows
//
// then the update_nearest tails run vectorized under a mask: active
// lanes perform exactly the main loop's (scalar-identical) operation
// sequence, inactive lanes compute on zeros and are never stored, so
// bit-identity holds and no out-of-bounds element is ever read. The
// including translation units are compiled with -ffp-contract=off so
// none of this can be fused into FMA.
#pragma once

#include <bit>
#include <cstddef>

#include "geom/distance.hpp"
#include "geom/kernels.hpp"
#include "geom/kernels_scalar_impl.hpp"

namespace kc::simd {

/// True when the Vec type provides the complete masked-tail hook set
/// (see the header comment); detected, not declared, so the AVX2 table
/// keeps its scalar tails untouched. All six hooks are probed: a type
/// providing only some of them must fall back to the scalar tails
/// instead of failing to compile inside the tail bodies.
template <typename V>
concept HasMaskedTail = requires(const double* p, double* q,
                                 const double* const* rows,
                                 typename V::reg& r) {
  { V::tail_mask(std::size_t{1}) };
  { V::maskz_loadu(V::tail_mask(std::size_t{1}), p) };
  { V::mask_storeu(q, V::tail_mask(std::size_t{1}), typename V::reg{}) };
  { V::maskz_load_strided(p, std::size_t{1}, std::size_t{1}) };
  { V::maskz_load_rows(rows, std::size_t{0}, std::size_t{1}) };
  { V::maskz_deinterleave2(p, std::size_t{1}, r, r) };
};

template <typename V, MetricKind M>
struct SimdKernels {
  using reg = typename V::reg;
  static constexpr std::size_t W = V::kWidth;

  /// The scalar pair kernel for this metric (tails, odd lanes).
  static constexpr auto kPair = M == MetricKind::L2   ? scalar::l2sq
                                : M == MetricKind::L1 ? scalar::l1
                                                      : scalar::linf;

  /// One coordinate's contribution, in the scalar fold's exact order.
  static reg accum(reg acc, reg diff) {
    if constexpr (M == MetricKind::L2) {
      return V::add(acc, V::mul(diff, diff));
    } else if constexpr (M == MetricKind::L1) {
      return V::add(acc, V::vabs(diff));
    } else {
      return V::vmax(V::vabs(diff), acc);
    }
  }

  /// Masked tail of nearest_contig: the last r (< W) rows run in the
  /// low r lanes with exactly the main loop's operation sequence;
  /// inactive lanes compute on zeros and are neither read from memory
  /// (maskz loads fault-suppress) nor written back (masked store).
  static void tail_contig(const double* rows, std::size_t dim, std::size_t r,
                          const double* center, double* best)
    requires HasMaskedTail<V>
  {
    const auto m = V::tail_mask(r);
    reg acc;
    if (dim == 2) {
      reg x, y;
      V::maskz_deinterleave2(rows, r, x, y);
      acc = accum(accum(V::zero(), V::sub(x, V::set1(center[0]))),
                  V::sub(y, V::set1(center[1])));
    } else {
      acc = V::zero();
      for (std::size_t d = 0; d < dim; ++d) {
        acc = accum(acc, V::sub(V::maskz_load_strided(rows + d, dim, r),
                                V::set1(center[d])));
      }
    }
    V::mask_storeu(best, m, V::vmin(acc, V::maskz_loadu(m, best)));
  }

  /// Masked tail of nearest_gather; `ids` holds the r remaining ids.
  static void tail_gather(const double* coords, std::size_t dim,
                          const index_t* ids, std::size_t r,
                          const double* center, double* best)
    requires HasMaskedTail<V>
  {
    const double* rows[W];
    for (std::size_t j = 0; j < r; ++j) {
      rows[j] = coords + static_cast<std::size_t>(ids[j]) * dim;
    }
    const auto m = V::tail_mask(r);
    reg acc = V::zero();
    for (std::size_t d = 0; d < dim; ++d) {
      acc = accum(acc, V::sub(V::maskz_load_rows(rows, d, r),
                              V::set1(center[d])));
    }
    V::mask_storeu(best, m, V::vmin(acc, V::maskz_loadu(m, best)));
  }

  static void nearest_contig(const double* rows, std::size_t dim,
                             std::size_t n, const double* center,
                             double* best) {
    std::size_t i = 0;
    if (dim == 2) {
      const reg c0 = V::set1(center[0]);
      const reg c1 = V::set1(center[1]);
      for (; i + W <= n; i += W) {
        reg x, y;
        V::deinterleave2(rows + 2 * i, x, y);
        const reg acc = accum(accum(V::zero(), V::sub(x, c0)), V::sub(y, c1));
        V::storeu(best + i, V::vmin(acc, V::loadu(best + i)));
      }
    } else if (dim == 3) {
      const reg c0 = V::set1(center[0]);
      const reg c1 = V::set1(center[1]);
      const reg c2 = V::set1(center[2]);
      for (; i + W <= n; i += W) {
        const double* p = rows + 3 * i;
        reg acc = accum(V::zero(), V::sub(V::load_strided(p + 0, 3), c0));
        acc = accum(acc, V::sub(V::load_strided(p + 1, 3), c1));
        acc = accum(acc, V::sub(V::load_strided(p + 2, 3), c2));
        V::storeu(best + i, V::vmin(acc, V::loadu(best + i)));
      }
    } else {
      for (; i + W <= n; i += W) {
        const double* p = rows + dim * i;
        reg acc = V::zero();
        for (std::size_t d = 0; d < dim; ++d) {
          acc = accum(acc, V::sub(V::load_strided(p + d, dim),
                                  V::set1(center[d])));
        }
        V::storeu(best + i, V::vmin(acc, V::loadu(best + i)));
      }
    }
    if (i < n) {
      if constexpr (HasMaskedTail<V>) {
        tail_contig(rows + dim * i, dim, n - i, center, best + i);
      } else {
        scalar::nearest_contig(rows + dim * i, dim, n - i, center, best + i,
                               kPair);
      }
    }
  }

  static void nearest_gather(const double* coords, std::size_t dim,
                             const index_t* ids, std::size_t n,
                             const double* center, double* best) {
    std::size_t i = 0;
    const double* rows[W];
    if (dim == 2) {
      const reg c0 = V::set1(center[0]);
      const reg c1 = V::set1(center[1]);
      for (; i + W <= n; i += W) {
        for (std::size_t j = 0; j < W; ++j) {
          rows[j] = coords + static_cast<std::size_t>(ids[i + j]) * 2;
        }
        const reg acc =
            accum(accum(V::zero(), V::sub(V::load_rows(rows, 0), c0)),
                  V::sub(V::load_rows(rows, 1), c1));
        V::storeu(best + i, V::vmin(acc, V::loadu(best + i)));
      }
    } else {
      for (; i + W <= n; i += W) {
        for (std::size_t j = 0; j < W; ++j) {
          rows[j] = coords + static_cast<std::size_t>(ids[i + j]) * dim;
        }
        reg acc = V::zero();
        for (std::size_t d = 0; d < dim; ++d) {
          acc = accum(acc, V::sub(V::load_rows(rows, d), V::set1(center[d])));
        }
        V::storeu(best + i, V::vmin(acc, V::loadu(best + i)));
      }
    }
    if (i < n) {
      if constexpr (HasMaskedTail<V>) {
        tail_gather(coords, dim, ids + i, n - i, center, best + i);
      } else {
        scalar::nearest_gather(coords, dim, ids + i, n - i, center, best + i,
                               kPair);
      }
    }
  }

  // Center-blocked variants: per point, centers fold in index order, so
  // the result is bit-identical to ncenters sequential passes while the
  // points and best[] stream through memory only once.

  /// Masked tail of nearest_multi_contig: the last r (< W) rows fold
  /// the whole center block in the low r lanes, mirroring the main
  /// loop's per-center accumulate / min sequence exactly. Inactive
  /// lanes compute on zeros and are neither loaded nor stored.
  static void tail_multi_contig(const double* rows, std::size_t dim,
                                std::size_t r, const double* const* centers,
                                std::size_t ncenters, double* best)
    requires HasMaskedTail<V>
  {
    const auto m = V::tail_mask(r);
    reg b = V::maskz_loadu(m, best);
    if (dim == 2) {
      reg x, y;
      V::maskz_deinterleave2(rows, r, x, y);
      for (std::size_t c = 0; c < ncenters; ++c) {
        const reg acc =
            accum(accum(V::zero(), V::sub(x, V::set1(centers[c][0]))),
                  V::sub(y, V::set1(centers[c][1])));
        b = V::vmin(acc, b);
      }
    } else {
      reg acc[kCenterBlock];
      for (std::size_t c = 0; c < ncenters; ++c) acc[c] = V::zero();
      for (std::size_t d = 0; d < dim; ++d) {
        const reg x = V::maskz_load_strided(rows + d, dim, r);
        for (std::size_t c = 0; c < ncenters; ++c) {
          acc[c] = accum(acc[c], V::sub(x, V::set1(centers[c][d])));
        }
      }
      for (std::size_t c = 0; c < ncenters; ++c) b = V::vmin(acc[c], b);
    }
    V::mask_storeu(best, m, b);
  }

  /// Masked tail of nearest_multi_gather; `ids` holds the r remaining ids.
  static void tail_multi_gather(const double* coords, std::size_t dim,
                                const index_t* ids, std::size_t r,
                                const double* const* centers,
                                std::size_t ncenters, double* best)
    requires HasMaskedTail<V>
  {
    const double* rows[W];
    for (std::size_t j = 0; j < r; ++j) {
      rows[j] = coords + static_cast<std::size_t>(ids[j]) * dim;
    }
    const auto m = V::tail_mask(r);
    reg acc[kCenterBlock];
    for (std::size_t c = 0; c < ncenters; ++c) acc[c] = V::zero();
    for (std::size_t d = 0; d < dim; ++d) {
      const reg x = V::maskz_load_rows(rows, d, r);
      for (std::size_t c = 0; c < ncenters; ++c) {
        acc[c] = accum(acc[c], V::sub(x, V::set1(centers[c][d])));
      }
    }
    reg b = V::maskz_loadu(m, best);
    for (std::size_t c = 0; c < ncenters; ++c) b = V::vmin(acc[c], b);
    V::mask_storeu(best, m, b);
  }

  static void nearest_multi_contig(const double* rows, std::size_t dim,
                                   std::size_t n, const double* const* centers,
                                   std::size_t ncenters, double* best) {
    std::size_t i = 0;
    if (dim == 2) {
      reg c0[kCenterBlock], c1[kCenterBlock];
      for (std::size_t c = 0; c < ncenters; ++c) {
        c0[c] = V::set1(centers[c][0]);
        c1[c] = V::set1(centers[c][1]);
      }
      for (; i + W <= n; i += W) {
        reg x, y;
        V::deinterleave2(rows + 2 * i, x, y);
        reg b = V::loadu(best + i);
        for (std::size_t c = 0; c < ncenters; ++c) {
          const reg acc =
              accum(accum(V::zero(), V::sub(x, c0[c])), V::sub(y, c1[c]));
          b = V::vmin(acc, b);
        }
        V::storeu(best + i, b);
      }
    } else {
      for (; i + W <= n; i += W) {
        const double* p = rows + dim * i;
        reg acc[kCenterBlock];
        for (std::size_t c = 0; c < ncenters; ++c) acc[c] = V::zero();
        for (std::size_t d = 0; d < dim; ++d) {
          const reg x = V::load_strided(p + d, dim);
          for (std::size_t c = 0; c < ncenters; ++c) {
            acc[c] = accum(acc[c], V::sub(x, V::set1(centers[c][d])));
          }
        }
        reg b = V::loadu(best + i);
        for (std::size_t c = 0; c < ncenters; ++c) b = V::vmin(acc[c], b);
        V::storeu(best + i, b);
      }
    }
    if (i < n) {
      if constexpr (HasMaskedTail<V>) {
        tail_multi_contig(rows + dim * i, dim, n - i, centers, ncenters,
                          best + i);
      } else {
        scalar::nearest_multi_contig(rows + dim * i, dim, n - i, centers,
                                     ncenters, best + i, kPair);
      }
    }
  }

  /// Dense m x n tile, vectorized across the b rows: lane j of a
  /// register holds b point j's running accumulator, and per coordinate
  /// the broadcast a value is subtracted in the scalar operand order
  /// (a - b). Each lane therefore performs exactly the scalar pair
  /// fold, and a tile is bit-identical to m*n scalar pair calls. The
  /// ragged column tail runs masked (AVX-512) or through the scalar
  /// pair kernel.
  static void pairwise_tile(const double* arows, const double* brows,
                            std::size_t dim, std::size_t m, std::size_t n,
                            double* out, std::size_t ldo) {
    for (std::size_t i = 0; i < m; ++i) {
      const double* a = arows + i * dim;
      double* row = out + i * ldo;
      std::size_t j = 0;
      if (dim == 2) {
        const reg a0 = V::set1(a[0]);
        const reg a1 = V::set1(a[1]);
        for (; j + W <= n; j += W) {
          reg x, y;
          V::deinterleave2(brows + 2 * j, x, y);
          V::storeu(row + j,
                    accum(accum(V::zero(), V::sub(a0, x)), V::sub(a1, y)));
        }
      } else {
        for (; j + W <= n; j += W) {
          const double* b = brows + dim * j;
          reg acc = V::zero();
          for (std::size_t d = 0; d < dim; ++d) {
            acc = accum(acc, V::sub(V::set1(a[d]), V::load_strided(b + d, dim)));
          }
          V::storeu(row + j, acc);
        }
      }
      if (j < n) {
        if constexpr (HasMaskedTail<V>) {
          const std::size_t r = n - j;
          const auto mask = V::tail_mask(r);
          reg acc;
          if (dim == 2) {
            reg x, y;
            V::maskz_deinterleave2(brows + 2 * j, r, x, y);
            acc = accum(accum(V::zero(), V::sub(V::set1(a[0]), x)),
                        V::sub(V::set1(a[1]), y));
          } else {
            acc = V::zero();
            for (std::size_t d = 0; d < dim; ++d) {
              acc = accum(acc,
                          V::sub(V::set1(a[d]),
                                 V::maskz_load_strided(brows + dim * j + d,
                                                       dim, r)));
            }
          }
          V::mask_storeu(row + j, mask, acc);
        } else {
          for (; j < n; ++j) row[j] = kPair(a, brows + dim * j, dim);
        }
      }
    }
  }

  static void nearest_multi_gather(const double* coords, std::size_t dim,
                                   const index_t* ids, std::size_t n,
                                   const double* const* centers,
                                   std::size_t ncenters, double* best) {
    std::size_t i = 0;
    const double* rows[W];
    for (; i + W <= n; i += W) {
      for (std::size_t j = 0; j < W; ++j) {
        rows[j] = coords + static_cast<std::size_t>(ids[i + j]) * dim;
      }
      reg acc[kCenterBlock];
      for (std::size_t c = 0; c < ncenters; ++c) acc[c] = V::zero();
      for (std::size_t d = 0; d < dim; ++d) {
        const reg x = V::load_rows(rows, d);
        for (std::size_t c = 0; c < ncenters; ++c) {
          acc[c] = accum(acc[c], V::sub(x, V::set1(centers[c][d])));
        }
      }
      reg b = V::loadu(best + i);
      for (std::size_t c = 0; c < ncenters; ++c) b = V::vmin(acc[c], b);
      V::storeu(best + i, b);
    }
    if (i < n) {
      if constexpr (HasMaskedTail<V>) {
        tail_multi_gather(coords, dim, ids + i, n - i, centers, ncenters,
                          best + i);
      } else {
        scalar::nearest_multi_gather(coords, dim, ids + i, n - i, centers,
                                     ncenters, best + i, kPair);
      }
    }
  }
};

/// Vectorized first-of-ties argmax: one max-fold pass (the maximum of a
/// NaN-free set is order-independent), then an equality scan for its
/// first position.
template <typename V>
std::size_t simd_argmax(const double* values, std::size_t n) {
  constexpr std::size_t W = V::kWidth;
  if (n < 2 * W) return scalar::argmax(values, n);

  typename V::reg m = V::loadu(values);
  std::size_t i = W;
  for (; i + W <= n; i += W) m = V::vmax(V::loadu(values + i), m);
  double lanes[W];
  V::storeu(lanes, m);
  double mx = lanes[0];
  for (std::size_t j = 1; j < W; ++j) {
    if (lanes[j] > mx) mx = lanes[j];
  }
  for (; i < n; ++i) {
    if (values[i] > mx) mx = values[i];
  }

  const typename V::reg mv = V::set1(mx);
  for (i = 0; i + W <= n; i += W) {
    const unsigned mask = V::cmpeq_mask(V::loadu(values + i), mv);
    if (mask != 0) return i + static_cast<std::size_t>(std::countr_zero(mask));
  }
  for (; i < n; ++i) {
    if (values[i] == mx) return i;
  }
  return scalar::argmax(values, n);  // unreachable for NaN-free input
}

/// Builds one ISA's table from the templated bodies. Single pairs do
/// not vectorize across points, so every table shares the scalar pair
/// kernels.
template <typename V>
constexpr KernelTable make_kernel_table(const char* name) {
  using L2 = SimdKernels<V, MetricKind::L2>;
  using L1 = SimdKernels<V, MetricKind::L1>;
  using Li = SimdKernels<V, MetricKind::Linf>;
  return KernelTable{
      name,
      {scalar::l2sq, scalar::l1, scalar::linf},
      {&L2::nearest_gather, &L1::nearest_gather, &Li::nearest_gather},
      {&L2::nearest_contig, &L1::nearest_contig, &Li::nearest_contig},
      {&L2::nearest_multi_gather, &L1::nearest_multi_gather,
       &Li::nearest_multi_gather},
      {&L2::nearest_multi_contig, &L1::nearest_multi_contig,
       &Li::nearest_multi_contig},
      &simd_argmax<V>,
      {&L2::pairwise_tile, &L1::pairwise_tile, &Li::pairwise_tile},
  };
}

}  // namespace kc::simd
