// Work counters for empirical complexity verification.
//
// Every distance kernel reports how many point-pair evaluations it
// performed into a thread-local counter. Tests use the counters to
// check the paper's operation counts (e.g. GON performs exactly
// (k-1)*(N-1) pair evaluations on N points); the MapReduce cluster
// samples them per simulated machine to attribute work to rounds.
//
// Counters are thread-local so that OpenMP execution attributes work
// to the machine task that performed it without synchronization.
#pragma once

#include <cstdint>

namespace kc {

/// Snapshot of the calling thread's work counters.
struct WorkCounters {
  std::uint64_t distance_evals = 0;  ///< point-pair distance computations
  std::uint64_t coord_ops = 0;       ///< coordinate-level operations (~= evals * dim)
  /// Point-pair evaluations a spatial-index scan skipped outright (the
  /// triangle-inequality bound proved the pair could not improve any
  /// result). For a pruned scan, distance_evals + pruned_pairs equals
  /// what the unpruned scan would have charged to distance_evals.
  std::uint64_t pruned_pairs = 0;

  friend WorkCounters operator-(WorkCounters a, const WorkCounters& b) {
    a.distance_evals -= b.distance_evals;
    a.coord_ops -= b.coord_ops;
    a.pruned_pairs -= b.pruned_pairs;
    return a;
  }
  friend WorkCounters operator+(WorkCounters a, const WorkCounters& b) {
    a.distance_evals += b.distance_evals;
    a.coord_ops += b.coord_ops;
    a.pruned_pairs += b.pruned_pairs;
    return a;
  }
};

namespace counters {

/// Current thread's counters (monotonically increasing).
[[nodiscard]] WorkCounters read() noexcept;

/// Adds to the current thread's counters. Called by distance kernels.
void add_distance_evals(std::uint64_t evals, std::uint64_t dim) noexcept;

/// Records point-pair evaluations skipped by a spatial-index prune.
/// Called by the cell-pruned scans (geom/spatial_index.hpp).
void add_pruned_pairs(std::uint64_t pairs) noexcept;

/// Resets the current thread's counters to zero. Intended for tests;
/// production code should difference two read() snapshots instead.
void reset() noexcept;

}  // namespace counters

/// RAII scope that measures the work performed on this thread between
/// construction and elapsed().
class WorkScope {
 public:
  WorkScope() noexcept : start_(counters::read()) {}
  [[nodiscard]] WorkCounters elapsed() const noexcept {
    return counters::read() - start_;
  }

 private:
  WorkCounters start_;
};

}  // namespace kc
