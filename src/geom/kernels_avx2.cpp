// AVX2 kernel table: 4 points per 256-bit lane group.
//
// This translation unit is compiled with -mavx2 -ffp-contract=off (see
// the top-level CMakeLists); the rest of the library keeps the portable
// baseline flags, and kernels.cpp only routes calls here after
// __builtin_cpu_supports("avx2") confirms the host can execute it.
// -mavx2 deliberately does not enable FMA, and -ffp-contract=off makes
// sure no mul+add is fused even by an overzealous optimizer — the
// bit-identical-to-scalar contract depends on it.
#if defined(__AVX2__)

#include <immintrin.h>

#include "geom/kernels_simd_impl.hpp"

namespace kc::simd {

namespace {

struct VecAvx2 {
  static constexpr std::size_t kWidth = 4;
  using reg = __m256d;

  static reg zero() { return _mm256_setzero_pd(); }
  static reg set1(double v) { return _mm256_set1_pd(v); }
  static reg loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  // vminpd/vmaxpd return the second operand on ties (and on NaN), so
  // with the candidate first these are exactly the scalar strict-<
  // and strict-> updates.
  static reg vmin(reg a, reg b) { return _mm256_min_pd(a, b); }
  static reg vmax(reg a, reg b) { return _mm256_max_pd(a, b); }
  static reg vabs(reg v) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
  }

  static reg load_strided(const double* p, std::size_t stride) {
    return _mm256_set_pd(p[3 * stride], p[2 * stride], p[stride], p[0]);
  }
  static reg load_rows(const double* const* rows, std::size_t d) {
    return _mm256_set_pd(rows[3][d], rows[2][d], rows[1][d], rows[0][d]);
  }

  /// Splits 4 consecutive dim-2 rows [x0 y0 .. x3 y3] into coordinate
  /// vectors [x0..x3], [y0..y3] with in-register shuffles.
  static void deinterleave2(const double* p, reg& x, reg& y) {
    const __m256d a = _mm256_loadu_pd(p);      // x0 y0 x1 y1
    const __m256d b = _mm256_loadu_pd(p + 4);  // x2 y2 x3 y3
    const __m256d lo = _mm256_permute2f128_pd(a, b, 0x20);  // x0 y0 x2 y2
    const __m256d hi = _mm256_permute2f128_pd(a, b, 0x31);  // x1 y1 x3 y3
    x = _mm256_unpacklo_pd(lo, hi);
    y = _mm256_unpackhi_pd(lo, hi);
  }

  static unsigned cmpeq_mask(reg a, reg b) {
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_EQ_OQ)));
  }
};

constexpr KernelTable kAvx2Table = make_kernel_table<VecAvx2>("avx2");

}  // namespace

// Internal hook for kernels.cpp's dispatch.
const KernelTable& avx2_kernel_table() noexcept { return kAvx2Table; }

}  // namespace kc::simd

#endif  // __AVX2__
