#include "geom/counters.hpp"

namespace kc {
namespace {

thread_local WorkCounters t_counters;

}  // namespace

namespace counters {

WorkCounters read() noexcept { return t_counters; }

void add_distance_evals(std::uint64_t evals, std::uint64_t dim) noexcept {
  t_counters.distance_evals += evals;
  t_counters.coord_ops += evals * dim;
}

void add_pruned_pairs(std::uint64_t pairs) noexcept {
  t_counters.pruned_pairs += pairs;
}

void reset() noexcept { t_counters = WorkCounters{}; }

}  // namespace counters
}  // namespace kc
