// AVX-512 kernel table: 8 points per 512-bit lane group.
//
// Compiled with -mavx512f -ffp-contract=off; only ever executed after
// __builtin_cpu_supports("avx512f") confirms the host. AVX-512F carries
// its own (EVEX) FMA forms, so -ffp-contract=off is load-bearing here:
// without it the compiler could legally fuse the accumulate chain and
// break bit-identity with the scalar reference.
#if defined(__AVX512F__)

#include <immintrin.h>

#include "geom/kernels_simd_impl.hpp"

namespace kc::simd {

namespace {

struct VecAvx512 {
  static constexpr std::size_t kWidth = 8;
  using reg = __m512d;

  static reg zero() { return _mm512_setzero_pd(); }
  static reg set1(double v) { return _mm512_set1_pd(v); }
  static reg loadu(const double* p) { return _mm512_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm512_storeu_pd(p, v); }
  static reg add(reg a, reg b) { return _mm512_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm512_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm512_mul_pd(a, b); }
  // Same tie/NaN semantics as vminpd/vmaxpd: second operand wins ties,
  // matching the scalar strict comparisons with the candidate first.
  static reg vmin(reg a, reg b) { return _mm512_min_pd(a, b); }
  static reg vmax(reg a, reg b) { return _mm512_max_pd(a, b); }
  static reg vabs(reg v) { return _mm512_abs_pd(v); }

  static reg load_strided(const double* p, std::size_t stride) {
    return _mm512_set_pd(p[7 * stride], p[6 * stride], p[5 * stride],
                         p[4 * stride], p[3 * stride], p[2 * stride],
                         p[stride], p[0]);
  }
  static reg load_rows(const double* const* rows, std::size_t d) {
    return _mm512_set_pd(rows[7][d], rows[6][d], rows[5][d], rows[4][d],
                         rows[3][d], rows[2][d], rows[1][d], rows[0][d]);
  }

  /// Splits 8 consecutive dim-2 rows into [x0..x7], [y0..y7] with two
  /// cross-register permutes (vpermt2pd).
  static void deinterleave2(const double* p, reg& x, reg& y) {
    const __m512d a = _mm512_loadu_pd(p);      // x0 y0 .. x3 y3
    const __m512d b = _mm512_loadu_pd(p + 8);  // x4 y4 .. x7 y7
    const __m512i ix = _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
    const __m512i iy = _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
    x = _mm512_permutex2var_pd(a, ix, b);
    y = _mm512_permutex2var_pd(a, iy, b);
  }

  static unsigned cmpeq_mask(reg a, reg b) {
    return static_cast<unsigned>(_mm512_cmp_pd_mask(a, b, _CMP_EQ_OQ));
  }

  // ---- Masked-tail hooks (kernels_simd_impl.hpp): the update_nearest
  // tails run under a lane mask instead of the scalar reference loop.
  // AVX-512 masked loads fault-suppress inactive lanes, so a tail never
  // reads past the end of the point rows or the best[] slice; inactive
  // lanes are zero-filled, computed on harmlessly, and never stored.

  using Mask = __mmask8;

  static Mask tail_mask(std::size_t r) {
    return static_cast<Mask>((1u << r) - 1u);
  }
  static reg maskz_loadu(Mask m, const double* p) {
    return _mm512_maskz_loadu_pd(m, p);
  }
  static void mask_storeu(double* p, Mask m, reg v) {
    _mm512_mask_storeu_pd(p, m, v);
  }

  /// p[j * stride] for j < r, zero above. Assembled lane by lane (a
  /// masked gather would need index vectors; the tail runs once per
  /// scan, so the shuffle through memory is irrelevant).
  static reg maskz_load_strided(const double* p, std::size_t stride,
                                std::size_t r) {
    alignas(64) double lanes[kWidth] = {};
    for (std::size_t j = 0; j < r; ++j) lanes[j] = p[j * stride];
    return _mm512_load_pd(lanes);
  }
  static reg maskz_load_rows(const double* const* rows, std::size_t d,
                             std::size_t r) {
    alignas(64) double lanes[kWidth] = {};
    for (std::size_t j = 0; j < r; ++j) lanes[j] = rows[j][d];
    return _mm512_load_pd(lanes);
  }

  /// First r dim-2 rows (2r doubles) split into x/y lanes, zero above;
  /// the two masked halves cover exactly the valid doubles.
  static void maskz_deinterleave2(const double* p, std::size_t r, reg& x,
                                  reg& y) {
    const auto lo = static_cast<Mask>(
        r >= 4 ? 0xFFu : ((1u << (2 * r)) - 1u));
    const auto hi = static_cast<Mask>(
        r > 4 ? ((1u << (2 * r - 8)) - 1u) : 0u);
    const __m512d a = _mm512_maskz_loadu_pd(lo, p);
    const __m512d b = _mm512_maskz_loadu_pd(hi, p + 8);
    const __m512i ix = _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
    const __m512i iy = _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
    x = _mm512_permutex2var_pd(a, ix, b);
    y = _mm512_permutex2var_pd(a, iy, b);
  }
};

constexpr KernelTable kAvx512Table = make_kernel_table<VecAvx512>("avx512");

}  // namespace

// Internal hook for kernels.cpp's dispatch.
const KernelTable& avx512_kernel_table() noexcept { return kAvx512Table; }

}  // namespace kc::simd

#endif  // __AVX512F__
