// Two-level parallelism glue for the distance kernels.
//
// Level one (across simulated machines) is the SimCluster's job; this
// header serves level two: splitting a *single* reducer's distance
// scan across host cores. The contract that keeps simulated metrics
// bit-identical across backends:
//
//   - the chunk partition is deterministic (exec::chunk_bounds);
//   - chunks write disjoint slices of the output, and the per-element
//     fold is min(), which is order-independent, so the result equals
//     the sequential scan bit for bit;
//   - distance-eval counting is NOT done inside the chunks: callers
//     charge the whole scan to their own thread-local counters before
//     fanning out, so per-machine work attribution is exactly what the
//     sequential backend records.
//
// When the pool is already occupied (a sharded call from inside one of
// many concurrent reducer tasks) the backend runs the body inline, so
// the two levels compose without deadlock or oversubscription.
#pragma once

#include <algorithm>
#include <cstddef>

#include "exec/backend.hpp"

namespace kc {

/// Runs body(lo, hi) over [0, n): inline when `backend` is null or the
/// range is smaller than `min_items` (sharding overhead would dominate),
/// otherwise via backend->parallel_for with chunks of at least
/// min_items / 2 so a range just over the threshold still splits.
inline void sharded_for(exec::ExecutionBackend* backend, std::size_t n,
                        std::size_t min_items,
                        const exec::ExecutionBackend::RangeBody& body) {
  if (n == 0) return;
  if (backend == nullptr || n < min_items) {
    body(0, n);
    return;
  }
  backend->parallel_for(n, std::max<std::size_t>(1, min_items / 2), body);
}

}  // namespace kc
