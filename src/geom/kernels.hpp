// Vectorized distance-kernel engine with runtime ISA dispatch.
//
// Every algorithm in the reproduction bottoms out in the per-metric
// pair loops, so those loops are implemented once per ISA — scalar,
// AVX2, AVX-512 on x86, NEON on aarch64 — as separate translation
// units compiled with per-file ISA flags (the binary stays portable;
// wide x86 code is only *executed* after `__builtin_cpu_supports` says
// the host has the instructions, and the NEON table is part of the
// aarch64 baseline).
//
// The determinism contract, inherited from the execution-backend layer:
// vectorized kernels are **bit-identical** to the scalar loops. They
// vectorize *across points* — one point per lane, accumulating over the
// coordinates sequentially — so each lane performs exactly the scalar
// operation sequence, and the SIMD translation units are compiled with
// `-ffp-contract=off` so no FMA contraction or reassociation can creep
// in. A result computed on an AVX-512 host equals one computed on a
// scalar host bit for bit, which keeps the cross-backend determinism
// tests meaningful on heterogeneous fleets.
//
// Selection happens once per process: the best compiled-in level the
// CPU supports, unless the environment sets KC_FORCE_SCALAR (any value
// other than "0"), the escape hatch for debugging and for A/B runs.
// Tests and benches can also grab a specific table via `kernels_for`.
//
// Two structural fast paths ride on top of the kernels:
//   - contiguous-range entry points (`nearest_contig` / multi): when the
//     caller's id span is an iota run — what `PointSet::all_indices`
//     produces and most call sites pass — the kernels stream PointSet
//     rows directly instead of gathering through the index array;
//   - center-blocked multi kernels: up to kCenterBlock centers are
//     folded per streaming pass over the points, cutting best[]/ids[]
//     traffic ~4x for EIM's select-round batches.
#pragma once

#include <cstddef>
#include <string_view>

#include "geom/point_set.hpp"

namespace kc::simd {

/// Number of centers folded per streaming pass by the blocked
/// update_nearest_multi kernels.
inline constexpr std::size_t kCenterBlock = 4;

/// Number of metrics (mirrors MetricKind; kernel tables are indexed by
/// static_cast<size_t>(MetricKind)).
inline constexpr std::size_t kMetricCount = 3;

/// One ISA's worth of kernels. Function pointers are indexed by metric
/// (the MetricKind enumerator value) so the per-call metric switch is a
/// single table load, hoisted out of every pair loop.
struct KernelTable {
  /// "scalar", "avx2", "avx512", "neon".
  const char* name;

  /// Comparable distance of one pair (the scalar unit; shared by every
  /// table — single pairs do not vectorize across points).
  double (*pair[kMetricCount])(const double* a, const double* b,
                               std::size_t dim);

  /// best[i] = min(best[i], metric(coords + ids[i]*dim, center)).
  void (*nearest_gather[kMetricCount])(const double* coords, std::size_t dim,
                                       const index_t* ids, std::size_t n,
                                       const double* center, double* best);

  /// Contiguous fast path: rows points at the first of n consecutive
  /// point rows; best[i] = min(best[i], metric(rows + i*dim, center)).
  void (*nearest_contig[kMetricCount])(const double* rows, std::size_t dim,
                                       std::size_t n, const double* center,
                                       double* best);

  /// Center-blocked variants: centers[0..ncenters) are folded into best
  /// in order during one pass over the points. ncenters must be in
  /// [1, kCenterBlock]; callers tile larger batches.
  void (*nearest_multi_gather[kMetricCount])(
      const double* coords, std::size_t dim, const index_t* ids, std::size_t n,
      const double* const* centers, std::size_t ncenters, double* best);
  void (*nearest_multi_contig[kMetricCount])(
      const double* rows, std::size_t dim, std::size_t n,
      const double* const* centers, std::size_t ncenters, double* best);

  /// Position of the maximum element, first on ties; n must be positive
  /// and values must be NaN-free (distance arrays always are).
  std::size_t (*argmax)(const double* values, std::size_t n);

  /// Dense m x n pairwise tile: out[i * ldo + j] = metric(a_i, b_j) for
  /// the m contiguous rows at `arows` against the n contiguous rows at
  /// `brows` (ldo is out's leading dimension, >= n). The building block
  /// of the tile-streaming pairwise engine: callers cut the full
  /// pairwise problem into cache-sized tiles and consume each tile
  /// before the next is computed, so no n^2 buffer ever exists. SIMD
  /// variants vectorize across the b rows (one b point per lane) with
  /// the scalar coordinate fold per lane — bit-identical to the scalar
  /// per-pair loop.
  void (*pairwise_tile[kMetricCount])(const double* arows, const double* brows,
                                      std::size_t dim, std::size_t m,
                                      std::size_t n, double* out,
                                      std::size_t ldo);
};

enum class IsaLevel {
  Scalar,
  Avx2,
  Avx512,
  Neon,
};

[[nodiscard]] std::string_view to_string(IsaLevel level) noexcept;

/// True when this binary contains the level's translation unit (the
/// compiler supported the per-file ISA flag at build time).
[[nodiscard]] bool isa_compiled(IsaLevel level) noexcept;

/// True when the host CPU can execute the level's instructions.
[[nodiscard]] bool isa_supported(IsaLevel level) noexcept;

/// The level's kernel table, or nullptr when not compiled in. Intended
/// for the equivalence tests and the kernel microbenchmarks; algorithm
/// code goes through active_kernels().
[[nodiscard]] const KernelTable* kernels_for(IsaLevel level) noexcept;

/// True when the KC_FORCE_SCALAR environment variable requests the
/// scalar kernels (set and not "0"). Read once per process.
[[nodiscard]] bool force_scalar_requested() noexcept;

/// The process-wide selection: the best compiled-in level the CPU
/// supports, or Scalar under KC_FORCE_SCALAR. Decided once, on first
/// call.
[[nodiscard]] IsaLevel active_level() noexcept;
[[nodiscard]] const KernelTable& active_kernels() noexcept;

/// True when `ids` is a contiguous ascending run (ids[i] == ids[0] + i),
/// i.e. the gather indirection can be bypassed. O(n), but trivially
/// cheap next to the O(n * dim) scan it unlocks; empty spans count as
/// contiguous.
[[nodiscard]] bool is_contiguous_run(const index_t* ids,
                                     std::size_t n) noexcept;

}  // namespace kc::simd
