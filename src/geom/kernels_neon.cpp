// ARM NEON (AdvSIMD) kernel table: 2 points per 128-bit register.
//
// AdvSIMD is part of the aarch64 baseline, so this translation unit
// needs no extra ISA flag — it is compiled whenever the target is
// aarch64 (CMake defines KC_HAVE_NEON_TU) and the whole file is
// additionally self-gated on __aarch64__ so an x86 build that globs it
// stays empty. It is still compiled with an explicit -ffp-contract=off
// source property: aarch64 has fused multiply-add (fmla) and the
// bit-identical-to-scalar contract forbids contraction here exactly as
// it does in the AVX TUs.
//
// The one semantic trap is min/max: vminq_f64/vmaxq_f64 implement IEEE
// minNum/maxNum (NaN is *dropped*, and the tie behavior differs from
// x86's vminpd), which does not reproduce the scalar strict-< update.
// The contract needs "second operand wins ties and NaN", so vmin/vmax
// are built from an explicit compare-and-select instead.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "geom/kernels_simd_impl.hpp"

namespace kc::simd {

namespace {

struct VecNeon {
  static constexpr std::size_t kWidth = 2;
  using reg = float64x2_t;

  static reg zero() { return vdupq_n_f64(0.0); }
  static reg set1(double v) { return vdupq_n_f64(v); }
  static reg loadu(const double* p) { return vld1q_f64(p); }
  static void storeu(double* p, reg v) { vst1q_f64(p, v); }
  static reg add(reg a, reg b) { return vaddq_f64(a, b); }
  static reg sub(reg a, reg b) { return vsubq_f64(a, b); }
  static reg mul(reg a, reg b) { return vmulq_f64(a, b); }
  // Select a only where a < b (resp. a > b): b wins ties and NaN, the
  // same per-lane behavior as x86 vminpd/vmaxpd with the candidate
  // first, i.e. exactly the scalar strict-< / strict-> updates.
  static reg vmin(reg a, reg b) { return vbslq_f64(vcltq_f64(a, b), a, b); }
  static reg vmax(reg a, reg b) { return vbslq_f64(vcgtq_f64(a, b), a, b); }
  static reg vabs(reg v) { return vabsq_f64(v); }

  static reg load_strided(const double* p, std::size_t stride) {
    return vcombine_f64(vld1_f64(p), vld1_f64(p + stride));
  }
  static reg load_rows(const double* const* rows, std::size_t d) {
    return vcombine_f64(vld1_f64(rows[0] + d), vld1_f64(rows[1] + d));
  }

  /// Splits 2 consecutive dim-2 rows [x0 y0 x1 y1] into coordinate
  /// vectors [x0 x1], [y0 y1] with one structured load.
  static void deinterleave2(const double* p, reg& x, reg& y) {
    const float64x2x2_t t = vld2q_f64(p);
    x = t.val[0];
    y = t.val[1];
  }

  static unsigned cmpeq_mask(reg a, reg b) {
    const uint64x2_t eq = vceqq_f64(a, b);
    return static_cast<unsigned>((vgetq_lane_u64(eq, 0) & 1u) |
                                 ((vgetq_lane_u64(eq, 1) & 1u) << 1));
  }
};

constexpr KernelTable kNeonTable = make_kernel_table<VecNeon>("neon");

}  // namespace

// Internal hook for kernels.cpp's dispatch.
const KernelTable& neon_kernel_table() noexcept { return kNeonTable; }

}  // namespace kc::simd

#endif  // __aarch64__
