#include "geom/distance.hpp"

#include <cmath>

#include "geom/parallel.hpp"

namespace kc {

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::L2: return "L2";
    case MetricKind::L1: return "L1";
    case MetricKind::Linf: return "Linf";
  }
  return "?";
}

namespace {

// Per-metric pair kernels. The dim-2/3 specializations matter: the
// paper's synthetic data is 2-3 dimensional and the generic loop costs
// roughly 2x on those shapes.

[[nodiscard]] inline double l2sq(const double* a, const double* b,
                                 std::size_t dim) noexcept {
  if (dim == 2) {
    const double d0 = a[0] - b[0];
    const double d1 = a[1] - b[1];
    return d0 * d0 + d1 * d1;
  }
  if (dim == 3) {
    const double d0 = a[0] - b[0];
    const double d1 = a[1] - b[1];
    const double d2 = a[2] - b[2];
    return d0 * d0 + d1 * d1 + d2 * d2;
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

[[nodiscard]] inline double l1(const double* a, const double* b,
                               std::size_t dim) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

[[nodiscard]] inline double linf(const double* a, const double* b,
                                 std::size_t dim) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = std::abs(a[i] - b[i]);
    if (d > acc) acc = d;
  }
  return acc;
}

template <typename Kernel>
void update_nearest_loop(const PointSet& ps, std::span<const index_t> ids,
                         index_t center, std::span<double> best,
                         Kernel&& kernel) noexcept {
  const double* c = ps.data(center);
  const std::size_t dim = ps.dim();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const double d = kernel(ps.data(ids[i]), c, dim);
    if (d < best[i]) best[i] = d;
  }
}

}  // namespace

double DistanceOracle::comparable(index_t a, index_t b) const noexcept {
  counters::add_distance_evals(1, dim());
  const double* pa = points_->data(a);
  const double* pb = points_->data(b);
  switch (kind_) {
    case MetricKind::L2: return l2sq(pa, pb, dim());
    case MetricKind::L1: return l1(pa, pb, dim());
    case MetricKind::Linf: return linf(pa, pb, dim());
  }
  return 0.0;
}

double DistanceOracle::to_reported(double comp) const noexcept {
  return kind_ == MetricKind::L2 ? std::sqrt(comp) : comp;
}

double DistanceOracle::from_reported(double dist) const noexcept {
  return kind_ == MetricKind::L2 ? dist * dist : dist;
}

void DistanceOracle::update_nearest_span(std::span<const index_t> ids,
                                         index_t center,
                                         std::span<double> best) const noexcept {
  switch (kind_) {
    case MetricKind::L2:
      update_nearest_loop(*points_, ids, center, best,
                          [](const double* a, const double* b, std::size_t d) {
                            return l2sq(a, b, d);
                          });
      return;
    case MetricKind::L1:
      update_nearest_loop(*points_, ids, center, best,
                          [](const double* a, const double* b, std::size_t d) {
                            return l1(a, b, d);
                          });
      return;
    case MetricKind::Linf:
      update_nearest_loop(*points_, ids, center, best,
                          [](const double* a, const double* b, std::size_t d) {
                            return linf(a, b, d);
                          });
      return;
  }
}

void DistanceOracle::update_nearest(std::span<const index_t> ids,
                                    index_t center,
                                    std::span<double> best) const noexcept {
  // The whole scan is charged to the calling thread up front, so a
  // sharded execution attributes work exactly as a sequential one.
  counters::add_distance_evals(ids.size(), dim());
  if (exec_ != nullptr && ids.size() >= shard_min_) {
    sharded_for(exec_, ids.size(), shard_min_,
                [&](std::size_t lo, std::size_t hi) {
                  update_nearest_span(ids.subspan(lo, hi - lo), center,
                                      best.subspan(lo, hi - lo));
                });
    return;
  }
  update_nearest_span(ids, center, best);
}

void DistanceOracle::update_nearest_multi(std::span<const index_t> ids,
                                          std::span<const index_t> centers,
                                          std::span<double> best) const noexcept {
  // Center-major order: each pass streams the ids contiguously while the
  // center stays in registers. For the batch sizes EIM produces
  // (thousands of new samples) this is memory-bandwidth optimal.
  // Shard on *total* work (ids x centers pairs): tall-thin batches —
  // few ids against many new centers, EIM's select round shape — carry
  // as many evals as a wide single-center scan. The grain shrinks with
  // the center count so each chunk still does ~shard_min_/2 pair evals.
  if (exec_ != nullptr && !centers.empty() && ids.size() > 1 &&
      ids.size() * centers.size() >= shard_min_) {
    // One fan-out for the whole batch; each chunk keeps the
    // center-major order over its slice. Same min-fold, same result.
    counters::add_distance_evals(ids.size() * centers.size(), dim());
    const std::size_t grain =
        std::max<std::size_t>(1, shard_min_ / 2 / centers.size());
    exec_->parallel_for(ids.size(), grain,
                        [&](std::size_t lo, std::size_t hi) {
                          for (const index_t c : centers) {
                            update_nearest_span(ids.subspan(lo, hi - lo), c,
                                                best.subspan(lo, hi - lo));
                          }
                        });
    return;
  }
  for (const index_t c : centers) update_nearest(ids, c, best);
}

double DistanceOracle::nearest_comparable(
    index_t p, std::span<const index_t> centers) const noexcept {
  double best = kInfDist;
  for (const index_t c : centers) {
    const double d = comparable(p, c);
    if (d < best) best = d;
  }
  return best;
}

std::size_t DistanceOracle::nearest_center(
    index_t p, std::span<const index_t> centers) const noexcept {
  double best = kInfDist;
  std::size_t best_pos = centers.size();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const double d = comparable(p, centers[i]);
    if (d < best) {
      best = d;
      best_pos = i;
    }
  }
  return best_pos;
}

std::vector<double> DistanceOracle::pairwise_comparable(
    std::span<const index_t> ids) const {
  const std::size_t n = ids.size();
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = comparable(ids[i], ids[j]);
      matrix[i * n + j] = d;
      matrix[j * n + i] = d;
    }
  }
  return matrix;
}

std::size_t argmax(std::span<const double> values) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

}  // namespace kc
