#include "geom/distance.hpp"

#include <algorithm>
#include <cmath>

#include "geom/parallel.hpp"

namespace kc {

// The kernel tables are indexed by MetricKind's enumerator values.
static_assert(static_cast<std::size_t>(MetricKind::L2) == 0 &&
              static_cast<std::size_t>(MetricKind::L1) == 1 &&
              static_cast<std::size_t>(MetricKind::Linf) == 2 &&
              simd::kMetricCount == 3);

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::L2: return "L2";
    case MetricKind::L1: return "L1";
    case MetricKind::Linf: return "Linf";
  }
  return "?";
}

double DistanceOracle::comparable(index_t a, index_t b) const noexcept {
  counters::add_distance_evals(1, dim());
  return kernels_->pair[metric_index()](points_->data(a), points_->data(b),
                                        dim());
}

double DistanceOracle::to_reported(double comp) const noexcept {
  return kind_ == MetricKind::L2 ? std::sqrt(comp) : comp;
}

double DistanceOracle::from_reported(double dist) const noexcept {
  return kind_ == MetricKind::L2 ? dist * dist : dist;
}

void DistanceOracle::update_nearest(std::span<const index_t> ids,
                                    index_t center,
                                    std::span<double> best) const noexcept {
  // The whole scan is charged to the calling thread up front, so a
  // sharded execution attributes work exactly as a sequential one.
  counters::add_distance_evals(ids.size(), dim());
  if (ids.empty()) return;

  // Iota id spans — what all_indices() produces and most call sites
  // pass — skip the gather indirection and stream PointSet rows.
  const bool contig = simd::is_contiguous_run(ids.data(), ids.size());
  const std::size_t m = metric_index();
  const std::size_t d = dim();
  const double* c = points_->data(center);
  const auto run = [&](std::size_t lo, std::size_t hi) {
    if (contig) {
      kernels_->nearest_contig[m](points_->data(ids[lo]), d, hi - lo, c,
                                  best.data() + lo);
    } else {
      kernels_->nearest_gather[m](points_->raw().data(), d, ids.data() + lo,
                                  hi - lo, c, best.data() + lo);
    }
  };
  if (exec_ != nullptr && ids.size() >= shard_min_) {
    sharded_for(exec_, ids.size(), shard_min_, run);
    return;
  }
  run(0, ids.size());
}

void DistanceOracle::update_nearest_multi(std::span<const index_t> ids,
                                          std::span<const index_t> centers,
                                          std::span<double> best) const noexcept {
  if (ids.empty() || centers.empty()) return;
  // One bulk charge for the whole ids x centers batch.
  counters::add_distance_evals(ids.size() * centers.size(), dim());

  const bool contig = simd::is_contiguous_run(ids.data(), ids.size());
  const std::size_t m = metric_index();
  const std::size_t d = dim();
  // Per chunk, centers are tiled in blocks of kCenterBlock: each
  // streaming pass over the chunk folds a whole block per load of
  // best/ids. Fold order stays center-major (block by block, in-block
  // in order), which is bit-identical to repeated update_nearest.
  const auto run = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t cb = 0; cb < centers.size(); cb += simd::kCenterBlock) {
      const std::size_t nc = std::min(simd::kCenterBlock, centers.size() - cb);
      const double* cptr[simd::kCenterBlock];
      for (std::size_t j = 0; j < nc; ++j) {
        cptr[j] = points_->data(centers[cb + j]);
      }
      if (contig) {
        kernels_->nearest_multi_contig[m](points_->data(ids[lo]), d, hi - lo,
                                          cptr, nc, best.data() + lo);
      } else {
        kernels_->nearest_multi_gather[m](points_->raw().data(), d,
                                          ids.data() + lo, hi - lo, cptr, nc,
                                          best.data() + lo);
      }
    }
  };

  // Shard on *total* work (ids x centers pairs): tall-thin batches —
  // few ids against many new centers, EIM's select round shape — carry
  // as many evals as a wide single-center scan. The predicate divides
  // instead of multiplying so it cannot overflow; the grain shrinks
  // with the center count so each chunk still does ~shard_min_/2 pair
  // evals.
  if (exec_ != nullptr && ids.size() > 1 &&
      ids.size() > shard_min_ / centers.size()) {
    const std::size_t grain =
        std::max<std::size_t>(1, shard_min_ / 2 / centers.size());
    exec_->parallel_for(ids.size(), grain, run);
    return;
  }
  run(0, ids.size());
}

double DistanceOracle::nearest_comparable(
    index_t p, std::span<const index_t> centers) const noexcept {
  double best = kInfDist;
  for (const index_t c : centers) {
    const double d = comparable(p, c);
    if (d < best) best = d;
  }
  return best;
}

std::size_t DistanceOracle::nearest_center(
    index_t p, std::span<const index_t> centers) const noexcept {
  double best = kInfDist;
  std::size_t best_pos = centers.size();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const double d = comparable(p, centers[i]);
    if (d < best) {
      best = d;
      best_pos = i;
    }
  }
  return best_pos;
}

std::vector<double> DistanceOracle::pairwise_comparable(
    std::span<const index_t> ids) const {
  const std::size_t n = ids.size();
  std::vector<double> matrix(n * n, 0.0);
  if (n < 2) return matrix;
  // Bulk-kernel accounting: one charge for the whole O(n^2) scan and
  // one metric dispatch, hoisted out of the pair loop.
  counters::add_distance_evals(n * (n - 1) / 2, dim());
  const auto pair = kernels_->pair[metric_index()];
  const std::size_t d = dim();
  for (std::size_t i = 0; i < n; ++i) {
    const double* pi = points_->data(ids[i]);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = pair(pi, points_->data(ids[j]), d);
      matrix[i * n + j] = v;
      matrix[j * n + i] = v;
    }
  }
  return matrix;
}

std::size_t argmax(std::span<const double> values) noexcept {
  return simd::active_kernels().argmax(values.data(), values.size());
}

}  // namespace kc
