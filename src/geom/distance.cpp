#include "geom/distance.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "exec/chunk_context.hpp"
#include "geom/parallel.hpp"
#include "geom/spatial_index.hpp"

namespace kc {

namespace {

/// Drives `run` over [0, n) in gate chunks of ~exec::kGateEvals pair
/// evaluations, charging the context's budget and polling its token
/// before each chunk. `fan_out` additionally shards the gated body
/// across the backend (the gates subdivide whatever ranges the backend
/// hands out, so granularity is backend-independent). A tripped stop
/// condition makes every not-yet-started gate chunk a no-op — on all
/// shards, via the shared flag — and is returned to the caller, which
/// raises the matching error on its own thread.
[[nodiscard]] exec::StopReason gated_scan(
    const exec::ChunkContext& ctx, exec::ExecutionBackend* backend,
    bool fan_out, std::size_t n, std::size_t shard_grain,
    std::uint64_t evals_per_item,
    const exec::ExecutionBackend::RangeBody& run) {
  const std::size_t gate = std::max<std::size_t>(
      1, static_cast<std::size_t>(exec::kGateEvals /
                                  std::max<std::uint64_t>(evals_per_item, 1)));
  std::atomic<int> stop{0};
  const exec::ExecutionBackend::RangeBody gated = [&](std::size_t lo,
                                                      std::size_t hi) {
    for (std::size_t pos = lo; pos < hi;) {
      // Relaxed stop protocol: the flag carries a tiny enum with no
      // dependent data, and the backend's join is the real barrier
      // before the final read — staleness only costs one gate chunk.
      if (stop.load(std::memory_order_relaxed) != 0) return;
      const std::size_t end = std::min(hi, pos + gate);
      const exec::StopReason reason =
          ctx.charge(static_cast<std::uint64_t>(end - pos) * evals_per_item);
      if (reason != exec::StopReason::None) {
        stop.store(static_cast<int>(reason),
                   std::memory_order_relaxed);  // see stop note above
        return;
      }
      run(pos, end);
      pos = end;
    }
  };
  if (fan_out && backend != nullptr) {
    backend->parallel_for(n, shard_grain, gated);
  } else {
    gated(0, n);
  }
  // Relaxed: parallel_for joined (or the lambda ran inline), so every
  // store to `stop` already happened-before this read.
  return static_cast<exec::StopReason>(stop.load(std::memory_order_relaxed));
}

/// True when the oracle should run this scan through the gated driver.
[[nodiscard]] bool gating(const exec::ChunkContext* ctx) noexcept {
  return ctx != nullptr && ctx->armed();
}

/// Max over a non-empty range. Four independent accumulator chains keep
/// the loop ILP-bound (one maxsd per chain per cycle) instead of
/// serialized on a single compare — this runs after every surviving
/// center block of a pruned scan, so it sits on the hot path.
[[nodiscard]] double max_of(const double* v, std::size_t n) noexcept {
  double m0 = v[0], m1 = v[0], m2 = v[0], m3 = v[0];
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    m0 = v[j] > m0 ? v[j] : m0;
    m1 = v[j + 1] > m1 ? v[j + 1] : m1;
    m2 = v[j + 2] > m2 ? v[j + 2] : m2;
    m3 = v[j + 3] > m3 ? v[j + 3] : m3;
  }
  for (; j < n; ++j) m0 = v[j] > m0 ? v[j] : m0;
  m0 = m1 > m0 ? m1 : m0;
  m2 = m3 > m2 ? m3 : m2;
  return m2 > m0 ? m2 : m0;
}

}  // namespace

// The kernel tables are indexed by MetricKind's enumerator values.
static_assert(static_cast<std::size_t>(MetricKind::L2) == 0 &&
              static_cast<std::size_t>(MetricKind::L1) == 1 &&
              static_cast<std::size_t>(MetricKind::Linf) == 2 &&
              simd::kMetricCount == 3);

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::L2: return "L2";
    case MetricKind::L1: return "L1";
    case MetricKind::Linf: return "Linf";
  }
  return "?";
}

std::string_view to_string(PruneMode mode) noexcept {
  switch (mode) {
    case PruneMode::Off: return "off";
    case PruneMode::Auto: return "auto";
    case PruneMode::On: return "on";
  }
  return "?";
}

bool DistanceOracle::pruning_enabled() const noexcept {
  return index_ != nullptr && prune_mode_ != PruneMode::Off &&
         !force_no_prune_requested();
}

bool DistanceOracle::ordered_scans_available() const noexcept {
  return pruning_enabled() && &index_->points() == points_ &&
         points_->size() > 0;
}

void DistanceOracle::update_nearest_ordered(index_t center,
                                            std::span<double> best_ordered,
                                            PruneCache* cache) const {
  if (!ordered_scans_available() || best_ordered.size() != points_->size()) {
    throw std::logic_error(
        "update_nearest_ordered: no matching spatial index bound (check "
        "ordered_scans_available())");
  }
  const index_t one[1] = {center};
  pruned_scan({one, 1}, best_ordered, cache, /*ordered=*/true,
              "update_nearest_ordered");
}

void DistanceOracle::update_nearest_multi_ordered(
    std::span<const index_t> centers, std::span<double> best_ordered,
    PruneCache* cache) const {
  if (!ordered_scans_available() || best_ordered.size() != points_->size()) {
    throw std::logic_error(
        "update_nearest_multi_ordered: no matching spatial index bound "
        "(check ordered_scans_available())");
  }
  if (centers.empty()) return;
  pruned_scan(centers, best_ordered, cache, /*ordered=*/true,
              "update_nearest_multi_ordered");
}

bool DistanceOracle::prune_applicable(
    std::span<const index_t> ids) const noexcept {
  return pruning_enabled() && &index_->points() == points_ && !ids.empty() &&
         ids.size() == points_->size() && ids.front() == 0 &&
         simd::is_contiguous_run(ids.data(), ids.size());
}

double DistanceOracle::comparable(index_t a, index_t b) const noexcept {
  counters::add_distance_evals(1, dim());
  return kernels_->pair[metric_index()](points_->data(a), points_->data(b),
                                        dim());
}

double DistanceOracle::to_reported(double comp) const noexcept {
  return kind_ == MetricKind::L2 ? std::sqrt(comp) : comp;
}

double DistanceOracle::from_reported(double dist) const noexcept {
  return kind_ == MetricKind::L2 ? dist * dist : dist;
}

void DistanceOracle::pruned_scan(std::span<const index_t> centers,
                                 std::span<double> best, PruneCache* cache,
                                 bool ordered, std::string_view where) const {
  const SpatialIndex& idx = *index_;
  const std::size_t n = points_->size();
  const std::size_t d = dim();
  const std::size_t k = centers.size();
  const std::size_t ncells = idx.cell_count();
  const std::size_t m = metric_index();

  // Per-cell upper bounds: cached across calls when the caller supplies
  // a primed cache for this index, otherwise one O(n) fold over best.
  // The invariant both paths establish — ub[c] >= best[i] for every
  // member i of c — is what makes a skip a provable no-op, and min-folds
  // only ever lower best, so a bound can go stale large (less pruning)
  // but never stale small.
  std::vector<double> local_ub;
  std::span<double> ub;
  const bool cached = cache != nullptr && cache->index() == index_;
  if (cached) {
    ub = cache->bounds();
  } else {
    local_ub.assign(ncells, 0.0);
    ub = local_ub;
  }
  bool all_inf = false;
  if (!cached || !cache->primed()) {
    if (ordered) {
      // Fresh scans (the GON first sweep, cold select rounds) are all
      // infinite — one branch-free vectorizable pass detects that and
      // skips the per-cell maxima entirely.
      all_inf = n > 0;
      for (std::size_t i = 0; i < n && all_inf; i += 1024) {
        const std::size_t e = std::min(n, i + 1024);
        bool chunk_inf = true;
        for (std::size_t j = i; j < e; ++j) {
          chunk_inf = chunk_inf && best[j] == kInfDist;
        }
        all_inf = chunk_inf;
      }
      if (all_inf) {
        std::fill(ub.begin(), ub.end(), kInfDist);
      } else {
        // Ordered best: each cell is a contiguous slice, so priming is
        // a straight max per slice.
        for (std::size_t c = 0; c < ncells; ++c) {
          const std::size_t sz = idx.cell_size(c);
          ub[c] = sz > 0 ? max_of(best.data() + idx.cell_begin(c), sz) : 0.0;
        }
      }
    } else {
      std::fill(ub.begin(), ub.end(), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        double& u = ub[idx.cell_of(static_cast<index_t>(i))];
        if (best[i] > u) u = best[i];
      }
    }
    if (cached) cache->set_primed();
  }

  // Cold ordered scans (best all infinite, the GON first sweep and the
  // EIM cold select round): no bound can prune the first center block
  // anywhere, so fold it over whole contiguous row ranges at full
  // blocked-kernel speed instead of dispatching cell by cell. Later
  // blocks then prune against the bounds this pass leaves behind.
  const std::size_t nb0 =
      ordered && all_inf ? std::min(k, simd::kCenterBlock) : 0;

  const bool gate = gating(ctx_);
  std::atomic<int> stop{0};
  std::atomic<std::uint64_t> evals_total{0};
  std::atomic<std::uint64_t> pruned_total{0};

  const exec::ExecutionBackend::RangeBody body = [&](std::size_t clo,
                                                     std::size_t chi) {
    std::vector<double> tmp;
    const double* cptr[simd::kCenterBlock];
    std::uint64_t chunk_evals = 0;
    std::uint64_t chunk_pruned = 0;
    // Budget credit is pre-bought in ~kGateEvals batches (one atomic per
    // gate, like pairwise_comparable) and the unused tail refunded at
    // chunk end, so a completed scan charges exactly what it evaluated.
    std::uint64_t credit = 0;
    // Pairs dispatched since the last token poll, counting pruned pairs
    // too: a scan that prunes nearly everything does little kernel work
    // but must still notice a cancel within ~one gate of bound tests.
    std::uint64_t since_poll = 0;
    const auto pay = [&](std::uint64_t evals) {
      if (!gate) return true;
      since_poll += evals;
      if (credit >= evals) {
        credit -= evals;
        return true;
      }
      const std::uint64_t need = evals - credit;
      const std::uint64_t batch = std::max(need, exec::kGateEvals);
      exec::StopReason reason = ctx_->charge(batch);
      if (reason == exec::StopReason::None) {
        credit += batch - evals;
        return true;
      }
      if (reason == exec::StopReason::BudgetExhausted && batch != need) {
        // The gate-sized pre-buy overshot the budget's remainder; the
        // exact need may still fit — only an actual shortfall stops the
        // scan, so the budget drains to within one sub-call of empty.
        reason = ctx_->charge(need);
        if (reason == exec::StopReason::None) {
          credit = 0;
          return true;
        }
      }
      // Relaxed: same stop protocol as gated_scan — the fan-out join
      // orders the flag before the final read.
      stop.store(static_cast<int>(reason), std::memory_order_relaxed);
      return false;
    };
    bool stopped = false;

    // Global pass for cold ordered scans: the chunk's cells occupy one
    // contiguous row range, and best is in the same order, so the first
    // block streams it exactly like the unpruned blocked kernel.
    if (nb0 > 0) {
      for (std::size_t j = 0; j < nb0; ++j) {
        cptr[j] = points_->data(centers[j]);
      }
      const std::size_t row_lo = idx.cell_begin(clo);
      const std::size_t row_hi = idx.cell_begin(chi);
      const std::size_t rgate = std::max<std::size_t>(
          1, static_cast<std::size_t>(exec::kGateEvals) / nb0);
      for (std::size_t r = row_lo; r < row_hi && !stopped; r += rgate) {
        const std::size_t re = std::min(row_hi, r + rgate);
        if (!pay(static_cast<std::uint64_t>(re - r) * nb0)) {
          stopped = true;
          break;
        }
        kernels_->nearest_multi_contig[m](idx.rows() + r * d, d, re - r, cptr,
                                          nb0, best.data() + r);
        chunk_evals += static_cast<std::uint64_t>(re - r) * nb0;
      }
    }

    // After a global pass that covered every center, the per-cell walk
    // only has bounds to refresh — and only a cache outlives the scan.
    const bool cell_walk = !(nb0 >= k && !cached);
    for (std::size_t c = clo; c < chi && !stopped && cell_walk; ++c) {
      if (gate && stop.load(std::memory_order_relaxed) != 0) break;
      const std::size_t base = idx.cell_begin(c);
      const std::size_t sz = idx.cell_size(c);
      // Ordered scans fold straight into the caller's slice; id-domain
      // scans stage through tmp (gather/scatter around the kernel).
      double* tmpp = ordered ? best.data() + base : nullptr;
      double ubc;
      if (nb0 > 0) {
        // Seed the bound from the global pass's results.
        ubc = max_of(tmpp, sz);
      } else {
        ubc = ub[c];
      }
      bool gathered = false;
      std::size_t pos = nb0;
      while (pos < k && !stopped) {
        // Next block of surviving centers, in ascending center order —
        // the same global fold order as the unpruned scan, so skipped
        // centers (provable no-ops) are the only difference.
        std::size_t nb = 0;
        while (pos < k && nb < simd::kCenterBlock) {
          const double* cen = points_->data(centers[pos]);
          if (idx.cell_mindist_comparable(kind_, cen, c) >= ubc) {
            chunk_pruned += sz;
            since_poll += sz;
          } else {
            cptr[nb++] = cen;
          }
          ++pos;
        }
        if (nb == 0) continue;
        if (!ordered && !gathered) {
          tmp.resize(sz);
          const index_t* ord = idx.order().data() + base;
          for (std::size_t j = 0; j < sz; ++j) tmp[j] = best[ord[j]];
          tmpp = tmp.data();
        }
        gathered = true;
        // Giant cells (duplicate-heavy data) are gated in row
        // sub-ranges so one kernel call never overruns a stop by more
        // than ~kGateEvals pairs.
        const std::size_t rgate = std::max<std::size_t>(
            1, static_cast<std::size_t>(exec::kGateEvals) / nb);
        for (std::size_t r = 0; r < sz; r += rgate) {
          const std::size_t re = std::min(sz, r + rgate);
          if (!pay(static_cast<std::uint64_t>(re - r) * nb)) {
            stopped = true;
            break;
          }
          kernels_->nearest_multi_contig[m](idx.rows() + (base + r) * d, d,
                                            re - r, cptr, nb, tmpp + r);
          chunk_evals += static_cast<std::uint64_t>(re - r) * nb;
        }
        if (stopped) break;
        // Refresh the bound from the just-tightened values so the
        // remaining centers prune against them — this is what lets a
        // fresh best == kInfDist scan (ub starts infinite) prune every
        // block after the first. After the last block the max only
        // matters when the bounds outlive this scan in a cache.
        if (pos < k || cached) ubc = max_of(tmpp, sz);
      }
      if (!stopped && (ordered || gathered)) {
        if (!ordered && gathered) {
          const index_t* ord = idx.order().data() + base;
          for (std::size_t j = 0; j < sz; ++j) best[ord[j]] = tmp[j];
        }
        ub[c] = ubc;
      }
      if (gate && since_poll >= exec::kGateEvals) {
        since_poll = 0;
        const exec::StopReason reason = ctx_->check();
        if (reason != exec::StopReason::None) {
          stop.store(static_cast<int>(reason),
                     std::memory_order_relaxed);  // see stop note above
          stopped = true;
        }
      }
    }
    if (gate && credit > 0 && ctx_->budget != nullptr) {
      ctx_->budget->credit(credit);
    }
    // Relaxed: per-chunk tallies merged after the join below; only the
    // sum matters, not the order of the additions.
    evals_total.fetch_add(chunk_evals, std::memory_order_relaxed);
    pruned_total.fetch_add(chunk_pruned, std::memory_order_relaxed);
  };

  // Fan out over *cell* ranges (cells own disjoint slices of best and
  // ub, so chunks never share state); the grain targets the same
  // ~shard_min_/2 pair evaluations per chunk as the unpruned scans.
  const bool fan_out =
      exec_ != nullptr && k > 0 && n > shard_min_ / k && ncells > 1;
  if (fan_out) {
    const std::size_t grain = std::max<std::size_t>(
        1, (shard_min_ / 2) * ncells / std::max<std::size_t>(1, n * k));
    exec_->parallel_for(ncells, grain, body);
  } else {
    body(0, ncells);
  }

  // Counters reflect the split that actually happened: evaluated pairs
  // plus pruned pairs sum to the n*k an unpruned scan would charge
  // (when the scan runs to completion).
  // Relaxed loads: the fan-out joined above, so all chunk stores
  // happened-before these reads.
  counters::add_distance_evals(evals_total.load(std::memory_order_relaxed),
                               d);
  counters::add_pruned_pairs(pruned_total.load(std::memory_order_relaxed));

  const auto reason = static_cast<exec::StopReason>(
      stop.load(std::memory_order_relaxed));  // joined above
  if (reason != exec::StopReason::None) {
    exec::ChunkContext::raise(reason, where);
  }
}

void DistanceOracle::update_nearest(std::span<const index_t> ids,
                                    index_t center, std::span<double> best,
                                    PruneCache* cache) const {
  if (prune_applicable(ids)) {
    const index_t one[1] = {center};
    pruned_scan({one, 1}, best, cache, /*ordered=*/false, "update_nearest");
    return;
  }
  if (cache != nullptr) cache->invalidate();
  // The whole scan is charged to the calling thread up front, so a
  // sharded execution attributes work exactly as a sequential one.
  counters::add_distance_evals(ids.size(), dim());
  if (ids.empty()) return;

  // Iota id spans — what all_indices() produces and most call sites
  // pass — skip the gather indirection and stream PointSet rows.
  const bool contig = simd::is_contiguous_run(ids.data(), ids.size());
  const std::size_t m = metric_index();
  const std::size_t d = dim();
  const double* c = points_->data(center);
  const auto run = [&](std::size_t lo, std::size_t hi) {
    if (contig) {
      kernels_->nearest_contig[m](points_->data(ids[lo]), d, hi - lo, c,
                                  best.data() + lo);
    } else {
      kernels_->nearest_gather[m](points_->raw().data(), d, ids.data() + lo,
                                  hi - lo, c, best.data() + lo);
    }
  };
  const bool fan_out = exec_ != nullptr && ids.size() >= shard_min_;
  if (gating(ctx_)) {
    const exec::StopReason reason =
        gated_scan(*ctx_, exec_, fan_out, ids.size(),
                   std::max<std::size_t>(1, shard_min_ / 2),
                   /*evals_per_item=*/1, run);
    if (reason != exec::StopReason::None) {
      exec::ChunkContext::raise(reason, "update_nearest");
    }
    return;
  }
  if (fan_out) {
    sharded_for(exec_, ids.size(), shard_min_, run);
    return;
  }
  run(0, ids.size());
}

void DistanceOracle::update_nearest_multi(std::span<const index_t> ids,
                                          std::span<const index_t> centers,
                                          std::span<double> best,
                                          PruneCache* cache) const {
  if (ids.empty() || centers.empty()) return;
  if (prune_applicable(ids)) {
    pruned_scan(centers, best, cache, /*ordered=*/false,
                "update_nearest_multi");
    return;
  }
  if (cache != nullptr) cache->invalidate();
  // One bulk charge for the whole ids x centers batch.
  counters::add_distance_evals(ids.size() * centers.size(), dim());

  const bool contig = simd::is_contiguous_run(ids.data(), ids.size());
  const std::size_t m = metric_index();
  const std::size_t d = dim();
  // Per chunk, centers are tiled in blocks of kCenterBlock: each
  // streaming pass over the chunk folds a whole block per load of
  // best/ids. Fold order stays center-major (block by block, in-block
  // in order), which is bit-identical to repeated update_nearest.
  const auto run = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t cb = 0; cb < centers.size(); cb += simd::kCenterBlock) {
      const std::size_t nc = std::min(simd::kCenterBlock, centers.size() - cb);
      const double* cptr[simd::kCenterBlock];
      for (std::size_t j = 0; j < nc; ++j) {
        cptr[j] = points_->data(centers[cb + j]);
      }
      if (contig) {
        kernels_->nearest_multi_contig[m](points_->data(ids[lo]), d, hi - lo,
                                          cptr, nc, best.data() + lo);
      } else {
        kernels_->nearest_multi_gather[m](points_->raw().data(), d,
                                          ids.data() + lo, hi - lo, cptr, nc,
                                          best.data() + lo);
      }
    }
  };

  // Shard on *total* work (ids x centers pairs): tall-thin batches —
  // few ids against many new centers, EIM's select round shape — carry
  // as many evals as a wide single-center scan. The predicate divides
  // instead of multiplying so it cannot overflow; the grain shrinks
  // with the center count so each chunk still does ~shard_min_/2 pair
  // evals.
  const bool fan_out = exec_ != nullptr && ids.size() > 1 &&
                       ids.size() > shard_min_ / centers.size();
  const std::size_t grain =
      std::max<std::size_t>(1, shard_min_ / 2 / centers.size());
  if (gating(ctx_)) {
    const exec::StopReason reason =
        gated_scan(*ctx_, exec_, fan_out, ids.size(), grain,
                   /*evals_per_item=*/centers.size(), run);
    if (reason != exec::StopReason::None) {
      exec::ChunkContext::raise(reason, "update_nearest_multi");
    }
    return;
  }
  if (fan_out) {
    exec_->parallel_for(ids.size(), grain, run);
    return;
  }
  run(0, ids.size());
}

double DistanceOracle::nearest_comparable(
    index_t p, std::span<const index_t> centers) const noexcept {
  double best = kInfDist;
  for (const index_t c : centers) {
    const double d = comparable(p, c);
    if (d < best) best = d;
  }
  return best;
}

std::size_t DistanceOracle::nearest_center(
    index_t p, std::span<const index_t> centers) const noexcept {
  double best = kInfDist;
  std::size_t best_pos = centers.size();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const double d = comparable(p, centers[i]);
    if (d < best) {
      best = d;
      best_pos = i;
    }
  }
  return best_pos;
}

namespace {

/// Cache-blocked tile shape for the streaming pairwise engine. One tile
/// is kTileRows * kTileCols doubles (16 KiB — comfortably L1/L2
/// resident together with the point rows it reads), and a tile's pair
/// count stays far below kGateEvals, so one pre-paid gate batch always
/// covers the next tile.
constexpr std::size_t kTileRows = 8;
constexpr std::size_t kTileCols = 256;

static_assert(kTileRows * kTileCols <= exec::kGateEvals);

/// The gate-batched budget/cancel protocol shared by the tile streams:
/// budget credit is pre-bought in ~kGateEvals batches (one atomic
/// charge per gate instead of one per tile) and consumed tile by tile,
/// so a completed stream charges exactly `total` evaluations and a
/// stopped one has over-charged by less than one gate. Mirrors the
/// pattern the row-blocked pairwise_comparable loop used before the
/// tiled engine replaced it.
class TileGate {
 public:
  TileGate(const exec::ChunkContext* ctx, std::uint64_t total,
           std::string_view where) noexcept
      : ctx_(ctx), unpaid_(total), where_(where) {}

  /// Pays for the next `evals` pairs (<= kGateEvals; tile shapes
  /// guarantee it), raising CancelledError / BudgetExceededError when a
  /// stop condition has tripped.
  void pay(std::uint64_t evals) {
    if (ctx_ == nullptr) return;
    if (credit_ < evals) {
      const std::uint64_t batch = std::min(unpaid_, exec::kGateEvals);
      const exec::StopReason reason = ctx_->charge(batch);
      if (reason != exec::StopReason::None) {
        exec::ChunkContext::raise(reason, where_);
      }
      unpaid_ -= batch;
      credit_ += batch;
    }
    credit_ -= evals;
  }

 private:
  const exec::ChunkContext* ctx_;  ///< null = ungated
  std::uint64_t unpaid_;
  std::uint64_t credit_ = 0;
  std::string_view where_;
};

/// Contiguous rows for an id span: points straight into the PointSet
/// when the span is an iota run, otherwise gathers the rows into
/// `stage` once (O(n * dim) — linear, unlike the O(n^2) matrices the
/// tile engine exists to avoid).
[[nodiscard]] const double* rows_of(const PointSet& points,
                                    std::span<const index_t> ids,
                                    std::size_t dim,
                                    std::vector<double>& stage) {
  if (simd::is_contiguous_run(ids.data(), ids.size())) {
    return points.data(ids.front());
  }
  stage.resize(ids.size() * dim);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const double* p = points.data(ids[i]);
    std::copy(p, p + dim, stage.data() + i * dim);
  }
  return stage.data();
}

}  // namespace

void DistanceOracle::pairwise_tiles(std::span<const index_t> a_ids,
                                    std::span<const index_t> b_ids,
                                    const TileConsumer& consume,
                                    std::string_view where, bool gated) const {
  const std::size_t na = a_ids.size();
  const std::size_t nb = b_ids.size();
  if (na == 0 || nb == 0) return;
  // Bulk-kernel accounting: one counter charge for the whole rectangle,
  // one metric dispatch hoisted out of the tile loop.
  counters::add_distance_evals(static_cast<std::uint64_t>(na) * nb, dim());
  const auto tile_fn = kernels_->pairwise_tile[metric_index()];
  const std::size_t d = dim();
  std::vector<double> astage, bstage;
  const double* arows = rows_of(*points_, a_ids, d, astage);
  const double* brows = rows_of(*points_, b_ids, d, bstage);
  std::vector<double> tile(std::min(kTileRows, na) * std::min(kTileCols, nb));
  TileGate pay(gated && gating(ctx_) ? ctx_ : nullptr,
               static_cast<std::uint64_t>(na) * nb, where);
  for (std::size_t i0 = 0; i0 < na; i0 += kTileRows) {
    const std::size_t tm = std::min(kTileRows, na - i0);
    for (std::size_t j0 = 0; j0 < nb; j0 += kTileCols) {
      const std::size_t tn = std::min(kTileCols, nb - j0);
      pay.pay(static_cast<std::uint64_t>(tm) * tn);
      tile_fn(arows + i0 * d, brows + j0 * d, d, tm, tn, tile.data(), tn);
      consume(i0, j0, tm, tn, tile.data(), tn);
    }
  }
}

void DistanceOracle::pairwise_upper_tiles(std::span<const index_t> ids,
                                          const TileConsumer& consume,
                                          std::string_view where) const {
  const std::size_t n = ids.size();
  if (n < 2) return;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  counters::add_distance_evals(total, dim());
  const auto tile_fn = kernels_->pairwise_tile[metric_index()];
  const std::size_t d = dim();
  std::vector<double> stage;
  const double* rows = rows_of(*points_, ids, d, stage);
  std::vector<double> tile(kTileRows * std::min(kTileCols, n));
  TileGate pay(gating(ctx_) ? ctx_ : nullptr, total, where);
  for (std::size_t i0 = 0; i0 < n; i0 += kTileRows) {
    const std::size_t i1 = std::min(n, i0 + kTileRows);
    // Ragged diagonal part: row i against columns (i, i1) — per-row
    // tiles, still vectorized across the columns.
    for (std::size_t i = i0; i + 1 < i1; ++i) {
      const std::size_t len = i1 - i - 1;
      pay.pay(len);
      tile_fn(rows + i * d, rows + (i + 1) * d, d, 1, len, tile.data(), len);
      consume(i, i + 1, 1, len, tile.data(), len);
    }
    // Full blocks strictly right of this diagonal block.
    const std::size_t tm = i1 - i0;
    for (std::size_t j0 = i1; j0 < n; j0 += kTileCols) {
      const std::size_t tn = std::min(kTileCols, n - j0);
      pay.pay(static_cast<std::uint64_t>(tm) * tn);
      tile_fn(rows + i0 * d, rows + j0 * d, d, tm, tn, tile.data(), tn);
      consume(i0, j0, tm, tn, tile.data(), tn);
    }
  }
}

std::vector<double> DistanceOracle::pairwise_comparable(
    std::span<const index_t> ids) const {
  const std::size_t n = ids.size();
  std::vector<double> matrix(n * n, 0.0);
  if (n < 2) return matrix;
  // Thin adapter: mirror each upper-triangle tile into both halves of
  // the dense matrix. Gating, counters and the raise label behave
  // exactly as the pre-tile row-blocked loop did.
  pairwise_upper_tiles(
      ids,
      [&](std::size_t i0, std::size_t j0, std::size_t tm, std::size_t tn,
          const double* tile, std::size_t ldt) {
        for (std::size_t r = 0; r < tm; ++r) {
          const std::size_t i = i0 + r;
          const double* src = tile + r * ldt;
          for (std::size_t c = 0; c < tn; ++c) {
            const double v = src[c];
            matrix[i * n + (j0 + c)] = v;
            matrix[(j0 + c) * n + i] = v;
          }
        }
      },
      "pairwise_comparable");
  return matrix;
}

std::size_t argmax(std::span<const double> values) noexcept {
  return simd::active_kernels().argmax(values.data(), values.size());
}

}  // namespace kc
