#include "geom/distance.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "exec/chunk_context.hpp"
#include "geom/parallel.hpp"

namespace kc {

namespace {

/// Drives `run` over [0, n) in gate chunks of ~exec::kGateEvals pair
/// evaluations, charging the context's budget and polling its token
/// before each chunk. `fan_out` additionally shards the gated body
/// across the backend (the gates subdivide whatever ranges the backend
/// hands out, so granularity is backend-independent). A tripped stop
/// condition makes every not-yet-started gate chunk a no-op — on all
/// shards, via the shared flag — and is returned to the caller, which
/// raises the matching error on its own thread.
[[nodiscard]] exec::StopReason gated_scan(
    const exec::ChunkContext& ctx, exec::ExecutionBackend* backend,
    bool fan_out, std::size_t n, std::size_t shard_grain,
    std::uint64_t evals_per_item,
    const exec::ExecutionBackend::RangeBody& run) {
  const std::size_t gate = std::max<std::size_t>(
      1, static_cast<std::size_t>(exec::kGateEvals /
                                  std::max<std::uint64_t>(evals_per_item, 1)));
  std::atomic<int> stop{0};
  const exec::ExecutionBackend::RangeBody gated = [&](std::size_t lo,
                                                      std::size_t hi) {
    for (std::size_t pos = lo; pos < hi;) {
      if (stop.load(std::memory_order_relaxed) != 0) return;
      const std::size_t end = std::min(hi, pos + gate);
      const exec::StopReason reason =
          ctx.charge(static_cast<std::uint64_t>(end - pos) * evals_per_item);
      if (reason != exec::StopReason::None) {
        stop.store(static_cast<int>(reason), std::memory_order_relaxed);
        return;
      }
      run(pos, end);
      pos = end;
    }
  };
  if (fan_out && backend != nullptr) {
    backend->parallel_for(n, shard_grain, gated);
  } else {
    gated(0, n);
  }
  return static_cast<exec::StopReason>(stop.load(std::memory_order_relaxed));
}

/// True when the oracle should run this scan through the gated driver.
[[nodiscard]] bool gating(const exec::ChunkContext* ctx) noexcept {
  return ctx != nullptr && ctx->armed();
}

}  // namespace

// The kernel tables are indexed by MetricKind's enumerator values.
static_assert(static_cast<std::size_t>(MetricKind::L2) == 0 &&
              static_cast<std::size_t>(MetricKind::L1) == 1 &&
              static_cast<std::size_t>(MetricKind::Linf) == 2 &&
              simd::kMetricCount == 3);

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::L2: return "L2";
    case MetricKind::L1: return "L1";
    case MetricKind::Linf: return "Linf";
  }
  return "?";
}

double DistanceOracle::comparable(index_t a, index_t b) const noexcept {
  counters::add_distance_evals(1, dim());
  return kernels_->pair[metric_index()](points_->data(a), points_->data(b),
                                        dim());
}

double DistanceOracle::to_reported(double comp) const noexcept {
  return kind_ == MetricKind::L2 ? std::sqrt(comp) : comp;
}

double DistanceOracle::from_reported(double dist) const noexcept {
  return kind_ == MetricKind::L2 ? dist * dist : dist;
}

void DistanceOracle::update_nearest(std::span<const index_t> ids,
                                    index_t center,
                                    std::span<double> best) const {
  // The whole scan is charged to the calling thread up front, so a
  // sharded execution attributes work exactly as a sequential one.
  counters::add_distance_evals(ids.size(), dim());
  if (ids.empty()) return;

  // Iota id spans — what all_indices() produces and most call sites
  // pass — skip the gather indirection and stream PointSet rows.
  const bool contig = simd::is_contiguous_run(ids.data(), ids.size());
  const std::size_t m = metric_index();
  const std::size_t d = dim();
  const double* c = points_->data(center);
  const auto run = [&](std::size_t lo, std::size_t hi) {
    if (contig) {
      kernels_->nearest_contig[m](points_->data(ids[lo]), d, hi - lo, c,
                                  best.data() + lo);
    } else {
      kernels_->nearest_gather[m](points_->raw().data(), d, ids.data() + lo,
                                  hi - lo, c, best.data() + lo);
    }
  };
  const bool fan_out = exec_ != nullptr && ids.size() >= shard_min_;
  if (gating(ctx_)) {
    const exec::StopReason reason =
        gated_scan(*ctx_, exec_, fan_out, ids.size(),
                   std::max<std::size_t>(1, shard_min_ / 2),
                   /*evals_per_item=*/1, run);
    if (reason != exec::StopReason::None) {
      exec::ChunkContext::raise(reason, "update_nearest");
    }
    return;
  }
  if (fan_out) {
    sharded_for(exec_, ids.size(), shard_min_, run);
    return;
  }
  run(0, ids.size());
}

void DistanceOracle::update_nearest_multi(std::span<const index_t> ids,
                                          std::span<const index_t> centers,
                                          std::span<double> best) const {
  if (ids.empty() || centers.empty()) return;
  // One bulk charge for the whole ids x centers batch.
  counters::add_distance_evals(ids.size() * centers.size(), dim());

  const bool contig = simd::is_contiguous_run(ids.data(), ids.size());
  const std::size_t m = metric_index();
  const std::size_t d = dim();
  // Per chunk, centers are tiled in blocks of kCenterBlock: each
  // streaming pass over the chunk folds a whole block per load of
  // best/ids. Fold order stays center-major (block by block, in-block
  // in order), which is bit-identical to repeated update_nearest.
  const auto run = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t cb = 0; cb < centers.size(); cb += simd::kCenterBlock) {
      const std::size_t nc = std::min(simd::kCenterBlock, centers.size() - cb);
      const double* cptr[simd::kCenterBlock];
      for (std::size_t j = 0; j < nc; ++j) {
        cptr[j] = points_->data(centers[cb + j]);
      }
      if (contig) {
        kernels_->nearest_multi_contig[m](points_->data(ids[lo]), d, hi - lo,
                                          cptr, nc, best.data() + lo);
      } else {
        kernels_->nearest_multi_gather[m](points_->raw().data(), d,
                                          ids.data() + lo, hi - lo, cptr, nc,
                                          best.data() + lo);
      }
    }
  };

  // Shard on *total* work (ids x centers pairs): tall-thin batches —
  // few ids against many new centers, EIM's select round shape — carry
  // as many evals as a wide single-center scan. The predicate divides
  // instead of multiplying so it cannot overflow; the grain shrinks
  // with the center count so each chunk still does ~shard_min_/2 pair
  // evals.
  const bool fan_out = exec_ != nullptr && ids.size() > 1 &&
                       ids.size() > shard_min_ / centers.size();
  const std::size_t grain =
      std::max<std::size_t>(1, shard_min_ / 2 / centers.size());
  if (gating(ctx_)) {
    const exec::StopReason reason =
        gated_scan(*ctx_, exec_, fan_out, ids.size(), grain,
                   /*evals_per_item=*/centers.size(), run);
    if (reason != exec::StopReason::None) {
      exec::ChunkContext::raise(reason, "update_nearest_multi");
    }
    return;
  }
  if (fan_out) {
    exec_->parallel_for(ids.size(), grain, run);
    return;
  }
  run(0, ids.size());
}

double DistanceOracle::nearest_comparable(
    index_t p, std::span<const index_t> centers) const noexcept {
  double best = kInfDist;
  for (const index_t c : centers) {
    const double d = comparable(p, c);
    if (d < best) best = d;
  }
  return best;
}

std::size_t DistanceOracle::nearest_center(
    index_t p, std::span<const index_t> centers) const noexcept {
  double best = kInfDist;
  std::size_t best_pos = centers.size();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const double d = comparable(p, centers[i]);
    if (d < best) {
      best = d;
      best_pos = i;
    }
  }
  return best_pos;
}

std::vector<double> DistanceOracle::pairwise_comparable(
    std::span<const index_t> ids) const {
  const std::size_t n = ids.size();
  std::vector<double> matrix(n * n, 0.0);
  if (n < 2) return matrix;
  // Bulk-kernel accounting: one charge for the whole O(n^2) scan and
  // one metric dispatch, hoisted out of the pair loop.
  counters::add_distance_evals(n * (n - 1) / 2, dim());
  const auto pair = kernels_->pair[metric_index()];
  const std::size_t d = dim();
  // Context gating: rows split into sub-blocks of at most kGateEvals
  // pairs; before a block runs out of pre-paid credit, the next gate's
  // worth of evals (capped at what is left in the matrix) is charged
  // in one atomic operation. Granularity stays one gate — even a
  // single huge row stops within ~kGateEvals pairs of a stop — while
  // the shared budget sees ~total/kGateEvals CAS ops, not one per row,
  // and a completed scan charges exactly its n*(n-1)/2 pairs.
  const bool gate = gating(ctx_);
  const std::size_t block =
      static_cast<std::size_t>(std::min<std::uint64_t>(exec::kGateEvals, n));
  std::uint64_t unpaid = n * (n - 1) / 2;
  std::uint64_t credit = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* pi = points_->data(ids[i]);
    for (std::size_t j0 = i + 1; j0 < n; j0 += block) {
      const std::size_t j1 = std::min(n, j0 + block);
      if (gate) {
        if (credit < j1 - j0) {
          const std::uint64_t batch = std::min(unpaid, exec::kGateEvals);
          const exec::StopReason reason = ctx_->charge(batch);
          if (reason != exec::StopReason::None) {
            exec::ChunkContext::raise(reason, "pairwise_comparable");
          }
          unpaid -= batch;
          credit += batch;
        }
        credit -= j1 - j0;
      }
      for (std::size_t j = j0; j < j1; ++j) {
        const double v = pair(pi, points_->data(ids[j]), d);
        matrix[i * n + j] = v;
        matrix[j * n + i] = v;
      }
    }
  }
  return matrix;
}

std::size_t argmax(std::span<const double> values) noexcept {
  return simd::active_kernels().argmax(values.data(), values.size());
}

}  // namespace kc
