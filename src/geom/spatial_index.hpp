// Uniform-grid spatial index for cell-granular geometric pruning.
//
// Every algorithm in the repo bottoms out in update_nearest /
// update_nearest_multi scans that touch all n x k point-center pairs.
// Most of those pairs provably cannot change the result: once a point
// has *some* nearby center, a candidate center far away loses every
// comparison. This index makes that provable wholesale — per grid
// cell, not per pair — so the hot scans can skip entire cells without
// looking at a single coordinate inside them.
//
// Structure: points are snapped to a uniform grid (cell width
// auto-tuned from a GON-style radius probe over the data), and the
// point ids are permuted so each occupied cell owns one contiguous run
// of the order() array; the coordinate rows are copied into the same
// permuted layout (64-byte aligned, like PointSet), so a scan over one
// cell streams contiguous rows and keeps the SIMD kernels' contiguous
// fast path. Per cell the exact coordinate-wise bounding box of its
// members is stored.
//
// The pruning rule, Elkan-style via the triangle inequality: during an
// update_nearest* scan, a cell's *upper bound* is the maximum of the
// caller's current best[] over the cell's members. If a candidate
// center's distance to the cell's bounding box is at least that bound,
// then for every member p: d(p, c) >= mindist(c, box) >= ub >= best[p],
// so the min-fold is a no-op for the entire cell and the scan skips it,
// charging the skipped pairs to counters::add_pruned_pairs instead of
// distance evaluations.
//
// The determinism contract (see docs/architecture.md, "Spatial
// pruning"): pruned results are **bit-identical** to the unpruned
// scalar path. Two facts carry it: (1) update_nearest*'s per-point
// fold only depends on that point's row and the centers, never on scan
// order, so visiting points cell-by-cell instead of index order writes
// the same bits; (2) cell_mindist_comparable's floating-point value is
// <= the kernel-computed comparable distance of every member (each
// per-coordinate gap is a single rounded subtraction that is
// coordinate-wise dominated by the kernel's own subtraction, and IEEE
// rounding is monotone through the identical square/abs/accumulate
// fold), so a skipped fold is one that could not have updated best[]
// even in the rounded arithmetic the kernel actually performs.
//
// The KC_FORCE_NO_PRUNE environment variable (set and not "0")
// disables pruning process-wide regardless of bound indexes — the
// escape hatch mirroring KC_FORCE_SCALAR, and the CI leg that proves
// the pruned and unpruned paths agree on the whole suite.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/distance.hpp"
#include "geom/point_set.hpp"

namespace kc {

// ---------------------------------------------------------------------------
// Grid snapping helpers, shared with core/ccm.cpp's coreset grid so the
// two grids cannot drift.

/// Clamp bound for snapped cell coordinates: a coordinate huge relative
/// to the width (e.g. a tiny width under far-flung outliers) must
/// saturate, not overflow the int64 cast.
inline constexpr double kGridCoordClamp = 9.0e18;

/// Snaps one coordinate to its grid cell at width `w` (clamped floor).
[[nodiscard]] std::int64_t grid_coord(double x, double w) noexcept;

/// Fills `key` (dim entries) with the cell coordinates of point `p`.
void grid_cell_key(std::span<const double> p, double w,
                   std::span<std::int64_t> key) noexcept;

/// True when the KC_FORCE_NO_PRUNE environment variable requests that
/// spatial pruning be disabled (set and not "0"). Read once per process.
[[nodiscard]] bool force_no_prune_requested() noexcept;

/// PruneMode::Auto thresholds, used by the api::Solver when deciding
/// whether to build an index for a request: a uniform grid loses its
/// bite as dimension grows (cell bounding boxes stop separating
/// anything well before dim 20), and below a few thousand points the
/// index build plus bound tests cost more than the full scans they
/// avoid.
inline constexpr std::size_t kAutoPruneMaxDim = 8;
inline constexpr std::size_t kAutoPruneMinPoints = 4096;

// ---------------------------------------------------------------------------

class SpatialIndex {
 public:
  /// Builds the index over `points` (not owned; must outlive the
  /// index). The cell width starts from a GON-style radius probe — one
  /// scalar distance scan from the first point gives the data radius —
  /// and doubles until the occupied-cell count fits a cap derived from
  /// n, so degenerate inputs (duplicates, outliers) settle into few
  /// cells instead of millions. Costs one O(n * dim) scan plus an
  /// O(n log n) sort; spends no tracked distance evaluations.
  explicit SpatialIndex(const PointSet& points);

  [[nodiscard]] const PointSet& points() const noexcept { return *points_; }
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] double cell_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cell_begin_.empty() ? 0 : cell_begin_.size() - 1;
  }

  /// Point ids permuted cell-major: cell c owns order()[cell_begin(c)
  /// .. cell_begin(c + 1)), ascending ids within a cell.
  [[nodiscard]] std::span<const index_t> order() const noexcept {
    return order_;
  }
  [[nodiscard]] std::size_t cell_begin(std::size_t c) const noexcept {
    return cell_begin_[c];
  }
  [[nodiscard]] std::size_t cell_size(std::size_t c) const noexcept {
    return cell_begin_[c + 1] - cell_begin_[c];
  }
  /// Cell containing point `id`.
  [[nodiscard]] std::uint32_t cell_of(index_t id) const noexcept {
    return cell_of_[id];
  }

  /// Coordinate rows in the permuted layout: row j (of point
  /// order()[j]) starts at rows() + j * dim(). Bitwise copies of the
  /// source rows, 64-byte-aligned storage, so per-cell scans take the
  /// kernels' contiguous fast path.
  [[nodiscard]] const double* rows() const noexcept { return rows_.data(); }

  /// Exact member bounding box of cell c (dim lows, dim highs).
  [[nodiscard]] const double* cell_lo(std::size_t c) const noexcept {
    return bbox_.data() + 2 * c * dim_;
  }
  [[nodiscard]] const double* cell_hi(std::size_t c) const noexcept {
    return bbox_.data() + (2 * c + 1) * dim_;
  }

  /// Comparable-scale lower bound on the distance from `center` (dim()
  /// coordinates) to any member of cell c: per coordinate the gap
  /// between the center and the box, pushed through the same
  /// square/abs/max fold as the metric's scalar kernel, so the rounded
  /// result never exceeds any member's kernel-computed distance.
  [[nodiscard]] double cell_mindist_comparable(MetricKind kind,
                                               const double* center,
                                               std::size_t c) const noexcept;

 private:
  const PointSet* points_;
  std::size_t dim_ = 0;
  double width_ = 1.0;
  std::vector<index_t> order_;          ///< point ids, cell-major
  std::vector<std::size_t> cell_begin_; ///< cell_count() + 1 offsets
  std::vector<std::uint32_t> cell_of_;  ///< per point id, its cell
  CoordStorage rows_;                   ///< permuted coordinate rows
  std::vector<double> bbox_;            ///< per cell: dim lows, dim highs
};

/// Per-cell cached upper bounds for a *sequence* of pruned scans that
/// share one best[] array — the Gonzalez shape, where each round calls
/// update_nearest with one new center on the same best[]. Skipped
/// cells keep their cached bound (their best[] entries were not
/// touched); scanned cells refresh it from the values just written, so
/// across the sequence no full re-derivation of the bounds is needed.
///
/// Lifetime contract: a cache is only valid while the paired best[]
/// array exists, is only mutated through the oracle's pruned scans,
/// and is never re-initialized. The oracle invalidates the cache
/// whenever a call bypasses the pruned path, so a later pruned call
/// re-primes from scratch rather than trusting stale bounds.
class PruneCache {
 public:
  explicit PruneCache(const SpatialIndex& index)
      : index_(&index), ub_(index.cell_count(), kInfDist) {}

  [[nodiscard]] const SpatialIndex* index() const noexcept { return index_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }
  void invalidate() noexcept { primed_ = false; }

  /// Oracle-internal access to the per-cell bounds.
  [[nodiscard]] std::span<double> bounds() noexcept { return ub_; }
  void set_primed() noexcept { primed_ = true; }

 private:
  const SpatialIndex* index_;
  std::vector<double> ub_;
  bool primed_ = false;
};

}  // namespace kc
