// Scalar reference kernels, shared across the kernel translation units.
//
// These loops are the semantic ground truth for the whole kernel
// engine: the scalar table is built from them directly, and the SIMD
// translation units reuse them for ragged tails so every element of a
// vectorized scan still executes exactly this operation sequence. Keep
// them free of anything a compiler could legally reassociate — each
// accumulation is a strict left-to-right fold.
//
// Everything here lives in an anonymous namespace ON PURPOSE, even
// though this is a header: each including translation unit must get its
// *own* internal copy, compiled with that TU's ISA flags. With ordinary
// inline (vague) linkage the linker comdat-merges the copies and may
// keep the one compiled under -mavx2/-mavx512f — and then the scalar
// fallback table would execute AVX instructions on a host that has
// none. Internal linkage makes that impossible: the scalar TU's copy is
// baseline code, and the SIMD TUs' copies (used only for tails) only
// run after runtime dispatch has confirmed their ISA. Include this
// header only from the kernel TUs.
#pragma once

#include <cmath>
#include <cstddef>

#include "geom/kernels.hpp"
#include "geom/point_set.hpp"

namespace kc::simd::scalar {
namespace {

// Per-metric pair kernels. The dim-2/3 specializations matter: the
// paper's synthetic data is 2-3 dimensional and the generic loop costs
// roughly 2x on those shapes. (0 + d*d == d*d bitwise for the
// non-negative squares, so the specializations are bit-identical to the
// generic fold.)

[[nodiscard]] inline double l2sq(const double* a, const double* b,
                                 std::size_t dim) noexcept {
  if (dim == 2) {
    const double d0 = a[0] - b[0];
    const double d1 = a[1] - b[1];
    return d0 * d0 + d1 * d1;
  }
  if (dim == 3) {
    const double d0 = a[0] - b[0];
    const double d1 = a[1] - b[1];
    const double d2 = a[2] - b[2];
    return d0 * d0 + d1 * d1 + d2 * d2;
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

[[nodiscard]] inline double l1(const double* a, const double* b,
                               std::size_t dim) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

[[nodiscard]] inline double linf(const double* a, const double* b,
                                 std::size_t dim) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = std::abs(a[i] - b[i]);
    if (d > acc) acc = d;
  }
  return acc;
}

template <typename Pair>
inline void nearest_gather(const double* coords, std::size_t dim,
                           const index_t* ids, std::size_t n,
                           const double* center, double* best,
                           Pair&& pair) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double d =
        pair(coords + static_cast<std::size_t>(ids[i]) * dim, center, dim);
    if (d < best[i]) best[i] = d;
  }
}

template <typename Pair>
inline void nearest_contig(const double* rows, std::size_t dim, std::size_t n,
                           const double* center, double* best,
                           Pair&& pair) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double d = pair(rows + i * dim, center, dim);
    if (d < best[i]) best[i] = d;
  }
}

// Blocked multi-center folds. Per point, centers are folded in order
// 0..ncenters-1, which is exactly the result of `ncenters` sequential
// single-center passes — the min-fold per (point, center) pair is the
// same operation in the same order.

template <typename Pair>
inline void nearest_multi_gather(const double* coords, std::size_t dim,
                                 const index_t* ids, std::size_t n,
                                 const double* const* centers,
                                 std::size_t ncenters, double* best,
                                 Pair&& pair) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = coords + static_cast<std::size_t>(ids[i]) * dim;
    double b = best[i];
    for (std::size_t c = 0; c < ncenters; ++c) {
      const double d = pair(p, centers[c], dim);
      if (d < b) b = d;
    }
    best[i] = b;
  }
}

template <typename Pair>
inline void nearest_multi_contig(const double* rows, std::size_t dim,
                                 std::size_t n, const double* const* centers,
                                 std::size_t ncenters, double* best,
                                 Pair&& pair) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = rows + i * dim;
    double b = best[i];
    for (std::size_t c = 0; c < ncenters; ++c) {
      const double d = pair(p, centers[c], dim);
      if (d < b) b = d;
    }
    best[i] = b;
  }
}

/// Dense m x n distance tile: out[i * ldo + j] = pair(arows_i, brows_j).
/// Row-major over the a rows, columns in ascending b order — the exact
/// per-pair operation sequence the old per-pair matrix loop performed,
/// so the tiled engine's scalar reference is bit-identical to it.
template <typename Pair>
inline void pairwise_tile(const double* arows, const double* brows,
                          std::size_t dim, std::size_t m, std::size_t n,
                          double* out, std::size_t ldo, Pair&& pair) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const double* a = arows + i * dim;
    double* row = out + i * ldo;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = pair(a, brows + j * dim, dim);
    }
  }
}

[[nodiscard]] inline std::size_t argmax(const double* values,
                                        std::size_t n) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

}  // namespace
}  // namespace kc::simd::scalar
