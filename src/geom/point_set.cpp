#include "geom/point_set.hpp"

#include <numeric>
#include <stdexcept>

namespace kc {

PointSet::PointSet(std::size_t n, std::size_t dim)
    : n_(n), dim_(dim), coords_(n * dim, 0.0) {
  if (dim == 0) throw std::invalid_argument("PointSet: dim must be positive");
}

PointSet::PointSet(std::size_t dim, std::span<const double> coords)
    : dim_(dim), coords_(coords.begin(), coords.end()) {
  if (dim == 0) throw std::invalid_argument("PointSet: dim must be positive");
  if (coords_.size() % dim != 0) {
    throw std::invalid_argument(
        "PointSet: coordinate count is not a multiple of dim");
  }
  n_ = coords_.size() / dim;
}

PointSet::PointSet(std::initializer_list<std::initializer_list<double>> points) {
  for (const auto& p : points) {
    push_back(std::span<const double>(p.begin(), p.size()));
  }
}

void PointSet::push_back(std::span<const double> p) {
  if (n_ == 0 && dim_ == 0) {
    if (p.empty()) {
      throw std::invalid_argument("PointSet: cannot infer dim from empty point");
    }
    dim_ = p.size();
  }
  if (p.size() != dim_) {
    throw std::invalid_argument("PointSet: point dimension mismatch");
  }
  coords_.insert(coords_.end(), p.begin(), p.end());
  ++n_;
}

PointSet PointSet::subset(std::span<const index_t> ids) const {
  PointSet out(ids.size(), dim_);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const index_t id = ids[i];
    if (id >= n_) throw std::out_of_range("PointSet::subset: index out of range");
    auto dst = out.mutable_point(static_cast<index_t>(i));
    auto src = (*this)[id];
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

std::vector<index_t> PointSet::all_indices() const {
  std::vector<index_t> ids(n_);
  std::iota(ids.begin(), ids.end(), index_t{0});
  return ids;
}

}  // namespace kc
