// Scalar kernel table: the reference implementation every vectorized
// table must match bit for bit, and the fallback on hosts (or builds)
// without AVX2. Compiled with the project's portable baseline flags.
#include "geom/kernels.hpp"
#include "geom/kernels_scalar_impl.hpp"

namespace kc::simd {

namespace {

template <double (*Pair)(const double*, const double*, std::size_t)>
void nearest_gather_fn(const double* coords, std::size_t dim,
                       const index_t* ids, std::size_t n, const double* center,
                       double* best) {
  scalar::nearest_gather(coords, dim, ids, n, center, best, Pair);
}

template <double (*Pair)(const double*, const double*, std::size_t)>
void nearest_contig_fn(const double* rows, std::size_t dim, std::size_t n,
                       const double* center, double* best) {
  scalar::nearest_contig(rows, dim, n, center, best, Pair);
}

template <double (*Pair)(const double*, const double*, std::size_t)>
void nearest_multi_gather_fn(const double* coords, std::size_t dim,
                             const index_t* ids, std::size_t n,
                             const double* const* centers, std::size_t ncenters,
                             double* best) {
  scalar::nearest_multi_gather(coords, dim, ids, n, centers, ncenters, best,
                               Pair);
}

template <double (*Pair)(const double*, const double*, std::size_t)>
void nearest_multi_contig_fn(const double* rows, std::size_t dim,
                             std::size_t n, const double* const* centers,
                             std::size_t ncenters, double* best) {
  scalar::nearest_multi_contig(rows, dim, n, centers, ncenters, best, Pair);
}

template <double (*Pair)(const double*, const double*, std::size_t)>
void pairwise_tile_fn(const double* arows, const double* brows,
                      std::size_t dim, std::size_t m, std::size_t n,
                      double* out, std::size_t ldo) {
  scalar::pairwise_tile(arows, brows, dim, m, n, out, ldo, Pair);
}

constexpr KernelTable kScalarTable = {
    "scalar",
    {scalar::l2sq, scalar::l1, scalar::linf},
    {nearest_gather_fn<scalar::l2sq>, nearest_gather_fn<scalar::l1>,
     nearest_gather_fn<scalar::linf>},
    {nearest_contig_fn<scalar::l2sq>, nearest_contig_fn<scalar::l1>,
     nearest_contig_fn<scalar::linf>},
    {nearest_multi_gather_fn<scalar::l2sq>, nearest_multi_gather_fn<scalar::l1>,
     nearest_multi_gather_fn<scalar::linf>},
    {nearest_multi_contig_fn<scalar::l2sq>, nearest_multi_contig_fn<scalar::l1>,
     nearest_multi_contig_fn<scalar::linf>},
    scalar::argmax,
    {pairwise_tile_fn<scalar::l2sq>, pairwise_tile_fn<scalar::l1>,
     pairwise_tile_fn<scalar::linf>},
};

}  // namespace

// Internal hook for kernels.cpp's dispatch (declared there, not in the
// public header, so the table stays an implementation detail).
const KernelTable& scalar_kernel_table() noexcept { return kScalarTable; }

}  // namespace kc::simd
