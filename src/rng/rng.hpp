// Deterministic, splittable random number generation for reproducible
// experiments.
//
// The library never uses std::random_device or global state: every
// algorithm and generator takes an explicit `Rng` (or a seed), and a
// parent Rng can derive statistically independent child streams with
// `split()`, so per-machine randomness in the simulated MapReduce
// cluster is reproducible regardless of execution order or thread
// count.
//
// Engine: xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
// Both are tiny, fast, and public-domain algorithms; implemented here
// from the published reference descriptions.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace kc {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for deriving child stream seeds.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random generator with explicit, value-semantic
/// state. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed), as recommended
  /// by the xoshiro authors (never produces the all-zero state).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Derives an independent child stream. Children with distinct
  /// `stream_id`s (or from different parents) are statistically
  /// independent for all practical purposes: the child seed mixes the
  /// parent's next output with the stream id through SplitMix64.
  [[nodiscard]] Rng split(std::uint64_t stream_id) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t bound) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal via Marsaglia's polar method (cached spare value).
  [[nodiscard]] double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double sigma) noexcept;

  /// Exponential with rate lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Log-uniform over [lo, hi], both > 0: exp(Uniform(ln lo, ln hi)).
  /// Models heavy-tailed magnitudes such as network byte counts.
  [[nodiscard]] double log_uniform(double lo, double hi) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples an index from a discrete distribution given non-negative
  /// weights (need not be normalized). Returns weights.size() - 1 on
  /// degenerate input (all-zero weights).
  [[nodiscard]] std::size_t categorical(std::span<const double> weights) noexcept;

 private:
  std::uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace kc
