#include "rng/rng.hpp"

#include <cmath>

namespace kc {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t stream_id) noexcept {
  std::uint64_t mix = (*this)() ^ (stream_id * 0xd2b74407b1ce6e93ull);
  return Rng{splitmix64_next(mix)};
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and avoids division
  // in the common case.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::gaussian() noexcept {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double sigma) noexcept {
  return mean + sigma * gaussian();
}

double Rng::exponential(double lambda) noexcept {
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::log_uniform(double lo, double hi) noexcept {
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : weights.size() - 1;
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

}  // namespace kc
