// Gnuplot emission for the figure benches: turns a harness::Table whose
// first column is the x-axis into a .dat file plus a ready-to-run .plt
// script, so `bench_fig2_runtime_vs_k --plot=fig2a` followed by
// `gnuplot fig2a.plt` recreates the paper's log-scale plots.
#pragma once

#include <string>

#include "harness/table.hpp"

namespace kc::harness {

struct PlotSpec {
  std::string title;
  std::string xlabel = "k";
  std::string ylabel = "Runtime";
  bool log_y = true;   ///< the paper's runtime/value axes are log-scale
  bool log_x = false;
  /// Columns (0-based, excluding the x column) to plot; empty = all.
  std::vector<std::size_t> series;
};

/// Writes `<basename>.dat` (whitespace-separated, column 1 = x) and
/// `<basename>.plt` (a standalone gnuplot script emitting
/// `<basename>.png`). Cells that do not parse as numbers are written
/// as "nan" so gnuplot skips them. Throws std::runtime_error on I/O
/// failure.
void write_gnuplot(const Table& table, const std::string& basename,
                   const PlotSpec& spec);

}  // namespace kc::harness
