// The paper's published experiment numbers (Tables 2-7), embedded so
// every bench can print "measured vs paper" side by side and
// EXPERIMENTS.md can be regenerated mechanically.
//
// Absolute agreement is not expected — the paper ran a 2011-era Core
// i7-2600 and its own data files; what must match is the *shape*: the
// algorithm ordering, rough factors, and trend reversals.
#pragma once

#include <optional>
#include <span>
#include <string_view>

namespace kc::harness {

/// One row of a paper quality table: solution values at a given k.
struct PaperQualityRow {
  int k;
  double mrg;
  double eim;
  double gon;
};

/// Table 2: GAU, n = 1,000,000, k' = 25.
[[nodiscard]] std::span<const PaperQualityRow> paper_table2() noexcept;
/// Table 3: UNIF, n = 100,000.
[[nodiscard]] std::span<const PaperQualityRow> paper_table3() noexcept;
/// Table 4: UNB, n = 200,000, k' = 25.
[[nodiscard]] std::span<const PaperQualityRow> paper_table4() noexcept;
/// Table 5: POKER HAND.
[[nodiscard]] std::span<const PaperQualityRow> paper_table5() noexcept;

/// One row of a phi-sweep table (Tables 6 and 7): EIM with
/// phi in {1, 4, 6, 8} on GAU (n = 200,000, k' = 25).
struct PaperPhiRow {
  int k;
  double phi1;
  double phi4;
  double phi6;
  double phi8;
};

/// Table 6: average solution value over phi.
[[nodiscard]] std::span<const PaperPhiRow> paper_table6() noexcept;
/// Table 7: average runtime (seconds) over phi.
[[nodiscard]] std::span<const PaperPhiRow> paper_table7() noexcept;

/// Looks up the paper value for (table, k, column). Returns nullopt if
/// the paper did not report that cell. `column` is "MRG"/"EIM"/"GON"
/// for tables 2-5 and "1"/"4"/"6"/"8" for tables 6-7.
[[nodiscard]] std::optional<double> paper_value(int table, int k,
                                                std::string_view column);

}  // namespace kc::harness
