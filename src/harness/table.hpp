// Fixed-width console tables and CSV emission for the benchmark
// harnesses: every bench prints the paper's rows through this.
#pragma once

#include <string>
#include <vector>

namespace kc::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Renders with column alignment (first column left, rest right).
  [[nodiscard]] std::string to_string() const;

  /// Writes headers + rows as CSV. Throws std::runtime_error on I/O error.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kc::harness
