#include "harness/experiment.hpp"

#include <stdexcept>
#include <utility>

#include "api/solver.hpp"

namespace kc::harness {

std::string_view to_string(AlgoKind kind) noexcept {
  switch (kind) {
    case AlgoKind::GON: return "GON";
    case AlgoKind::MRG: return "MRG";
    case AlgoKind::EIM: return "EIM";
  }
  return "?";
}

std::string_view registry_name(AlgoKind kind) noexcept {
  switch (kind) {
    case AlgoKind::GON: return "gon";
    case AlgoKind::MRG: return "mrg";
    case AlgoKind::EIM: return "eim";
  }
  return "?";
}

RunResult run_algorithm(const AlgoConfig& config, const PointSet& points,
                        std::size_t k, std::uint64_t seed, MetricKind metric) {
  // Thin adapter over the facade: translate the experiment protocol's
  // AlgoConfig into a SolveRequest, dispatch through the registry, and
  // flatten the unified report into the protocol's RunResult. The
  // request carries the config's resolved backend, so one persistent
  // thread pool serves both the cluster's reducer fan-out and the
  // oracle's sharded distance scans across a whole sweep.
  api::SolveRequest request;
  request.points = &points;
  request.metric = metric;
  request.k = k;
  request.algorithm = config.algorithm();
  request.seed = seed;
  request.exec.kind = config.exec;
  request.exec.threads = config.threads;
  request.exec.backend = config.resolve_backend();
  request.exec.machines = config.machines;
  if (request.algorithm == "mrg") {
    request.options = config.mrg;
  } else if (request.algorithm == "eim") {
    request.options = config.eim;
  }

  api::Solver solver;
  api::SolveReport report = solver.solve(request);

  RunResult result;
  result.backend = std::move(report.backend);
  result.value = report.value;
  result.sim_seconds = report.sim_seconds;
  result.wall_seconds = report.wall_seconds;
  result.map_reduce_rounds = report.rounds;
  if (report.algorithm == "eim") {
    result.eim_iterations = report.iterations;
    result.eim_sampled = report.sampled;
    result.final_sample_size = report.final_sample_size;
  }
  result.dist_evals = report.dist_evals;
  result.centers = std::move(report.centers);
  return result;
}

Aggregate Aggregate::of(const std::vector<RunResult>& results) {
  Aggregate agg;
  if (results.empty()) return agg;
  for (const auto& r : results) {
    agg.value += r.value;
    agg.sim_seconds += r.sim_seconds;
    agg.wall_seconds += r.wall_seconds;
    agg.map_reduce_rounds += r.map_reduce_rounds;
    agg.eim_iterations += r.eim_iterations;
    agg.sampled_fraction += r.eim_sampled ? 1.0 : 0.0;
    agg.dist_evals += static_cast<double>(r.dist_evals);
  }
  const auto n = static_cast<double>(results.size());
  agg.value /= n;
  agg.sim_seconds /= n;
  agg.wall_seconds /= n;
  agg.map_reduce_rounds /= n;
  agg.eim_iterations /= n;
  agg.sampled_fraction /= n;
  agg.dist_evals /= n;
  agg.runs = static_cast<int>(results.size());
  return agg;
}

DatasetPool DatasetPool::make(const Generator& generate, int graphs,
                              std::uint64_t seed) {
  if (graphs <= 0) {
    throw std::invalid_argument("DatasetPool: graphs must be positive");
  }
  DatasetPool pool;
  Rng root(seed);
  pool.graphs_.reserve(static_cast<std::size_t>(graphs));
  for (int g = 0; g < graphs; ++g) {
    Rng graph_rng = root.split(static_cast<std::uint64_t>(g));
    pool.graphs_.push_back(generate(graph_rng));
  }
  return pool;
}

DatasetPool DatasetPool::wrap(PointSet points) {
  DatasetPool pool;
  pool.graphs_.push_back(std::move(points));
  return pool;
}

Aggregate run_repeated(const AlgoConfig& config, const DatasetPool& pool,
                       std::size_t k, int runs_per_graph, std::uint64_t seed,
                       MetricKind metric) {
  if (runs_per_graph <= 0) {
    throw std::invalid_argument("run_repeated: runs_per_graph must be positive");
  }
  // Resolve the backend once so a thread pool persists across every
  // run of the sweep instead of being respawned per run.
  AlgoConfig resolved = config;
  resolved.backend = config.resolve_backend();
  std::vector<RunResult> results;
  results.reserve(static_cast<std::size_t>(pool.num_graphs() * runs_per_graph));
  Rng root(seed);
  for (int g = 0; g < pool.num_graphs(); ++g) {
    for (int r = 0; r < runs_per_graph; ++r) {
      const std::uint64_t run_seed =
          root.split(static_cast<std::uint64_t>(g * 1000 + r))();
      results.push_back(
          run_algorithm(resolved, pool.graph(g), k, run_seed, metric));
    }
  }
  return Aggregate::of(results);
}

}  // namespace kc::harness
