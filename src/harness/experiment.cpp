#include "harness/experiment.hpp"

#include <chrono>
#include <stdexcept>

#include "algo/gonzalez.hpp"

namespace kc::harness {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) noexcept {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::string_view to_string(AlgoKind kind) noexcept {
  switch (kind) {
    case AlgoKind::GON: return "GON";
    case AlgoKind::MRG: return "MRG";
    case AlgoKind::EIM: return "EIM";
  }
  return "?";
}

RunResult run_algorithm(const AlgoConfig& config, const PointSet& points,
                        std::size_t k, std::uint64_t seed, MetricKind metric) {
  // One backend serves both levels: the cluster's reducer fan-out and
  // the oracle's sharded distance scans.
  const std::shared_ptr<exec::ExecutionBackend> backend =
      config.resolve_backend();
  DistanceOracle oracle(points, metric);
  oracle.bind_executor(backend.get());
  const std::vector<index_t> all = points.all_indices();

  RunResult result;
  result.backend = std::string(backend->name());
  const WorkScope work;

  switch (config.kind) {
    case AlgoKind::GON: {
      GonzalezOptions options;
      options.first = GonzalezOptions::FirstCenter::Random;
      options.seed = seed;
      const auto start = Clock::now();
      GonzalezResult r = gonzalez(oracle, all, k, options);
      result.wall_seconds = seconds_since(start);
      result.sim_seconds = result.wall_seconds;
      result.centers = std::move(r.centers);
      break;
    }
    case AlgoKind::MRG: {
      const mr::SimCluster cluster(config.machines, /*capacity_items=*/0,
                                   backend);
      MrgOptions options = config.mrg;
      options.seed = seed;
      const auto start = Clock::now();
      MrgResult r = mrg(oracle, all, k, cluster, options);
      result.wall_seconds = seconds_since(start);
      result.sim_seconds = r.trace.simulated_seconds();
      result.map_reduce_rounds = r.trace.num_rounds();
      result.dist_evals = r.trace.total_dist_evals();
      result.centers = std::move(r.centers);
      break;
    }
    case AlgoKind::EIM: {
      const mr::SimCluster cluster(config.machines, /*capacity_items=*/0,
                                   backend);
      EimOptions options = config.eim;
      options.seed = seed;
      const auto start = Clock::now();
      EimResult r = eim(oracle, all, k, cluster, options);
      result.wall_seconds = seconds_since(start);
      result.sim_seconds = r.trace.simulated_seconds();
      result.map_reduce_rounds = r.trace.num_rounds();
      result.eim_iterations = r.iterations;
      result.eim_sampled = r.sampled;
      result.final_sample_size = r.final_sample_size;
      result.dist_evals = r.trace.total_dist_evals();
      result.centers = std::move(r.centers);
      break;
    }
  }

  // MRG/EIM take their eval counts from the trace above: round work is
  // attributed per machine task, which is backend-invariant. The
  // sequential baseline ran entirely on this thread, so the WorkScope
  // covers it.
  if (config.kind == AlgoKind::GON) {
    result.dist_evals = work.elapsed().distance_evals;
  }
  // Solution value (the paper's quality metric), computed offline and
  // not charged to the algorithm.
  result.value = eval::covering_radius(oracle, all, result.centers).radius;
  return result;
}

Aggregate Aggregate::of(const std::vector<RunResult>& results) {
  Aggregate agg;
  if (results.empty()) return agg;
  for (const auto& r : results) {
    agg.value += r.value;
    agg.sim_seconds += r.sim_seconds;
    agg.wall_seconds += r.wall_seconds;
    agg.map_reduce_rounds += r.map_reduce_rounds;
    agg.eim_iterations += r.eim_iterations;
    agg.sampled_fraction += r.eim_sampled ? 1.0 : 0.0;
    agg.dist_evals += static_cast<double>(r.dist_evals);
  }
  const auto n = static_cast<double>(results.size());
  agg.value /= n;
  agg.sim_seconds /= n;
  agg.wall_seconds /= n;
  agg.map_reduce_rounds /= n;
  agg.eim_iterations /= n;
  agg.sampled_fraction /= n;
  agg.dist_evals /= n;
  agg.runs = static_cast<int>(results.size());
  return agg;
}

DatasetPool DatasetPool::make(const Generator& generate, int graphs,
                              std::uint64_t seed) {
  if (graphs <= 0) {
    throw std::invalid_argument("DatasetPool: graphs must be positive");
  }
  DatasetPool pool;
  Rng root(seed);
  pool.graphs_.reserve(static_cast<std::size_t>(graphs));
  for (int g = 0; g < graphs; ++g) {
    Rng graph_rng = root.split(static_cast<std::uint64_t>(g));
    pool.graphs_.push_back(generate(graph_rng));
  }
  return pool;
}

DatasetPool DatasetPool::wrap(PointSet points) {
  DatasetPool pool;
  pool.graphs_.push_back(std::move(points));
  return pool;
}

Aggregate run_repeated(const AlgoConfig& config, const DatasetPool& pool,
                       std::size_t k, int runs_per_graph, std::uint64_t seed,
                       MetricKind metric) {
  if (runs_per_graph <= 0) {
    throw std::invalid_argument("run_repeated: runs_per_graph must be positive");
  }
  // Resolve the backend once so a thread pool persists across every
  // run of the sweep instead of being respawned per run.
  AlgoConfig resolved = config;
  resolved.backend = config.resolve_backend();
  std::vector<RunResult> results;
  results.reserve(static_cast<std::size_t>(pool.num_graphs() * runs_per_graph));
  Rng root(seed);
  for (int g = 0; g < pool.num_graphs(); ++g) {
    for (int r = 0; r < runs_per_graph; ++r) {
      const std::uint64_t run_seed =
          root.split(static_cast<std::uint64_t>(g * 1000 + r))();
      results.push_back(
          run_algorithm(resolved, pool.graph(g), k, run_seed, metric));
    }
  }
  return Aggregate::of(results);
}

}  // namespace kc::harness
