#include "harness/format.hpp"

#include <cmath>
#include <cstdio>

namespace kc::harness {

std::string format_sig(double value, int sig) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (value == 0.0) return "0";

  // %g is exactly the paper's convention: `sig` significant digits,
  // plain decimal in the human range, scientific outside it.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", sig, value);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", seconds);
  } else if (seconds >= 0.01) {
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2e", seconds);
  }
  return buf;
}

std::string format_count(std::uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace kc::harness
