// Number formatting helpers for paper-style output (the paper prints
// values like 96.04, 0.961, 8.764: four significant digits).
#pragma once

#include <cstdint>
#include <string>

namespace kc::harness {

/// `value` with `sig` significant digits, plain decimal notation when
/// reasonable (|exponent| < 7), scientific otherwise.
[[nodiscard]] std::string format_sig(double value, int sig = 4);

/// Seconds with microsecond-ish resolution: "12.34", "0.00123".
[[nodiscard]] std::string format_seconds(double seconds);

/// Thousands-separated integer: 1234567 -> "1,234,567".
[[nodiscard]] std::string format_count(std::uint64_t count);

}  // namespace kc::harness
