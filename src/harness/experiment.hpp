// Experiment driver shared by all benchmark binaries.
//
// Encodes the paper's protocol (§7): m = 50 simulated machines; each
// synthetic configuration is generated as three independent graphs and
// every algorithm runs twice per graph (six results averaged); real
// data sets get four runs averaged. Parallel algorithms report
// *simulated* time (sum over rounds of the max per-machine time); the
// sequential baseline reports wall time. Solution values are covering
// radii over the full input, evaluated offline.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/eim.hpp"
#include "core/mrg.hpp"
#include "eval/evaluate.hpp"
#include "exec/backend.hpp"
#include "geom/distance.hpp"
#include "mapreduce/cluster.hpp"
#include "rng/rng.hpp"

namespace kc::harness {

enum class AlgoKind { GON, MRG, EIM };

[[nodiscard]] std::string_view to_string(AlgoKind kind) noexcept;

/// The api registry name AlgoKind maps to ("gon"/"mrg"/"eim").
[[nodiscard]] std::string_view registry_name(AlgoKind kind) noexcept;

/// One algorithm configuration to benchmark.
///
/// This is the experiment protocol's view of a solve; run_algorithm
/// translates it into an api::SolveRequest and dispatches through the
/// kc::api::Solver facade, so any registry algorithm can be driven by
/// the harness.
struct AlgoConfig {
  AlgoKind kind = AlgoKind::GON;
  /// Registry name of the algorithm to run; overrides `kind` when
  /// non-empty (so harness sweeps can drive algorithms the legacy enum
  /// does not know, e.g. "hs" or "mrg-du").
  std::string algo;
  std::string label;  ///< defaults to the algorithm name if empty

  int machines = 50;  ///< paper fixes m = 50 (§7.2)

  /// Execution backend for the simulated cluster and the sharded
  /// distance kernels. `backend`, when set, is used directly (so one
  /// persistent thread pool serves a whole sweep); otherwise
  /// resolve_backend() constructs one from `exec` + `threads`.
  exec::BackendKind exec = exec::BackendKind::Sequential;
  int threads = 0;  ///< 0 = backend default (hardware concurrency)
  std::shared_ptr<exec::ExecutionBackend> backend;

  MrgOptions mrg;  ///< used when the algorithm resolves to "mrg"
  EimOptions eim;  ///< used when the algorithm resolves to "eim"

  /// The registry name this config runs: `algo` if set, else the
  /// mapping of `kind`.
  [[nodiscard]] std::string algorithm() const {
    return algo.empty() ? std::string(registry_name(kind)) : algo;
  }

  [[nodiscard]] std::string display_label() const {
    return label.empty() ? (algo.empty() ? std::string(to_string(kind)) : algo)
                         : label;
  }

  /// The backend this config runs on; throws if the build lacks it.
  [[nodiscard]] std::shared_ptr<exec::ExecutionBackend> resolve_backend()
      const {
    return backend != nullptr ? backend : exec::make_backend(exec, threads);
  }
};

/// Outcome of a single algorithm execution on a single data set.
struct RunResult {
  std::string backend;       ///< effective execution backend name
  double value = 0.0;        ///< covering radius over all points (reported)
  double sim_seconds = 0.0;  ///< simulated parallel time (GON: == wall)
  double wall_seconds = 0.0;
  int map_reduce_rounds = 0; ///< 0 for the sequential baseline
  int eim_iterations = 0;
  bool eim_sampled = false;
  std::size_t final_sample_size = 0;
  std::uint64_t dist_evals = 0;
  std::vector<index_t> centers;
};

/// Runs one algorithm once on the full point set with the given seed.
[[nodiscard]] RunResult run_algorithm(const AlgoConfig& config,
                                      const PointSet& points, std::size_t k,
                                      std::uint64_t seed,
                                      MetricKind metric = MetricKind::L2);

/// Mean-aggregate of repeated runs.
struct Aggregate {
  double value = 0.0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  double map_reduce_rounds = 0.0;
  double eim_iterations = 0.0;
  double sampled_fraction = 0.0;
  double dist_evals = 0.0;
  int runs = 0;

  [[nodiscard]] static Aggregate of(const std::vector<RunResult>& results);
};

/// A pool of replicate data sets ("We generate three graphs of each
/// size and type", §7.3). The generator receives a per-graph Rng.
class DatasetPool {
 public:
  using Generator = std::function<PointSet(Rng&)>;

  /// Generates `graphs` replicates with independent seeds derived from
  /// `seed`.
  static DatasetPool make(const Generator& generate, int graphs,
                          std::uint64_t seed);

  /// Wraps existing data (real data sets: one "graph").
  static DatasetPool wrap(PointSet points);

  [[nodiscard]] int num_graphs() const noexcept {
    return static_cast<int>(graphs_.size());
  }
  [[nodiscard]] const PointSet& graph(int i) const { return graphs_.at(i); }

 private:
  std::vector<PointSet> graphs_;
};

/// Runs `config` `runs_per_graph` times on every graph in the pool and
/// averages: the paper's six-results-per-synthetic-config (3 graphs x
/// 2 runs) and four-runs-per-real-set protocols both reduce to this.
[[nodiscard]] Aggregate run_repeated(const AlgoConfig& config,
                                     const DatasetPool& pool, std::size_t k,
                                     int runs_per_graph, std::uint64_t seed,
                                     MetricKind metric = MetricKind::L2);

}  // namespace kc::harness
