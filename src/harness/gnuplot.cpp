#include "harness/gnuplot.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace kc::harness {

namespace {

[[nodiscard]] bool parse_number(const std::string& cell, double& out) {
  char* end = nullptr;
  out = std::strtod(cell.c_str(), &end);
  return end != cell.c_str() && *end == '\0';
}

/// Escapes double quotes for gnuplot string literals.
[[nodiscard]] std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_gnuplot(const Table& table, const std::string& basename,
                   const PlotSpec& spec) {
  if (table.headers().size() < 2) {
    throw std::invalid_argument(
        "write_gnuplot: need an x column plus at least one series");
  }

  const std::string dat_path = basename + ".dat";
  const std::string plt_path = basename + ".plt";

  {
    std::ofstream dat(dat_path);
    if (!dat) {
      throw std::runtime_error("write_gnuplot: cannot open '" + dat_path +
                               "'");
    }
    dat << "#";
    for (const auto& h : table.headers()) dat << ' ' << h;
    dat << '\n';
    for (const auto& row : table.rows()) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        double value = 0.0;
        if (c != 0) dat << ' ';
        if (parse_number(row[c], value)) {
          dat << row[c];
        } else {
          dat << "nan";
        }
      }
      dat << '\n';
    }
    if (!dat) {
      throw std::runtime_error("write_gnuplot: write failed for '" +
                               dat_path + "'");
    }
  }

  std::vector<std::size_t> series = spec.series;
  if (series.empty()) {
    for (std::size_t c = 1; c < table.headers().size(); ++c) {
      series.push_back(c);
    }
  }

  std::ofstream plt(plt_path);
  if (!plt) {
    throw std::runtime_error("write_gnuplot: cannot open '" + plt_path + "'");
  }
  plt << "set terminal pngcairo size 800,600\n";
  plt << "set output " << quote(basename + ".png") << "\n";
  plt << "set title " << quote(spec.title) << "\n";
  plt << "set xlabel " << quote(spec.xlabel) << "\n";
  plt << "set ylabel " << quote(spec.ylabel) << "\n";
  if (spec.log_y) plt << "set logscale y\n";
  if (spec.log_x) plt << "set logscale x\n";
  plt << "set key top right\n";
  plt << "plot";
  bool first = true;
  for (const std::size_t c : series) {
    if (c == 0 || c >= table.headers().size()) continue;
    if (!first) plt << ',';
    first = false;
    plt << " " << quote(dat_path) << " using 1:" << (c + 1)
        << " with linespoints title " << quote(table.headers()[c]);
  }
  plt << '\n';
  if (!plt) {
    throw std::runtime_error("write_gnuplot: write failed for '" + plt_path +
                             "'");
  }
}

}  // namespace kc::harness
