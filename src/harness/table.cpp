#include "harness/table.hpp"

#include <fstream>
#include <stdexcept>

namespace kc::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one header required");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) line += "  ";
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        line += cells[c];
        line.append(pad, ' ');
      } else {
        line.append(pad, ' ');
        line += cells[c];
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Table::write_csv: cannot open '" + path + "'");
  }
  const auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      // Cells are simple numbers/identifiers; quote only if needed.
      if (cells[c].find(',') != std::string::npos) {
        out << '"' << cells[c] << '"';
      } else {
        out << cells[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  if (!out) {
    throw std::runtime_error("Table::write_csv: write failed for '" + path +
                             "'");
  }
}

}  // namespace kc::harness
