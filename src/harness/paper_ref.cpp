#include "harness/paper_ref.hpp"

#include <array>

namespace kc::harness {

namespace {

// Values transcribed from the paper (arXiv:1604.03228v1).

constexpr std::array<PaperQualityRow, 6> kTable2{{
    // k     MRG     EIM     GON
    {2, 96.04, 93.11, 95.86},
    {5, 61.90, 61.58, 63.31},
    {10, 41.31, 39.43, 39.72},
    {25, 0.961, 0.854, 0.961},
    {50, 0.762, 0.683, 0.719},
    {100, 0.607, 0.556, 0.573},
}};

constexpr std::array<PaperQualityRow, 6> kTable3{{
    {2, 91.33, 95.80, 91.18},
    {5, 50.68, 50.65, 53.14},
    {10, 33.35, 31.12, 32.35},
    {25, 18.49, 18.01, 18.27},
    {50, 13.14, 12.39, 12.36},
    {100, 9.144, 8.764, 8.727},
}};

constexpr std::array<PaperQualityRow, 6> kTable4{{
    {2, 97.96, 93.69, 93.37},
    {5, 64.61, 64.28, 61.72},
    {10, 40.17, 40.05, 40.39},
    {25, 0.932, 0.828, 0.939},
    {50, 0.668, 0.643, 0.655},
    {100, 0.515, 0.530, 0.500},
}};

constexpr std::array<PaperQualityRow, 6> kTable5{{
    {2, 19.41, 18.60, 18.17},
    {5, 18.06, 17.07, 17.25},
    {10, 15.12, 14.20, 15.03},
    {25, 12.13, 11.98, 11.84},
    {50, 10.07, 9.418, 9.617},
    {100, 8.774, 9.241, 8.396},
}};

constexpr std::array<PaperPhiRow, 6> kTable6{{
    // k    phi=1  phi=4  phi=6  phi=8
    {2, 88.4, 80.4, 85.5, 86.5},
    {5, 59.9, 60.9, 56.5, 61.9},
    {10, 36.2, 35.5, 34.7, 35.3},
    {25, 0.796, 0.780, 0.826, 0.840},
    {50, 0.630, 0.617, 0.610, 0.666},
    {100, 0.478, 0.492, 0.505, 0.535},
}};

constexpr std::array<PaperPhiRow, 6> kTable7{{
    {2, 0.050, 0.059, 0.165, 0.135},
    {5, 0.080, 0.130, 0.368, 0.314},
    {10, 0.283, 0.480, 0.549, 0.552},
    {25, 0.588, 0.505, 1.47, 1.42},
    {50, 0.693, 0.816, 2.84, 2.24},
    {100, 0.726, 0.757, 3.78, 3.59},
}};

}  // namespace

std::span<const PaperQualityRow> paper_table2() noexcept { return kTable2; }
std::span<const PaperQualityRow> paper_table3() noexcept { return kTable3; }
std::span<const PaperQualityRow> paper_table4() noexcept { return kTable4; }
std::span<const PaperQualityRow> paper_table5() noexcept { return kTable5; }
std::span<const PaperPhiRow> paper_table6() noexcept { return kTable6; }
std::span<const PaperPhiRow> paper_table7() noexcept { return kTable7; }

std::optional<double> paper_value(int table, int k, std::string_view column) {
  const auto find_quality =
      [&](std::span<const PaperQualityRow> rows) -> std::optional<double> {
    for (const auto& row : rows) {
      if (row.k != k) continue;
      if (column == "MRG") return row.mrg;
      if (column == "EIM") return row.eim;
      if (column == "GON") return row.gon;
      return std::nullopt;
    }
    return std::nullopt;
  };
  const auto find_phi =
      [&](std::span<const PaperPhiRow> rows) -> std::optional<double> {
    for (const auto& row : rows) {
      if (row.k != k) continue;
      if (column == "1") return row.phi1;
      if (column == "4") return row.phi4;
      if (column == "6") return row.phi6;
      if (column == "8") return row.phi8;
      return std::nullopt;
    }
    return std::nullopt;
  };

  switch (table) {
    case 2: return find_quality(kTable2);
    case 3: return find_quality(kTable3);
    case 4: return find_quality(kTable4);
    case 5: return find_quality(kTable5);
    case 6: return find_phi(kTable6);
    case 7: return find_phi(kTable7);
    default: return std::nullopt;
  }
}

}  // namespace kc::harness
