// Job-level trace: the ordered list of MapReduce rounds an algorithm
// executed, with aggregate queries used by the benchmarks and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/round_stats.hpp"

namespace kc::mr {

class JobTrace {
 public:
  /// Appends a round and assigns its round_index. Returns a reference
  /// the caller may annotate (items_in/out, shuffle volume).
  RoundStats& add_round(RoundStats stats);

  [[nodiscard]] const std::vector<RoundStats>& rounds() const noexcept {
    return rounds_;
  }
  [[nodiscard]] int num_rounds() const noexcept {
    return static_cast<int>(rounds_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return rounds_.empty(); }

  /// The paper's reported runtime: sum over rounds of the max simulated
  /// machine time.
  [[nodiscard]] double simulated_seconds() const noexcept;

  /// Total CPU work across all machines and rounds.
  [[nodiscard]] double total_machine_seconds() const noexcept;

  /// Host wall time actually spent executing the job.
  [[nodiscard]] double wall_seconds() const noexcept;

  [[nodiscard]] std::uint64_t total_dist_evals() const noexcept;
  [[nodiscard]] std::uint64_t total_shuffle_items() const noexcept;

  /// Largest number of machines used by any round.
  [[nodiscard]] int max_machines_used() const noexcept;

  /// Multi-line human-readable dump.
  [[nodiscard]] std::string to_string() const;

  void clear() noexcept { rounds_.clear(); }

  /// Merges another trace's rounds after this one (used when an
  /// algorithm delegates to a sub-job).
  void append(const JobTrace& other);

 private:
  std::vector<RoundStats> rounds_;
};

}  // namespace kc::mr
